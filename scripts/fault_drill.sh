#!/usr/bin/env bash
# Fault-injection drill for the cable-guard robustness plane.
#
# Sweeps deterministic `CABLE_FAULTS` specs — injected worker panics,
# injected store I/O errors, and artificial budget exhaustion — over the
# Table 2 pipeline. Every faulted run must fail *cleanly*: a nonzero
# exit with a structured `injected fault` / `budget exceeded` error on
# stderr, never a raw unwind escaping the process. A clean re-run with
# the plane uninstalled must then pass, proving the faults left no
# residue behind.
#
# Usage: scripts/fault_drill.sh [path/to/reproduce]
set -euo pipefail

REPRODUCE=${1:-target/release/reproduce}
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

# Runs Table 2 under a fault spec and requires a clean, typed failure.
expect_fault() { # expect_fault SPEC
  local spec=$1
  set +e
  CABLE_FAULTS="$spec" "$REPRODUCE" table2 --quick --threads 4 \
    >"$work/out.txt" 2>"$work/err.txt"
  local code=$?
  set -e
  if [ "$code" -eq 0 ]; then
    echo "error: fault spec '$spec' did not surface" >&2
    exit 1
  fi
  if ! grep -Eq "injected fault|budget exceeded" "$work/err.txt"; then
    echo "error: fault spec '$spec' exited $code without a structured error:" >&2
    cat "$work/err.txt" >&2
    exit 1
  fi
  echo "  $spec -> exit $code, typed error"
}

echo "== injected worker panics (seed sweep over par.task ordinals)"
for seed in 1 2 3 4 5; do
  expect_fault "$seed:panic@par.task#$((seed * 13))"
done

echo "== injected store I/O errors (every shim site)"
for site in store.publish store.journal.append store.fsync; do
  expect_fault "11:io@$site#1"
done

echo "== artificial budget exhaustion at a checkpoint"
expect_fault "17:budget@core.persist.ingest#1"

echo "== clean re-run with the plane uninstalled"
"$REPRODUCE" table2 --quick --threads 4 >/dev/null

echo "== budget-determinism gate: the partial result must not depend on the pool size"
CABLE_PAR=1 "$REPRODUCE" table2 --quick --max-concepts 40 \
  --json-out "$work/budget_par1.jsonl"
CABLE_PAR=8 "$REPRODUCE" table2 --quick --max-concepts 40 \
  --json-out "$work/budget_par8.jsonl"
grep -q '"budget_stopped":true' "$work/budget_par1.jsonl" || {
  echo "error: --max-concepts 40 never tripped the budget" >&2
  exit 1
}
"$REPRODUCE" diff "$work/budget_par1.jsonl" "$work/budget_par8.jsonl"

echo "fault drill: PASS"
