#!/usr/bin/env bash
# The CI chaos drill: the labeling service under seeded disk-fault
# injection (DESIGN.md §17), with four gates.
#
#   1. Fail-stop, not fall-over: 64 concurrent labelers run while
#      CABLE_FAULTS injects I/O errors into journal appends and fsyncs.
#      Every 5xx the service answers must be a *declared* degraded 503
#      (body says `"degraded": true`, header says Retry-After) —
#      `cable-load --chaos` retries those and exits 3 on any naked 5xx,
#      any transport error, or any request that exhausted its retry
#      budget (a hung or wedged server shows up here, not as a CI
#      timeout). The drill also requires that faults actually fired and
#      that the store degraded and recovered at least once — a chaos
#      run where nothing broke proves nothing.
#   2. Event contract: the server's wide-event log (CHAOS_record.jsonl)
#      passes `reproduce check-events`, which validates the
#      fault_injected (site + hit ordinal) and store_degraded /
#      store_recovered (cause) schemas the timeline is rebuilt from.
#   3. Determinism under chaos: after the run, every labeler's acked
#      mutating ops are replayed sequentially through the CLI *without*
#      fault injection, and each replayed session digest must be
#      bit-identical to the digest the degraded-and-recovered server
#      reported. Injected faults may fail requests; they must never
#      corrupt state.
#   4. Fault-schedule reproducibility: a sequential run under the same
#      CABLE_FAULTS spec yields the exact same fired (site, hit)
#      timeline at CABLE_PAR=1 and CABLE_PAR=8 — lattice parallelism
#      must not perturb the fault plane.
#
# Usage: scripts/chaos_drill.sh [path/to/cable] [path/to/cable-load] [path/to/reproduce]
set -euo pipefail

CABLE=${1:-target/release/cable}
LOAD=${2:-target/release/cable-load}
REPRODUCE=${3:-target/release/reproduce}
LABELERS=${LABELERS:-64}
REQUESTS=${REQUESTS:-16}
# Seeded probabilistic rules: every journal append has a 2% chance of an
# injected ENOSPC/EIO, every fsync a 1% chance — sustained chaos for the
# whole run, reproducible from the seed.
FAULTS=${FAULTS:-20260808:io@store.journal.append=0.02,io@store.fsync=0.01}
work=$(mktemp -d)
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

start_server() { # $1 store-root, $2 events file, extra env via leading VAR=... on the call
  CABLE_OBS=1 CABLE_FAULTS="$FAULTS" "$CABLE" serve --obs-listen 0 --api \
    --store-root "$1" --max-open-sessions 16 --events-out "$2" \
    > "$work/announce" 2> /dev/null &
  server_pid=$!
  addr=""
  for _ in $(seq 1 50); do
    addr=$(sed -n 's|^serving http://\([^/]*\)/.*|\1|p' "$work/announce")
    [ -n "$addr" ] && break
    sleep 0.1
  done
  [ -n "$addr" ] || { echo "serve never announced its address"; exit 1; }
}

stop_server() {
  kill "$server_pid"
  wait "$server_pid" 2>/dev/null || true
  server_pid=""
}

count_kind() { # $1 events file, $2 kind
  grep -c "\"kind\":\"$2\"" "$1" || true
}

echo "== start the labeling service under fault injection ($FAULTS)"
start_server "$work/tenants" CHAOS_record.jsonl
echo "service bound $addr"

echo "== gate 1a: $LABELERS chaos labelers, every 5xx must be declared"
"$LOAD" --addr "$addr" --labelers "$LABELERS" --requests "$REQUESTS" \
  --seed 20260808 --verify-dir "$work/verify" --json-out CHAOS_load.json \
  --max-5xx 0 --chaos

echo "== gate 1b: the fleet ends healthy — no store left read-only"
"$LOAD" --addr "$addr" --fetch /healthz --out "$work/healthz.json"
grep -q '"degraded_now":0' "$work/healthz.json" || {
  echo "healthz reports stores still degraded after the run:"
  cat "$work/healthz.json"
  exit 1
}

stop_server

echo "== gate 1c: chaos actually happened (faults fired, stores degraded and recovered)"
fired=$(count_kind CHAOS_record.jsonl fault_injected)
degraded=$(count_kind CHAOS_record.jsonl store_degraded)
recovered=$(count_kind CHAOS_record.jsonl store_recovered)
absorbed=$(sed -n 's/.*"degraded_503":\([0-9]*\).*/\1/p' CHAOS_load.json | head -1)
echo "fault timeline: $fired injected, $degraded degradations, $recovered recoveries, ${absorbed:-0} declared 503s absorbed"
[ "$fired" -ge 1 ] || { echo "no faults fired — the drill proved nothing"; exit 1; }
[ "$degraded" -ge 1 ] || { echo "faults fired but no store degraded"; exit 1; }
[ "$recovered" -ge 1 ] || { echo "stores degraded but never recovered"; exit 1; }
[ "${absorbed:-0}" -ge 1 ] || { echo "no declared degraded 503 reached a labeler"; exit 1; }
grep -e '"kind":"fault_injected"' -e '"kind":"store_degraded"' -e '"kind":"store_recovered"' \
  CHAOS_record.jsonl > CHAOS_degraded_timeline.jsonl

echo "== gate 2: the wide-event log honours the chaos event contracts"
"$REPRODUCE" check-events CHAOS_record.jsonl

echo "== gate 3: fault-free sequential replay reproduces every session digest"
replayed=0
for dir in "$work"/verify/labeler-*; do
  name=$(basename "$dir")
  store="$work/replay/$name"
  [ -f "$dir/digest.jsonl" ] || { echo "$name: no server digest logged"; exit 1; }
  for step in "$dir"/step-*; do
    case "$step" in
      *open.traces)
        "$CABLE" session open --traces "$step" --store "$store" > /dev/null
        ;;
      *ingest.traces)
        "$CABLE" session ingest --store "$store" --traces "$step" > /dev/null
        ;;
      *label.script)
        # Exit 3 just means some traces are still unlabeled — fine
        # mid-script; any other failure is fatal.
        "$CABLE" label --store "$store" --script "$step" > /dev/null 2>&1 || {
          code=$?
          [ "$code" = "3" ] || { echo "$name: label replay failed ($code)"; exit 1; }
        }
        ;;
      *)
        echo "$name: unexpected step file $step"; exit 1
        ;;
    esac
  done
  "$CABLE" session resume --store "$store" \
    --json-out "$work/replay/$name.jsonl" > /dev/null 2> /dev/null
  # The generation counts snapshot republishes — every recovery bumps
  # it, so the chaos server's is legitimately ahead of a fault-free
  # replay's. Everything else (corpus, lattice, labels) must be
  # bit-identical.
  sed 's/"generation":[0-9]*,//' "$dir/digest.jsonl" > "$work/replay/$name.server.jsonl"
  sed 's/"generation":[0-9]*,//' "$work/replay/$name.jsonl" > "$work/replay/$name.replayed.jsonl"
  "$REPRODUCE" diff "$work/replay/$name.server.jsonl" "$work/replay/$name.replayed.jsonl" > /dev/null || {
    echo "$name: replayed digest diverged from the server's"
    "$REPRODUCE" diff "$work/replay/$name.server.jsonl" "$work/replay/$name.replayed.jsonl" || true
    exit 1
  }
  replayed=$((replayed + 1))
done
[ "$replayed" = "$LABELERS" ] || {
  echo "replayed $replayed sessions, expected $LABELERS"; exit 1
}
echo "replayed $replayed sessions, all digests identical"

echo "== gate 4: the fault timeline is identical at CABLE_PAR=1 and CABLE_PAR=8"
FAULTS="777:io@store.journal.append=0.05,io@store.fsync=0.03"
for par in 1 8; do
  CABLE_PAR=$par start_server "$work/par$par/tenants" "$work/par$par-events.jsonl"
  "$LOAD" --addr "$addr" --labelers 1 --requests 24 --seed 777 \
    --tenant-prefix "par" --chaos --max-5xx 0 > /dev/null
  stop_server
  sed -n 's/.*"kind":"fault_injected".*/&/p' "$work/par$par-events.jsonl" |
    sed 's/.*"hit":\([0-9]*\).*"site":"\([^"]*\)".*/\2 \1/' |
    sort > "$work/timeline-par$par.txt"
  [ -s "$work/timeline-par$par.txt" ] || {
    echo "CABLE_PAR=$par: no faults fired in the determinism phase"; exit 1
  }
done
diff -u "$work/timeline-par1.txt" "$work/timeline-par8.txt" || {
  echo "fault timeline differs between CABLE_PAR=1 and CABLE_PAR=8"; exit 1
}
echo "fault timeline identical across CABLE_PAR=1/8 ($(wc -l < "$work/timeline-par1.txt") fired hits)"

echo "chaos drill: PASS"
