#!/usr/bin/env bash
# Crash-recovery drill for the cable-store persistence layer.
#
# Two stores ingest the same batch with per-trace fsync. One process is
# killed with SIGKILL mid-journal; after resume (which recovers the
# valid journal prefix) the remaining traces are ingested, and the final
# session state must be bit-identical — digests and all — to the store
# that was never interrupted. `reproduce diff` performs the comparison.
#
# Usage: scripts/crash_drill.sh [path/to/cable] [path/to/reproduce]
set -euo pipefail

CABLE=${1:-target/release/cable}
REPRODUCE=${2:-target/release/reproduce}
FA=testdata/figure6_fixed.fa
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

# A small base corpus and a large, varied ingest batch (big enough that
# per-trace fsync keeps the ingest running while we shoot it).
base=$work/base.traces
batch=$work/batch.traces
for _ in $(seq 1 40); do
  printf 'fopen(X) fread(X) fclose(X)\nfopen(X) fwrite(X) fclose(X)\n'
done > "$base"
for i in $(seq 1 5000); do
  case $((i % 4)) in
    0) echo "popen(Y) fread(Y) pclose(Y)" ;;
    1) echo "fopen(X) fread(X) fwrite(X) fclose(X)" ;;
    2) echo "popen(Y) fwrite(Y) pclose(Y)" ;;
    3) echo "fopen(X) fclose(X)" ;;
  esac
done > "$batch"
base_total=$(wc -l < "$base")
batch_total=$(wc -l < "$batch")

state_field() { # state_field FILE KEY -> numeric value
  sed -n "s/.*\"$2\":\([0-9]*\).*/\1/p" "$1"
}

echo "== uninterrupted reference run"
"$CABLE" session open --traces "$base" --fa "$FA" --store "$work/clean"
"$CABLE" session ingest --store "$work/clean" --traces "$batch" --fsync-per-trace

echo "== crashed run: kill -9 mid-journal"
"$CABLE" session open --traces "$base" --fa "$FA" --store "$work/crashed"
"$CABLE" session ingest --store "$work/crashed" --traces "$batch" --fsync-per-trace &
pid=$!
sleep 0.3
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

echo "== resume after the crash"
"$CABLE" session resume --store "$work/crashed" --json-out "$work/after_crash.jsonl"
recovered=$(state_field "$work/after_crash.jsonl" traces)
ingested=$((recovered - base_total))
remaining=$((batch_total - ingested))
echo "recovered $ingested of $batch_total batch traces; re-ingesting $remaining"
if [ "$remaining" -eq 0 ]; then
  echo "note: the ingest finished before the kill landed; prefix = whole batch"
else
  tail -n "$remaining" "$batch" > "$work/rest.traces"
  "$CABLE" session ingest --store "$work/crashed" --traces "$work/rest.traces"
fi

echo "== gate 1: resumed + completed state equals the uninterrupted state"
"$CABLE" session resume --store "$work/clean" --json-out "$work/clean.jsonl"
"$CABLE" session resume --store "$work/crashed" --json-out "$work/final.jsonl"
"$REPRODUCE" diff "$work/clean.jsonl" "$work/final.jsonl"

echo "== gate 2: states still agree after compaction"
"$CABLE" session compact --store "$work/clean"
"$CABLE" session compact --store "$work/crashed"
"$CABLE" session resume --store "$work/clean" --json-out "$work/clean2.jsonl"
"$CABLE" session resume --store "$work/crashed" --json-out "$work/final2.jsonl"
"$REPRODUCE" diff "$work/clean2.jsonl" "$work/final2.jsonl"
if ! cmp -s "$work/clean.jsonl" <(sed 's/"generation":1/"generation":0/' "$work/clean2.jsonl"); then
  echo "error: compaction changed the session state" >&2
  exit 1
fi

echo "crash drill: PASS"
