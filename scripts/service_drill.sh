#!/usr/bin/env bash
# The CI service drill: 64 concurrent labelers against the labeling
# API, with three gates.
#
#   1. Service health: the run must finish with zero 5xx responses and
#      zero transport errors (`cable-load` exits 3 otherwise), and the
#      observed p99 request latency must fit the committed budget
#      (`reproduce slo-check` against SLO_load_budgets.json).
#   2. Determinism: every labeler's mutating ops — logged in order by
#      `cable-load --verify-dir` — are replayed *sequentially* through
#      the CLI into a fresh store, and the replayed session digest must
#      be bit-identical to the digest the server reported for that
#      tenant's session. Concurrency, queueing, 429 retries, and LRU
#      eviction may reorder *work*, but never change *state*.
#   3. Tracing: the server runs with causal request tracing on
#      (CABLE_OBS=1, seeded trace ids, keep every span tree) and the
#      drill pulls /tracez/export before shutdown. `reproduce
#      check-trace` gates span-tree well-formedness (closed spans,
#      acyclic parents, every span reachable from its request root) and
#      `reproduce trace-report --min-coverage 95` gates attribution:
#      the named stages (queue / lock-wait / fsync / serialization /
#      lattice / handler) must explain at least 95% of the p99
#      request's wall time. The TRACE_attribution.json record it
#      writes is the CI artifact ROADMAP item 1 is decided on.
#
# The server runs with --max-open-sessions 16 against 64 tenants, so
# roughly three quarters of all requests hit an evicted session and
# force a reopen-from-journal — the drill exercises the eviction path,
# not just the cache-hit path.
#
# Usage: scripts/service_drill.sh [path/to/cable] [path/to/cable-load] [path/to/reproduce]
set -euo pipefail

CABLE=${1:-target/release/cable}
LOAD=${2:-target/release/cable-load}
REPRODUCE=${3:-target/release/reproduce}
LABELERS=${LABELERS:-64}
REQUESTS=${REQUESTS:-16}
work=$(mktemp -d)
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

echo "== start the labeling service (port 0, 16 resident sessions, tracing on)"
CABLE_OBS=1 "$CABLE" serve --obs-listen 0 --api --store-root "$work/tenants" \
  --max-open-sessions 16 --trace-seed 20260808 --trace-slow-us 0 \
  > "$work/announce" 2> /dev/null &
server_pid=$!

addr=""
for _ in $(seq 1 50); do
  addr=$(sed -n 's|^serving http://\([^/]*\)/.*|\1|p' "$work/announce")
  [ -n "$addr" ] && break
  sleep 0.1
done
[ -n "$addr" ] || { echo "serve never announced its address"; exit 1; }
echo "service bound $addr"

echo "== gate 1a: $LABELERS concurrent labelers, zero 5xx allowed"
"$LOAD" --addr "$addr" --labelers "$LABELERS" --requests "$REQUESTS" \
  --seed 20260808 --verify-dir "$work/verify" --json-out LOAD_record.json \
  --max-5xx 0

echo "== pull the span-tree export before shutdown"
"$LOAD" --addr "$addr" --fetch /tracez/export --out TRACE_export.json

kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

echo "== gate 1b: p99 latency within the committed budget"
"$REPRODUCE" slo-check --records LOAD_record.json --budgets SLO_load_budgets.json

echo "== gate 3a: every kept span tree is well-formed"
"$REPRODUCE" check-trace TRACE_export.json

echo "== gate 3b: named stages explain >=95% of the p99 request"
"$REPRODUCE" trace-report --export TRACE_export.json \
  --min-coverage 95 --json-out TRACE_attribution.json

echo "== gate 2: sequential CLI replay reproduces every session digest"
replayed=0
for dir in "$work"/verify/labeler-*; do
  name=$(basename "$dir")
  store="$work/replay/$name"
  [ -f "$dir/digest.jsonl" ] || { echo "$name: no server digest logged"; exit 1; }
  for step in "$dir"/step-*; do
    case "$step" in
      *open.traces)
        "$CABLE" session open --traces "$step" --store "$store" > /dev/null
        ;;
      *ingest.traces)
        "$CABLE" session ingest --store "$store" --traces "$step" > /dev/null
        ;;
      *label.script)
        # Exit 3 just means some traces are still unlabeled — fine
        # mid-script; any other failure is fatal.
        "$CABLE" label --store "$store" --script "$step" > /dev/null 2>&1 || {
          code=$?
          [ "$code" = "3" ] || { echo "$name: label replay failed ($code)"; exit 1; }
        }
        ;;
      *)
        echo "$name: unexpected step file $step"; exit 1
        ;;
    esac
  done
  "$CABLE" session resume --store "$store" \
    --json-out "$work/replay/$name.jsonl" > /dev/null 2> /dev/null
  "$REPRODUCE" diff "$dir/digest.jsonl" "$work/replay/$name.jsonl" > /dev/null || {
    echo "$name: replayed digest diverged from the server's"
    "$REPRODUCE" diff "$dir/digest.jsonl" "$work/replay/$name.jsonl" || true
    exit 1
  }
  replayed=$((replayed + 1))
done
[ "$replayed" = "$LABELERS" ] || {
  echo "replayed $replayed sessions, expected $LABELERS"; exit 1
}
echo "replayed $replayed sessions, all digests identical"

echo "service drill: PASS"
