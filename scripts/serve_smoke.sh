#!/usr/bin/env bash
# Smoke test for the cable-obs HTTP exposition server.
#
# Opens a small session store, starts `cable serve` on an ephemeral
# localhost port (bare port 0), and curls every endpoint. The server
# must answer with Prometheus text carrying the request counter and
# summary quantiles, health JSON reflecting the build identity and the
# store generation and journal lag, the wide-event tail on /eventz, SLO
# windows on /sloz, and a 400 for malformed ?limit= queries.
#
# Usage: scripts/serve_smoke.sh [path/to/cable]
set -euo pipefail

CABLE=${1:-target/release/cable}
work=$(mktemp -d)
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

"$CABLE" session open --traces testdata/stdio_violations.traces \
  --store "$work/store" > /dev/null

"$CABLE" serve --obs-listen 0 --store "$work/store" \
  > "$work/announce" 2> /dev/null &
server_pid=$!

# The bound address is the first stdout line:
#   serving http://127.0.0.1:PORT/metrics /healthz /tracez
addr=""
for _ in $(seq 1 50); do
  addr=$(sed -n 's|^serving http://\([^/]*\)/.*|\1|p' "$work/announce")
  [ -n "$addr" ] && break
  sleep 0.1
done
[ -n "$addr" ] || { echo "serve never announced its address"; exit 1; }
echo "serve bound $addr"

health=$(curl -fsS "http://$addr/healthz")
echo "$health"
echo "$health" | grep -q '"generation":0' || { echo "healthz misses generation"; exit 1; }
echo "$health" | grep -q '"journal_lag_bytes"' || { echo "healthz misses journal lag"; exit 1; }
echo "$health" | grep -q '"version"' || { echo "healthz misses build version"; exit 1; }
echo "$health" | grep -q '"uptime_seconds"' || { echo "healthz misses uptime"; exit 1; }

metrics=$(curl -fsS "http://$addr/metrics")
echo "$metrics" | grep -q '# TYPE obs_http_requests counter' \
  || { echo "metrics miss the request counter"; exit 1; }
echo "$metrics" | grep -q 'quantile="0.99"' \
  || { echo "metrics miss summary quantiles"; exit 1; }

curl -fsS "http://$addr/tracez" | grep -q '"recording":true' \
  || { echo "tracez does not report recording"; exit 1; }

curl -fsS "http://$addr/eventz" | grep -q '"events"' \
  || { echo "eventz does not serve the wide-event tail"; exit 1; }

sloz=$(curl -fsS "http://$addr/sloz")
echo "$sloz" | grep -q '"windows"' || { echo "sloz misses windows"; exit 1; }
echo "$sloz" | grep -q '"error_budget"' || { echo "sloz misses error budget"; exit 1; }

# ?limit= validation: well-formed limits are honoured, garbage is a 400.
curl -fsS "http://$addr/eventz?limit=5" > /dev/null \
  || { echo "eventz rejects a valid limit"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/tracez?limit=garbage")
[ "$code" = "400" ] || { echo "malformed limit answered $code, not 400"; exit 1; }

echo "serve smoke test: PASS"
