#!/usr/bin/env bash
# Smoke test for the cable-obs HTTP exposition server.
#
# Opens a small session store, starts `cable serve` on an ephemeral
# localhost port (bare port 0), and curls every endpoint. The server
# must answer with Prometheus text carrying the request counter and
# summary quantiles, health JSON reflecting the build identity and the
# store generation and journal lag, the wide-event tail on /eventz, SLO
# windows on /sloz, and a 400 for malformed ?limit= queries.
#
# The second half restarts the server with the labeling API enabled
# (`--api --store-root`) and walks the session lifecycle end to end:
# open → ingest → label → lattice → focus, plus malformed JSON → 400.
#
# Usage: scripts/serve_smoke.sh [path/to/cable]
set -euo pipefail

CABLE=${1:-target/release/cable}
work=$(mktemp -d)
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

"$CABLE" session open --traces testdata/stdio_violations.traces \
  --store "$work/store" > /dev/null

"$CABLE" serve --obs-listen 0 --store "$work/store" \
  > "$work/announce" 2> /dev/null &
server_pid=$!

# The bound address is the first stdout line:
#   serving http://127.0.0.1:PORT/metrics /healthz /tracez
addr=""
for _ in $(seq 1 50); do
  addr=$(sed -n 's|^serving http://\([^/]*\)/.*|\1|p' "$work/announce")
  [ -n "$addr" ] && break
  sleep 0.1
done
[ -n "$addr" ] || { echo "serve never announced its address"; exit 1; }
echo "serve bound $addr"

health=$(curl -fsS "http://$addr/healthz")
echo "$health"
echo "$health" | grep -q '"generation":0' || { echo "healthz misses generation"; exit 1; }
echo "$health" | grep -q '"journal_lag_bytes"' || { echo "healthz misses journal lag"; exit 1; }
echo "$health" | grep -q '"version"' || { echo "healthz misses build version"; exit 1; }
echo "$health" | grep -q '"uptime_seconds"' || { echo "healthz misses uptime"; exit 1; }

metrics=$(curl -fsS "http://$addr/metrics")
echo "$metrics" | grep -q '# TYPE obs_http_requests counter' \
  || { echo "metrics miss the request counter"; exit 1; }
echo "$metrics" | grep -q 'quantile="0.99"' \
  || { echo "metrics miss summary quantiles"; exit 1; }

curl -fsS "http://$addr/tracez" | grep -q '"recording":true' \
  || { echo "tracez does not report recording"; exit 1; }

curl -fsS "http://$addr/eventz" | grep -q '"events"' \
  || { echo "eventz does not serve the wide-event tail"; exit 1; }

sloz=$(curl -fsS "http://$addr/sloz")
echo "$sloz" | grep -q '"windows"' || { echo "sloz misses windows"; exit 1; }
echo "$sloz" | grep -q '"error_budget"' || { echo "sloz misses error budget"; exit 1; }

# ?limit= validation: well-formed limits are honoured, garbage is a 400.
curl -fsS "http://$addr/eventz?limit=5" > /dev/null \
  || { echo "eventz rejects a valid limit"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/tracez?limit=garbage")
[ "$code" = "400" ] || { echo "malformed limit answered $code, not 400"; exit 1; }

# Without --api the API surface answers 404 with a pointer at the flag.
api_miss=$(curl -s "http://$addr/api/sessions")
echo "$api_miss" | grep -q -- '--api' \
  || { echo "API 404 does not mention --api"; exit 1; }

kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

# ---- The labeling API, end to end -----------------------------------

"$CABLE" serve --obs-listen 0 --api --store-root "$work/tenants" \
  > "$work/announce_api" 2> /dev/null &
server_pid=$!
addr=""
for _ in $(seq 1 50); do
  addr=$(sed -n 's|^serving http://\([^/]*\)/.*|\1|p' "$work/announce_api")
  [ -n "$addr" ] && break
  sleep 0.1
done
[ -n "$addr" ] || { echo "API serve never announced its address"; exit 1; }
echo "API serve bound $addr"

api="http://$addr/api/sessions"
post() { curl -s -o "$work/body" -w '%{http_code}' -X POST -d "$1" "$2"; }

code=$(post '{"tenant": "smoke", "session": "s", "traces": "fopen(#1) fread(#1) fclose(#1)\nfopen(#2)\n"}' "$api")
[ "$code" = "201" ] || { echo "open answered $code: $(cat "$work/body")"; exit 1; }
grep -q '"concepts"' "$work/body" || { echo "open misses concepts"; exit 1; }

code=$(post '{"tenant": "smoke", "traces": "fopen(#3) fwrite(#3) fclose(#3)\n"}' "$api/s/ingest")
[ "$code" = "200" ] || { echo "ingest answered $code: $(cat "$work/body")"; exit 1; }
grep -q '"ingested":1' "$work/body" || { echo "ingest misses count"; exit 1; }

code=$(post '{"tenant": "smoke", "concept": "c0", "selector": "unlabeled", "label": "good"}' "$api/s/label")
[ "$code" = "200" ] || { echo "label answered $code: $(cat "$work/body")"; exit 1; }
grep -q '"classes_labeled"' "$work/body" || { echo "label misses tally"; exit 1; }

lattice=$(curl -fsS "$api/s/lattice?tenant=smoke")
echo "$lattice" | grep -q '"top"' || { echo "lattice misses top"; exit 1; }
top=$(echo "$lattice" | sed -n 's|.*"top":"\([^"]*\)".*|\1|p')
[ -n "$top" ] || { echo "cannot extract top concept"; exit 1; }

curl -fsS "$api/s/focus?tenant=smoke&concept=$top" | grep -q '"concepts"' \
  || { echo "focus on $top failed"; exit 1; }

curl -fsS "$api/s/digest?tenant=smoke" | grep -q '"corpus_digest"' \
  || { echo "digest misses corpus digest"; exit 1; }

# Malformed JSON is the client's problem: a 400, never a 5xx.
code=$(post '{not json' "$api")
[ "$code" = "400" ] || { echo "malformed JSON answered $code, not 400"; exit 1; }
grep -q 'malformed' "$work/body" || { echo "400 body misses the reason"; exit 1; }

# Unknown sessions are a 404.
code=$(curl -s -o /dev/null -w '%{http_code}' "$api/ghost/digest?tenant=smoke")
[ "$code" = "404" ] || { echo "unknown session answered $code, not 404"; exit 1; }

echo "serve smoke test: PASS"
