#!/usr/bin/env bash
# Mutation drill for the cable-mutate engine and the completed automaton
# algebra.
#
# Runs the mutation matrix (`reproduce mutants`) twice — sequentially
# (CABLE_PAR=1) and on eight workers (CABLE_PAR=8) — with a fixed seed,
# then gates on:
#
#   * at least 100 `mutation_row` records (the ISSUE's matrix floor),
#   * `equivalent_survivors` is exactly 0 (the engine's equivalence
#     filter let no no-op mutant through, re-verified per survivor),
#   * the algebra and engine counters (`fa.algebra.product_states`,
#     `mutate.mutants_filtered`) appear in the pipeline snapshot,
#   * the two runs are byte-identical once timing is stripped
#     (`reproduce diff`), proving the matrix is deterministic in the
#     worker count.
#
# The sequential run's records are left at MUT_record.json in the
# current directory for CI artifact upload.
#
# Usage: scripts/mutation_drill.sh [path/to/reproduce]
set -euo pipefail

REPRODUCE=${1:-target/release/reproduce}
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

SEED=2003

echo "== mutation matrix, sequential (CABLE_PAR=1, seed $SEED)"
CABLE_PAR=1 "$REPRODUCE" mutants --seed "$SEED" --json-out MUT_record.json \
  >"$work/out_par1.txt"

echo "== mutation matrix, parallel (CABLE_PAR=8, seed $SEED)"
CABLE_PAR=8 "$REPRODUCE" mutants --seed "$SEED" --json-out "$work/MUT_par8.json" \
  >"$work/out_par8.txt"

rows=$(grep -c '"record":"mutation_row"' MUT_record.json)
if [ "$rows" -lt 100 ]; then
  echo "error: only $rows mutation rows (need >= 100)" >&2
  exit 1
fi
echo "  $rows mutation rows"

if ! grep -q '"equivalent_survivors":0' MUT_record.json; then
  echo "error: equivalent-to-parent mutants survived the filter:" >&2
  grep '"record":"mutation_summary"' MUT_record.json >&2
  exit 1
fi
echo "  equivalent_survivors: 0"

for counter in fa.algebra.product_states mutate.mutants_filtered \
  mutate.candidates mutate.survivors; do
  if ! grep -q "$counter" MUT_record.json; then
    echo "error: counter $counter missing from the pipeline snapshot" >&2
    exit 1
  fi
done
echo "  obs counters present (fa.algebra.product_states, mutate.*)"

echo "== determinism across worker counts"
"$REPRODUCE" diff MUT_record.json "$work/MUT_par8.json"

echo "mutation drill: all gates passed"
