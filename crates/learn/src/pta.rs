//! The prefix-tree acceptor (PTA) with traversal frequencies.

use crate::counted::CountedFa;
use cable_fa::{EventPat, Fa};
use cable_trace::Trace;
use std::collections::HashMap;

/// A prefix-tree acceptor: the trie of the training traces, annotated with
/// how many traces traverse each edge and how many end at each node.
///
/// The PTA accepts exactly the training set; learners generalise by
/// merging its states.
#[derive(Debug, Clone)]
pub struct Pta {
    /// Children of each node: `(label, child)` pairs with edge counts.
    edges: Vec<Vec<(EventPat, usize, u64)>>,
    /// How many traces end at each node.
    accept_counts: Vec<u64>,
}

impl Pta {
    /// Builds the PTA of a training set.
    ///
    /// # Examples
    ///
    /// ```
    /// use cable_learn::Pta;
    /// use cable_trace::{Trace, Vocab};
    ///
    /// let mut v = Vocab::new();
    /// let traces = vec![
    ///     Trace::parse("a(X) b(X)", &mut v).unwrap(),
    ///     Trace::parse("a(X) c(X)", &mut v).unwrap(),
    /// ];
    /// let pta = Pta::build(&traces);
    /// assert_eq!(pta.node_count(), 4); // root, after-a, two leaves
    /// ```
    pub fn build(traces: &[Trace]) -> Pta {
        let mut pta = Pta {
            edges: vec![Vec::new()],
            accept_counts: vec![0],
        };
        for t in traces {
            let mut node = 0;
            for event in t.iter() {
                let pat = EventPat::exact(event);
                node = pta.step_or_insert(node, pat);
            }
            pta.accept_counts[node] += 1;
        }
        pta
    }

    fn step_or_insert(&mut self, node: usize, pat: EventPat) -> usize {
        if let Some(entry) = self.edges[node].iter_mut().find(|(p, _, _)| *p == pat) {
            entry.2 += 1;
            return entry.1;
        }
        let child = self.edges.len();
        self.edges.push(Vec::new());
        self.accept_counts.push(0);
        self.edges[node].push((pat, child, 1));
        child
    }

    /// Number of trie nodes.
    pub fn node_count(&self) -> usize {
        self.edges.len()
    }

    /// How many training traces end at `node`.
    pub fn accept_count(&self, node: usize) -> u64 {
        self.accept_counts[node]
    }

    /// Converts to the counted-automaton form used by the merging
    /// learners.
    pub fn to_counted(&self) -> CountedFa {
        let mut transitions = Vec::new();
        for (src, out) in self.edges.iter().enumerate() {
            for (pat, dst, count) in out {
                transitions.push((src, pat.clone(), *dst, *count));
            }
        }
        CountedFa::new(self.edges.len(), 0, transitions, self.accept_counts.clone())
    }

    /// The exact automaton: accepts precisely the training traces.
    pub fn to_fa(&self) -> Fa {
        self.to_counted().to_fa()
    }

    /// The number of distinct event patterns (alphabet size).
    pub fn alphabet_size(&self) -> usize {
        let mut seen: HashMap<&EventPat, ()> = HashMap::new();
        for out in &self.edges {
            for (pat, _, _) in out {
                seen.insert(pat, ());
            }
        }
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cable_trace::{Trace, Vocab};

    fn traces(texts: &[&str], v: &mut Vocab) -> Vec<Trace> {
        texts.iter().map(|t| Trace::parse(t, v).unwrap()).collect()
    }

    #[test]
    fn accepts_exactly_training_set() {
        let mut v = Vocab::new();
        let ts = traces(&["a(X) b(X)", "a(X) c(X)", "a(X)"], &mut v);
        let fa = Pta::build(&ts).to_fa();
        for t in &ts {
            assert!(fa.accepts(t));
        }
        let unseen = Trace::parse("a(X) b(X) b(X)", &mut v).unwrap();
        assert!(!fa.accepts(&unseen));
        let prefix = Trace::parse("b(X)", &mut v).unwrap();
        assert!(!fa.accepts(&prefix));
    }

    #[test]
    fn counts_accumulate() {
        let mut v = Vocab::new();
        let ts = traces(&["a(X) b(X)", "a(X) b(X)", "a(X)"], &mut v);
        let pta = Pta::build(&ts);
        // root --a(3)--> n1 --b(2)--> n2
        assert_eq!(pta.node_count(), 3);
        assert_eq!(pta.accept_count(1), 1);
        assert_eq!(pta.accept_count(2), 2);
        let counted = pta.to_counted();
        assert_eq!(counted.transition_count(), 2);
        assert_eq!(counted.total_out(0), 3);
    }

    #[test]
    fn empty_trace_accepts_at_root() {
        let mut v = Vocab::new();
        let ts = vec![Trace::empty(), Trace::parse("a(X)", &mut v).unwrap()];
        let pta = Pta::build(&ts);
        assert_eq!(pta.accept_count(0), 1);
        let fa = pta.to_fa();
        assert!(fa.accepts(&Trace::empty()));
    }

    #[test]
    fn alphabet_size_counts_distinct_events() {
        let mut v = Vocab::new();
        let ts = traces(&["a(X) b(X) a(X)", "b(X)"], &mut v);
        assert_eq!(Pta::build(&ts).alphabet_size(), 2);
        assert_eq!(Pta::build(&[]).alphabet_size(), 0);
    }
}
