//! The classical k-tails learner (Biermann & Feldman).
//!
//! Two states are merged when they admit exactly the same set of
//! accepting continuations of length ≤ `k`. Simpler and more aggressive
//! than sk-strings; provided as the alternative learner the paper's §6
//! alludes to when discussing other FA-learning algorithms.

use crate::counted::CountedFa;
use crate::pta::Pta;
use cable_fa::{EventPat, Fa};
use cable_trace::Trace;
use std::collections::HashSet;

/// Configuration of the k-tails learner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KTails {
    /// Maximum tail length compared.
    pub k: usize,
}

impl Default for KTails {
    /// `k = 2`, the customary default.
    fn default() -> Self {
        KTails { k: 2 }
    }
}

impl KTails {
    /// Learns an automaton from traces, returning the merged counted
    /// automaton.
    pub fn learn_counted(&self, traces: &[Trace]) -> CountedFa {
        let mut fa = Pta::build(traces).to_counted();
        'outer: loop {
            // Bucket states by their (canonicalised) tail sets; equal
            // tails merge. One pass per round, since merging renumbers.
            let n = fa.state_count();
            let mut buckets: std::collections::HashMap<Vec<(Vec<EventPat>, bool)>, usize> =
                std::collections::HashMap::new();
            for s in 0..n {
                let mut key: Vec<(Vec<EventPat>, bool)> =
                    tails(&fa, s, self.k).into_iter().collect();
                key.sort();
                if let Some(&other) = buckets.get(&key) {
                    fa = fa.merge(other, s);
                    continue 'outer;
                }
                buckets.insert(key, s);
            }
            break;
        }
        fa
    }

    /// Learns an automaton from traces.
    pub fn learn(&self, traces: &[Trace]) -> Fa {
        self.learn_counted(traces).to_fa()
    }
}

/// The set of accepting continuations of length ≤ `k` from `s`. A
/// continuation still "in progress" at depth `k` is recorded with a
/// truncation marker (`None` tail) so that states differing only past
/// depth `k` still compare equal, while a state with *no* continuation
/// differs from one with a long one.
fn tails(fa: &CountedFa, s: usize, k: usize) -> HashSet<(Vec<EventPat>, bool)> {
    let mut out = HashSet::new();
    collect_tails(fa, s, k, &mut Vec::new(), &mut out);
    out
}

fn collect_tails(
    fa: &CountedFa,
    s: usize,
    depth: usize,
    prefix: &mut Vec<EventPat>,
    out: &mut HashSet<(Vec<EventPat>, bool)>,
) {
    if fa.is_accept(s) {
        out.insert((prefix.clone(), true));
    }
    if depth == 0 {
        if fa.outgoing(s).next().is_some() {
            out.insert((prefix.clone(), false)); // truncated
        }
        return;
    }
    let next: Vec<(EventPat, usize)> = fa.outgoing(s).map(|(_, p, d, _)| (p.clone(), *d)).collect();
    for (pat, dst) in next {
        prefix.push(pat);
        collect_tails(fa, dst, depth - 1, prefix, out);
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cable_trace::{Trace, Vocab};

    fn traces(texts: &[&str], v: &mut Vocab) -> Vec<Trace> {
        texts.iter().map(|t| Trace::parse(t, v).unwrap()).collect()
    }

    #[test]
    fn merges_states_with_equal_tails() {
        let mut v = Vocab::new();
        let ts = traces(&["a(X) z(X)", "b(X) z(X)"], &mut v);
        let fa = KTails::default().learn(&ts);
        assert!(fa.state_count() <= 4);
        for t in &ts {
            assert!(fa.accepts(t));
        }
        assert!(!fa.accepts(&Trace::parse("z(X)", &mut v).unwrap()));
    }

    #[test]
    fn learns_loops_from_repetition() {
        let mut v = Vocab::new();
        let ts = traces(
            &[
                "open(X) close(X)",
                "open(X) read(X) close(X)",
                "open(X) read(X) read(X) close(X)",
                "open(X) read(X) read(X) read(X) close(X)",
            ],
            &mut v,
        );
        let fa = KTails { k: 1 }.learn(&ts);
        let more = Trace::parse(
            "open(X) read(X) read(X) read(X) read(X) read(X) close(X)",
            &mut v,
        )
        .unwrap();
        assert!(fa.accepts(&more), "k-tails should fold the read loop");
        for t in &ts {
            assert!(fa.accepts(t));
        }
    }

    #[test]
    fn k_zero_merges_by_acceptance_only() {
        let mut v = Vocab::new();
        let ts = traces(&["a(X) b(X)", "c(X)"], &mut v);
        let fa = KTails { k: 0 }.learn(&ts);
        // All interior states merge; all accepting states merge.
        assert!(fa.state_count() <= 2);
    }

    #[test]
    fn large_k_is_conservative() {
        let mut v = Vocab::new();
        let ts = traces(&["a(X) b(X)", "c(X) d(X)"], &mut v);
        let fa = KTails { k: 5 }.learn(&ts);
        assert!(!fa.accepts(&Trace::parse("a(X) d(X)", &mut v).unwrap()));
        assert!(!fa.accepts(&Trace::parse("c(X) b(X)", &mut v).unwrap()));
    }
}
