//! The sk-strings learner of Raman & Patrick.
//!
//! Starting from the PTA, repeatedly merge pairs of states whose
//! *stochastic k-strings* agree: the top `s`% most probable strings of
//! length ≤ `k` producible from one state must all be producible from the
//! other, and vice versa (the "AND" acceptance criterion). Merging stops
//! at a fixpoint.
//!
//! Larger `k` and `s` make finer distinctions (less merging, bigger FA);
//! the paper exploits exactly this dial when choosing reference FAs for
//! clustering (§2.1 step 1b).

use crate::counted::CountedFa;
use crate::pta::Pta;
use cable_fa::Fa;
use cable_trace::Trace;
use std::collections::HashSet;

/// Configuration of the sk-strings learner.
///
/// # Examples
///
/// ```
/// use cable_learn::SkStrings;
/// let fine = SkStrings { k: 3, s_percent: 100.0 };
/// let coarse = SkStrings::default(); // k = 2, s = 50%
/// assert!(fine.k > coarse.k);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkStrings {
    /// Maximum string length considered.
    pub k: usize,
    /// Probability mass (0–100] that the compared string sets must cover.
    pub s_percent: f64,
}

impl Default for SkStrings {
    /// `k = 2`, `s = 50%` — a mid-granularity setting that merges loop
    /// bodies but keeps call-order distinctions.
    fn default() -> Self {
        SkStrings {
            k: 2,
            s_percent: 50.0,
        }
    }
}

impl SkStrings {
    /// Learns an automaton from traces, returning the merged
    /// counted automaton (with frequencies, for coring).
    ///
    /// Agglomerative merging to a fixpoint: each round computes every
    /// state's `k`-string distribution with a shared memo, merges the
    /// first equivalent pair, and restarts (indices shift after
    /// renumbering).
    pub fn learn_counted(&self, traces: &[Trace]) -> CountedFa {
        let mut fa = Pta::build(traces).to_counted();
        while let Some((a, b)) = self.find_equivalent_pair(&fa) {
            fa = fa.merge(a, b);
        }
        fa
    }

    /// Learns an automaton from traces.
    pub fn learn(&self, traces: &[Trace]) -> Fa {
        self.learn_counted(traces).to_fa()
    }

    /// Finds a pair of states whose top-`s`% `k`-strings are mutually
    /// producible (the "AND" acceptance criterion). Prefers pairs with
    /// *equal* top sets (found via hash buckets); falls back to a full
    /// pairwise subset scan.
    fn find_equivalent_pair(&self, fa: &CountedFa) -> Option<(usize, usize)> {
        let n = fa.state_count();
        let dists = fa.k_strings_all(self.k);
        let keys: Vec<HashSet<&Vec<cable_fa::EventPat>>> =
            dists.iter().map(|d| d.keys().collect()).collect();
        let tops: Vec<Vec<Vec<cable_fa::EventPat>>> = (0..n)
            .map(|s| top_strings(&dists[s], self.s_percent))
            .collect();
        // Fast path: equal top sets imply equivalence.
        let mut buckets: std::collections::HashMap<Vec<Vec<cable_fa::EventPat>>, usize> =
            std::collections::HashMap::new();
        for (s, top) in tops.iter().enumerate() {
            let mut sorted = top.clone();
            sorted.sort();
            if let Some(&other) = buckets.get(&sorted) {
                return Some((other, s));
            }
            buckets.insert(sorted, s);
        }
        // Full scan with the asymmetric subset criterion.
        for a in 0..n {
            for b in (a + 1)..n {
                if tops[a].iter().all(|s| keys[b].contains(s))
                    && tops[b].iter().all(|s| keys[a].contains(s))
                {
                    return Some((a, b));
                }
            }
        }
        None
    }
}

/// The smallest probability-sorted prefix of the distribution covering
/// `s_percent`/100 of the mass.
fn top_strings(
    dist: &std::collections::HashMap<Vec<cable_fa::EventPat>, f64>,
    s_percent: f64,
) -> Vec<Vec<cable_fa::EventPat>> {
    let mut entries: Vec<(&Vec<cable_fa::EventPat>, f64)> =
        dist.iter().map(|(k, &v)| (k, v)).collect();
    entries.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("probabilities are not NaN")
            .then_with(|| a.0.cmp(b.0))
    });
    let threshold = s_percent / 100.0;
    let mut cum = 0.0;
    let mut out = Vec::new();
    for (string, p) in entries {
        out.push(string.clone());
        cum += p;
        if cum >= threshold {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cable_trace::{Trace, Vocab};

    fn traces(texts: &[&str], v: &mut Vocab) -> Vec<Trace> {
        texts.iter().map(|t| Trace::parse(t, v).unwrap()).collect()
    }

    #[test]
    fn learns_a_loop() {
        let mut v = Vocab::new();
        let ts = traces(
            &[
                "open(X) close(X)",
                "open(X) read(X) close(X)",
                "open(X) read(X) read(X) close(X)",
            ],
            &mut v,
        );
        let fa = SkStrings::default().learn(&ts);
        // Training traces still accepted.
        for t in &ts {
            assert!(fa.accepts(t), "training trace rejected");
        }
        // Generalisation: more reads.
        let more =
            Trace::parse("open(X) read(X) read(X) read(X) read(X) close(X)", &mut v).unwrap();
        assert!(fa.accepts(&more));
        // But not garbage.
        let garbage = Trace::parse("read(X) open(X)", &mut v).unwrap();
        assert!(!fa.accepts(&garbage));
        // And the FA is smaller than the PTA (7 nodes).
        assert!(fa.state_count() < 7);
    }

    #[test]
    fn full_s_and_large_k_learn_exactly_on_distinct_traces() {
        let mut v = Vocab::new();
        let ts = traces(&["a(X) b(X)", "c(X) d(X)"], &mut v);
        let fa = SkStrings {
            k: 4,
            s_percent: 100.0,
        }
        .learn(&ts);
        for t in &ts {
            assert!(fa.accepts(t));
        }
        // No cross-contamination between the two branches.
        assert!(!fa.accepts(&Trace::parse("a(X) d(X)", &mut v).unwrap()));
        assert!(!fa.accepts(&Trace::parse("c(X) b(X)", &mut v).unwrap()));
    }

    #[test]
    fn merges_identical_suffixes() {
        let mut v = Vocab::new();
        let ts = traces(&["a(X) z(X)", "b(X) z(X)"], &mut v);
        let fa = SkStrings {
            k: 2,
            s_percent: 100.0,
        }
        .learn(&ts);
        // The two post-a / post-b states have identical k-strings {z}, so
        // they merge: 4 states instead of the PTA's 5.
        assert!(fa.state_count() <= 4);
        for t in &ts {
            assert!(fa.accepts(t));
        }
    }

    #[test]
    fn empty_training_set() {
        let fa = SkStrings::default().learn(&[]);
        assert_eq!(fa.state_count(), 1);
        assert!(!fa.accepts(&Trace::empty()));
    }

    #[test]
    fn single_trace_stays_linear() {
        let mut v = Vocab::new();
        let ts = traces(&["a(X) b(X) c(X)"], &mut v);
        let fa = SkStrings::default().learn(&ts);
        assert!(fa.accepts(&ts[0]));
        assert!(!fa.accepts(&Trace::parse("a(X) b(X)", &mut v).unwrap()));
    }
}
