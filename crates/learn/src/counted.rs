//! Frequency-annotated automata and state merging.
//!
//! Both merging learners (sk-strings and k-tails) operate on a
//! [`CountedFa`]: a nondeterministic automaton whose transitions carry
//! traversal counts and whose states carry end-of-trace counts. Merging
//! two states renumbers the automaton, sums the counts of collapsed
//! parallel edges, and keeps nondeterminism (distinct destinations for
//! the same label stay distinct).

use cable_fa::{EventPat, Fa, FaBuilder, TransLabel};
use std::collections::HashMap;

/// A nondeterministic automaton with traversal frequencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountedFa {
    n_states: usize,
    start: usize,
    /// `(src, label, dst, count)`, deduplicated on `(src, label, dst)`.
    transitions: Vec<(usize, EventPat, usize, u64)>,
    /// Per-state end-of-trace counts; a state is accepting iff positive.
    accept_counts: Vec<u64>,
}

impl CountedFa {
    /// Creates a counted automaton.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or `accept_counts` has the
    /// wrong length.
    pub fn new(
        n_states: usize,
        start: usize,
        transitions: Vec<(usize, EventPat, usize, u64)>,
        accept_counts: Vec<u64>,
    ) -> Self {
        assert_eq!(accept_counts.len(), n_states, "accept_counts length");
        assert!(start < n_states, "start out of range");
        for (s, _, d, _) in &transitions {
            assert!(*s < n_states && *d < n_states, "transition out of range");
        }
        CountedFa {
            n_states,
            start,
            transitions,
            accept_counts,
        }
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.n_states
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// The start state.
    pub fn start(&self) -> usize {
        self.start
    }

    /// The transitions as `(src, label, dst, count)`.
    pub fn transitions(&self) -> &[(usize, EventPat, usize, u64)] {
        &self.transitions
    }

    /// End-of-trace count of a state.
    pub fn accept_count(&self, s: usize) -> u64 {
        self.accept_counts[s]
    }

    /// Tests whether a state is accepting.
    pub fn is_accept(&self, s: usize) -> bool {
        self.accept_counts[s] > 0
    }

    /// Total outgoing traversal count of a state, including end-of-trace
    /// stops. This is the denominator for transition probabilities.
    pub fn total_out(&self, s: usize) -> u64 {
        self.accept_counts[s]
            + self
                .transitions
                .iter()
                .filter(|(src, _, _, _)| *src == s)
                .map(|(_, _, _, c)| c)
                .sum::<u64>()
    }

    /// The outgoing transitions of a state.
    pub fn outgoing(&self, s: usize) -> impl Iterator<Item = &(usize, EventPat, usize, u64)> {
        self.transitions
            .iter()
            .filter(move |(src, _, _, _)| *src == s)
    }

    /// Merges two states (the lower index survives), collapsing parallel
    /// edges by summing their counts. Returns the renumbered automaton.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either is out of range.
    pub fn merge(&self, a: usize, b: usize) -> CountedFa {
        assert!(a != b, "cannot merge a state with itself");
        assert!(a < self.n_states && b < self.n_states, "state out of range");
        let (keep, drop) = if a < b { (a, b) } else { (b, a) };
        let remap = |s: usize| {
            if s == drop {
                keep
            } else if s > drop {
                s - 1
            } else {
                s
            }
        };
        let mut merged: HashMap<(usize, EventPat, usize), u64> = HashMap::new();
        let mut order: Vec<(usize, EventPat, usize)> = Vec::new();
        for (src, pat, dst, count) in &self.transitions {
            let key = (remap(*src), pat.clone(), remap(*dst));
            match merged.get_mut(&key) {
                Some(c) => *c += count,
                None => {
                    merged.insert(key.clone(), *count);
                    order.push(key);
                }
            }
        }
        let transitions = order
            .into_iter()
            .map(|key| {
                let count = merged[&key];
                (key.0, key.1, key.2, count)
            })
            .collect();
        let mut accept_counts = Vec::with_capacity(self.n_states - 1);
        for s in 0..self.n_states {
            if s == drop {
                continue;
            }
            let mut c = self.accept_counts[s];
            if s == keep {
                c += self.accept_counts[drop];
            }
            accept_counts.push(c);
        }
        CountedFa {
            n_states: self.n_states - 1,
            start: remap(self.start),
            transitions,
            accept_counts,
        }
    }

    /// Converts to a plain [`Fa`] (dropping counts).
    pub fn to_fa(&self) -> Fa {
        let mut b = FaBuilder::new();
        let states = b.states(self.n_states);
        b.start(states[self.start]);
        for (s, &count) in self.accept_counts.iter().enumerate() {
            if count > 0 {
                b.accept(states[s]);
            }
        }
        for (src, pat, dst, _) in &self.transitions {
            b.transition(states[*src], TransLabel::Pat(pat.clone()), states[*dst]);
        }
        b.build()
    }

    /// Converts to a plain [`Fa`], dropping transitions with traversal
    /// count below `min_count` and trimming dead states. This is the
    /// paper's "coring" (§6): the naive error-removal mechanism of the
    /// original Strauss.
    pub fn to_fa_cored(&self, min_count: u64) -> Fa {
        let mut b = FaBuilder::new();
        let states = b.states(self.n_states);
        b.start(states[self.start]);
        for (s, &count) in self.accept_counts.iter().enumerate() {
            if count > 0 {
                b.accept(states[s]);
            }
        }
        for (src, pat, dst, count) in &self.transitions {
            if *count >= min_count {
                b.transition(states[*src], TransLabel::Pat(pat.clone()), states[*dst]);
            }
        }
        b.build().trim()
    }

    /// The distribution of `k`-strings from state `s`: each key is a
    /// sequence of up to `k` labels, each value the probability of
    /// producing it (stopping early is allowed and contributes its stop
    /// probability to the shorter string).
    ///
    /// This is the "stochastic k-strings" quantity of the sk-strings
    /// method.
    pub fn k_strings(&self, s: usize, k: usize) -> HashMap<Vec<EventPat>, f64> {
        let mut memo: HashMap<(usize, usize), HashMap<Vec<EventPat>, f64>> = HashMap::new();
        self.k_strings_memo(s, k, &mut memo)
    }

    #[allow(clippy::map_entry)]
    fn k_strings_memo(
        &self,
        s: usize,
        k: usize,
        memo: &mut HashMap<(usize, usize), HashMap<Vec<EventPat>, f64>>,
    ) -> HashMap<Vec<EventPat>, f64> {
        if let Some(d) = memo.get(&(s, k)) {
            return d.clone();
        }
        let mut dist: HashMap<Vec<EventPat>, f64> = HashMap::new();
        let total = self.total_out(s);
        if total == 0 {
            // A dead state produces nothing; treat as stopping.
            dist.insert(Vec::new(), 1.0);
            memo.insert((s, k), dist.clone());
            return dist;
        }
        let stop_p = self.accept_counts[s] as f64 / total as f64;
        if stop_p > 0.0 {
            dist.insert(Vec::new(), stop_p);
        }
        if k > 0 {
            let outgoing: Vec<(EventPat, usize, u64)> = self
                .outgoing(s)
                .map(|(_, p, d, c)| (p.clone(), *d, *c))
                .collect();
            for (pat, dst, count) in outgoing {
                let p = count as f64 / total as f64;
                let sub = self.k_strings_memo(dst, k - 1, memo);
                for (string, sp) in sub {
                    let mut key = Vec::with_capacity(string.len() + 1);
                    key.push(pat.clone());
                    key.extend(string);
                    *dist.entry(key).or_insert(0.0) += p * sp;
                }
            }
        } else {
            // Truncated at depth k: the remaining mass goes to ε so that
            // distributions always sum to 1.
            *dist.entry(Vec::new()).or_insert(0.0) += 1.0 - stop_p;
        }
        memo.insert((s, k), dist.clone());
        dist
    }

    /// The `k`-string distributions of every state, computed with one
    /// shared memo table — much cheaper than per-state calls when a
    /// merging learner needs all of them each round.
    pub fn k_strings_all(&self, k: usize) -> Vec<HashMap<Vec<EventPat>, f64>> {
        let mut memo: HashMap<(usize, usize), HashMap<Vec<EventPat>, f64>> = HashMap::new();
        (0..self.n_states)
            .map(|s| self.k_strings_memo(s, k, &mut memo))
            .collect()
    }

    /// The top strings of the `k`-string distribution: the smallest
    /// prefix of the probability-sorted strings whose cumulative mass
    /// reaches `s_percent`/100.
    pub fn top_k_strings(&self, state: usize, k: usize, s_percent: f64) -> Vec<Vec<EventPat>> {
        let dist = self.k_strings(state, k);
        let mut entries: Vec<(Vec<EventPat>, f64)> = dist.into_iter().collect();
        entries.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("probabilities are not NaN")
                .then_with(|| a.0.cmp(&b.0))
        });
        let threshold = s_percent / 100.0;
        let mut cum = 0.0;
        let mut out = Vec::new();
        for (string, p) in entries {
            out.push(string);
            cum += p;
            if cum >= threshold {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pta::Pta;
    use cable_trace::{Trace, Vocab};

    fn counted(texts: &[&str], v: &mut Vocab) -> CountedFa {
        let ts: Vec<Trace> = texts.iter().map(|t| Trace::parse(t, v).unwrap()).collect();
        Pta::build(&ts).to_counted()
    }

    #[test]
    fn merge_sums_counts_and_collapses_edges() {
        let mut v = Vocab::new();
        // root -a-> 1 -b-> 2 ; root -c-> 3 -b-> 4
        let c = counted(&["a(X) b(X)", "c(X) b(X)"], &mut v);
        assert_eq!(c.state_count(), 5);
        // Merge states 1 and 3 (after-a and after-c).
        let m = c.merge(1, 3);
        assert_eq!(m.state_count(), 4);
        // Two b-edges from merged state remain separate (different dsts).
        assert_eq!(m.outgoing(1).count(), 2);
        // Now merge the two leaves: b-edges collapse, counts sum.
        let leaves: Vec<usize> = (0..m.state_count()).filter(|&s| m.is_accept(s)).collect();
        let m2 = m.merge(leaves[0], leaves[1]);
        assert_eq!(m2.outgoing(1).count(), 1);
        let (_, _, _, count) = m2.outgoing(1).next().unwrap();
        assert_eq!(*count, 2);
        assert_eq!(m2.accept_count(leaves[0]), 2);
    }

    #[test]
    fn merge_preserves_language_union() {
        let mut v = Vocab::new();
        let c = counted(&["a(X) b(X)", "c(X) b(X)"], &mut v);
        let m = c.merge(1, 3);
        let fa = m.to_fa();
        for text in ["a(X) b(X)", "c(X) b(X)"] {
            assert!(fa.accepts(&Trace::parse(text, &mut v).unwrap()));
        }
    }

    #[test]
    fn k_strings_distribution_sums_to_one() {
        let mut v = Vocab::new();
        let c = counted(&["a(X) b(X)", "a(X) c(X)", "a(X)"], &mut v);
        for s in 0..c.state_count() {
            for k in 0..4 {
                let total: f64 = c.k_strings(s, k).values().sum();
                assert!((total - 1.0).abs() < 1e-9, "state {s} k {k}: {total}");
            }
        }
    }

    #[test]
    fn k_strings_probabilities() {
        let mut v = Vocab::new();
        let c = counted(&["a(X) b(X)", "a(X) b(X)", "a(X) c(X)", "a(X)"], &mut v);
        // From the after-a state (1): stop 1/4, b 2/4, c 1/4.
        let dist = c.k_strings(1, 1);
        let b = EventPat::exact(&Trace::parse("b(X)", &mut v).unwrap().events()[0]);
        let c_pat = EventPat::exact(&Trace::parse("c(X)", &mut v).unwrap().events()[0]);
        assert!((dist[&vec![b.clone()]] - 0.5).abs() < 1e-9);
        assert!((dist[&vec![c_pat]] - 0.25).abs() < 1e-9);
        assert!((dist[&Vec::new()] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn top_k_strings_takes_probability_prefix() {
        let mut v = Vocab::new();
        let c = counted(&["a(X) b(X)", "a(X) b(X)", "a(X) c(X)", "a(X)"], &mut v);
        // From state 1, 50% mass is covered by {b} alone.
        let top = c.top_k_strings(1, 1, 50.0);
        assert_eq!(top.len(), 1);
        // 100% needs all three strings.
        let all = c.top_k_strings(1, 1, 100.0);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn coring_drops_rare_transitions() {
        let mut v = Vocab::new();
        let c = counted(&["a(X) b(X)", "a(X) b(X)", "a(X) b(X)", "c(X)"], &mut v);
        let cored = c.to_fa_cored(2);
        assert!(cored.accepts(&Trace::parse("a(X) b(X)", &mut v).unwrap()));
        assert!(!cored.accepts(&Trace::parse("c(X)", &mut v).unwrap()));
    }

    #[test]
    #[should_panic(expected = "cannot merge a state with itself")]
    fn merge_rejects_self() {
        let mut v = Vocab::new();
        let c = counted(&["a(X)"], &mut v);
        let _ = c.merge(0, 0);
    }
}
