//! Automaton learners.
//!
//! Cable and Strauss both need to *infer* an FA from a set of traces:
//!
//! * Strauss's back end learns the specification FA from scenario traces;
//! * Cable's **Show FA** summary displays a learned FA for the traces of a
//!   concept (§4.1: "Cable uses Raman and Patrick's sk-strings learner").
//!
//! This crate provides:
//!
//! * [`Pta`] — the prefix-tree acceptor with traversal frequencies, which
//!   accepts exactly the training traces;
//! * [`SkStrings`] — the sk-strings learner: states of the PTA are merged
//!   when their top-`s`% most probable `k`-strings agree, generalising
//!   the language beyond the training set;
//! * [`KTails`] — the classical k-tails learner, a simpler alternative
//!   (two states merge when they admit exactly the same continuations up
//!   to length `k`).
//!
//! All learners consume traces whose events are matched *exactly* (each
//! distinct event becomes one alphabet letter via
//! [`cable_fa::EventPat::exact`]).
//!
//! # Examples
//!
//! ```
//! use cable_learn::SkStrings;
//! use cable_trace::{Trace, Vocab};
//!
//! let mut v = Vocab::new();
//! let traces: Vec<Trace> = [
//!     "open(X) close(X)",
//!     "open(X) read(X) close(X)",
//!     "open(X) read(X) read(X) close(X)",
//! ]
//! .iter()
//! .map(|t| Trace::parse(t, &mut v).unwrap())
//! .collect();
//! let fa = SkStrings::default().learn(&traces);
//! // The learner generalises the read-loop:
//! let longer = Trace::parse("open(X) read(X) read(X) read(X) close(X)", &mut v).unwrap();
//! assert!(fa.accepts(&longer));
//! ```

pub mod counted;
pub mod ktails;
pub mod pta;
pub mod sk;

pub use counted::CountedFa;
pub use ktails::KTails;
pub use pta::Pta;
pub use sk::SkStrings;
