//! Randomized tests for the automaton learners: whatever the training
//! set, a learner must at least accept it, and merging must only ever
//! grow the language.
//!
//! Each test runs a fixed number of seeded cases, so failures reproduce
//! exactly (`seeded(case)` pins the generator).

use cable_learn::{KTails, Pta, SkStrings};
use cable_trace::{Event, Trace, Var, Vocab};
use cable_util::rng::{seeded, Rng, SmallRng};

fn traces_of(raw: &[Vec<usize>], vocab: &mut Vocab) -> Vec<Trace> {
    raw.iter()
        .map(|ops| {
            Trace::new(
                ops.iter()
                    .map(|&i| Event::on_var(vocab.op(&format!("op{i}")), Var(0)))
                    .collect(),
            )
        })
        .collect()
}

fn gen_ops(rng: &mut SmallRng) -> Vec<usize> {
    let len = rng.gen_range(0usize..6);
    (0..len).map(|_| rng.gen_range(0usize..4)).collect()
}

fn gen_training_set(rng: &mut SmallRng) -> Vec<Vec<usize>> {
    let n = rng.gen_range(1usize..10);
    (0..n).map(|_| gen_ops(rng)).collect()
}

#[test]
fn pta_accepts_exactly_the_training_set() {
    for case in 0..128u64 {
        let mut rng = seeded(case);
        let raw = gen_training_set(&mut rng);
        let probe = gen_ops(&mut rng);
        let mut vocab = Vocab::new();
        let traces = traces_of(&raw, &mut vocab);
        let fa = Pta::build(&traces).to_fa();
        for t in &traces {
            assert!(fa.accepts(t), "case {case}");
        }
        let probe_trace = traces_of(std::slice::from_ref(&probe), &mut vocab).remove(0);
        assert_eq!(
            fa.accepts(&probe_trace),
            raw.contains(&probe),
            "case {case}"
        );
    }
}

#[test]
fn sk_strings_accepts_training_set() {
    for case in 0..128u64 {
        let mut rng = seeded(case);
        let raw = gen_training_set(&mut rng);
        let mut vocab = Vocab::new();
        let traces = traces_of(&raw, &mut vocab);
        for (k, s) in [(1, 50.0), (2, 50.0), (2, 100.0), (3, 100.0)] {
            let fa = SkStrings { k, s_percent: s }.learn(&traces);
            for t in &traces {
                assert!(fa.accepts(t), "case {case}: k={k} s={s} rejects {raw:?}");
            }
        }
    }
}

#[test]
fn k_tails_accepts_training_set() {
    for case in 0..128u64 {
        let mut rng = seeded(case);
        let raw = gen_training_set(&mut rng);
        let mut vocab = Vocab::new();
        let traces = traces_of(&raw, &mut vocab);
        for k in 0..=3 {
            let fa = KTails { k }.learn(&traces);
            for t in &traces {
                assert!(fa.accepts(t), "case {case}: k={k} rejects {raw:?}");
            }
        }
    }
}

#[test]
fn learners_never_grow_beyond_the_pta() {
    for case in 0..128u64 {
        let mut rng = seeded(case);
        let raw = gen_training_set(&mut rng);
        // Merging only shrinks the state count.
        let mut vocab = Vocab::new();
        let traces = traces_of(&raw, &mut vocab);
        let pta_states = Pta::build(&traces).node_count();
        assert!(
            SkStrings::default().learn(&traces).state_count() <= pta_states,
            "case {case}"
        );
        assert!(
            KTails::default().learn(&traces).state_count() <= pta_states,
            "case {case}"
        );
    }
}

#[test]
fn merge_preserves_training_acceptance() {
    for case in 0..128u64 {
        let mut rng = seeded(case);
        let raw = gen_training_set(&mut rng);
        // Any single merge of PTA states keeps the training set accepted
        // (merging only adds paths).
        let mut vocab = Vocab::new();
        let traces = traces_of(&raw, &mut vocab);
        let counted = Pta::build(&traces).to_counted();
        let n = counted.state_count();
        if n < 2 {
            continue;
        }
        let (a, b) = (rng.gen_range(0usize..20) % n, rng.gen_range(0usize..20) % n);
        if a == b {
            continue;
        }
        let merged = counted.merge(a, b).to_fa();
        for t in &traces {
            assert!(merged.accepts(t), "case {case}");
        }
    }
}

#[test]
fn counted_totals_are_consistent() {
    for case in 0..128u64 {
        let mut rng = seeded(case);
        let raw = gen_training_set(&mut rng);
        let mut vocab = Vocab::new();
        let traces = traces_of(&raw, &mut vocab);
        let counted = Pta::build(&traces).to_counted();
        // Root outflow equals the number of training traces.
        assert_eq!(counted.total_out(0) as usize, traces.len(), "case {case}");
        // Accept counts across states sum to the number of traces.
        let accepted: u64 = (0..counted.state_count())
            .map(|s| counted.accept_count(s))
            .sum();
        assert_eq!(accepted as usize, traces.len(), "case {case}");
    }
}
