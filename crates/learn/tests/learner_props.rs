//! Property tests for the automaton learners: whatever the training set,
//! a learner must at least accept it, and merging must only ever grow
//! the language.

use cable_learn::{KTails, Pta, SkStrings};
use cable_trace::{Event, Trace, Var, Vocab};
use proptest::prelude::*;

fn traces_of(raw: &[Vec<usize>], vocab: &mut Vocab) -> Vec<Trace> {
    raw.iter()
        .map(|ops| {
            Trace::new(
                ops.iter()
                    .map(|&i| Event::on_var(vocab.op(&format!("op{i}")), Var(0)))
                    .collect(),
            )
        })
        .collect()
}

fn arb_training_set() -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(prop::collection::vec(0usize..4, 0..6), 1..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pta_accepts_exactly_the_training_set(raw in arb_training_set(), probe in prop::collection::vec(0usize..4, 0..6)) {
        let mut vocab = Vocab::new();
        let traces = traces_of(&raw, &mut vocab);
        let fa = Pta::build(&traces).to_fa();
        for t in &traces {
            prop_assert!(fa.accepts(t));
        }
        let probe_trace = traces_of(std::slice::from_ref(&probe), &mut vocab).remove(0);
        prop_assert_eq!(fa.accepts(&probe_trace), raw.contains(&probe));
    }

    #[test]
    fn sk_strings_accepts_training_set(raw in arb_training_set()) {
        let mut vocab = Vocab::new();
        let traces = traces_of(&raw, &mut vocab);
        for (k, s) in [(1, 50.0), (2, 50.0), (2, 100.0), (3, 100.0)] {
            let fa = SkStrings { k, s_percent: s }.learn(&traces);
            for t in &traces {
                prop_assert!(fa.accepts(t), "k={k} s={s} rejects {:?}", raw);
            }
        }
    }

    #[test]
    fn k_tails_accepts_training_set(raw in arb_training_set()) {
        let mut vocab = Vocab::new();
        let traces = traces_of(&raw, &mut vocab);
        for k in 0..=3 {
            let fa = KTails { k }.learn(&traces);
            for t in &traces {
                prop_assert!(fa.accepts(t), "k={k} rejects {:?}", raw);
            }
        }
    }

    #[test]
    fn learners_never_grow_beyond_the_pta(raw in arb_training_set()) {
        // Merging only shrinks the state count.
        let mut vocab = Vocab::new();
        let traces = traces_of(&raw, &mut vocab);
        let pta_states = Pta::build(&traces).node_count();
        prop_assert!(SkStrings::default().learn(&traces).state_count() <= pta_states);
        prop_assert!(KTails::default().learn(&traces).state_count() <= pta_states);
    }

    #[test]
    fn merge_preserves_training_acceptance(raw in arb_training_set(), a in 0usize..20, b in 0usize..20) {
        // Any single merge of PTA states keeps the training set accepted
        // (merging only adds paths).
        let mut vocab = Vocab::new();
        let traces = traces_of(&raw, &mut vocab);
        let counted = Pta::build(&traces).to_counted();
        let n = counted.state_count();
        prop_assume!(n >= 2);
        let (a, b) = (a % n, b % n);
        prop_assume!(a != b);
        let merged = counted.merge(a, b).to_fa();
        for t in &traces {
            prop_assert!(merged.accepts(t));
        }
    }

    #[test]
    fn counted_totals_are_consistent(raw in arb_training_set()) {
        let mut vocab = Vocab::new();
        let traces = traces_of(&raw, &mut vocab);
        let counted = Pta::build(&traces).to_counted();
        // Root outflow equals the number of training traces.
        prop_assert_eq!(counted.total_out(0) as usize, traces.len());
        // Accept counts across states sum to the number of traces.
        let accepted: u64 = (0..counted.state_count())
            .map(|s| counted.accept_count(s))
            .sum();
        prop_assert_eq!(accepted as usize, traces.len());
    }
}
