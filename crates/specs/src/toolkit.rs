//! X Toolkit Intrinsics protocols: memory, timeouts, inputs, selections,
//! and table parsing.

use crate::{noise_ops, SpecDef};
use cable_workload::shape::{ScenarioShape, ShapeMix};
use cable_workload::{ProtocolModel, WorkloadParams};

/// `XtFree`: toolkit allocations are freed exactly once. The wide variety
/// of realloc/use interleavings makes this the specification with by far
/// the most unique scenario classes — the paper's headline case (28 Cable
/// decisions vs 224 by hand).
pub fn xt_free() -> SpecDef {
    let ground_truth = "\
start s0
accept s2
s0 -> s1 : XtMalloc(X)
s0 -> s1 : XtCalloc(X)
s1 -> s1 : XtRealloc(X)
s1 -> s1 : XtSetValues(X)
s1 -> s2 : XtFree(X)
";
    SpecDef {
        uninteresting_atoms: Vec::new(),
        model: ProtocolModel {
            name: "XtFree".into(),
            description: "toolkit allocations (XtMalloc/XtCalloc) are freed exactly once".into(),
            ground_truth_text: ground_truth.into(),
            seed_ops: vec!["XtMalloc".into(), "XtCalloc".into()],
            correct: ShapeMix::new(vec![
                (
                    5.0,
                    ScenarioShape::with_loop(
                        &["XtMalloc"],
                        &["XtRealloc", "XtSetValues"],
                        4.0,
                        &["XtFree"],
                    ),
                ),
                (
                    2.0,
                    ScenarioShape::with_loop(
                        &["XtCalloc"],
                        &["XtRealloc", "XtSetValues"],
                        3.0,
                        &["XtFree"],
                    ),
                ),
                (1.0, ScenarioShape::fixed(&["XtMalloc", "XtFree"])),
            ]),
            erroneous: ShapeMix::new(vec![
                // Double free.
                (
                    2.0,
                    ScenarioShape::with_loop(
                        &["XtMalloc"],
                        &["XtRealloc"],
                        1.0,
                        &["XtFree", "XtFree"],
                    ),
                ),
                // Leak.
                (
                    2.0,
                    ScenarioShape::with_loop(
                        &["XtMalloc"],
                        &["XtRealloc", "XtSetValues"],
                        2.0,
                        &[],
                    ),
                ),
                // Use after free.
                (
                    1.0,
                    ScenarioShape::fixed(&["XtMalloc", "XtFree", "XtSetValues"]),
                ),
            ]),
            noise_ops: noise_ops(),
        },
        params: WorkloadParams {
            programs: 72,
            objects_per_program: (2, 8),
            error_rate: 0.15,
            noise_per_object: 0.5,
            seed: 0,
        },
    }
}

/// `RmvTimeOut`: a timeout is removed only while still pending — removing
/// one whose callback already fired is the race condition the paper's
/// corrected specifications caught.
pub fn rmv_time_out() -> SpecDef {
    let ground_truth = "\
start s0
accept s2
s0 -> s1 : XtAppAddTimeOut(X)
s1 -> s2 : TimerCallback(X)
s1 -> s2 : XtRemoveTimeOut(X)
";
    SpecDef {
        uninteresting_atoms: Vec::new(),
        model: ProtocolModel {
            name: "RmvTimeOut".into(),
            description: "a timeout either fires or is removed, never both (race)".into(),
            ground_truth_text: ground_truth.into(),
            seed_ops: vec!["XtAppAddTimeOut".into()],
            correct: ShapeMix::new(vec![
                (
                    3.0,
                    ScenarioShape::fixed(&["XtAppAddTimeOut", "TimerCallback"]),
                ),
                (
                    1.0,
                    ScenarioShape::fixed(&["XtAppAddTimeOut", "XtRemoveTimeOut"]),
                ),
            ]),
            erroneous: ShapeMix::new(vec![
                // The race: remove after the callback fired.
                (
                    2.0,
                    ScenarioShape::fixed(&["XtAppAddTimeOut", "TimerCallback", "XtRemoveTimeOut"]),
                ),
                // Pending timeout never handled.
                (1.0, ScenarioShape::fixed(&["XtAppAddTimeOut"])),
            ]),
            noise_ops: noise_ops(),
        },
        params: WorkloadParams {
            programs: 72,
            objects_per_program: (1, 3),
            error_rate: 0.12,
            noise_per_object: 0.5,
            seed: 0,
        },
    }
}

/// `XtAppAddInput`: an input source delivers callbacks only while
/// registered and is eventually removed.
pub fn xt_app_add_input() -> SpecDef {
    let ground_truth = "\
start s0
accept s2
s0 -> s1 : XtAppAddInput(X)
s1 -> s1 : InputCallback(X)
s1 -> s2 : XtRemoveInput(X)
";
    SpecDef {
        uninteresting_atoms: Vec::new(),
        model: ProtocolModel {
            name: "XtAppAddInput".into(),
            description: "an input source is removed after its last callback".into(),
            ground_truth_text: ground_truth.into(),
            seed_ops: vec!["XtAppAddInput".into()],
            correct: ShapeMix::new(vec![
                (
                    3.0,
                    ScenarioShape::with_loop(
                        &["XtAppAddInput"],
                        &["InputCallback"],
                        2.0,
                        &["XtRemoveInput"],
                    ),
                ),
                (
                    1.0,
                    ScenarioShape::fixed(&["XtAppAddInput", "XtRemoveInput"]),
                ),
            ]),
            erroneous: ShapeMix::new(vec![
                // Callback after removal (race).
                (
                    2.0,
                    ScenarioShape::fixed(&["XtAppAddInput", "XtRemoveInput", "InputCallback"]),
                ),
                // Source leak.
                (
                    1.0,
                    ScenarioShape::fixed(&["XtAppAddInput", "InputCallback"]),
                ),
            ]),
            noise_ops: noise_ops(),
        },
        params: WorkloadParams {
            programs: 72,
            objects_per_program: (1, 3),
            error_rate: 0.15,
            noise_per_object: 0.5,
            seed: 0,
        },
    }
}

/// `XtOwnSel`: a selection owner converts requests while it owns the
/// selection and stops after disowning or losing it.
pub fn xt_own_selection() -> SpecDef {
    let ground_truth = "\
start s0
accept s2
s0 -> s1 : XtOwnSelection
s1 -> s1 : ConvertCallback
s1 -> s2 : XtDisownSelection
s1 -> s2 : LoseSelectionCallback
";
    SpecDef {
        uninteresting_atoms: vec!["CUT_BUFFER0".into()],
        model: ProtocolModel {
            name: "XtOwnSel".into(),
            description: "a selection owner converts only while owning; ownership ends by \
                          disown or loss"
                .into(),
            ground_truth_text: ground_truth.into(),
            seed_ops: vec!["XtOwnSelection".into()],
            correct: ShapeMix::new(vec![
                (
                    2.0,
                    ScenarioShape::with_loop(
                        &["XtOwnSelection:'PRIMARY"],
                        &["ConvertCallback:'PRIMARY"],
                        1.5,
                        &["XtDisownSelection:'PRIMARY"],
                    ),
                ),
                (
                    1.0,
                    ScenarioShape::fixed(&[
                        "XtOwnSelection:'CLIPBOARD",
                        "LoseSelectionCallback:'CLIPBOARD",
                    ]),
                ),
                // The uninteresting selection value, removed pre-debugging.
                (
                    1.0,
                    ScenarioShape::fixed(&[
                        "XtOwnSelection:'CUT_BUFFER0",
                        "XtDisownSelection:'CUT_BUFFER0",
                    ]),
                ),
            ]),
            erroneous: ShapeMix::new(vec![
                // Disowning a selection already lost (race).
                (
                    2.0,
                    ScenarioShape::fixed(&[
                        "XtOwnSelection:'PRIMARY",
                        "LoseSelectionCallback:'PRIMARY",
                        "XtDisownSelection:'PRIMARY",
                    ]),
                ),
                // Converting after disown.
                (
                    1.0,
                    ScenarioShape::fixed(&[
                        "XtOwnSelection:'PRIMARY",
                        "XtDisownSelection:'PRIMARY",
                        "ConvertCallback:'PRIMARY",
                    ]),
                ),
                // Ownership leak.
                (
                    1.0,
                    ScenarioShape::fixed(&[
                        "XtOwnSelection:'CLIPBOARD",
                        "ConvertCallback:'CLIPBOARD",
                    ]),
                ),
            ]),
            noise_ops: noise_ops(),
        },
        params: WorkloadParams {
            programs: 72,
            objects_per_program: (1, 2),
            error_rate: 0.15,
            noise_per_object: 0.5,
            seed: 0,
        },
    }
}

/// `PrsTransTbl`: a parsed translation table is installed at least once
/// (an unused parse is wasted work — one of the paper's performance
/// bugs).
pub fn prs_trans_tbl() -> SpecDef {
    let ground_truth = "\
start s0
accept s2
s0 -> s1 : XtParseTranslationTable(X)
s1 -> s2 : XtAugmentTranslations(X)
s1 -> s2 : XtOverrideTranslations(X)
s2 -> s2 : XtAugmentTranslations(X)
s2 -> s2 : XtOverrideTranslations(X)
";
    SpecDef {
        uninteresting_atoms: Vec::new(),
        model: ProtocolModel {
            name: "PrsTransTbl".into(),
            description: "a parsed translation table is installed at least once".into(),
            ground_truth_text: ground_truth.into(),
            seed_ops: vec!["XtParseTranslationTable".into()],
            correct: ShapeMix::new(vec![
                (
                    3.0,
                    ScenarioShape::with_loop(
                        &["XtParseTranslationTable", "XtAugmentTranslations"],
                        &["XtAugmentTranslations", "XtOverrideTranslations"],
                        0.7,
                        &[],
                    ),
                ),
                (
                    1.0,
                    ScenarioShape::fixed(&["XtParseTranslationTable", "XtOverrideTranslations"]),
                ),
            ]),
            erroneous: ShapeMix::new(vec![
                // Parsed but never installed: wasted parse.
                (1.0, ScenarioShape::fixed(&["XtParseTranslationTable"])),
            ]),
            noise_ops: noise_ops(),
        },
        params: WorkloadParams {
            programs: 48,
            objects_per_program: (1, 2),
            error_rate: 0.1,
            noise_per_object: 0.5,
            seed: 0,
        },
    }
}

/// `PrsAccelTbl`: a parsed accelerator table is installed at least once.
pub fn prs_accel_tbl() -> SpecDef {
    let ground_truth = "\
start s0
accept s2
s0 -> s1 : XtParseAcceleratorTable(X)
s1 -> s2 : XtInstallAccelerators(X)
s1 -> s2 : XtInstallAllAccelerators(X)
s2 -> s2 : XtInstallAccelerators(X)
s2 -> s2 : XtInstallAllAccelerators(X)
";
    SpecDef {
        uninteresting_atoms: Vec::new(),
        model: ProtocolModel {
            name: "PrsAccelTbl".into(),
            description: "a parsed accelerator table is installed at least once".into(),
            ground_truth_text: ground_truth.into(),
            seed_ops: vec!["XtParseAcceleratorTable".into()],
            correct: ShapeMix::new(vec![
                (
                    2.0,
                    ScenarioShape::with_loop(
                        &["XtParseAcceleratorTable", "XtInstallAccelerators"],
                        &["XtInstallAccelerators"],
                        0.5,
                        &[],
                    ),
                ),
                (
                    1.0,
                    ScenarioShape::fixed(&["XtParseAcceleratorTable", "XtInstallAllAccelerators"]),
                ),
            ]),
            erroneous: ShapeMix::new(vec![
                // Parsed but never installed.
                (1.0, ScenarioShape::fixed(&["XtParseAcceleratorTable"])),
            ]),
            noise_ops: noise_ops(),
        },
        params: WorkloadParams {
            programs: 48,
            objects_per_program: (1, 2),
            error_rate: 0.1,
            noise_per_object: 0.5,
            seed: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use cable_trace::{Trace, Vocab};

    #[test]
    fn timeout_race_is_rejected() {
        let spec = super::rmv_time_out();
        let mut v = Vocab::new();
        let fa = spec.ground_truth(&mut v);
        let race = Trace::parse(
            "XtAppAddTimeOut(X) TimerCallback(X) XtRemoveTimeOut(X)",
            &mut v,
        )
        .unwrap();
        assert!(!fa.accepts(&race));
    }

    #[test]
    fn double_free_is_rejected() {
        let spec = super::xt_free();
        let mut v = Vocab::new();
        let fa = spec.ground_truth(&mut v);
        let df = Trace::parse("XtMalloc(X) XtFree(X) XtFree(X)", &mut v).unwrap();
        assert!(!fa.accepts(&df));
    }
}
