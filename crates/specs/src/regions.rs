//! Region (clip-mask) protocols, including the paper's hardest case.

use crate::{noise_ops, SpecDef};
use cable_workload::shape::{ScenarioShape, ShapeMix};
use cable_workload::{ProtocolModel, WorkloadParams};

/// `RegionsAlloc`: every created region is eventually destroyed.
pub fn regions_alloc() -> SpecDef {
    let ground_truth = "\
start s0
accept s2
s0 -> s1 : XCreateRegion(X)
s1 -> s1 : XUnionRegion(X)
s1 -> s1 : XIntersectRegion(X)
s1 -> s2 : XDestroyRegion(X)
";
    SpecDef {
        uninteresting_atoms: Vec::new(),
        model: ProtocolModel {
            name: "RegionsAlloc".into(),
            description: "every XCreateRegion is matched by XDestroyRegion".into(),
            ground_truth_text: ground_truth.into(),
            seed_ops: vec!["XCreateRegion".into()],
            correct: ShapeMix::new(vec![
                (
                    3.0,
                    ScenarioShape::with_loop(
                        &["XCreateRegion"],
                        &["XUnionRegion", "XIntersectRegion"],
                        1.2,
                        &["XDestroyRegion"],
                    ),
                ),
                (
                    1.0,
                    ScenarioShape::fixed(&["XCreateRegion", "XDestroyRegion"]),
                ),
            ]),
            erroneous: ShapeMix::new(vec![
                // Region leak.
                (
                    2.0,
                    ScenarioShape::fixed(&["XCreateRegion", "XUnionRegion"]),
                ),
                (1.0, ScenarioShape::fixed(&["XCreateRegion"])),
            ]),
            noise_ops: noise_ops(),
        },
        params: WorkloadParams {
            programs: 72,
            objects_per_program: (1, 4),
            error_rate: 0.15,
            noise_per_object: 0.5,
            seed: 0,
        },
    }
}

/// `RegionsBig`: the full region algebra — the paper's hardest
/// specification to debug ("RegionsBig was much easier to debug with
/// Cable than by hand, but still required 149 Cable operations"). The
/// wide operation alphabet and long loop bodies produce many distinct
/// scenario classes.
pub fn regions_big() -> SpecDef {
    let ground_truth = "\
start s0
accept s2
s0 -> s1 : XCreateRegion(X)
s0 -> s1 : XPolygonRegion(X)
s1 -> s1 : XUnionRegion(X)
s1 -> s1 : XIntersectRegion(X)
s1 -> s1 : XSubtractRegion(X)
s1 -> s1 : XXorRegion(X)
s1 -> s1 : XOffsetRegion(X)
s1 -> s1 : XShrinkRegion(X)
s1 -> s1 : XClipBox(X)
s1 -> s1 : XEmptyRegion(X)
s1 -> s1 : XPointInRegion(X)
s1 -> s2 : XDestroyRegion(X)
";
    SpecDef {
        uninteresting_atoms: Vec::new(),
        model: ProtocolModel {
            name: "RegionsBig".into(),
            description: "the full region algebra: regions are created (or built from \
                          polygons), operated on, and destroyed"
                .into(),
            ground_truth_text: ground_truth.into(),
            seed_ops: vec!["XCreateRegion".into(), "XPolygonRegion".into()],
            correct: ShapeMix::new(vec![
                (
                    4.0,
                    ScenarioShape::with_loop(
                        &["XCreateRegion"],
                        &[
                            "XUnionRegion",
                            "XIntersectRegion",
                            "XSubtractRegion",
                            "XXorRegion",
                            "XOffsetRegion",
                            "XShrinkRegion",
                            "XClipBox",
                            "XEmptyRegion",
                            "XPointInRegion",
                        ],
                        3.0,
                        &["XDestroyRegion"],
                    ),
                ),
                (
                    2.0,
                    ScenarioShape::with_loop(
                        &["XPolygonRegion"],
                        &[
                            "XUnionRegion",
                            "XOffsetRegion",
                            "XPointInRegion",
                            "XClipBox",
                        ],
                        2.0,
                        &["XDestroyRegion"],
                    ),
                ),
                (
                    1.0,
                    ScenarioShape::fixed(&["XCreateRegion", "XDestroyRegion"]),
                ),
            ]),
            erroneous: ShapeMix::new(vec![
                // Leaks of either creation form.
                (
                    2.0,
                    ScenarioShape::with_loop(
                        &["XCreateRegion"],
                        &["XUnionRegion", "XXorRegion", "XShrinkRegion"],
                        2.0,
                        &[],
                    ),
                ),
                (1.0, ScenarioShape::fixed(&["XPolygonRegion", "XClipBox"])),
                // Use after destroy.
                (
                    1.0,
                    ScenarioShape::fixed(&["XCreateRegion", "XDestroyRegion", "XUnionRegion"]),
                ),
            ]),
            noise_ops: noise_ops(),
        },
        params: WorkloadParams {
            programs: 72,
            objects_per_program: (2, 8),
            error_rate: 0.2,
            noise_per_object: 0.5,
            seed: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use cable_trace::{Trace, Vocab};

    #[test]
    fn regions_big_has_a_wide_alphabet() {
        let spec = super::regions_big();
        let mut v = Vocab::new();
        let fa = spec.ground_truth(&mut v);
        assert!(fa.transition_count() >= 12);
    }

    #[test]
    fn leaked_region_rejected() {
        let spec = super::regions_alloc();
        let mut v = Vocab::new();
        let fa = spec.ground_truth(&mut v);
        let leak = Trace::parse("XCreateRegion(X) XUnionRegion(X)", &mut v).unwrap();
        assert!(!fa.accepts(&leak));
    }
}
