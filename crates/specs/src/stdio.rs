//! The stdio running example (Figures 1–6): files vs pipes.

use crate::{noise_ops, SpecDef};
use cable_workload::shape::{ScenarioShape, ShapeMix};
use cable_workload::{ProtocolModel, WorkloadParams};

/// `FilePair`: a file pointer from `fopen` must be closed with `fclose`;
/// one from `popen` must be closed with `pclose`; reads and writes may
/// happen in between. The buggy Figure 1 specification conflated the two
/// close calls; this is the corrected Figure 6 protocol.
pub fn file_pair() -> SpecDef {
    let ground_truth = "\
; Figure 6: the corrected stdio specification.
start s0
accept s3
s0 -> s1 : fopen(X)
s1 -> s1 : fread(X)
s1 -> s1 : fwrite(X)
s1 -> s3 : fclose(X)
s0 -> s2 : popen(X)
s2 -> s2 : fread(X)
s2 -> s2 : fwrite(X)
s2 -> s3 : pclose(X)
";
    SpecDef {
        uninteresting_atoms: Vec::new(),
        model: ProtocolModel {
            name: "FilePair".into(),
            description: "fopen is closed by fclose, popen by pclose; \
                          fread/fwrite in between"
                .into(),
            ground_truth_text: ground_truth.into(),
            seed_ops: vec!["fopen".into(), "popen".into()],
            correct: ShapeMix::new(vec![
                (
                    4.0,
                    ScenarioShape::with_loop(&["fopen"], &["fread", "fwrite"], 1.5, &["fclose"]),
                ),
                (
                    2.0,
                    ScenarioShape::with_loop(&["popen"], &["fread", "fwrite"], 1.0, &["pclose"]),
                ),
                (1.0, ScenarioShape::fixed(&["fopen", "fclose"])),
                (1.0, ScenarioShape::fixed(&["popen", "pclose"])),
            ]),
            erroneous: ShapeMix::new(vec![
                // The wrong close call.
                (2.0, ScenarioShape::fixed(&["fopen", "fread", "pclose"])),
                (2.0, ScenarioShape::fixed(&["popen", "fread", "fclose"])),
                // Leaks.
                (1.0, ScenarioShape::fixed(&["fopen", "fread"])),
                (1.0, ScenarioShape::fixed(&["popen", "fwrite"])),
            ]),
            noise_ops: noise_ops(),
        },
        params: WorkloadParams {
            programs: 72,
            objects_per_program: (1, 5),
            error_rate: 0.2,
            noise_per_object: 0.5,
            seed: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use cable_trace::{Trace, Vocab};

    #[test]
    fn figure_one_bug_is_rejected_by_ground_truth() {
        let spec = super::file_pair();
        let mut v = Vocab::new();
        let fa = spec.ground_truth(&mut v);
        let wrong = Trace::parse("popen(X) fread(X) fclose(X)", &mut v).unwrap();
        let right = Trace::parse("popen(X) fread(X) pclose(X)", &mut v).unwrap();
        assert!(!fa.accepts(&wrong));
        assert!(fa.accepts(&right));
    }
}
