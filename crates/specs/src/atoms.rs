//! Atom, quark and selection-owner protocols — the small specifications
//! whose performance bugs (redundant server round trips) the paper
//! reports.

use crate::{noise_ops, SpecDef};
use cable_workload::shape::{ScenarioShape, ShapeMix};
use cable_workload::{ProtocolModel, WorkloadParams};

/// `XInternAtom`: an atom is interned once and then used; re-interning
/// the same name is a redundant server round trip (performance bug).
pub fn x_intern_atom() -> SpecDef {
    let ground_truth = "\
start s0
accept s1
s0 -> s1 : XInternAtom(X)
s1 -> s1 : XGetAtomName(X)
s1 -> s1 : XChangeProperty(X)
";
    SpecDef {
        uninteresting_atoms: Vec::new(),
        model: ProtocolModel {
            name: "XInternAtom".into(),
            description: "an atom is interned once; repeated XInternAtom for the same name \
                          is a wasted round trip"
                .into(),
            ground_truth_text: ground_truth.into(),
            seed_ops: vec!["XInternAtom".into()],
            correct: ShapeMix::new(vec![
                (
                    3.0,
                    ScenarioShape::with_loop(
                        &["XInternAtom"],
                        &["XGetAtomName", "XChangeProperty"],
                        1.5,
                        &[],
                    ),
                ),
                (1.0, ScenarioShape::fixed(&["XInternAtom"])),
            ]),
            erroneous: ShapeMix::new(vec![
                // The performance bug: interning the same atom again.
                (
                    2.0,
                    ScenarioShape::fixed(&["XInternAtom", "XInternAtom", "XChangeProperty"]),
                ),
                (
                    1.0,
                    ScenarioShape::fixed(&["XInternAtom", "XGetAtomName", "XInternAtom"]),
                ),
            ]),
            noise_ops: noise_ops(),
        },
        params: WorkloadParams {
            programs: 60,
            objects_per_program: (1, 3),
            error_rate: 0.15,
            noise_per_object: 0.5,
            seed: 0,
        },
    }
}

/// `Quarks`: a resource-manager quark is computed once per string.
pub fn quarks() -> SpecDef {
    let ground_truth = "\
start s0
accept s1
s0 -> s1 : XrmStringToQuark(X)
s1 -> s1 : XrmQuarkToString(X)
";
    SpecDef {
        uninteresting_atoms: Vec::new(),
        model: ProtocolModel {
            name: "Quarks".into(),
            description: "a quark is computed once per string and then reused".into(),
            ground_truth_text: ground_truth.into(),
            seed_ops: vec!["XrmStringToQuark".into()],
            correct: ShapeMix::new(vec![
                (
                    2.0,
                    ScenarioShape::with_loop(
                        &["XrmStringToQuark"],
                        &["XrmQuarkToString"],
                        1.0,
                        &[],
                    ),
                ),
                (1.0, ScenarioShape::fixed(&["XrmStringToQuark"])),
            ]),
            erroneous: ShapeMix::new(vec![
                // Recomputing the quark.
                (
                    1.0,
                    ScenarioShape::fixed(&["XrmStringToQuark", "XrmStringToQuark"]),
                ),
            ]),
            noise_ops: noise_ops(),
        },
        params: WorkloadParams {
            programs: 48,
            objects_per_program: (1, 2),
            error_rate: 0.1,
            noise_per_object: 0.5,
            seed: 0,
        },
    }
}

/// `XGetSelOwner`: querying a selection's owner directly is fine, but
/// after requesting a conversion the client must wait for the
/// `SelectionNotify` event before querying (race otherwise).
pub fn x_get_sel_owner() -> SpecDef {
    // Selection events carry the selection name as an atom; the
    // ground-truth labels are bare operations so the protocol holds for
    // every selection value. Scenarios on CUT_BUFFER0 are "uninteresting"
    // and removed before debugging (§5.1's note).
    let ground_truth = "\
start s0
accept s1 s2 s3
s0 -> s3 : XGetSelectionOwner
s0 -> s1 : XConvertSelection
s1 -> s2 : SelectionNotify
s2 -> s3 : XGetSelectionOwner
";
    SpecDef {
        uninteresting_atoms: vec!["CUT_BUFFER0".into()],
        model: ProtocolModel {
            name: "XGetSelOwner".into(),
            description: "after XConvertSelection, wait for SelectionNotify before querying \
                          the owner"
                .into(),
            ground_truth_text: ground_truth.into(),
            seed_ops: vec!["XGetSelectionOwner".into(), "XConvertSelection".into()],
            correct: ShapeMix::new(vec![
                (2.0, ScenarioShape::fixed(&["XGetSelectionOwner:'PRIMARY"])),
                (
                    2.0,
                    ScenarioShape::fixed(&[
                        "XConvertSelection:'PRIMARY",
                        "SelectionNotify:'PRIMARY",
                        "XGetSelectionOwner:'PRIMARY",
                    ]),
                ),
                (
                    1.0,
                    ScenarioShape::fixed(&[
                        "XConvertSelection:'CLIPBOARD",
                        "SelectionNotify:'CLIPBOARD",
                    ]),
                ),
                // The uninteresting selection value, removed pre-debugging.
                (
                    1.0,
                    ScenarioShape::fixed(&["XGetSelectionOwner:'CUT_BUFFER0"]),
                ),
            ]),
            erroneous: ShapeMix::new(vec![
                // The race: query before the notify arrives.
                (
                    1.0,
                    ScenarioShape::fixed(&[
                        "XConvertSelection:'PRIMARY",
                        "XGetSelectionOwner:'PRIMARY",
                    ]),
                ),
            ]),
            noise_ops: noise_ops(),
        },
        params: WorkloadParams {
            programs: 40,
            objects_per_program: (1, 2),
            error_rate: 0.1,
            noise_per_object: 0.5,
            seed: 0,
        },
    }
}

/// `XSetSelOwner`: after taking selection ownership the client verifies
/// with `XGetSelectionOwner` — skipping the check is the classic ICCCM
/// race.
pub fn x_set_sel_owner() -> SpecDef {
    let ground_truth = "\
start s0
accept s2
s0 -> s1 : XSetSelectionOwner
s1 -> s2 : XGetSelectionOwner
s2 -> s1 : XSetSelectionOwner
";
    SpecDef {
        uninteresting_atoms: vec!["CUT_BUFFER0".into()],
        model: ProtocolModel {
            name: "XSetSelOwner".into(),
            description: "selection ownership is verified with XGetSelectionOwner after \
                          every XSetSelectionOwner (race otherwise)"
                .into(),
            ground_truth_text: ground_truth.into(),
            seed_ops: vec!["XSetSelectionOwner".into()],
            correct: ShapeMix::new(vec![
                (
                    3.0,
                    ScenarioShape::fixed(&[
                        "XSetSelectionOwner:'PRIMARY",
                        "XGetSelectionOwner:'PRIMARY",
                    ]),
                ),
                (
                    1.0,
                    ScenarioShape::fixed(&[
                        "XSetSelectionOwner:'CLIPBOARD",
                        "XGetSelectionOwner:'CLIPBOARD",
                        "XSetSelectionOwner:'CLIPBOARD",
                        "XGetSelectionOwner:'CLIPBOARD",
                    ]),
                ),
                // The uninteresting selection value, removed pre-debugging.
                (
                    1.0,
                    ScenarioShape::fixed(&[
                        "XSetSelectionOwner:'CUT_BUFFER0",
                        "XGetSelectionOwner:'CUT_BUFFER0",
                    ]),
                ),
            ]),
            erroneous: ShapeMix::new(vec![
                // The race: ownership never verified.
                (2.0, ScenarioShape::fixed(&["XSetSelectionOwner:'PRIMARY"])),
                (
                    1.0,
                    ScenarioShape::fixed(&[
                        "XSetSelectionOwner:'PRIMARY",
                        "XGetSelectionOwner:'PRIMARY",
                        "XSetSelectionOwner:'PRIMARY",
                    ]),
                ),
            ]),
            noise_ops: noise_ops(),
        },
        params: WorkloadParams {
            programs: 40,
            objects_per_program: (1, 2),
            error_rate: 0.15,
            noise_per_object: 0.5,
            seed: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use cable_trace::{Trace, Vocab};

    #[test]
    fn convert_race_is_rejected() {
        let spec = super::x_get_sel_owner();
        let mut v = Vocab::new();
        let fa = spec.ground_truth(&mut v);
        let race = Trace::parse("XConvertSelection(X) XGetSelectionOwner(X)", &mut v).unwrap();
        assert!(!fa.accepts(&race));
        let ok = Trace::parse(
            "XConvertSelection(X) SelectionNotify(X) XGetSelectionOwner(X)",
            &mut v,
        )
        .unwrap();
        assert!(fa.accepts(&ok));
    }

    #[test]
    fn unverified_set_is_rejected() {
        let spec = super::x_set_sel_owner();
        let mut v = Vocab::new();
        let fa = spec.ground_truth(&mut v);
        let race = Trace::parse("XSetSelectionOwner(X)", &mut v).unwrap();
        assert!(!fa.accepts(&race));
    }
}
