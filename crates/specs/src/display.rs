//! Display-side resource protocols: displays, graphics contexts, fonts,
//! and images.

use crate::{noise_ops, SpecDef};
use cable_workload::shape::{ScenarioShape, ShapeMix};
use cable_workload::{ProtocolModel, WorkloadParams};

/// `XOpenDisplay`: every opened display connection is closed exactly
/// once.
pub fn x_open_display() -> SpecDef {
    let ground_truth = "\
start s0
accept s2
s0 -> s1 : XOpenDisplay(X)
s1 -> s2 : XCloseDisplay(X)
";
    SpecDef {
        uninteresting_atoms: Vec::new(),
        model: ProtocolModel {
            name: "XOpenDisplay".into(),
            description: "an opened display is closed exactly once".into(),
            ground_truth_text: ground_truth.into(),
            seed_ops: vec!["XOpenDisplay".into()],
            correct: ShapeMix::new(vec![(
                1.0,
                ScenarioShape::fixed(&["XOpenDisplay", "XCloseDisplay"]),
            )]),
            erroneous: ShapeMix::new(vec![
                // Connection leak.
                (2.0, ScenarioShape::fixed(&["XOpenDisplay"])),
                // Double close.
                (
                    1.0,
                    ScenarioShape::fixed(&["XOpenDisplay", "XCloseDisplay", "XCloseDisplay"]),
                ),
            ]),
            noise_ops: noise_ops(),
        },
        params: WorkloadParams {
            programs: 72,
            objects_per_program: (1, 2),
            error_rate: 0.1,
            noise_per_object: 0.5,
            seed: 0,
        },
    }
}

/// `XFreeGC`: a graphics context is configured and drawn with only
/// between creation and free — the use-after-free race the paper's
/// debugged specifications caught.
pub fn x_free_gc() -> SpecDef {
    let ground_truth = "\
start s0
accept s2
s0 -> s1 : XCreateGC(X)
s1 -> s1 : XSetForeground(X)
s1 -> s1 : XSetBackground(X)
s1 -> s1 : XDrawLine(X)
s1 -> s2 : XFreeGC(X)
";
    SpecDef {
        uninteresting_atoms: Vec::new(),
        model: ProtocolModel {
            name: "XFreeGC".into(),
            description: "a GC is used only between XCreateGC and XFreeGC".into(),
            ground_truth_text: ground_truth.into(),
            seed_ops: vec!["XCreateGC".into()],
            correct: ShapeMix::new(vec![
                (
                    3.0,
                    ScenarioShape::with_loop(
                        &["XCreateGC"],
                        &["XSetForeground", "XSetBackground", "XDrawLine"],
                        2.0,
                        &["XFreeGC"],
                    ),
                ),
                (1.0, ScenarioShape::fixed(&["XCreateGC", "XFreeGC"])),
            ]),
            erroneous: ShapeMix::new(vec![
                // Use after free.
                (
                    2.0,
                    ScenarioShape::fixed(&["XCreateGC", "XFreeGC", "XDrawLine"]),
                ),
                // GC leak.
                (1.0, ScenarioShape::fixed(&["XCreateGC", "XSetForeground"])),
            ]),
            noise_ops: noise_ops(),
        },
        params: WorkloadParams {
            programs: 72,
            objects_per_program: (1, 4),
            error_rate: 0.15,
            noise_per_object: 0.5,
            seed: 0,
        },
    }
}

/// `XSetFont`: a font must be loaded before it is installed in a GC and
/// unloaded only afterwards. The paper found this specification "just
/// barely easier to debug with Cable than by hand".
pub fn x_set_font() -> SpecDef {
    let ground_truth = "\
start s0
accept s3
s0 -> s1 : XLoadFont(X)
s1 -> s2 : XSetFont(X)
s2 -> s2 : XSetFont(X)
s2 -> s3 : XUnloadFont(X)
s1 -> s3 : XUnloadFont(X)
";
    SpecDef {
        uninteresting_atoms: Vec::new(),
        model: ProtocolModel {
            name: "XSetFont".into(),
            description: "a font is loaded before XSetFont and unloaded after its last use".into(),
            ground_truth_text: ground_truth.into(),
            seed_ops: vec!["XLoadFont".into()],
            correct: ShapeMix::new(vec![
                (
                    3.0,
                    ScenarioShape::with_loop(
                        &["XLoadFont", "XSetFont"],
                        &["XSetFont"],
                        0.8,
                        &["XUnloadFont"],
                    ),
                ),
                (1.0, ScenarioShape::fixed(&["XLoadFont", "XUnloadFont"])),
            ]),
            erroneous: ShapeMix::new(vec![
                // Set after unload (use after free).
                (
                    2.0,
                    ScenarioShape::fixed(&["XLoadFont", "XUnloadFont", "XSetFont"]),
                ),
                // Font leak.
                (1.0, ScenarioShape::fixed(&["XLoadFont", "XSetFont"])),
                // Never loaded.
                (
                    1.0,
                    ScenarioShape::fixed(&["XLoadFont", "XSetFont", "XUnloadFont", "XSetFont"]),
                ),
            ]),
            noise_ops: noise_ops(),
        },
        params: WorkloadParams {
            programs: 72,
            objects_per_program: (1, 4),
            error_rate: 0.25,
            noise_per_object: 0.5,
            seed: 0,
        },
    }
}

/// `XPutImage`: an image is put to the server only between creation and
/// destruction.
pub fn x_put_image() -> SpecDef {
    let ground_truth = "\
start s0
accept s2
s0 -> s1 : XCreateImage(X)
s1 -> s1 : XPutImage(X)
s1 -> s1 : XGetPixel(X)
s1 -> s2 : XDestroyImage(X)
";
    SpecDef {
        uninteresting_atoms: Vec::new(),
        model: ProtocolModel {
            name: "XPutImage".into(),
            description: "an image is used only between XCreateImage and XDestroyImage".into(),
            ground_truth_text: ground_truth.into(),
            seed_ops: vec!["XCreateImage".into()],
            correct: ShapeMix::new(vec![
                (
                    3.0,
                    ScenarioShape::with_loop(
                        &["XCreateImage"],
                        &["XPutImage", "XGetPixel"],
                        2.5,
                        &["XDestroyImage"],
                    ),
                ),
                (
                    1.0,
                    ScenarioShape::fixed(&["XCreateImage", "XDestroyImage"]),
                ),
            ]),
            erroneous: ShapeMix::new(vec![
                // Image leak (memory).
                (2.0, ScenarioShape::fixed(&["XCreateImage", "XPutImage"])),
                // Put after destroy.
                (
                    1.0,
                    ScenarioShape::fixed(&["XCreateImage", "XDestroyImage", "XPutImage"]),
                ),
            ]),
            noise_ops: noise_ops(),
        },
        params: WorkloadParams {
            programs: 72,
            objects_per_program: (1, 3),
            error_rate: 0.2,
            noise_per_object: 0.5,
            seed: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use cable_trace::{Trace, Vocab};

    #[test]
    fn use_after_free_is_rejected() {
        let spec = super::x_free_gc();
        let mut v = Vocab::new();
        let fa = spec.ground_truth(&mut v);
        let uaf = Trace::parse("XCreateGC(X) XFreeGC(X) XDrawLine(X)", &mut v).unwrap();
        assert!(!fa.accepts(&uaf));
    }

    #[test]
    fn font_protocol_allows_unused_load() {
        let spec = super::x_set_font();
        let mut v = Vocab::new();
        let fa = spec.ground_truth(&mut v);
        let unused = Trace::parse("XLoadFont(X) XUnloadFont(X)", &mut v).unwrap();
        assert!(fa.accepts(&unused));
    }
}
