//! Generated protocol-family specifications.
//!
//! These wrap the parameterised templates of [`cable_workload::families`]
//! as [`SpecDef`]s so the mutation matrix (`reproduce mutants`) and
//! ad-hoc experiments can drive them through the standard pipeline. They
//! are intentionally *not* part of [`crate::registry`]: the main registry
//! reproduces the paper's seventeen Table-1 specifications exactly, and
//! the perf baseline is keyed to that population.

use crate::SpecDef;
use cable_workload::families;
use cable_workload::{FamilyParams, WorkloadParams};

fn family_params() -> WorkloadParams {
    WorkloadParams {
        programs: 48,
        objects_per_program: (1, 4),
        error_rate: 0.2,
        noise_per_object: 0.5,
        seed: 0,
    }
}

/// The three protocol families at the given knob settings.
pub fn family_specs_with(params: &FamilyParams) -> Vec<SpecDef> {
    families::all(params)
        .into_iter()
        .map(|model| SpecDef {
            uninteresting_atoms: Vec::new(),
            model,
            params: family_params(),
        })
        .collect()
}

/// The three protocol families at default knobs (`depth 2`, `fanout 2`).
pub fn family_specs() -> Vec<SpecDef> {
    family_specs_with(&FamilyParams::default())
}

/// A registry of just the generated families (Locking, FdLife,
/// SockLife), separate from the paper's seventeen.
pub fn family_registry() -> crate::Registry {
    crate::Registry::from_specs(family_specs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cable_trace::Vocab;

    #[test]
    fn family_registry_is_separate_and_generates() {
        let reg = family_registry();
        assert_eq!(reg.len(), 3);
        assert_eq!(crate::registry().len(), 17, "main registry untouched");
        for spec in reg.iter() {
            let mut vocab = Vocab::new();
            let workload = spec.generate(1, &mut vocab);
            assert!(!workload.is_empty(), "{} generates traces", spec.name());
            let oracle = spec.oracle(&mut vocab);
            assert!(oracle.ground_truth().state_count() > 1, "{}", spec.name());
        }
    }

    #[test]
    fn knobs_flow_through_to_specs() {
        let deep = family_specs_with(&FamilyParams {
            depth: 4,
            fanout: 1,
        });
        let shallow = family_specs_with(&FamilyParams {
            depth: 1,
            fanout: 1,
        });
        let mut v1 = Vocab::new();
        let mut v2 = Vocab::new();
        assert!(
            deep[0].ground_truth(&mut v1).state_count()
                > shallow[0].ground_truth(&mut v2).state_count()
        );
    }
}
