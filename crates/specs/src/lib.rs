//! The seventeen evaluation specifications (Table 1).
//!
//! §5.1 debugs seventeen Strauss specifications mined from X11 program
//! traces. The paper's Table 1 lists each specification's FA size and an
//! English reading; §5.3 names them: XGetSelOwner, PrsTransTbl,
//! RmvTimeOut, Quarks, XSetSelOwner, XtOwnSel, XInternAtom, PrsAccelTbl,
//! RegionsAlloc, XFreeGC, XPutImage, XtFree, RegionsBig, XSetFont, plus
//! the §2 stdio running example and further X protocol rules.
//!
//! Each [`SpecDef`] couples a [`ProtocolModel`] (ground-truth FA, correct
//! and erroneous usage shapes, noise) with per-spec workload parameters
//! calibrated so the scenario-trace population resembles the paper's:
//! small specs yield under ten unique scenarios, XtFree-like specs yield
//! on the order of a hundred.
//!
//! # Examples
//!
//! ```
//! use cable_trace::Vocab;
//!
//! let reg = cable_specs::registry();
//! assert_eq!(reg.len(), 17);
//! let spec = reg.spec("FilePair").unwrap();
//! let mut vocab = Vocab::new();
//! let workload = spec.generate(1, &mut vocab);
//! assert!(!workload.is_empty());
//! ```

pub mod atoms;
pub mod display;
pub mod families;
pub mod regions;
pub mod stdio;
pub mod toolkit;

use cable_fa::Fa;
use cable_trace::{Trace, Vocab};
use cable_workload::{generate, Oracle, ProtocolModel, WorkloadParams};

/// One evaluation specification: a protocol model plus the workload
/// parameters used to synthesise its trace corpus.
#[derive(Debug, Clone)]
pub struct SpecDef {
    /// Atom values whose scenarios are removed before debugging — §5.1's
    /// note: "we removed some traces before debugging three
    /// specifications … The removed traces had an uninteresting selection
    /// value."
    pub uninteresting_atoms: Vec<String>,
    /// The protocol model (ground truth, shapes, seeds, noise).
    pub model: ProtocolModel,
    /// Workload parameters (without the seed, which callers supply).
    pub params: WorkloadParams,
}

impl SpecDef {
    /// The specification's short name.
    pub fn name(&self) -> &str {
        &self.model.name
    }

    /// The English reading (Table 1's description column).
    pub fn description(&self) -> &str {
        &self.model.description
    }

    /// The miner's seed operations.
    pub fn seeds(&self) -> &[String] {
        &self.model.seed_ops
    }

    /// The ground-truth specification FA.
    pub fn ground_truth(&self, vocab: &mut Vocab) -> Fa {
        self.model.ground_truth(vocab)
    }

    /// The reference-labeling oracle.
    pub fn oracle(&self, vocab: &mut Vocab) -> Oracle {
        Oracle::new(self.ground_truth(vocab))
    }

    /// Generates the program-trace workload with the given seed.
    pub fn generate(&self, seed: u64, vocab: &mut Vocab) -> Vec<Trace> {
        let params = WorkloadParams {
            seed,
            ..self.params
        };
        generate(&self.model, &params, vocab)
    }

    /// Tests whether a scenario is *interesting*: it mentions none of the
    /// spec's uninteresting atoms. §5.1 removes uninteresting-selection
    /// scenarios before debugging.
    pub fn is_interesting(&self, trace: &Trace, vocab: &Vocab) -> bool {
        if self.uninteresting_atoms.is_empty() {
            return true;
        }
        !trace.iter().any(|e| {
            e.args.iter().any(|a| match a {
                cable_trace::Arg::Atom(sym) => self
                    .uninteresting_atoms
                    .iter()
                    .any(|u| u == vocab.atom_name(*sym)),
                _ => false,
            })
        })
    }
}

/// The registry of all seventeen specifications.
#[derive(Debug, Clone)]
pub struct Registry {
    specs: Vec<SpecDef>,
}

impl Registry {
    /// Builds a registry from an arbitrary specification list — e.g. a
    /// subset of [`registry`] for a quick experiment, or custom
    /// user-defined protocols.
    pub fn from_specs(specs: Vec<SpecDef>) -> Self {
        Registry { specs }
    }

    /// Number of specifications.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Always `false`; for API completeness.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Looks up a specification by name (case-sensitive).
    pub fn spec(&self, name: &str) -> Option<&SpecDef> {
        self.specs.iter().find(|s| s.name() == name)
    }

    /// All specifications, in Table 1 order.
    pub fn iter(&self) -> impl Iterator<Item = &SpecDef> {
        self.specs.iter()
    }

    /// All specification names.
    pub fn names(&self) -> Vec<&str> {
        self.specs.iter().map(|s| s.name()).collect()
    }
}

/// Builds the registry of all seventeen specifications.
pub fn registry() -> Registry {
    Registry {
        specs: vec![
            stdio::file_pair(),
            display::x_open_display(),
            display::x_free_gc(),
            display::x_set_font(),
            display::x_put_image(),
            regions::regions_alloc(),
            regions::regions_big(),
            toolkit::xt_free(),
            toolkit::rmv_time_out(),
            toolkit::xt_app_add_input(),
            toolkit::xt_own_selection(),
            toolkit::prs_trans_tbl(),
            toolkit::prs_accel_tbl(),
            atoms::x_intern_atom(),
            atoms::quarks(),
            atoms::x_get_sel_owner(),
            atoms::x_set_sel_owner(),
        ],
    }
}

/// The shared pool of unrelated noise operations sprinkled through
/// program traces.
pub(crate) fn noise_ops() -> Vec<String> {
    ["XFlush", "XSync", "XPending", "XNextEvent"]
        .iter()
        .map(|s| (*s).to_owned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_seventeen_distinct_specs() {
        let reg = registry();
        assert_eq!(reg.len(), 17);
        let mut names = reg.names();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 17, "duplicate spec names");
    }

    #[test]
    fn every_ground_truth_parses_and_is_nonempty() {
        let reg = registry();
        for spec in reg.iter() {
            let mut v = Vocab::new();
            let fa = spec.ground_truth(&mut v);
            assert!(fa.state_count() >= 2, "{}", spec.name());
            assert!(fa.transition_count() >= 1, "{}", spec.name());
            assert!(!fa.accept_states().is_empty(), "{}", spec.name());
        }
    }

    #[test]
    fn correct_shapes_are_accepted_and_erroneous_rejected() {
        let reg = registry();
        for spec in reg.iter() {
            let mut v = Vocab::new();
            let oracle = spec.oracle(&mut v);
            let mut rng = cable_util::rng::seeded(7);
            // Sample shapes and check the oracle agrees with provenance.
            for _ in 0..50 {
                let ops = spec.model.correct.sample(&mut rng);
                let trace = cable_workload::scenario_trace(&ops, &mut v);
                assert!(
                    oracle.is_good(&trace),
                    "{}: correct shape rejected: {}",
                    spec.name(),
                    trace.display(&v)
                );
            }
            for _ in 0..50 {
                let ops = spec.model.erroneous.sample(&mut rng);
                let trace = cable_workload::scenario_trace(&ops, &mut v);
                assert!(
                    !oracle.is_good(&trace),
                    "{}: erroneous shape accepted: {}",
                    spec.name(),
                    trace.display(&v)
                );
            }
        }
    }

    #[test]
    fn seeds_appear_in_correct_shapes() {
        let reg = registry();
        for spec in reg.iter() {
            let ops: Vec<&str> = spec.model.scenario_ops();
            for seed in spec.seeds() {
                assert!(
                    ops.contains(&seed.as_str()),
                    "{}: seed {seed} never emitted",
                    spec.name()
                );
            }
        }
    }

    #[test]
    fn workloads_are_deterministic_and_nonempty() {
        let reg = registry();
        for spec in reg.iter() {
            let mut v1 = Vocab::new();
            let mut v2 = Vocab::new();
            let a = spec.generate(3, &mut v1);
            let b = spec.generate(3, &mut v2);
            assert_eq!(a, b, "{}", spec.name());
            assert!(!a.is_empty(), "{}", spec.name());
        }
    }
}
