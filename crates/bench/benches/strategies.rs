//! Benchmarks for Table 3: the cost (in wall-clock time here, rather
//! than user decisions) of running each labeling strategy to completion.

use cable_bench::prepare;
use cable_core::strategy;
use cable_trace::Trace;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategies");
    group.sample_size(20);
    let registry = cable_specs::registry();
    for name in ["FilePair", "XtFree"] {
        let spec = registry.spec(name).expect("known spec");
        let mut prepared = prepare(spec, 2003);
        let oracle = prepared.oracle.clone();
        let o = move |t: &Trace| oracle.label(t).to_owned();
        group.bench_function(BenchmarkId::new("top_down", name), |b| {
            b.iter(|| {
                let mut rng = cable_util::rng::seeded(1);
                strategy::top_down(&mut prepared.session, &o, &mut rng)
                    .expect("well-formed")
                    .total()
            })
        });
        let oracle = prepared.oracle.clone();
        let o = move |t: &Trace| oracle.label(t).to_owned();
        group.bench_function(BenchmarkId::new("bottom_up", name), |b| {
            b.iter(|| {
                let mut rng = cable_util::rng::seeded(1);
                strategy::bottom_up(&mut prepared.session, &o, &mut rng)
                    .expect("well-formed")
                    .total()
            })
        });
        let oracle = prepared.oracle.clone();
        let o = move |t: &Trace| oracle.label(t).to_owned();
        group.bench_function(BenchmarkId::new("random", name), |b| {
            b.iter(|| {
                let mut rng = cable_util::rng::seeded(1);
                strategy::random(&mut prepared.session, &o, &mut rng)
                    .expect("well-formed")
                    .total()
            })
        });
        let oracle = prepared.oracle.clone();
        let o = move |t: &Trace| oracle.label(t).to_owned();
        group.bench_function(BenchmarkId::new("expert", name), |b| {
            b.iter(|| {
                strategy::expert(&mut prepared.session, &o)
                    .expect("well-formed")
                    .total()
            })
        });
        let oracle = prepared.oracle.clone();
        let o = move |t: &Trace| oracle.label(t).to_owned();
        group.bench_function(BenchmarkId::new("optimal", name), |b| {
            b.iter(|| strategy::optimal(&mut prepared.session, &o, 200_000))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
