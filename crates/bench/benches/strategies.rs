//! Benchmarks for Table 3: the cost (in wall-clock time here, rather
//! than user decisions) of running each labeling strategy to completion.

use cable_bench::harness::Group;
use cable_bench::prepare;
use cable_core::strategy;
use cable_trace::Trace;
use std::hint::black_box;

fn main() {
    let mut group = Group::new("strategies");
    let registry = cable_specs::registry();
    for name in ["FilePair", "XtFree"] {
        let spec = registry.spec(name).expect("known spec");
        let mut prepared = prepare(spec, 2003);
        let oracle = prepared.oracle.clone();
        let o = move |t: &Trace| oracle.label(t).to_owned();
        group.bench(&format!("top_down/{name}"), || {
            let mut rng = cable_util::rng::seeded(1);
            black_box(
                strategy::top_down(&mut prepared.session, &o, &mut rng)
                    .expect("well-formed")
                    .total(),
            );
        });
        let oracle = prepared.oracle.clone();
        let o = move |t: &Trace| oracle.label(t).to_owned();
        group.bench(&format!("bottom_up/{name}"), || {
            let mut rng = cable_util::rng::seeded(1);
            black_box(
                strategy::bottom_up(&mut prepared.session, &o, &mut rng)
                    .expect("well-formed")
                    .total(),
            );
        });
        let oracle = prepared.oracle.clone();
        let o = move |t: &Trace| oracle.label(t).to_owned();
        group.bench(&format!("random/{name}"), || {
            let mut rng = cable_util::rng::seeded(1);
            black_box(
                strategy::random(&mut prepared.session, &o, &mut rng)
                    .expect("well-formed")
                    .total(),
            );
        });
        let oracle = prepared.oracle.clone();
        let o = move |t: &Trace| oracle.label(t).to_owned();
        group.bench(&format!("expert/{name}"), || {
            black_box(
                strategy::expert(&mut prepared.session, &o)
                    .expect("well-formed")
                    .total(),
            );
        });
        let oracle = prepared.oracle.clone();
        let o = move |t: &Trace| oracle.label(t).to_owned();
        group.bench(&format!("optimal/{name}"), || {
            black_box(strategy::optimal(&mut prepared.session, &o, 200_000));
        });
    }
    group.finish();
}
