//! Benchmarks for the miner's back end and Cable's Show FA view: the
//! sk-strings and k-tails learners.

use cable_learn::{KTails, Pta, SkStrings};
use cable_strauss::FrontEnd;
use cable_trace::{Trace, Vocab};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn scenario_corpus(name: &str) -> Vec<Trace> {
    let registry = cable_specs::registry();
    let spec = registry.spec(name).expect("known spec");
    let mut vocab = Vocab::new();
    let workload = spec.generate(2003, &mut vocab);
    FrontEnd::new(spec.seeds())
        .extract_all(&workload, &vocab)
        .iter()
        .map(|(_, t)| t.clone())
        .collect()
}

fn bench_learners(c: &mut Criterion) {
    let mut group = c.benchmark_group("learner");
    group.sample_size(10);
    for name in ["FilePair", "XtFree"] {
        let traces = scenario_corpus(name);
        group.bench_with_input(BenchmarkId::new("pta", name), &traces, |b, ts| {
            b.iter(|| Pta::build(black_box(ts)))
        });
        group.bench_with_input(BenchmarkId::new("sk_strings", name), &traces, |b, ts| {
            b.iter(|| SkStrings::default().learn(black_box(ts)))
        });
        group.bench_with_input(BenchmarkId::new("k_tails", name), &traces, |b, ts| {
            b.iter(|| KTails::default().learn(black_box(ts)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_learners);
criterion_main!(benches);
