//! Benchmarks for the miner's back end and Cable's Show FA view: the
//! sk-strings and k-tails learners.

use cable_bench::harness::Group;
use cable_learn::{KTails, Pta, SkStrings};
use cable_strauss::FrontEnd;
use cable_trace::{Trace, Vocab};
use std::hint::black_box;

fn scenario_corpus(name: &str) -> Vec<Trace> {
    let registry = cable_specs::registry();
    let spec = registry.spec(name).expect("known spec");
    let mut vocab = Vocab::new();
    let workload = spec.generate(2003, &mut vocab);
    FrontEnd::new(spec.seeds())
        .extract_all(&workload, &vocab)
        .iter()
        .map(|(_, t)| t.clone())
        .collect()
}

fn main() {
    let mut group = Group::new("learner");
    for name in ["FilePair", "XtFree"] {
        let traces = scenario_corpus(name);
        group.bench(&format!("pta/{name}"), || {
            black_box(Pta::build(black_box(&traces)));
        });
        group.bench(&format!("sk_strings/{name}"), || {
            black_box(SkStrings::default().learn(black_box(&traces)));
        });
        group.bench(&format!("k_tails/{name}"), || {
            black_box(KTails::default().learn(black_box(&traces)));
        });
    }
    group.finish();
}
