//! Benchmarks for the context-construction step (§3.2): computing the
//! executed-transition relation of traces against a reference FA, and
//! plain acceptance.

use cable_bench::harness::Group;
use cable_bench::prepare;
use cable_trace::Trace;
use std::hint::black_box;

fn main() {
    let mut group = Group::new("executed_transitions");
    let registry = cable_specs::registry();
    for name in ["FilePair", "RegionsBig"] {
        let spec = registry.spec(name).expect("known spec");
        let prepared = prepare(spec, 2003);
        let fa = prepared.session.reference_fa().clone();
        let traces: Vec<Trace> = prepared
            .scenarios
            .iter()
            .take(50)
            .map(|(_, t)| t.clone())
            .collect();
        group.bench(&format!("relation/{name}"), || {
            for t in &traces {
                black_box(fa.executed_transitions(black_box(t)));
            }
        });
        group.bench(&format!("accepts/{name}"), || {
            for t in &traces {
                black_box(fa.accepts(black_box(t)));
            }
        });
    }
    group.finish();
}
