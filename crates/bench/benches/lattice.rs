//! Benchmarks for Table 2 and the §5.2 scaling claim: concept-lattice
//! construction cost (Godin's incremental algorithm vs NextClosure).

use cable_bench::prepare;
use cable_fca::{ConceptLattice, Context};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use std::hint::black_box;

/// The Figure 9 animals context.
fn animals() -> Context {
    let mut ctx = Context::new(5, 5);
    for (o, attrs) in [
        (0usize, vec![0usize, 1]),
        (1, vec![1, 2, 4]),
        (2, vec![2, 3]),
        (3, vec![2, 4]),
        (4, vec![2, 3]),
    ] {
        for a in attrs {
            ctx.add(o, a);
        }
    }
    ctx
}

/// A synthetic context shaped like the real scenario data: `n_attrs`
/// attributes, 150 objects, at most 8 attributes per object.
fn synthetic(n_attrs: usize) -> Context {
    let mut rng = cable_util::rng::seeded(n_attrs as u64);
    let mut ctx = Context::new(150, n_attrs);
    for o in 0..150 {
        let k = rng.gen_range(2..=8usize.min(n_attrs));
        let base = rng.gen_range(0..n_attrs);
        for i in 0..k {
            ctx.add(o, (base + i * i + rng.gen_range(0..3)) % n_attrs);
        }
    }
    ctx
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("lattice/animals");
    let ctx = animals();
    group.bench_function("godin", |b| {
        b.iter(|| ConceptLattice::build(black_box(&ctx)))
    });
    group.bench_function("next_closure", |b| {
        b.iter(|| ConceptLattice::build_next_closure(black_box(&ctx)))
    });
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("lattice/scaling");
    for n_attrs in [8usize, 16, 24, 32] {
        let ctx = synthetic(n_attrs);
        group.bench_with_input(BenchmarkId::new("godin", n_attrs), &ctx, |b, ctx| {
            b.iter(|| ConceptLattice::build(black_box(ctx)))
        });
    }
    group.finish();
}

fn bench_spec_contexts(c: &mut Criterion) {
    let mut group = c.benchmark_group("lattice/table2");
    group.sample_size(20);
    let registry = cable_specs::registry();
    for name in ["FilePair", "XtFree", "RegionsBig"] {
        let spec = registry.spec(name).expect("known spec");
        let prepared = prepare(spec, 2003);
        let ctx = prepared.session.context().clone();
        group.bench_with_input(BenchmarkId::new("godin", name), &ctx, |b, ctx| {
            b.iter(|| ConceptLattice::build(black_box(ctx)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_algorithms,
    bench_scaling,
    bench_spec_contexts
);
criterion_main!(benches);
