//! Benchmarks for Table 2 and the §5.2 scaling claim: concept-lattice
//! construction cost (Godin's incremental algorithm vs NextClosure).
//!
//! The `animals/godin` case doubles as the observability overhead check:
//! it is run once with spans disabled and once with `CABLE_OBS`-style
//! timing enabled, and the two medians are printed side by side.

use cable_bench::harness::Group;
use cable_bench::prepare;
use cable_fca::{ConceptLattice, Context};
use cable_util::rng::Rng;
use std::hint::black_box;

/// The Figure 9 animals context.
fn animals() -> Context {
    let mut ctx = Context::new(5, 5);
    for (o, attrs) in [
        (0usize, vec![0usize, 1]),
        (1, vec![1, 2, 4]),
        (2, vec![2, 3]),
        (3, vec![2, 4]),
        (4, vec![2, 3]),
    ] {
        for a in attrs {
            ctx.add(o, a);
        }
    }
    ctx
}

/// A synthetic context shaped like the real scenario data: `n_attrs`
/// attributes, 150 objects, at most 8 attributes per object.
fn synthetic(n_attrs: usize) -> Context {
    let mut rng = cable_util::rng::seeded(n_attrs as u64);
    let mut ctx = Context::new(150, n_attrs);
    for o in 0..150 {
        let k = rng.gen_range(2..=8usize.min(n_attrs));
        let base = rng.gen_range(0..n_attrs);
        for i in 0..k {
            ctx.add(o, (base + i * i + rng.gen_range(0..3usize)) % n_attrs);
        }
    }
    ctx
}

fn bench_algorithms() {
    let mut group = Group::new("lattice/animals");
    let ctx = animals();
    group.bench("godin", || {
        black_box(ConceptLattice::build(black_box(&ctx)));
    });
    group.bench("next_closure", || {
        black_box(ConceptLattice::build_next_closure(black_box(&ctx)));
    });
    group.finish();
}

fn bench_scaling() {
    let mut group = Group::new("lattice/scaling");
    for n_attrs in [8usize, 16, 24, 32] {
        let ctx = synthetic(n_attrs);
        group.bench(&format!("godin/{n_attrs}"), || {
            black_box(ConceptLattice::build(black_box(&ctx)));
        });
    }
    group.finish();
}

fn bench_spec_contexts() {
    let mut group = Group::new("lattice/table2");
    let registry = cable_specs::registry();
    for name in ["FilePair", "XtFree", "RegionsBig"] {
        let spec = registry.spec(name).expect("known spec");
        let prepared = prepare(spec, 2003);
        let ctx = prepared.session.context().clone();
        group.bench(&format!("godin/{name}"), || {
            black_box(ConceptLattice::build(black_box(&ctx)));
        });
    }
    group.finish();
}

/// The ISSUE acceptance check: lattice construction with observability
/// spans enabled must stay within a few percent of the disabled cost
/// (counters are always on, so this isolates the span/`Instant` cost),
/// and switching the flight recorder on as well must stay under 5%.
/// The `obs-scoped` case layers the full PR-6 stack on top — wide
/// events enabled plus a live scope taking the per-build accounting a
/// real session does — and must also stay within noise of obs-off.
fn bench_obs_overhead() {
    let mut group = Group::new("lattice/obs-overhead");
    let ctx = synthetic(24);
    cable_obs::set_enabled(false);
    cable_obs::recorder::set_recording(false);
    let off = group.bench("godin/obs-off", || {
        black_box(ConceptLattice::build(black_box(&ctx)));
    });
    cable_obs::set_enabled(true);
    let on = group.bench("godin/obs-on", || {
        black_box(ConceptLattice::build(black_box(&ctx)));
    });
    cable_obs::recorder::set_recording(true);
    let recording = group.bench("godin/obs-recording", || {
        black_box(ConceptLattice::build(black_box(&ctx)));
    });
    cable_obs::recorder::set_recording(false);
    cable_obs::events::set_enabled(true);
    let scope = cable_obs::scoped().open(&[("session", "bench"), ("stage", "lattice")]);
    let scoped = group.bench("godin/obs-scoped", || {
        let started = std::time::Instant::now();
        black_box(ConceptLattice::build(black_box(&ctx)));
        scope.incr("bench.lattice.builds_scoped");
        scope.record("bench.lattice.build_scoped_ns", {
            let ns = started.elapsed().as_nanos();
            u64::try_from(ns).unwrap_or(u64::MAX)
        });
    });
    drop(scope);
    cable_obs::events::set_enabled(false);
    cable_obs::set_enabled(false);
    cable_obs::recorder::clear();
    println!(
        "  overhead: spans {:+.2}%, spans+recorder {:+.2}%, spans+scope+events {:+.2}% (medians vs obs-off)",
        (on.median_ns / off.median_ns - 1.0) * 100.0,
        (recording.median_ns / off.median_ns - 1.0) * 100.0,
        (scoped.median_ns / off.median_ns - 1.0) * 100.0
    );
    group.finish();
}

/// The guard acceptance check: the budget-aware build (`try_build`,
/// which threads a checkpoint through every Godin insertion) with **no
/// budget installed** must stay within 5% of the plain build — the
/// disabled fast path is a single relaxed atomic load per checkpoint.
/// For scale, the same build is also timed under an ample budget that
/// never trips (the full slow-path evaluation cost).
fn bench_guard_overhead() {
    let mut group = Group::new("lattice/guard-overhead");
    let ctx = synthetic(24);
    // Compare the sequential paths head-to-head so the measurement is
    // exactly "Godin with checkpoints" vs "Godin without" — the auto
    // entry points would route both through the shard path and hide
    // the checkpoint cost entirely.
    let plain = group.bench("godin/guard-off", || {
        black_box(cable_fca::godin::concepts(black_box(&ctx)));
    });
    let checkpointed = group.bench("godin/guard-checkpoints", || {
        black_box(cable_fca::godin::try_concepts(black_box(&ctx)).expect("no budget installed"));
    });
    let ample = cable_guard::Budget {
        max_concepts: Some(u64::MAX),
        ..Default::default()
    }
    .install();
    let budgeted = group.bench("godin/guard-budgeted", || {
        black_box(
            cable_fca::godin::try_concepts(black_box(&ctx)).expect("ample budget never trips"),
        );
    });
    drop(ample);
    println!(
        "  overhead: checkpoints {:+.2}%, active budget {:+.2}% (medians vs guard-off)",
        (checkpointed.median_ns / plain.median_ns - 1.0) * 100.0,
        (budgeted.median_ns / plain.median_ns - 1.0) * 100.0
    );
    group.finish();
}

fn main() {
    bench_algorithms();
    bench_scaling();
    bench_spec_contexts();
    bench_obs_overhead();
    bench_guard_overhead();
}
