//! Structural validation of Chrome trace-event exports.
//!
//! `reproduce --trace-out` promises a file Perfetto will load: a JSON
//! object with a `traceEvents` array where, within every lane (`tid`),
//! `B`/`E` events pair up and timestamps never go backwards. This module
//! is that promise as a checkable predicate — `reproduce check-trace`
//! runs it in CI over the trace artifact, and the integration tests run
//! it over freshly produced files.

use cable_obs::json::Value;
use std::collections::BTreeMap;

/// What a valid trace contained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Non-metadata events in the file.
    pub events: usize,
    /// Distinct lanes (`tid`s) carrying at least one event.
    pub lanes: usize,
}

/// Validates Chrome trace-event JSON text. Returns a summary, or every
/// structural problem found.
pub fn check_chrome_trace(text: &str) -> Result<TraceSummary, Vec<String>> {
    let parsed = match Value::parse(text.trim()) {
        Ok(v) => v,
        Err(e) => return Err(vec![format!("not valid JSON: {e}")]),
    };
    let Some(events) = parsed.get("traceEvents").and_then(Value::as_array) else {
        return Err(vec!["no traceEvents array".to_owned()]);
    };

    let mut problems = Vec::new();
    // Per-lane state: (open span depth, last ts, events seen).
    let mut lanes: BTreeMap<u64, (i64, f64, usize)> = BTreeMap::new();
    let mut total = 0usize;
    for (i, event) in events.iter().enumerate() {
        let Some(ph) = event.get("ph").and_then(Value::as_str) else {
            problems.push(format!("event {i} has no ph"));
            continue;
        };
        if ph == "M" {
            continue; // metadata carries no ts
        }
        let Some(tid) = event.get("tid").and_then(Value::as_u64) else {
            problems.push(format!("event {i} has no tid"));
            continue;
        };
        let Some(ts) = event.get("ts").and_then(Value::as_f64) else {
            problems.push(format!("event {i} has no ts"));
            continue;
        };
        total += 1;
        let lane = lanes.entry(tid).or_insert((0, f64::MIN, 0));
        lane.2 += 1;
        if ts < lane.1 {
            problems.push(format!(
                "lane {tid}: ts goes backwards at event {i} ({ts} after {})",
                lane.1
            ));
        }
        lane.1 = ts;
        match ph {
            "B" => lane.0 += 1,
            "E" => {
                lane.0 -= 1;
                if lane.0 < 0 {
                    problems.push(format!("lane {tid}: E without a matching B at event {i}"));
                    lane.0 = 0;
                }
            }
            "i" | "C" => {}
            other => problems.push(format!("event {i} has unknown ph {other:?}")),
        }
    }
    for (tid, (depth, _, _)) in &lanes {
        if *depth != 0 {
            problems.push(format!("lane {tid}: {depth} B events never closed"));
        }
    }
    if total == 0 {
        problems.push("trace holds no events".to_owned());
    }
    for (tid, (_, _, n)) in &lanes {
        if *n == 0 {
            problems.push(format!("lane {tid} is empty"));
        }
    }
    if problems.is_empty() {
        Ok(TraceSummary {
            events: total,
            lanes: lanes.len(),
        })
    } else {
        Err(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_recorded_trace_validates() {
        use cable_obs::recorder::{self, EventKind};
        let lanes = vec![recorder::LaneSnapshot {
            id: 3,
            label: "w".into(),
            events: vec![
                recorder::Event {
                    name: "a",
                    kind: EventKind::Begin,
                    ts_ns: 100,
                },
                recorder::Event {
                    name: "a",
                    kind: EventKind::End,
                    ts_ns: 900,
                },
            ],
            dropped: 0,
        }];
        let text = cable_obs::chrome::chrome_trace(&lanes).to_string();
        let summary = check_chrome_trace(&text).expect("valid");
        assert_eq!(
            summary,
            TraceSummary {
                events: 2,
                lanes: 1
            }
        );
    }

    #[test]
    fn structural_problems_are_reported() {
        assert!(check_chrome_trace("not json").is_err());
        assert!(check_chrome_trace("{}").is_err());
        // Empty traceEvents: no events at all.
        assert!(check_chrome_trace(r#"{"traceEvents": []}"#).is_err());
        // Unbalanced B.
        let unbalanced = r#"{"traceEvents": [
            {"ph": "B", "tid": 1, "ts": 1.0, "name": "x", "pid": 1}
        ]}"#;
        let problems = check_chrome_trace(unbalanced).unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("never closed")),
            "{problems:?}"
        );
        // Backwards timestamps.
        let backwards = r#"{"traceEvents": [
            {"ph": "i", "tid": 1, "ts": 5.0, "name": "x", "pid": 1},
            {"ph": "i", "tid": 1, "ts": 2.0, "name": "y", "pid": 1}
        ]}"#;
        let problems = check_chrome_trace(backwards).unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("backwards")),
            "{problems:?}"
        );
    }
}
