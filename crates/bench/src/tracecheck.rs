//! Structural validation of trace exports.
//!
//! `reproduce --trace-out` promises a file Perfetto will load: a JSON
//! object with a `traceEvents` array where, within every lane (`tid`),
//! `B`/`E` events pair up and timestamps never go backwards. This module
//! is that promise as a checkable predicate — `reproduce check-trace`
//! runs it in CI over the trace artifact, and the integration tests run
//! it over freshly produced files.
//!
//! It also validates the *other* trace shape the server emits:
//! `/tracez/export`'s `trace_export` record of per-request span trees.
//! [`check_trace_export`] asserts each kept tree is well-formed — spans
//! close after they open (matched B/E by construction), parent links
//! are acyclic, and every span is reachable from the request root — the
//! properties `trace-report` attribution silently relies on.
//! `reproduce check-trace` sniffs which shape a file holds and applies
//! the matching predicate.

use cable_obs::json::Value;
use std::collections::BTreeMap;

/// What a valid trace contained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Non-metadata events in the file.
    pub events: usize,
    /// Distinct lanes (`tid`s) carrying at least one event.
    pub lanes: usize,
}

/// Validates Chrome trace-event JSON text. Returns a summary, or every
/// structural problem found.
pub fn check_chrome_trace(text: &str) -> Result<TraceSummary, Vec<String>> {
    let parsed = match Value::parse(text.trim()) {
        Ok(v) => v,
        Err(e) => return Err(vec![format!("not valid JSON: {e}")]),
    };
    let Some(events) = parsed.get("traceEvents").and_then(Value::as_array) else {
        return Err(vec!["no traceEvents array".to_owned()]);
    };

    let mut problems = Vec::new();
    // Per-lane state: (open span depth, last ts, events seen).
    let mut lanes: BTreeMap<u64, (i64, f64, usize)> = BTreeMap::new();
    let mut total = 0usize;
    for (i, event) in events.iter().enumerate() {
        let Some(ph) = event.get("ph").and_then(Value::as_str) else {
            problems.push(format!("event {i} has no ph"));
            continue;
        };
        if ph == "M" {
            continue; // metadata carries no ts
        }
        let Some(tid) = event.get("tid").and_then(Value::as_u64) else {
            problems.push(format!("event {i} has no tid"));
            continue;
        };
        let Some(ts) = event.get("ts").and_then(Value::as_f64) else {
            problems.push(format!("event {i} has no ts"));
            continue;
        };
        total += 1;
        let lane = lanes.entry(tid).or_insert((0, f64::MIN, 0));
        lane.2 += 1;
        if ts < lane.1 {
            problems.push(format!(
                "lane {tid}: ts goes backwards at event {i} ({ts} after {})",
                lane.1
            ));
        }
        lane.1 = ts;
        match ph {
            "B" => lane.0 += 1,
            "E" => {
                lane.0 -= 1;
                if lane.0 < 0 {
                    problems.push(format!("lane {tid}: E without a matching B at event {i}"));
                    lane.0 = 0;
                }
            }
            "i" | "C" => {}
            other => problems.push(format!("event {i} has unknown ph {other:?}")),
        }
    }
    for (tid, (depth, _, _)) in &lanes {
        if *depth != 0 {
            problems.push(format!("lane {tid}: {depth} B events never closed"));
        }
    }
    if total == 0 {
        problems.push("trace holds no events".to_owned());
    }
    for (tid, (_, _, n)) in &lanes {
        if *n == 0 {
            problems.push(format!("lane {tid} is empty"));
        }
    }
    if problems.is_empty() {
        Ok(TraceSummary {
            events: total,
            lanes: lanes.len(),
        })
    } else {
        Err(problems)
    }
}

/// What a valid `trace_export` record contained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExportSummary {
    /// Kept span trees in the export.
    pub traces: usize,
    /// Spans across all kept trees.
    pub spans: usize,
}

fn hex_field(v: &Value, key: &str, problems: &mut Vec<String>, at: &str) -> Option<u64> {
    let Some(s) = v.get(key).and_then(Value::as_str) else {
        problems.push(format!("{at}: missing hex field {key:?}"));
        return None;
    };
    match u64::from_str_radix(s, 16) {
        Ok(n) => Some(n),
        Err(_) => {
            problems.push(format!("{at}: {key:?} is not hex ({s:?})"));
            None
        }
    }
}

/// Validates a `/tracez/export` dump: every kept span tree must have
/// closed spans (`end_ns >= start_ns`), unique span ids, acyclic parent
/// links, and every span reachable from the tree's request root.
/// Returns a summary, or every structural problem found.
pub fn check_trace_export(text: &str) -> Result<ExportSummary, Vec<String>> {
    let parsed = match Value::parse(text.trim()) {
        Ok(v) => v,
        Err(e) => return Err(vec![format!("not valid JSON: {e}")]),
    };
    if parsed.get("record").and_then(Value::as_str) != Some("trace_export") {
        return Err(vec!["not a trace_export record".to_owned()]);
    }
    let Some(traces) = parsed.get("traces").and_then(Value::as_array) else {
        return Err(vec!["no traces array".to_owned()]);
    };

    let mut problems = Vec::new();
    let mut spans_total = 0usize;
    for (t, trace) in traces.iter().enumerate() {
        let id = trace
            .get("trace")
            .and_then(Value::as_str)
            .unwrap_or("<unnamed>");
        let at = format!("trace {t} ({id})");
        let Some(root) = hex_field(trace, "root", &mut problems, &at) else {
            continue;
        };
        let Some(rows) = trace.get("spans_tree").and_then(Value::as_array) else {
            problems.push(format!("{at}: no spans_tree array"));
            continue;
        };
        if rows.is_empty() {
            problems.push(format!("{at}: spans_tree is empty"));
            continue;
        }
        // First pass: ids, parents, timestamps.
        let mut parents: BTreeMap<u64, u64> = BTreeMap::new();
        for (i, row) in rows.iter().enumerate() {
            let here = format!("{at} span {i}");
            let Some(span) = hex_field(row, "span", &mut problems, &here) else {
                continue;
            };
            let parent = hex_field(row, "parent", &mut problems, &here).unwrap_or(0);
            if span == 0 {
                problems.push(format!("{here}: span id is zero"));
                continue;
            }
            if parents.insert(span, parent).is_some() {
                problems.push(format!("{here}: span id {span:016x} repeats"));
            }
            let start = row.get("start_ns").and_then(Value::as_u64);
            let end = row.get("end_ns").and_then(Value::as_u64);
            match (start, end) {
                (Some(s), Some(e)) if e < s => {
                    problems.push(format!("{here}: ends before it starts ({e} < {s})"));
                }
                (Some(_), Some(_)) => {}
                _ => problems.push(format!("{here}: missing start_ns/end_ns")),
            }
        }
        if !parents.contains_key(&root) {
            problems.push(format!("{at}: root span {root:016x} is not in the tree"));
            continue;
        }
        // Second pass: every span's parent chain must reach the root
        // without revisiting a span (acyclic) or leaving the tree.
        for &span in parents.keys() {
            let mut cursor = span;
            let mut hops = 0usize;
            loop {
                if cursor == root {
                    break;
                }
                if hops > parents.len() {
                    problems.push(format!("{at}: span {span:016x} sits on a parent cycle"));
                    break;
                }
                let Some(&up) = parents.get(&cursor) else {
                    problems.push(format!(
                        "{at}: span {span:016x} is orphaned (parent {cursor:016x} missing)"
                    ));
                    break;
                };
                cursor = up;
                hops += 1;
            }
        }
        spans_total += parents.len();
    }
    if problems.is_empty() {
        Ok(ExportSummary {
            traces: traces.len(),
            spans: spans_total,
        })
    } else {
        Err(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_recorded_trace_validates() {
        use cable_obs::recorder::{self, Event, EventKind};
        let lanes = vec![recorder::LaneSnapshot {
            id: 3,
            label: "w".into(),
            events: vec![
                Event::plain("a", EventKind::Begin, 100),
                Event::plain("a", EventKind::End, 900),
            ],
            dropped: 0,
        }];
        let text = cable_obs::chrome::chrome_trace(&lanes).to_string();
        let summary = check_chrome_trace(&text).expect("valid");
        assert_eq!(
            summary,
            TraceSummary {
                events: 2,
                lanes: 1
            }
        );
    }

    #[test]
    fn structural_problems_are_reported() {
        assert!(check_chrome_trace("not json").is_err());
        assert!(check_chrome_trace("{}").is_err());
        // Empty traceEvents: no events at all.
        assert!(check_chrome_trace(r#"{"traceEvents": []}"#).is_err());
        // Unbalanced B.
        let unbalanced = r#"{"traceEvents": [
            {"ph": "B", "tid": 1, "ts": 1.0, "name": "x", "pid": 1}
        ]}"#;
        let problems = check_chrome_trace(unbalanced).unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("never closed")),
            "{problems:?}"
        );
        // Backwards timestamps.
        let backwards = r#"{"traceEvents": [
            {"ph": "i", "tid": 1, "ts": 5.0, "name": "x", "pid": 1},
            {"ph": "i", "tid": 1, "ts": 2.0, "name": "y", "pid": 1}
        ]}"#;
        let problems = check_chrome_trace(backwards).unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("backwards")),
            "{problems:?}"
        );
    }

    fn export_with(spans: &str) -> String {
        format!(
            r#"{{"record":"trace_export","traces":[{{"trace":"t1",
                "root":"0000000000000001","spans_tree":[{spans}]}}]}}"#
        )
    }

    fn span(name: &str, span: &str, parent: &str, start: u64, end: u64) -> String {
        format!(
            r#"{{"name":"{name}","span":"{span}","parent":"{parent}",
                "start_ns":{start},"end_ns":{end}}}"#
        )
    }

    #[test]
    fn well_formed_exports_validate() {
        let text = export_with(
            &[
                span(
                    "http.request",
                    "0000000000000001",
                    "0000000000000000",
                    0,
                    100,
                ),
                span("wait.fsync", "0000000000000002", "0000000000000001", 10, 40),
            ]
            .join(","),
        );
        let summary = check_trace_export(&text).expect("valid");
        assert_eq!(
            summary,
            ExportSummary {
                traces: 1,
                spans: 2
            }
        );
    }

    #[test]
    fn export_problems_are_reported() {
        assert!(check_trace_export("{}").is_err());
        // Orphan: parent never recorded.
        let orphan = export_with(
            &[
                span(
                    "http.request",
                    "0000000000000001",
                    "0000000000000000",
                    0,
                    100,
                ),
                span("lost", "0000000000000002", "00000000000000ff", 10, 40),
            ]
            .join(","),
        );
        let problems = check_trace_export(&orphan).unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("orphaned")),
            "{problems:?}"
        );
        // Parent cycle between two spans.
        let cycle = export_with(
            &[
                span(
                    "http.request",
                    "0000000000000001",
                    "0000000000000000",
                    0,
                    100,
                ),
                span("a", "0000000000000002", "0000000000000003", 10, 40),
                span("b", "0000000000000003", "0000000000000002", 10, 40),
            ]
            .join(","),
        );
        let problems = check_trace_export(&cycle).unwrap_err();
        assert!(problems.iter().any(|p| p.contains("cycle")), "{problems:?}");
        // A span that ends before it starts.
        let backwards = export_with(&span(
            "http.request",
            "0000000000000001",
            "0000000000000000",
            100,
            10,
        ));
        let problems = check_trace_export(&backwards).unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("ends before")),
            "{problems:?}"
        );
        // Missing root.
        let rootless = export_with(&span("x", "0000000000000007", "0000000000000000", 0, 10));
        let problems = check_trace_export(&rootless).unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("not in the tree")),
            "{problems:?}"
        );
    }
}
