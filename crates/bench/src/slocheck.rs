//! The CI latency-budget gate: `reproduce slo-check`.
//!
//! The perf gate ([`crate::compare`]) catches *relative* regressions —
//! current vs baseline. This gate enforces *absolute* per-stage latency
//! budgets: a committed JSON file names pipeline histograms and the p95
//! each is allowed, and the check reconstructs every named histogram
//! from a run's final `pipeline_snapshot` record and compares its
//! estimated p95 against the budget. Budgets are deliberately generous
//! (3–5× observed) — the gate exists to catch order-of-magnitude
//! cliffs, not CI-runner noise.

use cable_obs::json::Value;
use cable_obs::HistogramSnapshot;
use std::io;
use std::path::Path;

/// One stage's latency budget: the histogram name and the allowed p95.
#[derive(Debug, Clone, PartialEq)]
pub struct StageBudget {
    /// The pipeline histogram the budget applies to (e.g.
    /// `fca.lattice.build_ns`).
    pub stage: String,
    /// The allowed 95th-percentile latency, in milliseconds.
    pub p95_ms: f64,
}

/// Parses a budget file: `{"stages": {"<histogram>": <p95_ms>, ...}}`.
///
/// # Errors
///
/// Fails if the file cannot be read, is not JSON, or does not hold a
/// `stages` object of numeric budgets.
pub fn load_budgets(path: impl AsRef<Path>) -> io::Result<Vec<StageBudget>> {
    let path = path.as_ref();
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let text = std::fs::read_to_string(path)?;
    let value = Value::parse(text.trim()).map_err(|e| bad(format!("{}: {e}", path.display())))?;
    let stages = value
        .get("stages")
        .ok_or_else(|| bad(format!("{}: no \"stages\" object", path.display())))?;
    let Value::Object(map) = stages else {
        return Err(bad(format!(
            "{}: \"stages\" is not an object",
            path.display()
        )));
    };
    let mut budgets = Vec::with_capacity(map.len());
    for (stage, v) in map {
        let p95_ms = v.as_f64().ok_or_else(|| {
            bad(format!(
                "{}: budget for {stage:?} is not a number",
                path.display()
            ))
        })?;
        // `<= 0.0` also rejects NaN budgets: NaN compares false both ways.
        if p95_ms <= 0.0 || p95_ms.is_nan() {
            return Err(bad(format!(
                "{}: budget for {stage:?} must be positive, got {p95_ms}",
                path.display()
            )));
        }
        budgets.push(StageBudget {
            stage: stage.clone(),
            p95_ms,
        });
    }
    if budgets.is_empty() {
        return Err(bad(format!("{}: \"stages\" is empty", path.display())));
    }
    Ok(budgets)
}

/// One stage's verdict.
#[derive(Debug, Clone)]
pub struct SloCheckRow {
    /// The budgeted histogram name.
    pub stage: String,
    /// Allowed p95 in milliseconds.
    pub budget_ms: f64,
    /// Estimated p95 from the run's histogram, when present.
    pub p95_ms: Option<f64>,
    /// Samples in the histogram.
    pub count: u64,
    /// Whether the stage is within budget.
    pub pass: bool,
}

/// The `slo-check` outcome.
#[derive(Debug, Clone)]
pub struct SloCheckReport {
    /// Per-stage verdicts, in budget-file order.
    pub rows: Vec<SloCheckRow>,
}

impl SloCheckReport {
    /// Whether every budgeted stage is present and within budget.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|r| r.pass)
    }

    /// Renders the report for the CI log.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.rows {
            match r.p95_ms {
                Some(p95) => out.push_str(&format!(
                    "{}: p95 {:.3} ms vs budget {:.3} ms over {} samples — {}\n",
                    r.stage,
                    p95,
                    r.budget_ms,
                    r.count,
                    if r.pass { "ok" } else { "OVER BUDGET" }
                )),
                None => out.push_str(&format!(
                    "{}: histogram missing from the run — FAIL\n",
                    r.stage
                )),
            }
        }
        out.push_str(if self.passed() {
            "slo gate: PASS\n"
        } else {
            "slo gate: FAIL\n"
        });
        out
    }
}

/// Rebuilds a [`HistogramSnapshot`] from the JSONL shape
/// `{"count": c, "sum": s, "max": m, "buckets": [[bound, n], ...]}`.
fn histogram_from_json(v: &Value) -> Option<HistogramSnapshot> {
    let count = v.get("count")?.as_u64()?;
    let sum = v.get("sum")?.as_u64()?;
    let max = v.get("max")?.as_u64()?;
    let pairs: Vec<(u64, u64)> = v
        .get("buckets")?
        .as_array()?
        .iter()
        .filter_map(|pair| {
            let pair = pair.as_array()?;
            Some((pair.first()?.as_u64()?, pair.get(1)?.as_u64()?))
        })
        .collect();
    Some(HistogramSnapshot::from_nonzero_buckets(
        &pairs, count, sum, max,
    ))
}

/// Checks a run's final `pipeline_snapshot` against the budgets. A
/// budgeted stage that is absent from the run, or whose estimated p95
/// exceeds its budget, fails; an *empty* histogram (present, zero
/// samples) passes — the run simply never exercised the stage.
pub fn check(records: &[Value], budgets: &[StageBudget]) -> SloCheckReport {
    let histograms = records
        .iter()
        .rev()
        .find(|r| r.get("record").and_then(Value::as_str) == Some("pipeline_snapshot"))
        .and_then(|r| r.get("snapshot"))
        .and_then(|s| s.get("histograms"));
    let rows = budgets
        .iter()
        .map(|b| {
            let hist = histograms
                .and_then(|h| h.get(&b.stage))
                .and_then(histogram_from_json);
            match hist {
                Some(h) if h.count == 0 => SloCheckRow {
                    stage: b.stage.clone(),
                    budget_ms: b.p95_ms,
                    p95_ms: Some(0.0),
                    count: 0,
                    pass: true,
                },
                Some(h) => {
                    let p95_ms = h.quantile_estimate(0.95) / 1e6;
                    SloCheckRow {
                        stage: b.stage.clone(),
                        budget_ms: b.p95_ms,
                        p95_ms: Some(p95_ms),
                        count: h.count,
                        pass: p95_ms <= b.p95_ms,
                    }
                }
                None => SloCheckRow {
                    stage: b.stage.clone(),
                    budget_ms: b.p95_ms,
                    p95_ms: None,
                    count: 0,
                    pass: false,
                },
            }
        })
        .collect();
    SloCheckReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot_record(stage: &str, samples: &[u64]) -> Value {
        let reg = cable_obs::Registry::default();
        let h = reg.histogram(stage);
        for &s in samples {
            h.record(s);
        }
        Value::object([
            ("record", Value::from("pipeline_snapshot")),
            ("snapshot", reg.snapshot().to_json()),
        ])
    }

    #[test]
    fn within_budget_passes_and_over_budget_fails() {
        // ~1 ms samples against a 10 ms budget: pass.
        let records = vec![snapshot_record("fca.test.build_ns", &[1_000_000; 8])];
        let budgets = vec![StageBudget {
            stage: "fca.test.build_ns".into(),
            p95_ms: 10.0,
        }];
        let report = check(&records, &budgets);
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.rows[0].count, 8);

        // Same samples against a 0.1 ms budget: fail.
        let tight = vec![StageBudget {
            stage: "fca.test.build_ns".into(),
            p95_ms: 0.1,
        }];
        let report = check(&records, &tight);
        assert!(!report.passed());
        assert!(report.render().contains("OVER BUDGET"));
    }

    #[test]
    fn missing_histogram_fails_and_empty_histogram_passes() {
        let records = vec![snapshot_record("fca.test.build_ns", &[])];
        let budgets = vec![
            StageBudget {
                stage: "fca.test.build_ns".into(),
                p95_ms: 1.0,
            },
            StageBudget {
                stage: "no.such.stage_ns".into(),
                p95_ms: 1.0,
            },
        ];
        let report = check(&records, &budgets);
        assert!(!report.passed());
        assert!(report.rows[0].pass, "empty histogram passes");
        assert!(!report.rows[1].pass, "missing histogram fails");
        assert!(report.render().contains("missing from the run"));
    }

    #[test]
    fn budget_file_round_trips() {
        let dir = std::env::temp_dir().join("cable-bench-slocheck-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("budgets-{}.json", std::process::id()));
        std::fs::write(
            &path,
            "{\"stages\": {\"fca.lattice.build_ns\": 50.0, \"strauss.miner.mine_ns\": 20}}\n",
        )
        .unwrap();
        let budgets = load_budgets(&path).unwrap();
        assert_eq!(budgets.len(), 2);
        assert!(budgets
            .iter()
            .any(|b| b.stage == "fca.lattice.build_ns" && b.p95_ms == 50.0));
        std::fs::remove_file(&path).unwrap();

        let bad = dir.join(format!("bad-{}.json", std::process::id()));
        std::fs::write(&bad, "{\"stages\": {\"x\": \"fast\"}}\n").unwrap();
        assert!(load_budgets(&bad).is_err());
        std::fs::write(&bad, "{\"stages\": {}}\n").unwrap();
        assert!(load_budgets(&bad).is_err());
        std::fs::remove_file(&bad).unwrap();
    }
}
