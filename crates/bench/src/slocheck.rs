//! The CI latency-budget gate: `reproduce slo-check`.
//!
//! The perf gate ([`crate::compare`]) catches *relative* regressions —
//! current vs baseline. This gate enforces *absolute* per-stage latency
//! budgets: a committed JSON file names pipeline histograms and the
//! quantile each is allowed, and the check reconstructs every named
//! histogram from a run's final `pipeline_snapshot` record and compares
//! its estimated quantile against the budget. Budgets are deliberately
//! generous (3–5× observed) — the gate exists to catch
//! order-of-magnitude cliffs, not CI-runner noise.
//!
//! A budget is either a bare number (the allowed **p95** in
//! milliseconds — the original format, still accepted) or an object
//! `{"p": 0.99, "ms": 250}` naming the quantile explicitly. The
//! service drill uses the latter: tail latency under concurrent load
//! is a p99 property, not a p95 one.

use cable_obs::json::Value;
use cable_obs::HistogramSnapshot;
use std::io;
use std::path::Path;

/// One stage's latency budget: the histogram name, the quantile the
/// budget applies to, and the allowed value.
#[derive(Debug, Clone, PartialEq)]
pub struct StageBudget {
    /// The pipeline histogram the budget applies to (e.g.
    /// `fca.lattice.build_ns`).
    pub stage: String,
    /// The quantile budgeted, in (0, 1) — 0.95 for a bare-number
    /// budget.
    pub quantile: f64,
    /// The allowed latency at that quantile, in milliseconds.
    pub budget_ms: f64,
}

/// Parses a budget file: `{"stages": {"<histogram>": <p95_ms> |
/// {"p": <quantile>, "ms": <budget_ms>}, ...}}`.
///
/// # Errors
///
/// Fails if the file cannot be read, is not JSON, or does not hold a
/// `stages` object of numeric or `{p, ms}` budgets.
pub fn load_budgets(path: impl AsRef<Path>) -> io::Result<Vec<StageBudget>> {
    let path = path.as_ref();
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let text = std::fs::read_to_string(path)?;
    let value = Value::parse(text.trim()).map_err(|e| bad(format!("{}: {e}", path.display())))?;
    let stages = value
        .get("stages")
        .ok_or_else(|| bad(format!("{}: no \"stages\" object", path.display())))?;
    let Value::Object(map) = stages else {
        return Err(bad(format!(
            "{}: \"stages\" is not an object",
            path.display()
        )));
    };
    let mut budgets = Vec::with_capacity(map.len());
    for (stage, v) in map {
        let (quantile, budget_ms) = match v {
            Value::Object(_) => {
                let p = v.get("p").and_then(Value::as_f64).ok_or_else(|| {
                    bad(format!(
                        "{}: budget for {stage:?} needs a numeric \"p\"",
                        path.display()
                    ))
                })?;
                let ms = v.get("ms").and_then(Value::as_f64).ok_or_else(|| {
                    bad(format!(
                        "{}: budget for {stage:?} needs a numeric \"ms\"",
                        path.display()
                    ))
                })?;
                (p, ms)
            }
            // The original bare-number format budgets the p95.
            _ => {
                let ms = v.as_f64().ok_or_else(|| {
                    bad(format!(
                        "{}: budget for {stage:?} is not a number or {{p, ms}} object",
                        path.display()
                    ))
                })?;
                (0.95, ms)
            }
        };
        if !(quantile > 0.0 && quantile < 1.0) {
            return Err(bad(format!(
                "{}: quantile for {stage:?} must be in (0, 1), got {quantile}",
                path.display()
            )));
        }
        // `<= 0.0` also rejects NaN budgets: NaN compares false both ways.
        if budget_ms <= 0.0 || budget_ms.is_nan() {
            return Err(bad(format!(
                "{}: budget for {stage:?} must be positive, got {budget_ms}",
                path.display()
            )));
        }
        budgets.push(StageBudget {
            stage: stage.clone(),
            quantile,
            budget_ms,
        });
    }
    if budgets.is_empty() {
        return Err(bad(format!("{}: \"stages\" is empty", path.display())));
    }
    Ok(budgets)
}

/// One stage's verdict.
#[derive(Debug, Clone)]
pub struct SloCheckRow {
    /// The budgeted histogram name.
    pub stage: String,
    /// The budgeted quantile.
    pub quantile: f64,
    /// Allowed latency at that quantile, in milliseconds.
    pub budget_ms: f64,
    /// Estimated quantile from the run's histogram, when present.
    pub actual_ms: Option<f64>,
    /// Samples in the histogram.
    pub count: u64,
    /// Whether the stage is within budget.
    pub pass: bool,
}

/// The `slo-check` outcome.
#[derive(Debug, Clone)]
pub struct SloCheckReport {
    /// Per-stage verdicts, in budget-file order.
    pub rows: Vec<SloCheckRow>,
}

impl SloCheckReport {
    /// Whether every budgeted stage is present and within budget.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|r| r.pass)
    }

    /// Renders the report for the CI log.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.rows {
            let label = format!("p{:02.0}", r.quantile * 100.0);
            match r.actual_ms {
                Some(actual) => out.push_str(&format!(
                    "{}: {label} {:.3} ms vs budget {:.3} ms over {} samples — {}\n",
                    r.stage,
                    actual,
                    r.budget_ms,
                    r.count,
                    if r.pass { "ok" } else { "OVER BUDGET" }
                )),
                None => out.push_str(&format!(
                    "{}: histogram missing from the run — FAIL\n",
                    r.stage
                )),
            }
        }
        out.push_str(if self.passed() {
            "slo gate: PASS\n"
        } else {
            "slo gate: FAIL\n"
        });
        out
    }
}

/// Rebuilds a [`HistogramSnapshot`] from the JSONL shape
/// `{"count": c, "sum": s, "max": m, "buckets": [[bound, n], ...]}`.
fn histogram_from_json(v: &Value) -> Option<HistogramSnapshot> {
    let count = v.get("count")?.as_u64()?;
    let sum = v.get("sum")?.as_u64()?;
    let max = v.get("max")?.as_u64()?;
    let pairs: Vec<(u64, u64)> = v
        .get("buckets")?
        .as_array()?
        .iter()
        .filter_map(|pair| {
            let pair = pair.as_array()?;
            Some((pair.first()?.as_u64()?, pair.get(1)?.as_u64()?))
        })
        .collect();
    Some(HistogramSnapshot::from_nonzero_buckets(
        &pairs, count, sum, max,
    ))
}

/// Checks a run's final `pipeline_snapshot` against the budgets. A
/// budgeted stage that is absent from the run, or whose estimated
/// quantile exceeds its budget, fails; an *empty* histogram (present,
/// zero samples) passes — the run simply never exercised the stage.
pub fn check(records: &[Value], budgets: &[StageBudget]) -> SloCheckReport {
    let histograms = records
        .iter()
        .rev()
        .find(|r| r.get("record").and_then(Value::as_str) == Some("pipeline_snapshot"))
        .and_then(|r| r.get("snapshot"))
        .and_then(|s| s.get("histograms"));
    let rows = budgets
        .iter()
        .map(|b| {
            let hist = histograms
                .and_then(|h| h.get(&b.stage))
                .and_then(histogram_from_json);
            match hist {
                Some(h) if h.count == 0 => SloCheckRow {
                    stage: b.stage.clone(),
                    quantile: b.quantile,
                    budget_ms: b.budget_ms,
                    actual_ms: Some(0.0),
                    count: 0,
                    pass: true,
                },
                Some(h) => {
                    let actual_ms = h.quantile_estimate(b.quantile) / 1e6;
                    SloCheckRow {
                        stage: b.stage.clone(),
                        quantile: b.quantile,
                        budget_ms: b.budget_ms,
                        actual_ms: Some(actual_ms),
                        count: h.count,
                        pass: actual_ms <= b.budget_ms,
                    }
                }
                None => SloCheckRow {
                    stage: b.stage.clone(),
                    quantile: b.quantile,
                    budget_ms: b.budget_ms,
                    actual_ms: None,
                    count: 0,
                    pass: false,
                },
            }
        })
        .collect();
    SloCheckReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot_record(stage: &str, samples: &[u64]) -> Value {
        let reg = cable_obs::Registry::default();
        let h = reg.histogram(stage);
        for &s in samples {
            h.record(s);
        }
        Value::object([
            ("record", Value::from("pipeline_snapshot")),
            ("snapshot", reg.snapshot().to_json()),
        ])
    }

    #[test]
    fn within_budget_passes_and_over_budget_fails() {
        // ~1 ms samples against a 10 ms budget: pass.
        let records = vec![snapshot_record("fca.test.build_ns", &[1_000_000; 8])];
        let budgets = vec![StageBudget {
            stage: "fca.test.build_ns".into(),
            quantile: 0.95,
            budget_ms: 10.0,
        }];
        let report = check(&records, &budgets);
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.rows[0].count, 8);

        // Same samples against a 0.1 ms budget: fail.
        let tight = vec![StageBudget {
            stage: "fca.test.build_ns".into(),
            quantile: 0.95,
            budget_ms: 0.1,
        }];
        let report = check(&records, &tight);
        assert!(!report.passed());
        assert!(report.render().contains("OVER BUDGET"));
    }

    #[test]
    fn p99_budget_gates_the_tail_p95_misses() {
        // 97 fast samples and 3 slow ones: the p95 sits in the fast
        // bulk, the p99 in the slow tail.
        let mut samples = vec![1_000_000u64; 97];
        samples.extend([80_000_000, 80_000_000, 80_000_000]);
        let records = vec![snapshot_record("load.test.request_ns", &samples)];
        let p95 = vec![StageBudget {
            stage: "load.test.request_ns".into(),
            quantile: 0.95,
            budget_ms: 10.0,
        }];
        assert!(check(&records, &p95).passed(), "p95 ignores the tail");
        let p99 = vec![StageBudget {
            stage: "load.test.request_ns".into(),
            quantile: 0.99,
            budget_ms: 10.0,
        }];
        let report = check(&records, &p99);
        assert!(!report.passed(), "p99 sees the tail\n{}", report.render());
        assert!(report.render().contains("p99"));
    }

    #[test]
    fn missing_histogram_fails_and_empty_histogram_passes() {
        let records = vec![snapshot_record("fca.test.build_ns", &[])];
        let budgets = vec![
            StageBudget {
                stage: "fca.test.build_ns".into(),
                quantile: 0.95,
                budget_ms: 1.0,
            },
            StageBudget {
                stage: "no.such.stage_ns".into(),
                quantile: 0.95,
                budget_ms: 1.0,
            },
        ];
        let report = check(&records, &budgets);
        assert!(!report.passed());
        assert!(report.rows[0].pass, "empty histogram passes");
        assert!(!report.rows[1].pass, "missing histogram fails");
        assert!(report.render().contains("missing from the run"));
    }

    #[test]
    fn budget_file_round_trips() {
        let dir = std::env::temp_dir().join("cable-bench-slocheck-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("budgets-{}.json", std::process::id()));
        std::fs::write(
            &path,
            "{\"stages\": {\"fca.lattice.build_ns\": 50.0, \"strauss.miner.mine_ns\": 20, \
             \"load.request_ns\": {\"p\": 0.99, \"ms\": 250}}}\n",
        )
        .unwrap();
        let budgets = load_budgets(&path).unwrap();
        assert_eq!(budgets.len(), 3);
        assert!(budgets.iter().any(|b| b.stage == "fca.lattice.build_ns"
            && b.budget_ms == 50.0
            && b.quantile == 0.95));
        assert!(budgets
            .iter()
            .any(|b| b.stage == "load.request_ns" && b.budget_ms == 250.0 && b.quantile == 0.99));
        std::fs::remove_file(&path).unwrap();

        let bad = dir.join(format!("bad-{}.json", std::process::id()));
        std::fs::write(&bad, "{\"stages\": {\"x\": \"fast\"}}\n").unwrap();
        assert!(load_budgets(&bad).is_err());
        std::fs::write(&bad, "{\"stages\": {}}\n").unwrap();
        assert!(load_budgets(&bad).is_err());
        std::fs::write(&bad, "{\"stages\": {\"x\": {\"p\": 1.5, \"ms\": 10}}}\n").unwrap();
        assert!(load_budgets(&bad).is_err(), "quantile out of range");
        std::fs::write(&bad, "{\"stages\": {\"x\": {\"p\": 0.99}}}\n").unwrap();
        assert!(load_budgets(&bad).is_err(), "ms missing");
        std::fs::remove_file(&bad).unwrap();
    }
}
