//! Regeneration of the paper's evaluation tables.

use crate::pipeline::{prepare, PreparedSpec};
use cable_core::strategy;
use cable_fca::{ConceptLattice, Context};
use cable_specs::Registry;
use cable_trace::Trace;
use cable_util::stats;
use cable_verify::Checker;
use std::time::Instant;

/// One row of Table 1: a specification after debugging.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Specification name.
    pub name: String,
    /// English reading.
    pub description: String,
    /// States of the re-mined FA.
    pub states: usize,
    /// Transitions of the re-mined FA.
    pub transitions: usize,
    /// Whether the re-mined FA is language-equivalent to ground truth.
    pub equivalent: bool,
    /// Bugs (violating scenarios) the corrected specification finds in
    /// the workload.
    pub bugs: usize,
    /// Distinct buggy programs.
    pub buggy_programs: usize,
}

/// Regenerates Table 1: debug each specification with Cable (the Expert
/// strategy supplies the labeling), re-mine from the `good` traces, and
/// check the corrected specification against the workload.
pub fn table1(registry: &Registry, seed: u64) -> Vec<Table1Row> {
    registry
        .iter()
        .map(|spec| {
            let mut p = prepare(spec, seed);
            debug_with_expert(&mut p);
            let good: Vec<Trace> = p
                .session
                .traces_with_label("good")
                .into_iter()
                .map(|id| p.session.traces().trace(id).clone())
                .collect();
            let corrected = p.miner.remine(&good);
            let mut vocab = p.vocab.clone();
            let truth = spec.ground_truth(&mut vocab);
            let mut report = Checker::new(corrected.clone()).check(&p.workload, &vocab);
            // Bug counting is scoped like debugging was: uninteresting
            // scenarios (§5.1's removed selection values) are not
            // violations of the corrected specification.
            report.violations = report
                .violations
                .iter()
                .map(|(_, t)| t.clone())
                .filter(|t| spec.is_interesting(t, &vocab))
                .collect();
            let summary = report.bug_summary();
            Table1Row {
                name: p.name.clone(),
                description: spec.description().to_owned(),
                states: corrected.state_count(),
                transitions: corrected.transition_count(),
                equivalent: corrected.equivalent(&truth),
                bugs: summary.total,
                buggy_programs: summary.buggy_programs(),
            }
        })
        .collect()
}

/// Labels every trace of the prepared session using the Expert strategy
/// against the oracle.
///
/// # Panics
///
/// Panics if the labeling is unreachable — the pipeline guarantees a
/// well-formed session, so this indicates a bug.
pub fn debug_with_expert(p: &mut PreparedSpec) {
    let oracle = p.oracle.clone();
    let o = move |t: &Trace| oracle.label(t).to_owned();
    strategy::expert(&mut p.session, &o).expect("pipeline sessions are well-formed");
}

/// One row of Table 2: the cost of concept analysis.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Specification name.
    pub name: String,
    /// Total scenario traces extracted.
    pub traces: usize,
    /// Classes of identical traces (the lattice objects).
    pub unique: usize,
    /// Which reference FA the session used.
    pub reference: String,
    /// Transitions of the reference FA (the attributes).
    pub transitions: usize,
    /// The paper's `k`: the largest attribute set of any object.
    pub max_row: usize,
    /// Concepts in the lattice.
    pub concepts: usize,
    /// Godin build time in milliseconds (best of three, as the paper
    /// reports the shortest of three runs).
    pub build_ms: f64,
    /// Incremental ingest cost: microseconds per trace to append the
    /// last ~20% of the corpus to a saved `cable-store` session through
    /// the journal + `Inserter` path.
    pub ingest_us_per_trace: f64,
    /// Snapshot size in bytes after compacting the full corpus.
    pub store_bytes: u64,
    /// Journal size in bytes after the ingest, before compaction.
    pub journal_bytes: u64,
    /// Whether an installed resource budget stopped the lattice build;
    /// `concepts` then counts the deterministic partial lattice (the CI
    /// budget-determinism gate compares this across `CABLE_PAR` values).
    pub budget_stopped: bool,
}

/// Regenerates Table 2.
pub fn table2(registry: &Registry, seed: u64) -> Vec<Table2Row> {
    table2_with_deltas(registry, seed)
        .into_iter()
        .map(|(row, _)| row)
        .collect()
}

/// Like [`table2`], but each row is paired with the obs counter delta of
/// its timed lattice builds — the per-spec perf record behind
/// `reproduce --json-out`.
///
/// Runs in two phases: every specification's pipeline is prepared in
/// parallel on the [`cable_par`] pool (the expensive fan-out), then the
/// timed Godin builds run sequentially so each measurement is
/// uncontended and each obs delta is attributable to its own spec.
pub fn table2_with_deltas(registry: &Registry, seed: u64) -> Vec<(Table2Row, cable_obs::Snapshot)> {
    let specs: Vec<&cable_specs::SpecDef> = registry.iter().collect();
    let prepared = cable_par::par_map("bench.prepare", &specs, |spec| prepare(spec, seed));
    prepared
        .into_iter()
        .map(|p| {
            let before = cable_obs::registry().snapshot();
            let ctx = p.session.context();
            // Under an installed budget the row measures the *guarded*
            // build: a trip reports the deterministic partial lattice
            // instead, and the timing/store measurements (which would
            // re-trip the budget or measure a truncated corpus) are
            // skipped. Without a budget this is the plain path.
            let (concepts, budget_stopped) = if cable_guard::budget_active() {
                match ConceptLattice::try_build(ctx) {
                    Ok(lattice) => (lattice.len(), false),
                    Err(stop) => (stop.lattice.len(), true),
                }
            } else {
                (p.session.lattice().len(), false)
            };
            let (build_ms, ingest_us_per_trace, store_bytes, journal_bytes) =
                if cable_guard::budget_active() {
                    (0.0, 0.0, 0, 0)
                } else {
                    let build_ms = time_build(ctx);
                    let (ingest, store, journal) = measure_ingest(&p);
                    (build_ms, ingest, store, journal)
                };
            let row = Table2Row {
                name: p.name.clone(),
                traces: p.scenarios.len(),
                unique: p.session.classes().len(),
                reference: p.reference.name(),
                transitions: p.session.reference_fa().transition_count(),
                max_row: ctx.max_row_size(),
                concepts,
                build_ms,
                ingest_us_per_trace,
                store_bytes,
                journal_bytes,
                budget_stopped,
            };
            let delta = cable_obs::registry().snapshot().delta_since(&before);
            (row, delta)
        })
        .collect()
}

/// Measures the `cable-store` incremental path for a prepared spec:
/// saves a session over the first ~80% of the scenarios, ingests the
/// rest through the journal + incremental lattice insert, and compacts.
/// Returns `(µs per ingested trace, compacted snapshot bytes, journal
/// bytes before compaction)`.
fn measure_ingest(p: &PreparedSpec) -> (f64, u64, u64) {
    use std::fmt::Write as _;
    let n = p.scenarios.len();
    if n == 0 {
        return (0.0, 0, 0);
    }
    let split = ((n * 4) / 5).max(1);
    let mut base = cable_trace::TraceSet::new();
    let mut rest_lines = String::new();
    let mut rest_count = 0usize;
    for (i, (_, t)) in p.scenarios.iter().enumerate() {
        if i < split {
            base.push(t.clone());
        } else {
            writeln!(rest_lines, "{}", t.display(&p.vocab)).expect("writing to a String");
            rest_count += 1;
        }
    }
    let session = cable_core::CableSession::new(base, p.session.reference_fa().clone());
    let dir = std::env::temp_dir().join(format!(
        "cable-bench-ingest-{}-{}",
        std::process::id(),
        p.name
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut stored = session
        .save(p.vocab.clone(), &dir)
        .expect("saving the bench store");
    let start = Instant::now();
    if rest_count > 0 {
        // A guard trip (budget ceiling or injected exhaustion) mid-bench
        // tunnels out as the structured error, not an unwind.
        match stored.ingest_text(&rest_lines, false) {
            Ok(_) => {}
            Err(cable_store::StoreError::Guard(e)) => cable_guard::bail(e),
            Err(e) => panic!("ingesting the held-out scenarios: {e}"),
        }
    }
    let elapsed_us = start.elapsed().as_secs_f64() * 1e6;
    // The incremental path must land exactly where the batch build did.
    assert_eq!(stored.session().classes().len(), p.session.classes().len());
    assert_eq!(stored.session().lattice().len(), p.session.lattice().len());
    let journal_bytes = stored.store().journal_bytes().unwrap_or(0);
    stored.compact().expect("compacting the bench store");
    let store_bytes = stored.store().snapshot_bytes().unwrap_or(0);
    let _ = std::fs::remove_dir_all(&dir);
    let per_trace = if rest_count > 0 {
        elapsed_us / rest_count as f64
    } else {
        0.0
    };
    (per_trace, store_bytes, journal_bytes)
}

fn time_build(ctx: &Context) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let lattice = ConceptLattice::build(ctx);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert!(!lattice.is_empty());
        best = best.min(elapsed);
    }
    best
}

/// One row of Table 3: labeling cost by strategy (total Cable
/// operations). `None` means the strategy was not measured (Optimal
/// exceeding its budget, as in the paper's four largest specifications).
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Specification name.
    pub name: String,
    /// Lattice concepts (size indicator).
    pub concepts: usize,
    /// Baseline: `2 × #classes`.
    pub baseline: usize,
    /// Expert heuristic.
    pub expert: Option<usize>,
    /// Best Top-down cost over the trials.
    pub top_down: Option<usize>,
    /// Best Bottom-up cost over the trials.
    pub bottom_up: Option<usize>,
    /// Mean Random cost over the trials.
    pub random_mean: Option<f64>,
    /// Exact optimal cost.
    pub optimal: Option<usize>,
}

/// Regenerates Table 3. `random_trials` follows the paper (1024) but may
/// be lowered for quick runs; Top-down/Bottom-up use `best_trials` runs
/// and report the lowest cost.
pub fn table3(
    registry: &Registry,
    seed: u64,
    best_trials: usize,
    random_trials: usize,
    optimal_budget: usize,
) -> Vec<Table3Row> {
    registry
        .iter()
        .map(|spec| {
            let mut p = prepare(spec, seed);
            let oracle = p.oracle.clone();
            let o = move |t: &Trace| oracle.label(t).to_owned();
            let baseline = strategy::baseline(&p.session).total();
            let concepts = p.session.lattice().len();
            let expert = strategy::expert(&mut p.session, &o).map(|c| c.total());
            let top_down =
                strategy::best_of(&mut p.session, &o, strategy::top_down, best_trials, seed)
                    .map(|(best, _)| best);
            let bottom_up =
                strategy::best_of(&mut p.session, &o, strategy::bottom_up, best_trials, seed)
                    .map(|(best, _)| best);
            // Scale the Random trial count down for the big lattices, as
            // the paper scaled its own measurements ("the program we
            // wrote to evaluate these strategies took too long to run").
            let trials = if concepts <= 48 {
                random_trials
            } else if concepts <= 128 {
                random_trials / 4
            } else {
                random_trials / 16
            }
            .max(8);
            let random_mean = strategy::best_of(&mut p.session, &o, strategy::random, trials, seed)
                .map(|(_, mean)| mean);
            let optimal = strategy::optimal(&mut p.session, &o, optimal_budget).map(|c| c.total());
            Table3Row {
                name: p.name.clone(),
                concepts,
                baseline,
                expert,
                top_down,
                bottom_up,
                random_mean,
                optimal,
            }
        })
        .collect()
}

/// One point of the §5.2 scaling experiment.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Attributes (FA transitions) in the synthetic context.
    pub transitions: usize,
    /// Objects in the context.
    pub objects: usize,
    /// Concepts in the lattice.
    pub concepts: usize,
    /// Godin build time in milliseconds.
    pub build_ms: f64,
}

/// The §5.2 scaling sweep: synthetic contexts with the shape of the real
/// ones (each object has at most `k ≈ 8` attributes) and a growing
/// attribute universe. The paper observes lattice size roughly linear in
/// the number of FA transitions, and time slightly worse than linear.
pub fn scaling(seed: u64) -> Vec<ScalingRow> {
    use cable_util::rng::Rng;
    let mut rows = Vec::new();
    for &n_attrs in &[4usize, 8, 12, 16, 20, 24, 32, 40] {
        let mut rng = cable_util::rng::seeded(cable_util::rng::derive_seed(seed, n_attrs as u64));
        let n_objects = 150;
        let mut ctx = Context::new(n_objects, n_attrs);
        for o in 0..n_objects {
            // Like the real data: a contiguous-ish protocol core plus a
            // few optional attributes, at most ~8 per object.
            let k = rng.gen_range(2..=8usize.min(n_attrs));
            let base = rng.gen_range(0..n_attrs);
            for i in 0..k {
                ctx.add(o, (base + i * i + rng.gen_range(0..3usize)) % n_attrs);
            }
        }
        let build_ms = time_build(&ctx);
        let lattice = ConceptLattice::build(&ctx);
        rows.push(ScalingRow {
            transitions: n_attrs,
            objects: n_objects,
            concepts: lattice.len(),
            build_ms,
        });
    }
    rows
}

/// Fits `concepts = a + b·transitions` over scaling rows, returning
/// `(a, b, r²)`.
pub fn scaling_fit(rows: &[ScalingRow]) -> Option<(f64, f64, f64)> {
    let pts: Vec<(f64, f64)> = rows
        .iter()
        .map(|r| (r.transitions as f64, r.concepts as f64))
        .collect();
    let (a, b) = stats::linear_fit(&pts)?;
    Some((a, b, stats::r_squared(&pts, a, b)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_registry() -> Registry {
        let reg = cable_specs::registry();
        let names = ["XOpenDisplay", "Quarks", "RmvTimeOut"];
        Registry::from_specs(
            reg.iter()
                .filter(|s| names.contains(&s.name()))
                .cloned()
                .collect(),
        )
    }

    #[test]
    fn table1_smoke() {
        let rows = table1(&small_registry(), 5);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.states >= 2, "{}", r.name);
            assert!(r.bugs > 0, "{}: errors were injected", r.name);
            assert!(r.buggy_programs <= r.bugs, "{}", r.name);
        }
    }

    #[test]
    fn table3_smoke() {
        let rows = table3(&small_registry(), 5, 4, 16, 50_000);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            let baseline = r.baseline;
            assert_eq!(baseline % 2, 0, "{}: 2 ops per class", r.name);
            for cost in [r.expert, r.top_down, r.bottom_up, r.optimal] {
                let c = cost.unwrap_or_else(|| panic!("{}: strategy failed", r.name));
                assert!(c >= 2, "{}", r.name);
            }
            let opt = r.optimal.unwrap();
            assert!(opt <= r.expert.unwrap(), "{}", r.name);
            assert!(opt <= r.top_down.unwrap(), "{}", r.name);
            assert!(opt <= r.bottom_up.unwrap(), "{}", r.name);
            assert!(opt as f64 <= r.random_mean.unwrap(), "{}", r.name);
        }
    }

    #[test]
    fn table2_rows_are_consistent() {
        let reg = cable_specs::registry();
        for row in table2(&reg, 3) {
            assert!(row.traces >= row.unique, "{}", row.name);
            assert!(row.concepts >= 1, "{}", row.name);
            assert!(row.max_row <= row.transitions, "{}", row.name);
            assert!(row.build_ms < 22_000.0, "{}: paper bound", row.name);
            assert!(row.store_bytes > 0, "{}: compacted snapshot", row.name);
            // Header plus the ingested trace records.
            assert!(row.journal_bytes >= 16, "{}", row.name);
        }
    }

    #[test]
    fn scaling_is_roughly_linear() {
        let rows = scaling(9);
        assert_eq!(rows.len(), 8);
        let (_, b, r2) = scaling_fit(&rows).unwrap();
        assert!(b > 0.0, "lattice grows with transitions");
        assert!(r2 > 0.5, "roughly linear (r² = {r2})");
    }

    #[test]
    fn expert_debugging_labels_everything() {
        let reg = cable_specs::registry();
        let spec = reg.spec("XOpenDisplay").unwrap();
        let mut p = prepare(spec, 3);
        debug_with_expert(&mut p);
        assert!(p.session.all_labeled());
    }
}
