//! The CI perf-regression gate: comparing `reproduce --json-out` runs.
//!
//! Two modes, both consuming the JSONL perf records `reproduce table2
//! --json-out` writes:
//!
//! * [`compare`] — baseline vs current. Count fields (`traces`, `unique`,
//!   `transitions`, `max_row`, `concepts`) and the reference-FA choice
//!   are compared at zero tolerance: any drift is a correctness
//!   regression and fails the gate outright. Wall time (the summed
//!   `build_ms`) is compared against a percentage tolerance, so noisy CI
//!   runners don't flake the gate.
//! * [`diff`] — determinism check between two runs of the same seed at
//!   different worker counts. Timing (`build_ms`) and the obs deltas are
//!   stripped, `pipeline_snapshot` records are ignored, and everything
//!   left must be byte-identical.

use cable_obs::json::Value;
use cable_obs::parse_jsonl;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Fields of a `table2_spec` record that must never drift between runs
/// of the same seed — a change here is a correctness regression, not a
/// perf one.
const COUNT_FIELDS: [&str; 5] = ["traces", "unique", "transitions", "max_row", "concepts"];

/// Record fields [`diff`] strips before comparing: everything that
/// legitimately varies between runs of the same seed. (`store_bytes`
/// and `journal_bytes` are *not* here — the store encoding is
/// deterministic, so size drift is a real difference.)
const TIMING_FIELDS: [&str; 8] = [
    "build_ms",
    "ingest_us_per_trace",
    "obs",
    "profile",
    "duration_ns",
    "ts_ms",
    "uptime_ns",
    "trace",
];

/// Record types [`diff`] ignores wholesale: observability side-channels
/// whose timing content varies run to run by design.
const IGNORED_RECORDS: [&str; 6] = [
    "pipeline_snapshot",
    "wide_event",
    "profile_snapshot",
    "trace_export",
    "trace_attribution",
    "trace_slowest",
];

/// Loads a JSONL perf-record file written by `reproduce --json-out`.
///
/// # Errors
///
/// Fails if the file cannot be read or any line is not valid JSON.
pub fn load(path: impl AsRef<Path>) -> io::Result<Vec<Value>> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)?;
    parse_jsonl(&text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })
}

/// The outcome of a [`compare`] run.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Human-readable gate failures; empty means the gate passes.
    pub failures: Vec<String>,
    /// Summed `build_ms` over the baseline's spec records.
    pub baseline_total_ms: f64,
    /// Summed `build_ms` over the current run's spec records.
    pub current_total_ms: f64,
}

impl CompareReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the report for the CI log.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "total build time: baseline {:.2} ms, current {:.2} ms ({:+.1}%)\n",
            self.baseline_total_ms,
            self.current_total_ms,
            if self.baseline_total_ms > 0.0 {
                (self.current_total_ms - self.baseline_total_ms) / self.baseline_total_ms * 100.0
            } else {
                0.0
            }
        ));
        if self.passed() {
            out.push_str("perf gate: PASS\n");
        } else {
            for f in &self.failures {
                out.push_str(&format!("FAIL: {f}\n"));
            }
        }
        out
    }
}

/// Indexes the `table2_spec` records of a run by specification name.
fn spec_records(records: &[Value]) -> BTreeMap<&str, &Value> {
    records
        .iter()
        .filter(|r| r.get("record").and_then(Value::as_str) == Some("table2_spec"))
        .filter_map(|r| r.get("spec").and_then(Value::as_str).map(|name| (name, r)))
        .collect()
}

/// Compares a current perf run against a committed baseline.
///
/// Count fields and the reference-FA choice fail on any drift; total
/// wall time fails when the current run is more than `tolerance_percent`
/// slower than the baseline.
pub fn compare(baseline: &[Value], current: &[Value], tolerance_percent: f64) -> CompareReport {
    let base = spec_records(baseline);
    let cur = spec_records(current);
    let mut failures = Vec::new();
    if base.is_empty() {
        failures.push("baseline has no table2_spec records".to_owned());
    }
    for name in base.keys() {
        if !cur.contains_key(name) {
            failures.push(format!("spec {name} missing from current run"));
        }
    }
    for name in cur.keys() {
        if !base.contains_key(name) {
            failures.push(format!("spec {name} absent from baseline"));
        }
    }
    for (name, b) in &base {
        let Some(c) = cur.get(name) else { continue };
        for field in COUNT_FIELDS {
            let bv = b.get(field).and_then(Value::as_u64);
            let cv = c.get(field).and_then(Value::as_u64);
            if bv != cv {
                failures.push(format!(
                    "spec {name}: {field} drifted {} -> {} (counts are compared at zero tolerance)",
                    fmt_count(bv),
                    fmt_count(cv)
                ));
            }
        }
        let br = b.get("reference").and_then(Value::as_str);
        let cr = c.get("reference").and_then(Value::as_str);
        if br != cr {
            failures.push(format!(
                "spec {name}: reference FA changed {br:?} -> {cr:?}"
            ));
        }
    }
    let baseline_total_ms = total_build_ms(&base);
    let current_total_ms = total_build_ms(&cur);
    let limit = baseline_total_ms * (1.0 + tolerance_percent / 100.0);
    if baseline_total_ms > 0.0 && current_total_ms > limit {
        failures.push(format!(
            "total build time regressed: {current_total_ms:.2} ms > {baseline_total_ms:.2} ms \
             + {tolerance_percent}% tolerance ({limit:.2} ms)"
        ));
    }
    CompareReport {
        failures,
        baseline_total_ms,
        current_total_ms,
    }
}

fn fmt_count(v: Option<u64>) -> String {
    v.map(|x| x.to_string()).unwrap_or_else(|| "missing".into())
}

fn total_build_ms(specs: &BTreeMap<&str, &Value>) -> f64 {
    specs
        .values()
        .filter_map(|r| r.get("build_ms").and_then(Value::as_f64))
        .sum()
}

/// Strips the fields that legitimately vary between runs (timing, obs
/// deltas) from a record, leaving the deterministic payload.
fn strip_timing(record: &Value) -> Value {
    match record {
        Value::Object(map) => Value::Object(
            map.iter()
                .filter(|(k, _)| !TIMING_FIELDS.contains(&k.as_str()))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        ),
        other => other.clone(),
    }
}

/// Checks two perf runs for bit-identical deterministic output.
///
/// `pipeline_snapshot`, `wide_event`, and `profile_snapshot` records are
/// ignored and timing fields stripped; every remaining record must match
/// its counterpart exactly. Returns a human-readable description of each
/// difference; empty means the runs are identical.
pub fn diff(a: &[Value], b: &[Value]) -> Vec<String> {
    let keep = |records: &[Value]| -> Vec<Value> {
        records
            .iter()
            .filter(|r| {
                !r.get("record")
                    .and_then(Value::as_str)
                    .is_some_and(|kind| IGNORED_RECORDS.contains(&kind))
            })
            .map(strip_timing)
            .collect()
    };
    let a = keep(a);
    let b = keep(b);
    let mut out = Vec::new();
    if a.len() != b.len() {
        out.push(format!("record counts differ: {} vs {}", a.len(), b.len()));
    }
    for (i, (ra, rb)) in a.iter().zip(&b).enumerate() {
        if ra != rb {
            let name = ra
                .get("spec")
                .and_then(Value::as_str)
                .map(|s| format!("spec {s}"))
                .unwrap_or_else(|| format!("record {i}"));
            out.push(format!("{name} differs:\n  a: {ra}\n  b: {rb}"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, concepts: u64, build_ms: f64) -> Value {
        Value::object([
            ("record", Value::from("table2_spec")),
            ("seed", Value::from(2003u64)),
            ("spec", Value::from(name)),
            ("traces", Value::from(70u64)),
            ("unique", Value::from(12u64)),
            ("reference", Value::from("mined")),
            ("transitions", Value::from(9u64)),
            ("max_row", Value::from(7u64)),
            ("concepts", Value::from(concepts)),
            ("build_ms", Value::from(build_ms)),
            ("obs", Value::object([("counters", Value::object([]))])),
        ])
    }

    fn snapshot() -> Value {
        Value::object([
            ("record", Value::from("pipeline_snapshot")),
            ("snapshot", Value::object([])),
        ])
    }

    #[test]
    fn identical_runs_pass_at_zero_tolerance() {
        let run = vec![spec("A", 20, 1.0), spec("B", 31, 2.0), snapshot()];
        let report = compare(&run, &run, 0.0);
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(report.baseline_total_ms, 3.0);
    }

    #[test]
    fn count_drift_fails_regardless_of_tolerance() {
        let base = vec![spec("A", 20, 1.0)];
        let cur = vec![spec("A", 21, 1.0)];
        let report = compare(&base, &cur, 1000.0);
        assert!(!report.passed());
        assert!(report.failures[0].contains("concepts drifted 20 -> 21"));
    }

    #[test]
    fn slowdown_within_tolerance_passes() {
        let base = vec![spec("A", 20, 10.0)];
        let cur = vec![spec("A", 20, 12.0)];
        assert!(compare(&base, &cur, 25.0).passed());
    }

    #[test]
    fn slowdown_beyond_tolerance_fails() {
        let base = vec![spec("A", 20, 10.0)];
        let cur = vec![spec("A", 20, 13.0)];
        let report = compare(&base, &cur, 25.0);
        assert!(!report.passed());
        assert!(report.failures[0].contains("regressed"));
    }

    #[test]
    fn speedups_always_pass() {
        let base = vec![spec("A", 20, 10.0)];
        let cur = vec![spec("A", 20, 1.0)];
        assert!(compare(&base, &cur, 0.0).passed());
    }

    #[test]
    fn missing_and_extra_specs_fail() {
        let base = vec![spec("A", 20, 1.0), spec("B", 30, 1.0)];
        let cur = vec![spec("A", 20, 1.0), spec("C", 5, 1.0)];
        let report = compare(&base, &cur, 25.0);
        let text = report.failures.join("\n");
        assert!(text.contains("spec B missing from current run"), "{text}");
        assert!(text.contains("spec C absent from baseline"), "{text}");
    }

    #[test]
    fn diff_ignores_timing_and_snapshots() {
        let a = vec![spec("A", 20, 1.0), snapshot()];
        let b = vec![spec("A", 20, 99.0)]; // different timing, no snapshot
        assert!(diff(&a, &b).is_empty());
    }

    #[test]
    fn diff_ignores_wide_events_and_profile_snapshots() {
        // A stray wide event or profiler tick in one run's record stream
        // (they normally go to their own files) must not break the
        // determinism gate: both are wall-clock artifacts, not payload.
        let event = Value::object([
            ("record", Value::from("wide_event")),
            ("seq", Value::from(1u64)),
            ("kind", Value::from("ingest_batch")),
        ]);
        let tick = Value::object([
            ("record", Value::from("profile_snapshot")),
            ("seq", Value::from(1u64)),
        ]);
        let a = vec![spec("A", 20, 1.0), event, tick];
        let b = vec![spec("A", 20, 1.0)];
        assert!(diff(&a, &b).is_empty());
        assert!(diff(&b, &a).is_empty());
    }

    #[test]
    fn diff_reports_payload_differences() {
        let a = vec![spec("A", 20, 1.0)];
        let b = vec![spec("A", 21, 1.0)];
        let d = diff(&a, &b);
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("spec A differs"), "{}", d[0]);
    }

    #[test]
    fn load_round_trips_a_sink_file() {
        let dir = std::env::temp_dir().join("cable-bench-compare-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("records-{}.jsonl", std::process::id()));
        let sink = cable_obs::JsonlSink::create(&path).unwrap();
        let records = vec![spec("A", 20, 1.0), snapshot()];
        for r in &records {
            sink.write(r).unwrap();
        }
        drop(sink);
        assert_eq!(load(&path).unwrap(), records);
        std::fs::remove_file(&path).unwrap();
    }
}
