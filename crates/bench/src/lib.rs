//! The experiment harness: regenerates every table of the paper's
//! evaluation (§5) plus the §5.2 scaling observation.
//!
//! * [`table1`] — the seventeen specifications after debugging: FA sizes,
//!   ground-truth equivalence, and the bug counts the corrected
//!   specifications find (the paper's "199 bugs" claim);
//! * [`table2`] — the cost of concept analysis: trace counts, unique
//!   classes, reference-FA transitions, lattice sizes and Godin build
//!   times;
//! * [`table3`] — the labeling cost of every §4.2 strategy against the
//!   Baseline;
//! * [`scaling`] — lattice size and build time as the number of FA
//!   transitions grows (§5.2: "roughly linear");
//! * [`mutmatrix`] — the mutation matrix: every surviving cable-mutate
//!   mutant of the three protocol families debugged as the buggy
//!   reference spec of a full Cable session (`reproduce mutants`).
//!
//! Run `cargo run -p cable-bench --bin reproduce -- all` to print
//! everything.

pub mod ablation;
pub mod compare;
pub mod harness;
pub mod mutmatrix;
pub mod pipeline;
pub mod slocheck;
pub mod tables;
pub mod tracecheck;
pub mod tracereport;

pub use ablation::{
    coring_sweep, dedup_ablation, hac_comparison, learner_sweep, CoringReport, DedupRow, HacRow,
    LearnerRow,
};
pub use mutmatrix::{mutation_matrix, MutationRow, MutationSummary};
pub use pipeline::{extract_scenarios, prepare, PreparedSpec, ReferenceFaChoice};
pub use tables::{
    scaling, table1, table2, table2_with_deltas, table3, ScalingRow, Table1Row, Table2Row,
    Table3Row,
};
pub use tracecheck::{check_chrome_trace, check_trace_export, ExportSummary, TraceSummary};
pub use tracereport::{analyze as trace_report, StageSplit, TraceReport};
