//! Regenerates the paper's evaluation tables.
//!
//! ```text
//! reproduce [table1|table2|table3|scaling|coring|ablation|mutants|all]
//!           [--seed N] [--threads N] [--quick] [--stats] [--json-out PATH]
//!           [--mutants-per-family N]
//!           [--trace-out PATH] [--obs-listen ADDR]
//!           [--deadline-ms N] [--max-concepts N] [--faults SEED:SPEC]
//! reproduce compare --baseline PATH --current PATH [--tolerance PCT]
//! reproduce diff PATH PATH
//! reproduce check-trace PATH
//! reproduce trace-report --export PATH [--min-coverage PCT] [--json-out PATH]
//! reproduce check-events PATH
//! reproduce slo-check --records PATH --budgets PATH
//! ```
//!
//! `--quick` lowers the Random-strategy trial count (the paper uses
//! 1024) and the Optimal search budget for a fast smoke run.
//! `--threads N` sizes the cable-par pool (same effect as `CABLE_PAR=N`;
//! `1` forces the sequential path).
//!
//! `--stats` prints the cable-obs metric report (with the self-time
//! profile) after the tables, and `--json-out PATH` writes
//! machine-readable JSONL perf records (conventionally
//! `BENCH_pipeline.json`): one `table2_spec` record per specification
//! when table2 runs, then one final `pipeline_snapshot` record with the
//! whole metric registry and profile. `--trace-out PATH` exports the
//! flight recorder as Chrome trace-event JSON (load it in Perfetto),
//! and `--obs-listen ADDR` serves `/metrics`, `/healthz`, and `/tracez`
//! while the run lasts. All four flags enable span timing and the
//! flight recorder; so does `CABLE_OBS=1`.
//!
//! `--deadline-ms N` / `--max-concepts N` install a cable-guard resource
//! budget for the run: table2 then reports the guarded lattice build,
//! with `budget_stopped: true` and the deterministic partial concept
//! count in the JSONL record when the budget trips (the timing and
//! store measurements are skipped). The CI budget-determinism gate runs
//! table2 this way under different `CABLE_PAR` values and `diff`s the
//! records. `--faults SEED:SPEC` (or `CABLE_FAULTS`) installs the
//! deterministic fault-injection plane, as in the `cable` binary.
//!
//! `mutants` (not part of `all`) runs the mutation matrix: for each
//! protocol family (Locking, FdLife, SockLife) the seeded cable-mutate
//! engine derives `--mutants-per-family` surviving mutants of the
//! ground-truth FA (default 36, so 108 total; 8 with `--quick`), and
//! each mutant is debugged as the buggy reference spec of a Cable
//! session over the family's corpus. With `--json-out` every run emits
//! one timing-free `mutation_row` record plus a final `mutation_summary`
//! whose `equivalent_survivors` count must be zero — the CI mutation
//! drill greps for it and `diff`s two runs at different `CABLE_PAR`.
//!
//! `compare` is the CI perf-regression gate: exits non-zero when the
//! current run's counts drift from the baseline at all, or its total
//! build time regresses beyond the tolerance (percent, default 25).
//! `diff` is the CI determinism gate: exits non-zero unless the two
//! record files are identical once timing is stripped.
//! `check-trace` structurally validates a trace file, sniffing its
//! shape: a `--trace-out` export must be JSON with a `traceEvents`
//! array, matched B/E pairs and non-decreasing timestamps per lane, and
//! at least one event on every lane; a `/tracez/export` dump must hold
//! well-formed span trees (closed spans, acyclic parents, every span
//! reachable from its request root). `trace-report` then attributes
//! each kept request's wall time to named stages (queue / lock-wait /
//! fsync / serialization / lattice / handler) by self-time under the
//! nearest categorised ancestor, singles out the p99 request with its
//! critical path, and writes the `trace_attribution` record; with
//! `--min-coverage PCT` it fails unless the stages explain at least
//! that much of the p99 request's wall time.
//!
//! `--events-out PATH` writes the wide-event log (one self-describing
//! JSONL record per unit of work) alongside the run; `check-events`
//! validates such a file against the event schema (every record parses
//! and carries a scope id and outcome). `slo-check` is the CI
//! latency-budget gate: it reconstructs the per-stage histograms from a
//! `--json-out` file's final `pipeline_snapshot` and fails when any
//! stage's estimated p95 exceeds its committed budget (see
//! `SLO_budgets.json`).

use cable_bench::tables::scaling_fit;
use cable_bench::{compare, scaling, table1, table2_with_deltas, table3};
use cable_obs::json::Value;
use cable_obs::JsonlSink;
use std::env;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compare") => run_compare(&args[1..]),
        Some("diff") => run_diff(&args[1..]),
        Some("check-trace") => run_check_trace(&args[1..]),
        Some("trace-report") => run_trace_report(&args[1..]),
        Some("check-events") => run_check_events(&args[1..]),
        Some("slo-check") => run_slo_check(&args[1..]),
        _ => {}
    }
    let mut which = Vec::new();
    let mut seed = 2003u64; // PLDI 2003.
    let mut quick = false;
    let mut stats = false;
    let mut json_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut events_out: Option<String> = None;
    let mut obs_listen: Option<String> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut max_concepts: Option<u64> = None;
    let mut faults: Option<String> = None;
    let mut mutants_per_family: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--threads" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs an integer"));
                cable_par::configure(n);
            }
            "--quick" => quick = true,
            "--stats" => stats = true,
            "--json-out" => {
                i += 1;
                json_out = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--json-out needs a path")),
                );
            }
            "--trace-out" => {
                i += 1;
                trace_out = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--trace-out needs a path")),
                );
            }
            "--events-out" => {
                i += 1;
                events_out = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--events-out needs a path")),
                );
            }
            "--obs-listen" => {
                i += 1;
                obs_listen = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--obs-listen needs an address or port")),
                );
            }
            "--deadline-ms" => {
                i += 1;
                deadline_ms = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--deadline-ms needs an integer")),
                );
            }
            "--max-concepts" => {
                i += 1;
                max_concepts = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--max-concepts needs an integer")),
                );
            }
            "--faults" => {
                i += 1;
                faults = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--faults needs a spec (seed:kind@site[,...])")),
                );
            }
            "--mutants-per-family" => {
                i += 1;
                mutants_per_family = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|n| *n > 0)
                        .unwrap_or_else(|| usage("--mutants-per-family needs a positive integer")),
                );
            }
            "table1" | "table2" | "table3" | "scaling" | "coring" | "ablation" | "mutants"
            | "all" => which.push(args[i].clone()),
            other => usage(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    cable_obs::init_from_env();
    if let Some(spec) = &faults {
        cable_guard::faults::install(spec).unwrap_or_else(|e| usage(&format!("--faults: {e}")));
    } else if let Err(e) = cable_guard::init_from_env() {
        die(&format!("CABLE_FAULTS: {e}"));
    }
    let _budget_guard = cable_guard::Budget {
        deadline: deadline_ms.map(std::time::Duration::from_millis),
        max_concepts,
        ..Default::default()
    }
    .install();
    if stats || json_out.is_some() || trace_out.is_some() || obs_listen.is_some() {
        cable_obs::set_enabled(true);
        cable_obs::recorder::set_recording(true);
    }
    if let Some(path) = &events_out {
        let sink = JsonlSink::create(path).unwrap_or_else(|e| {
            eprintln!("error: cannot create {path}: {e}");
            std::process::exit(2);
        });
        cable_obs::events::install_sink(sink);
    }
    let _server = obs_listen.as_deref().map(|addr| {
        let server = cable_obs::ObsServer::bind(addr).unwrap_or_else(|e| die(&e));
        eprintln!("obs: serving http://{}/metrics", server.addr());
        server.spawn()
    });
    let sink = json_out.as_deref().map(|path| {
        JsonlSink::create(path).unwrap_or_else(|e| {
            eprintln!("error: cannot create {path}: {e}");
            std::process::exit(2);
        })
    });
    if which.is_empty() {
        which.push("all".to_owned());
    }
    let all = which.iter().any(|w| w == "all");
    let registry = cable_specs::registry();
    let (random_trials, optimal_budget) = if quick { (64, 50_000) } else { (1024, 500_000) };

    // No-panic boundary: a genuine panic anywhere in the table runs
    // (including injected `--faults` panics at cable-par task
    // boundaries) surfaces as a structured error + exit code, not an
    // unwind. Budget trips inside table2 are handled gracefully further
    // down; only an unexpected unwind lands here.
    let contained = cable_guard::contain(|| {
        if all || which.iter().any(|w| w == "table1") {
            println!("## Table 1: specifications after debugging (seed {seed})\n");
            println!("| spec | states | transitions | ≡ ground truth | bugs | buggy programs | description |");
            println!("|---|---|---|---|---|---|---|");
            let rows = table1(&registry, seed);
            let mut total_bugs = 0;
            for r in &rows {
                println!(
                    "| {} | {} | {} | {} | {} | {} | {} |",
                    r.name,
                    r.states,
                    r.transitions,
                    if r.equivalent { "yes" } else { "no" },
                    r.bugs,
                    r.buggy_programs,
                    r.description
                );
                total_bugs += r.bugs;
            }
            println!("\ntotal bugs found by the corrected specifications: {total_bugs}\n");
        }

        if all || which.iter().any(|w| w == "table2") {
            println!("## Table 2: cost of concept analysis (seed {seed})\n");
            println!(
            "| spec | traces | unique | reference FA | transitions | k | concepts | build (ms) | \
             ingest (µs/trace) | store (bytes) |"
        );
            println!("|---|---|---|---|---|---|---|---|---|---|");
            let rows_with_deltas = table2_with_deltas(&registry, seed);
            if let Some(sink) = &sink {
                for (r, delta) in &rows_with_deltas {
                    let record = Value::object([
                        ("record", Value::from("table2_spec")),
                        ("seed", Value::from(seed)),
                        ("spec", Value::from(r.name.as_str())),
                        ("traces", Value::from(r.traces)),
                        ("unique", Value::from(r.unique)),
                        ("reference", Value::from(r.reference.as_str())),
                        ("transitions", Value::from(r.transitions)),
                        ("max_row", Value::from(r.max_row)),
                        ("concepts", Value::from(r.concepts)),
                        ("build_ms", Value::from(r.build_ms)),
                        ("ingest_us_per_trace", Value::from(r.ingest_us_per_trace)),
                        ("store_bytes", Value::from(r.store_bytes)),
                        ("journal_bytes", Value::from(r.journal_bytes)),
                        ("budget_stopped", Value::from(r.budget_stopped)),
                        ("obs", delta.to_json()),
                    ]);
                    sink.write(&record).expect("writing perf record");
                }
            }
            let rows: Vec<_> = rows_with_deltas.into_iter().map(|(r, _)| r).collect();
            let mut max_ms = 0.0f64;
            for r in &rows {
                println!(
                    "| {} | {} | {} | {} | {} | {} | {}{} | {:.2} | {:.1} | {} |",
                    r.name,
                    r.traces,
                    r.unique,
                    r.reference,
                    r.transitions,
                    r.max_row,
                    r.concepts,
                    if r.budget_stopped { "*" } else { "" },
                    r.build_ms,
                    r.ingest_us_per_trace,
                    r.store_bytes
                );
                max_ms = max_ms.max(r.build_ms);
            }
            if rows.iter().any(|r| r.budget_stopped) {
                println!("\n\\* budget stopped the build; concepts counts the partial lattice");
            }
            println!("\nlongest lattice construction: {max_ms:.2} ms (paper: < 22 s)\n");
            // The paper's linear-size observation over the real specs.
            let pts: Vec<(f64, f64)> = rows
                .iter()
                .map(|r| (r.transitions as f64, r.concepts as f64))
                .collect();
            if let Some((a, b)) = cable_util::stats::linear_fit(&pts) {
                let r2 = cable_util::stats::r_squared(&pts, a, b);
                println!("lattice size vs transitions: concepts ≈ {a:.1} + {b:.2}·transitions (r² = {r2:.2})\n");
            }
        }

        if all || which.iter().any(|w| w == "table3") {
            println!("## Table 3: labeling cost by strategy (seed {seed})\n");
            println!(
                "| spec | concepts | Baseline | Expert | Top-down | Bottom-up | Random | Optimal |"
            );
            println!("|---|---|---|---|---|---|---|---|");
            let rows = table3(&registry, seed, 16, random_trials, optimal_budget);
            let mut expert_total = 0usize;
            let mut baseline_total = 0usize;
            let mut best_ratio: Option<(f64, String, usize, usize)> = None;
            for r in &rows {
                println!(
                    "| {} | {} | {} | {} | {} | {} | {} | {} |",
                    r.name,
                    r.concepts,
                    r.baseline,
                    fmt_opt(r.expert),
                    fmt_opt(r.top_down),
                    fmt_opt(r.bottom_up),
                    r.random_mean
                        .map(|m| format!("{m:.1}"))
                        .unwrap_or_else(|| "—".into()),
                    fmt_opt(r.optimal),
                );
                if let Some(e) = r.expert {
                    expert_total += e;
                    baseline_total += r.baseline;
                    let ratio = e as f64 / r.baseline as f64;
                    if best_ratio.as_ref().is_none_or(|(b, _, _, _)| ratio < *b) {
                        best_ratio = Some((ratio, r.name.clone(), e, r.baseline));
                    }
                }
            }
            println!(
            "\nExpert/Baseline over all specs: {expert_total}/{baseline_total} = {:.2} (paper: < 1/3 on average)",
            expert_total as f64 / baseline_total as f64
        );
            if let Some((ratio, name, e, b)) = best_ratio {
                println!("best case: {name} needed {e} decisions vs {b} by hand (ratio {ratio:.2}; paper: 28 vs 224)\n");
            }
        }

        if all || which.iter().any(|w| w == "coring") {
            println!("## §6 ablation: coring vs Cable (seed {seed})\n");
            println!("Coring drops transitions below a frequency threshold; no threshold");
            println!("separates errors from correct traces the way Cable does.\n");
            let thresholds = [1u64, 2, 4, 8, 16, 32];
            for name in ["XOpenDisplay", "FilePair", "XtFree"] {
                let spec = registry.spec(name).expect("known spec");
                let report = cable_bench::coring_sweep(spec, seed, &thresholds);
                println!(
                    "### {} ({} bad classes, {} good classes)\n",
                    report.name, report.total_bad, report.total_good
                );
                println!("| method | errors kept | good classes lost |");
                println!("|---|---|---|");
                for row in &report.sweep {
                    println!(
                        "| coring ≥ {} | {} | {} |",
                        row.threshold, row.errors_kept, row.good_lost
                    );
                }
                println!(
                    "| **Cable** | **{}** | **{}** |\n",
                    report.cable_errors_kept, report.cable_good_lost
                );
            }
        }

        if all || which.iter().any(|w| w == "ablation") {
            println!(
                "## §5.2 ablation: lattice over all traces vs representatives (seed {seed})\n"
            );
            println!("| spec | traces | unique | concepts | all (ms) | dedup (ms) | speedup |");
            println!("|---|---|---|---|---|---|---|");
            for name in ["FilePair", "XtFree", "RegionsBig"] {
                let spec = registry.spec(name).expect("known spec");
                let row = cable_bench::dedup_ablation(spec, seed);
                println!(
                    "| {} | {} | {} | {} | {:.2} | {:.2} | {:.1}× |",
                    row.name,
                    row.traces,
                    row.unique,
                    row.concepts,
                    row.all_ms,
                    row.dedup_ms,
                    row.all_ms / row.dedup_ms.max(1e-6)
                );
            }
            println!("\n## §2.1 ablation: sk-strings granularity dial (FilePair good traces)\n");
            println!("| k | s% | states | transitions | ≡ ground truth |");
            println!("|---|---|---|---|---|");
            let spec = registry.spec("FilePair").expect("known spec");
            for row in cable_bench::learner_sweep(spec, seed) {
                println!(
                    "| {} | {:.0} | {} | {} | {} |",
                    row.k,
                    row.s_percent,
                    row.states,
                    row.transitions,
                    if row.equivalent { "yes" } else { "no" }
                );
            }
            println!();
            println!("## §6 comparison: concept lattice vs Jaccard-HAC dendrogram\n");
            println!(
                "Minimum cluster decisions to realise the oracle labeling (lower is better).\n"
            );
            println!("| spec | classes | lattice | HAC single | HAC complete | HAC average |");
            println!("|---|---|---|---|---|---|");
            for name in ["FilePair", "XtFree", "XInternAtom", "XFreeGC"] {
                let spec = registry.spec(name).expect("known spec");
                let row = cable_bench::hac_comparison(spec, seed, optimal_budget);
                println!(
                    "| {} | {} | {} | {} | {} | {} |",
                    row.name,
                    row.classes,
                    fmt_opt(row.lattice),
                    row.hac_single,
                    row.hac_complete,
                    row.hac_average
                );
            }
            println!();
        }

        if all || which.iter().any(|w| w == "scaling") {
            println!("## §5.2 scaling: lattice size and time vs FA transitions (seed {seed})\n");
            println!("| transitions | objects | concepts | build (ms) |");
            println!("|---|---|---|---|");
            let rows = scaling(seed);
            for r in &rows {
                println!(
                    "| {} | {} | {} | {:.2} |",
                    r.transitions, r.objects, r.concepts, r.build_ms
                );
            }
            if let Some((a, b, r2)) = scaling_fit(&rows) {
                println!("\nfit: concepts ≈ {a:.1} + {b:.2}·transitions (r² = {r2:.2})\n");
            }
        }

        // Not part of `all`: the matrix is its own CI gate (the
        // mutation drill) and would skew the perf-baseline comparisons.
        if which.iter().any(|w| w == "mutants") {
            let per_family = mutants_per_family.unwrap_or(if quick { 8 } else { 36 });
            println!(
                "## Mutation matrix: debugging generated buggy specs (seed {seed}, \
                 {per_family} mutants/family)\n"
            );
            println!(
                "| family | # | operator | witness | len | classes | concepts | \
                 Baseline | Expert | saved |"
            );
            println!("|---|---|---|---|---|---|---|---|---|---|");
            let (rows, summary) = cable_bench::mutation_matrix(seed, per_family);
            for r in &rows {
                println!(
                    "| {} | {} | {} | `{}` | {} | {} | {} | {} | {} | {} |",
                    r.family,
                    r.mutant,
                    r.kind,
                    r.witness,
                    r.witness_len,
                    r.unique,
                    r.concepts,
                    r.baseline,
                    fmt_opt(r.expert),
                    fmt_opt(r.saved),
                );
            }
            println!(
                "\n{} survivors across {} families ({} candidates drawn, {} filtered as \
                 equivalent); {} re-verified equivalent survivors (must be 0); Expert reached \
                 the oracle labeling on {}/{} runs\n",
                summary.mutants,
                summary.families,
                summary.candidates,
                summary.filtered,
                summary.equivalent_survivors,
                summary.expert_solved,
                summary.mutants,
            );
            if let Some(sink) = &sink {
                for r in &rows {
                    let record = Value::object([
                        ("record", Value::from("mutation_row")),
                        ("seed", Value::from(seed)),
                        ("family", Value::from(r.family.as_str())),
                        ("mutant", Value::from(r.mutant)),
                        ("kind", Value::from(r.kind)),
                        ("description", Value::from(r.description.as_str())),
                        ("witness", Value::from(r.witness.as_str())),
                        ("witness_len", Value::from(r.witness_len)),
                        (
                            "parent_accepts_witness",
                            Value::from(r.parent_accepts_witness),
                        ),
                        ("traces", Value::from(r.traces)),
                        ("unique", Value::from(r.unique)),
                        ("transitions", Value::from(r.transitions)),
                        ("concepts", Value::from(r.concepts)),
                        ("baseline", Value::from(r.baseline)),
                        ("expert", opt_value(r.expert)),
                        ("saved", opt_value(r.saved)),
                    ]);
                    sink.write(&record).expect("writing mutation row");
                }
                let record = Value::object([
                    ("record", Value::from("mutation_summary")),
                    ("seed", Value::from(seed)),
                    ("per_family", Value::from(per_family)),
                    ("families", Value::from(summary.families)),
                    ("mutants", Value::from(summary.mutants)),
                    ("candidates", Value::from(summary.candidates)),
                    ("filtered", Value::from(summary.filtered)),
                    (
                        "equivalent_survivors",
                        Value::from(summary.equivalent_survivors),
                    ),
                    ("expert_solved", Value::from(summary.expert_solved)),
                ]);
                sink.write(&record).expect("writing mutation summary");
            }
        }
    });
    if let Err(e) = contained {
        eprintln!("error: {e}");
        let code = match e {
            cable_guard::GuardError::BudgetExceeded { .. } => 4,
            _ => 5,
        };
        std::process::exit(code);
    }

    let snap = cable_obs::registry().snapshot();
    let lanes = cable_obs::recorder::snapshot();
    let profile = cable_obs::chrome::self_time(&lanes);
    if let Some(sink) = &sink {
        let record = Value::object([
            ("record", Value::from("pipeline_snapshot")),
            ("seed", Value::from(seed)),
            ("snapshot", snap.to_json()),
            ("profile", cable_obs::chrome::profile_json(&profile)),
        ]);
        sink.write(&record).expect("writing final snapshot");
        sink.flush().expect("flushing perf records");
    }
    if let Some(path) = &trace_out {
        let trace = cable_obs::chrome::chrome_trace(&lanes);
        std::fs::write(path, format!("{trace}\n"))
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        eprintln!(
            "obs: wrote Chrome trace with {} lanes to {path} (open in Perfetto)",
            lanes.len()
        );
    }
    if let Some(path) = &events_out {
        // Dropping the sink flushes it; report how much the run logged.
        let total = cable_obs::events::total_emitted();
        drop(cable_obs::events::take_sink());
        eprintln!("obs: wrote {total} wide events to {path}");
    }
    if stats {
        println!("{}", snap.render());
        print!("{}", cable_obs::chrome::render_profile(&profile));
        let scopes = cable_obs::scoped().snapshot();
        print!("{}", cable_obs::render_scopes(&scopes));
    }
}

/// The `check-trace` subcommand: the structural trace gate CI runs.
/// Sniffs the file shape — a Chrome trace-event export (`--trace-out`)
/// gets the Perfetto-loadability check, a `/tracez/export` dump gets
/// the span-tree well-formedness check.
fn run_check_trace(args: &[String]) -> ! {
    let [path] = args else {
        usage("check-trace needs exactly one trace path");
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    let is_export = Value::parse(text.trim())
        .ok()
        .and_then(|v| v.get("record").and_then(Value::as_str).map(str::to_owned))
        .as_deref()
        == Some("trace_export");
    let problems = if is_export {
        match cable_bench::check_trace_export(&text) {
            Ok(summary) => {
                println!(
                    "trace gate: PASS ({path}: {} span trees, {} spans, all well-formed)",
                    summary.traces, summary.spans
                );
                std::process::exit(0);
            }
            Err(problems) => problems,
        }
    } else {
        match cable_bench::check_chrome_trace(&text) {
            Ok(summary) => {
                println!(
                    "trace gate: PASS ({path}: {} events across {} lanes)",
                    summary.events, summary.lanes
                );
                std::process::exit(0);
            }
            Err(problems) => problems,
        }
    };
    for p in &problems {
        println!("FAIL: {p}");
    }
    std::process::exit(1);
}

/// The `trace-report` subcommand: critical-path and stage attribution
/// over a `/tracez/export` dump. The `trace_attribution` record it
/// writes is the artifact ROADMAP item 1 (sharded slot map, yes or no)
/// is decided on; `--min-coverage` turns it into a CI gate.
fn run_trace_report(args: &[String]) -> ! {
    let mut export_path: Option<String> = None;
    let mut json_out: Option<String> = None;
    let mut min_coverage: f64 = 0.0;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--export" => {
                i += 1;
                export_path = args.get(i).cloned();
            }
            "--json-out" => {
                i += 1;
                json_out = args.get(i).cloned();
            }
            "--min-coverage" => {
                i += 1;
                min_coverage = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--min-coverage needs a percentage"));
            }
            other => usage(&format!("unknown trace-report argument {other:?}")),
        }
        i += 1;
    }
    let path = export_path.unwrap_or_else(|| usage("trace-report needs --export PATH"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    let export = Value::parse(text.trim()).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    let report =
        cable_bench::trace_report(&export).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    print!("{}", report.render());
    if let Some(out) = json_out {
        let sink = JsonlSink::create(&out).unwrap_or_else(|e| die(&format!("{out}: {e}")));
        sink.write(&report.to_json()).expect("writing attribution");
        sink.flush().expect("flushing attribution");
    }
    if !report.passes(min_coverage) {
        println!(
            "trace-report: FAIL — p99 coverage {:.1}% below the {min_coverage:.1}% gate",
            report.p99.coverage_pct
        );
        std::process::exit(1);
    }
    if min_coverage > 0.0 {
        println!("trace-report: PASS (coverage gate {min_coverage:.1}%)");
    }
    std::process::exit(0);
}

/// The `check-events` subcommand: the CI event-schema gate over a
/// `--events-out` file. Every record must parse as a wide event with a
/// non-empty kind, scope id, and outcome; an empty file fails (a run
/// that logged nothing is a broken event pipeline, not a clean one).
fn run_check_events(args: &[String]) -> ! {
    let [path] = args else {
        usage("check-events needs exactly one events path");
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    let records = cable_obs::parse_jsonl(&text).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    if records.is_empty() {
        println!("FAIL: {path} holds no events");
        std::process::exit(1);
    }
    let mut failures = 0usize;
    for (i, record) in records.iter().enumerate() {
        if let Err(e) = cable_obs::events::check_schema(record) {
            println!("FAIL: {path}:{}: {e}", i + 1);
            failures += 1;
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!(
        "event-schema gate: PASS ({path}: {} events, all self-describing)",
        records.len()
    );
    std::process::exit(0);
}

/// The `slo-check` subcommand: the CI latency-budget gate.
fn run_slo_check(args: &[String]) -> ! {
    let mut records_path: Option<String> = None;
    let mut budgets_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--records" => {
                i += 1;
                records_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--records needs a path")),
                );
            }
            "--budgets" => {
                i += 1;
                budgets_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--budgets needs a path")),
                );
            }
            other => usage(&format!("unknown slo-check argument {other:?}")),
        }
        i += 1;
    }
    let records_path = records_path.unwrap_or_else(|| usage("slo-check needs --records PATH"));
    let budgets_path = budgets_path.unwrap_or_else(|| usage("slo-check needs --budgets PATH"));
    let records = compare::load(&records_path).unwrap_or_else(|e| die(&e.to_string()));
    let budgets =
        cable_bench::slocheck::load_budgets(&budgets_path).unwrap_or_else(|e| die(&e.to_string()));
    let report = cable_bench::slocheck::check(&records, &budgets);
    print!("{}", report.render());
    std::process::exit(if report.passed() { 0 } else { 1 });
}

/// The `compare` subcommand: the CI perf-regression gate.
fn run_compare(args: &[String]) -> ! {
    let mut baseline: Option<String> = None;
    let mut current: Option<String> = None;
    let mut tolerance = 25.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" => {
                i += 1;
                baseline = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--baseline needs a path")),
                );
            }
            "--current" => {
                i += 1;
                current = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--current needs a path")),
                );
            }
            "--tolerance" => {
                i += 1;
                tolerance = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--tolerance needs a number (percent)"));
            }
            other => usage(&format!("unknown compare argument {other:?}")),
        }
        i += 1;
    }
    let baseline = baseline.unwrap_or_else(|| usage("compare needs --baseline PATH"));
    let current = current.unwrap_or_else(|| usage("compare needs --current PATH"));
    let base = compare::load(&baseline).unwrap_or_else(|e| die(&e.to_string()));
    let cur = compare::load(&current).unwrap_or_else(|e| die(&e.to_string()));
    let report = compare::compare(&base, &cur, tolerance);
    print!("{}", report.render());
    std::process::exit(if report.passed() { 0 } else { 1 });
}

/// The `diff` subcommand: the CI determinism gate.
fn run_diff(args: &[String]) -> ! {
    let [a, b] = args else {
        usage("diff needs exactly two record paths");
    };
    let ra = compare::load(a).unwrap_or_else(|e| die(&e.to_string()));
    let rb = compare::load(b).unwrap_or_else(|e| die(&e.to_string()));
    let differences = compare::diff(&ra, &rb);
    if differences.is_empty() {
        println!("determinism gate: PASS ({a} and {b} agree once timing is stripped)");
        std::process::exit(0);
    }
    for d in &differences {
        println!("FAIL: {d}");
    }
    std::process::exit(1);
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn fmt_opt(v: Option<usize>) -> String {
    v.map(|x| x.to_string()).unwrap_or_else(|| "—".into())
}

fn opt_value(v: Option<usize>) -> Value {
    v.map(Value::from).unwrap_or(Value::Null)
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: reproduce [table1|table2|table3|scaling|coring|ablation|mutants|all] [options]\n\
         \u{20}      reproduce compare --baseline PATH --current PATH [--tolerance PCT]\n\
         \u{20}      reproduce diff PATH PATH\n\
         \u{20}      reproduce check-trace PATH\n\
         \u{20}      reproduce trace-report --export PATH [--min-coverage PCT] [--json-out PATH]\n\
         \u{20}      reproduce check-events PATH\n\
         \u{20}      reproduce slo-check --records PATH --budgets PATH\n\
         options:\n\
         \u{20} --seed N          RNG seed for corpus generation (default 2003)\n\
         \u{20} --threads N       size of the cable-par pool (like CABLE_PAR=N; 1 = sequential)\n\
         \u{20} --quick           lower trial counts / search budgets for a fast smoke run\n\
         \u{20} --mutants-per-family N  surviving mutants per protocol family for `mutants`\n\
         \u{20}                   (default 36, or 8 with --quick)\n\
         \u{20} --stats           print the metric report and self-time profile to stdout\n\
         \u{20} --json-out PATH   write JSONL perf records (table2 specs + pipeline snapshot)\n\
         \u{20} --trace-out PATH  export the flight recorder as Chrome trace-event JSON\n\
         \u{20} --events-out PATH write the wide-event log as JSONL (one record per unit of work)\n\
         \u{20} --obs-listen ADDR serve /metrics, /healthz, /tracez, /eventz, /sloz while the run lasts\n\
         \u{20}                   (ADDR is host:port, or a bare port bound on 127.0.0.1)\n\
         \u{20} --deadline-ms N   install a wall-clock budget; table2 reports guarded builds\n\
         \u{20} --max-concepts N  install a concept-count budget (deterministic partial lattices)\n\
         \u{20} --faults SPEC     install the fault plane (seed:kind@site[#K|=P][,...]; or CABLE_FAULTS)"
    );
    std::process::exit(2);
}
