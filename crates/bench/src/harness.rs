//! A small wall-clock benchmark harness (the workspace builds offline,
//! so there is no criterion; `harness = false` benches drive this
//! instead).
//!
//! Usage mirrors the criterion group API loosely:
//!
//! ```no_run
//! let mut g = cable_bench::harness::Group::new("lattice/animals");
//! g.bench("godin", || { /* work */ });
//! g.finish();
//! ```
//!
//! Each benchmark is auto-calibrated: the closure is timed once, then run
//! in batches sized to a per-sample budget, and the per-iteration
//! minimum, median, and mean over the samples are printed. The
//! `CABLE_BENCH_BUDGET_MS` environment variable scales the per-sample
//! budget (default 50 ms, 5 samples) for quicker smoke runs.

use std::time::{Duration, Instant};

/// Number of timed samples per benchmark.
const SAMPLES: usize = 5;

fn budget() -> Duration {
    let ms = std::env::var("CABLE_BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(50);
    Duration::from_millis(ms.max(1))
}

/// Per-benchmark timing summary, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Fastest sample — the least-noise estimate.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// Mean over all samples.
    pub mean_ns: f64,
    /// Iterations per sample after calibration.
    pub iters: u64,
}

/// Formats nanoseconds with an appropriate unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// A named group of benchmarks, printed as one table section.
pub struct Group {
    name: String,
    rows: Vec<(String, Stats)>,
}

impl Group {
    /// Starts a group; prints its header immediately so long benches show
    /// progress.
    pub fn new(name: &str) -> Group {
        println!("== {name} ==");
        Group {
            name: name.to_owned(),
            rows: Vec::new(),
        }
    }

    /// Times `f`, auto-calibrating the iteration count to the sample
    /// budget, and prints one row.
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) -> Stats {
        // Calibration: one untimed warmup, then estimate the cost.
        f();
        let t0 = Instant::now();
        f();
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (budget().as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let stats = Stats {
            min_ns: samples[0],
            median_ns: samples[SAMPLES / 2],
            mean_ns: samples.iter().sum::<f64>() / SAMPLES as f64,
            iters,
        };
        println!(
            "  {name:<28} min {:>10}  median {:>10}  mean {:>10}  ({} iters/sample)",
            fmt_ns(stats.min_ns),
            fmt_ns(stats.median_ns),
            fmt_ns(stats.mean_ns),
            stats.iters
        );
        self.rows.push((name.to_owned(), stats));
        stats
    }

    /// Returns the recorded rows.
    pub fn rows(&self) -> &[(String, Stats)] {
        &self.rows
    }

    /// Ends the group.
    pub fn finish(self) {
        println!("-- {}: {} benchmarks --\n", self.name, self.rows.len());
    }
}
