//! The shared per-specification experiment pipeline.
//!
//! For each specification: generate the workload, extract scenario traces
//! with Strauss's front end, mine a (buggy) specification, and build a
//! Cable session whose reference FA is — as §2.2 prescribes — the mined
//! FA itself. When the resulting lattice is not well-formed for the
//! oracle labeling (§4.3), we do what the paper's user would do with the
//! Focus command: try the §4.1 templates (unordered, then seed-order
//! around each operation of the alphabet), and as a last resort the
//! exact prefix-tree FA (which recognises each trace class along its own
//! path and is therefore always well-formed).
//!
//! One fidelity tweak: the paper wants a *small* reference FA (§2.1 step
//! 1a, and §5.2's `k` is "typically less than ten"). When the mined FA
//! is much larger than the scenario alphabet, the unordered template is
//! tried first.

use cable_core::CableSession;
use cable_fa::{templates, EventPat, Fa};
use cable_learn::Pta;
use cable_specs::SpecDef;
use cable_strauss::{FrontEnd, Miner};
use cable_trace::{Trace, TraceSet, Vocab};
use cable_workload::Oracle;

/// Which reference FA the pipeline ended up clustering with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReferenceFaChoice {
    /// The mined specification FA (§2.2's default).
    Mined,
    /// The unordered template of §4.1.
    Unordered,
    /// The seed-order template of §4.1 around the named operation.
    SeedOrder(String),
    /// The exact prefix-tree acceptor (always well-formed).
    Exact,
}

impl ReferenceFaChoice {
    /// A short display name.
    pub fn name(&self) -> String {
        match self {
            ReferenceFaChoice::Mined => "mined".into(),
            ReferenceFaChoice::Unordered => "unordered".into(),
            ReferenceFaChoice::SeedOrder(op) => format!("seed-order({op})"),
            ReferenceFaChoice::Exact => "exact".into(),
        }
    }
}

/// Everything the table generators need about one prepared
/// specification.
#[derive(Debug)]
pub struct PreparedSpec {
    /// The specification name.
    pub name: String,
    /// The vocabulary shared by traces and automata.
    pub vocab: Vocab,
    /// The raw program traces.
    pub workload: Vec<Trace>,
    /// The extracted scenario traces.
    pub scenarios: TraceSet,
    /// The mined (pre-debugging) specification.
    pub mined_fa: Fa,
    /// The Cable session (already built: context + lattice).
    pub session: CableSession,
    /// Which reference FA the session uses.
    pub reference: ReferenceFaChoice,
    /// The reference-labeling oracle.
    pub oracle: Oracle,
    /// The miner (for re-mining labelled traces).
    pub miner: Miner,
}

impl PreparedSpec {
    /// The oracle as a label function for the strategy API.
    pub fn oracle_fn(&self) -> impl Fn(&Trace) -> String + '_ {
        move |t| self.oracle.label(t).to_owned()
    }
}

/// Extracts the interesting scenario traces from a generated workload.
///
/// §5.1: "we removed some traces before debugging three specifications …
/// The removed traces had an uninteresting selection value."
pub fn extract_scenarios(spec: &SpecDef, workload: &[Trace], vocab: &Vocab) -> TraceSet {
    FrontEnd::new(spec.seeds())
        .extract_all(workload, vocab)
        .iter()
        .map(|(_, t)| t.clone())
        .filter(|t| spec.is_interesting(t, vocab))
        .collect()
}

/// Runs the pipeline for one specification.
pub fn prepare(spec: &SpecDef, seed: u64) -> PreparedSpec {
    let mut vocab = Vocab::new();
    let workload = spec.generate(seed, &mut vocab);
    let miner = Miner::new(spec.seeds());
    let scenarios = extract_scenarios(spec, &workload, &vocab);
    let mined_fa = miner.back.mine_set(&scenarios);
    let oracle = spec.oracle(&mut vocab);
    let scenario_list: Vec<Trace> = scenarios.iter().map(|(_, t)| t.clone()).collect();
    let alphabet = templates::distinct_event_pats(&scenario_list);

    let mut candidates: Vec<(ReferenceFaChoice, Fa)> = Vec::new();
    let mined_is_small = mined_fa.transition_count() <= 3 * alphabet.len().max(1);
    let unordered = (
        ReferenceFaChoice::Unordered,
        templates::unordered(&alphabet),
    );
    let mined = (ReferenceFaChoice::Mined, mined_fa.clone());
    let seed_orders = alphabet.iter().map(|pat| {
        (
            ReferenceFaChoice::SeedOrder(seed_name(pat, &vocab)),
            templates::seed_order(&alphabet, pat),
        )
    });
    if mined_is_small {
        // §2.2: "the inferred FA is usually a good starting point".
        candidates.push(mined);
        candidates.push(unordered);
        candidates.extend(seed_orders);
    } else {
        // The mined FA "makes unnecessarily fine distinctions": prefer
        // the small templates, keeping the mined FA as a late fallback.
        candidates.push(unordered);
        candidates.extend(seed_orders);
        candidates.push(mined);
    }
    candidates.push((ReferenceFaChoice::Exact, Pta::build(&scenario_list).to_fa()));

    let mut chosen = None;
    for (choice, fa) in candidates {
        let session = CableSession::new(scenarios.clone(), fa);
        if session.is_well_formed_for(|t| oracle.label(t)) {
            chosen = Some((choice, session));
            break;
        }
    }
    let (reference, session) = chosen.expect("the exact PTA reference is always well-formed");
    PreparedSpec {
        name: spec.name().to_owned(),
        vocab,
        workload,
        scenarios,
        mined_fa,
        session,
        reference,
        oracle,
        miner,
    }
}

fn seed_name(pat: &EventPat, vocab: &Vocab) -> String {
    vocab.op_name(pat.op).to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_spec_prepares_to_a_well_formed_session() {
        for spec in cable_specs::registry().iter() {
            let p = prepare(spec, 11);
            assert!(!p.scenarios.is_empty(), "{}", p.name);
            assert!(
                p.session.is_well_formed_for(|t| p.oracle.label(t)),
                "{}",
                p.name
            );
            // The session clusters exactly the scenario classes.
            assert_eq!(
                p.session.classes().len(),
                p.scenarios.identical_classes().len()
            );
        }
    }

    #[test]
    fn mined_fa_accepts_every_scenario() {
        let reg = cable_specs::registry();
        let spec = reg.spec("FilePair").unwrap();
        let p = prepare(spec, 5);
        for (_, t) in p.scenarios.iter() {
            assert!(p.mined_fa.accepts(t), "{}", t.display(&p.vocab));
        }
    }

    #[test]
    fn workloads_contain_errors() {
        // The training runs "often contain errors": the oracle must see
        // both labels on most specs.
        let reg = cable_specs::registry();
        let spec = reg.spec("XtFree").unwrap();
        let p = prepare(spec, 5);
        let mut good = 0;
        let mut bad = 0;
        for (_, t) in p.scenarios.iter() {
            if p.oracle.is_good(t) {
                good += 1;
            } else {
                bad += 1;
            }
        }
        assert!(good > 0 && bad > 0, "good {good} bad {bad}");
    }

    #[test]
    fn uninteresting_selection_scenarios_are_removed() {
        // §5.1's note applies to the three selection specifications.
        let reg = cable_specs::registry();
        for name in ["XGetSelOwner", "XSetSelOwner", "XtOwnSel"] {
            let spec = reg.spec(name).expect("known spec");
            assert!(!spec.uninteresting_atoms.is_empty(), "{name}");
            let p = prepare(spec, 11);
            for (_, t) in p.scenarios.iter() {
                assert!(
                    spec.is_interesting(t, &p.vocab),
                    "{name}: kept {}",
                    t.display(&p.vocab)
                );
            }
            // But the raw extraction does contain them (they were really
            // removed, not never generated).
            let raw = cable_strauss::FrontEnd::new(spec.seeds()).extract_all(&p.workload, &p.vocab);
            assert!(
                raw.iter().any(|(_, t)| !spec.is_interesting(t, &p.vocab)),
                "{name}: nothing to remove"
            );
        }
    }

    #[test]
    fn reference_fas_stay_small() {
        // The paper's §5.2: the `k` bound (attributes per object) is
        // typically small. Allow slack for the specs that need the mined
        // or exact FA, but the template-clustered ones must be tight.
        for spec in cable_specs::registry().iter() {
            let p = prepare(spec, 11);
            let k = p.session.context().max_row_size();
            match p.reference {
                ReferenceFaChoice::Unordered | ReferenceFaChoice::SeedOrder(_) => {
                    assert!(k <= 2 * 12, "{}: k = {k}", p.name);
                }
                _ => {}
            }
        }
    }
}
