//! The mutation matrix: debugging runs over generated buggy specs.
//!
//! Table 2 measures Cable on the paper's seventeen mined specifications.
//! The mutation matrix scales that experiment to *hundreds* of
//! (family, mutant, corpus) triples: each protocol family's ground-truth
//! FA is mutated with the seeded `cable-mutate` operators, every
//! surviving (non-equivalent) mutant becomes the buggy reference
//! specification of a Cable session over the family's generated corpus,
//! and the §4.2 Baseline and Expert strategies are costed against the
//! ground-truth oracle — exactly the situation the paper's user is in
//! when a mined spec disagrees with reality in some unknown way.
//!
//! Every quantity here is deterministic in `(seed, per_family)`: the
//! engine derives one RNG stream per candidate, the corpus is seeded,
//! and the strategies are deterministic, so the rows byte-diff across
//! `CABLE_PAR` settings (the CI mutation drill gates on this).

use crate::pipeline::extract_scenarios;
use cable_core::{strategy, CableSession};
use cable_mutate::{mutants_with_stats, Mutant};
use cable_specs::families::family_specs;
use cable_trace::TraceSet;
use cable_util::rng::derive_seed;
use cable_workload::Oracle;

/// One (family, mutant, corpus) debugging run.
#[derive(Debug, Clone)]
pub struct MutationRow {
    /// The protocol-family name (`Locking`, `FdLife`, `SockLife`).
    pub family: String,
    /// The mutant's index among the family's survivors.
    pub mutant: usize,
    /// The mutation operator that produced it.
    pub kind: &'static str,
    /// Human-readable description of the edit.
    pub description: String,
    /// The minimal distinguishing witness, rendered as a trace.
    pub witness: String,
    /// Witness length in events.
    pub witness_len: usize,
    /// Whether the *parent* (ground truth) accepts the witness — i.e.
    /// whether the mutant rejects good behaviour (true) or accepts bad
    /// behaviour (false).
    pub parent_accepts_witness: bool,
    /// Scenario traces extracted from the corpus.
    pub traces: usize,
    /// Identical-trace classes.
    pub unique: usize,
    /// Transitions in the mutant reference FA.
    pub transitions: usize,
    /// Concepts in the session lattice.
    pub concepts: usize,
    /// Baseline labeling cost (§5.3: 2 × classes).
    pub baseline: usize,
    /// Expert labeling cost; `None` when the mutant's lattice is not
    /// well-formed for the oracle labeling.
    pub expert: Option<usize>,
    /// Decisions saved over the Baseline (when the Expert succeeds).
    pub saved: Option<usize>,
}

/// Aggregates over the whole matrix.
#[derive(Debug, Clone)]
pub struct MutationSummary {
    /// Number of protocol families mutated.
    pub families: usize,
    /// Total surviving mutants (= rows).
    pub mutants: usize,
    /// Total mutation candidates drawn across all families.
    pub candidates: u64,
    /// Candidates filtered as language-equivalent to their parent.
    pub filtered: u64,
    /// Survivors that re-verify as equivalent to their parent — the
    /// engine guarantees this is zero; the CI drill greps for it.
    pub equivalent_survivors: usize,
    /// Rows where the Expert strategy reached the oracle labeling.
    pub expert_solved: usize,
}

/// Runs the full matrix: `per_family` surviving mutants for each of the
/// three protocol families, each debugged against the family's corpus.
pub fn mutation_matrix(seed: u64, per_family: usize) -> (Vec<MutationRow>, MutationSummary) {
    let specs = family_specs();
    let mut rows = Vec::new();
    let mut summary = MutationSummary {
        families: specs.len(),
        mutants: 0,
        candidates: 0,
        filtered: 0,
        equivalent_survivors: 0,
        expert_solved: 0,
    };
    for (fam_idx, spec) in specs.iter().enumerate() {
        let mut vocab = cable_trace::Vocab::new();
        let truth = spec.ground_truth(&mut vocab);
        let (muts, stats) = mutants_with_stats(
            &truth,
            &mut vocab,
            derive_seed(seed, fam_idx as u64),
            per_family,
        );
        summary.candidates += stats.candidates;
        summary.filtered += stats.filtered;
        let workload = spec.generate(seed, &mut vocab);
        let scenarios = extract_scenarios(spec, &workload, &vocab);
        let oracle = spec.oracle(&mut vocab);
        let family_rows = cable_par::par_map_indexed("bench.mutmatrix", &muts, |i, m| {
            debug_mutant(spec.name(), i, m, &scenarios, &oracle, &vocab)
        });
        summary.equivalent_survivors += muts.iter().filter(|m| truth.equivalent(&m.fa)).count();
        summary.mutants += family_rows.len();
        summary.expert_solved += family_rows.iter().filter(|r| r.expert.is_some()).count();
        rows.extend(family_rows);
    }
    (rows, summary)
}

/// Debugs one mutant: builds the Cable session with the mutant as the
/// (buggy) reference FA and costs the Baseline and Expert strategies.
fn debug_mutant(
    family: &str,
    index: usize,
    m: &Mutant,
    scenarios: &TraceSet,
    oracle: &Oracle,
    vocab: &cable_trace::Vocab,
) -> MutationRow {
    let mut session = CableSession::new(scenarios.clone(), m.fa.clone());
    let oracle_fn = |t: &cable_trace::Trace| oracle.label(t).to_owned();
    let baseline = strategy::baseline(&session).total();
    let expert = strategy::expert(&mut session, &oracle_fn).map(|c| c.total());
    MutationRow {
        family: family.to_owned(),
        mutant: index,
        kind: m.kind.name(),
        description: m.description.clone(),
        witness: m.witness_trace.display(vocab).to_string(),
        witness_len: m.witness.len(),
        parent_accepts_witness: m.parent_accepts_witness,
        traces: scenarios.len(),
        unique: session.classes().len(),
        transitions: m.fa.transition_count(),
        concepts: session.lattice().len(),
        baseline,
        expert,
        saved: expert.map(|e| baseline.saturating_sub(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_deterministic_and_filters_equivalents() {
        let (rows_a, summary_a) = mutation_matrix(7, 4);
        let (rows_b, summary_b) = mutation_matrix(7, 4);
        assert_eq!(rows_a.len(), rows_b.len());
        assert_eq!(summary_a.mutants, summary_b.mutants);
        assert_eq!(summary_a.equivalent_survivors, 0);
        assert_eq!(summary_a.families, 3);
        assert_eq!(summary_a.mutants, 12, "4 survivors per family");
        for (a, b) in rows_a.iter().zip(&rows_b) {
            assert_eq!(a.family, b.family);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.witness, b.witness);
            assert_eq!(a.baseline, b.baseline);
            assert_eq!(a.expert, b.expert);
        }
        assert_eq!(summary_b.equivalent_survivors, 0);
    }

    #[test]
    fn rows_carry_nonempty_witnesses_and_costs() {
        let (rows, summary) = mutation_matrix(11, 3);
        assert_eq!(rows.len(), 9);
        assert!(summary.candidates >= summary.mutants as u64);
        for r in &rows {
            assert!(r.witness_len >= 1 || r.witness.is_empty());
            assert!(r.baseline >= 2, "{}: baseline is 2 per class", r.family);
            assert!(r.unique >= 1);
            assert!(r.concepts >= 1);
            if let (Some(e), Some(s)) = (r.expert, r.saved) {
                assert_eq!(s, r.baseline.saturating_sub(e));
            }
        }
    }
}
