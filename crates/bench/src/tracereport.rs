//! Critical-path and stage attribution over `trace_export` records.
//!
//! The tail store (`cable_obs::tail`) keeps complete span trees for
//! slow and errored requests; `/tracez/export` dumps them as one
//! `trace_export` JSON record. This module turns that dump into the
//! answer ROADMAP item 1 actually needs: *where does a slow request's
//! wall time go?* Split into named stages —
//!
//! | stage | spans |
//! |---|---|
//! | `queue` | `wait.queue` (bounded accept queue) |
//! | `lock-wait` | `wait.slots`, `wait.state` (manager mutexes) |
//! | `fsync` | `wait.fsync` (journal durability) |
//! | `serialization` | `parse.*`, `serialize.*` |
//! | `lattice` | `lattice.*`, `core.session.build` (Godin work) |
//! | `handler` | everything else: routing, manager bookkeeping, |
//! |  | uncategorised span self-time |
//!
//! Attribution is **self-time with nearest-categorised-ancestor**:
//! each span's self time (duration minus its children's durations) is
//! charged to the innermost enclosing span that names a stage, so a
//! `lattice.insert` that internally waits on `wait.fsync` charges the
//! fsync time to `fsync`, not `lattice`. Summed over the tree this
//! splits the request root's wall time exhaustively; the *coverage*
//! (attributed time over root wall time) dips below 100% only when
//! spans were dropped at the per-request cap or the tree is damaged —
//! which is exactly what the `--min-coverage` gate is for.
//!
//! The **critical path** is the greedy longest-child chain from the
//! request root: at each span, descend into the child that took
//! longest. For a request that spent its life under one lock or one
//! fsync, that chain names the culprit directly.

use cable_obs::json::Value;
use std::collections::BTreeMap;

/// Stage names in report order. `handler` is the categorised residue:
/// genuine request-handler work that no finer stage claims.
pub const STAGES: [&str; 6] = [
    "queue",
    "lock-wait",
    "fsync",
    "serialization",
    "lattice",
    "handler",
];

/// The stage a span's self time is charged to, or `None` to defer to
/// the nearest categorised ancestor (ultimately `handler`).
fn stage_of(name: &str) -> Option<&'static str> {
    match name {
        "wait.slots" | "wait.state" => Some("lock-wait"),
        "wait.fsync" => Some("fsync"),
        "wait.queue" => Some("queue"),
        _ if name.starts_with("parse.") || name.starts_with("serialize.") => Some("serialization"),
        _ if name.starts_with("lattice.") || name == "core.session.build" => Some("lattice"),
        _ => None,
    }
}

/// One span as read back from a `trace_export` record.
struct Span {
    name: String,
    parent: u64,
    dur_ns: u64,
}

/// One request's attribution: stage split, coverage, critical path.
#[derive(Debug, Clone)]
pub struct StageSplit {
    /// 32-hex-digit trace id.
    pub trace: String,
    /// Route label the request was served under.
    pub route: String,
    /// HTTP status answered.
    pub status: u64,
    /// Root span wall time, microseconds (includes queue wait).
    pub wall_us: u64,
    /// Microseconds charged to each stage, in [`STAGES`] order.
    pub stages: Vec<(&'static str, u64)>,
    /// Attributed time over wall time, percent.
    pub coverage_pct: f64,
    /// Greedy longest-child chain from the root: `(name, µs)`.
    pub critical_path: Vec<(String, u64)>,
}

/// The whole report: every kept tree analysed, the p99 one singled out.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Requests the tail store had seen in total.
    pub seen: u64,
    /// Kept span trees analysed.
    pub analyzed: usize,
    /// Per-stage totals over *all* analysed trees, µs.
    pub aggregate: Vec<(&'static str, u64)>,
    /// The p99-by-wall-time request's split (nearest rank over the
    /// analysed trees).
    pub p99: StageSplit,
}

fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("span tree entry lacks numeric {key:?}"))
}

fn field_hex(v: &Value, key: &str) -> Result<u64, String> {
    let s = v
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("span tree entry lacks hex {key:?}"))?;
    u64::from_str_radix(s, 16).map_err(|_| format!("{key:?} is not hex: {s:?}"))
}

/// Splits one kept tree (`traces[i]` of the export) into stages.
fn split_trace(trace: &Value) -> Result<StageSplit, String> {
    let id = trace
        .get("trace")
        .and_then(Value::as_str)
        .ok_or("trace entry lacks a trace id")?
        .to_owned();
    let root_id = field_hex(trace, "root")?;
    let rows = trace
        .get("spans_tree")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("trace {id} has no spans_tree"))?;
    let mut spans = Vec::with_capacity(rows.len());
    let mut index: BTreeMap<u64, usize> = BTreeMap::new();
    for row in rows {
        let name = row
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("trace {id}: span without a name"))?
            .to_owned();
        let span = field_hex(row, "span")?;
        let parent = field_hex(row, "parent")?;
        let start = field_u64(row, "start_ns")?;
        let end = field_u64(row, "end_ns")?;
        if index.insert(span, spans.len()).is_some() {
            return Err(format!("trace {id}: span id {span:016x} repeats"));
        }
        spans.push(Span {
            name,
            parent,
            dur_ns: end.saturating_sub(start),
        });
    }
    let Some(&root) = index.get(&root_id) else {
        return Err(format!("trace {id}: root span {root_id:016x} missing"));
    };

    // Children lists, then the set reachable from the root — spans
    // orphaned by the per-request cap are excluded so their time is
    // not double-counted against the root's self time.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    for (i, s) in spans.iter().enumerate() {
        if i != root {
            if let Some(&p) = index.get(&s.parent) {
                children[p].push(i);
            }
        }
    }
    let mut reachable = vec![false; spans.len()];
    let mut stack = vec![root];
    while let Some(i) = stack.pop() {
        if std::mem::replace(&mut reachable[i], true) {
            continue;
        }
        stack.extend(children[i].iter().copied());
    }

    // Self time, charged to the nearest categorised ancestor.
    let mut totals: BTreeMap<&'static str, u64> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        if !reachable[i] {
            continue;
        }
        let child_ns: u64 = children[i]
            .iter()
            .filter(|&&c| reachable[c])
            .map(|&c| spans[c].dur_ns)
            .sum();
        let self_ns = s.dur_ns.saturating_sub(child_ns);
        let mut stage = stage_of(&s.name);
        let mut cursor = i;
        while stage.is_none() && cursor != root {
            let Some(&p) = index.get(&spans[cursor].parent) else {
                break;
            };
            cursor = p;
            stage = stage_of(&spans[cursor].name);
        }
        *totals.entry(stage.unwrap_or("handler")).or_insert(0) += self_ns / 1_000;
    }
    let stages: Vec<(&'static str, u64)> = STAGES
        .iter()
        .map(|&s| (s, totals.get(s).copied().unwrap_or(0)))
        .collect();

    let wall_us = trace
        .get("wall_us")
        .and_then(Value::as_u64)
        .unwrap_or(spans[root].dur_ns / 1_000);
    let attributed: u64 = stages.iter().map(|(_, us)| us).sum();
    let coverage_pct = if wall_us == 0 {
        100.0
    } else {
        (attributed as f64 / wall_us as f64) * 100.0
    };

    // Greedy longest-child chain.
    let mut critical_path = Vec::new();
    let mut cursor = root;
    loop {
        critical_path.push((spans[cursor].name.clone(), spans[cursor].dur_ns / 1_000));
        let next = children[cursor]
            .iter()
            .copied()
            .filter(|&c| reachable[c])
            .max_by_key(|&c| spans[c].dur_ns);
        match next {
            Some(c) if critical_path.len() < 64 => cursor = c,
            _ => break,
        }
    }

    Ok(StageSplit {
        trace: id,
        route: trace
            .get("route")
            .and_then(Value::as_str)
            .unwrap_or("-")
            .to_owned(),
        status: trace.get("status").and_then(Value::as_u64).unwrap_or(0),
        wall_us,
        stages,
        coverage_pct,
        critical_path,
    })
}

/// Analyses a `trace_export` record.
///
/// # Errors
///
/// Returns a message when the export is not a `trace_export` record,
/// holds no kept trees, or a tree is structurally damaged (repeated
/// span ids, missing root).
pub fn analyze(export: &Value) -> Result<TraceReport, String> {
    if export.get("record").and_then(Value::as_str) != Some("trace_export") {
        return Err("not a trace_export record".to_owned());
    }
    let traces = export
        .get("traces")
        .and_then(Value::as_array)
        .ok_or("trace_export has no traces array")?;
    if traces.is_empty() {
        return Err("trace_export holds no kept span trees (was tracing on?)".to_owned());
    }
    let mut splits = traces
        .iter()
        .map(split_trace)
        .collect::<Result<Vec<_>, _>>()?;
    let mut aggregate: BTreeMap<&'static str, u64> = BTreeMap::new();
    for split in &splits {
        for (stage, us) in &split.stages {
            *aggregate.entry(stage).or_insert(0) += us;
        }
    }
    splits.sort_by(|a, b| a.wall_us.cmp(&b.wall_us).then(a.trace.cmp(&b.trace)));
    let rank = ((splits.len() - 1) as f64 * 0.99).round() as usize;
    let p99 = splits[rank.min(splits.len() - 1)].clone();
    Ok(TraceReport {
        seen: export.get("seen").and_then(Value::as_u64).unwrap_or(0),
        analyzed: splits.len(),
        aggregate: STAGES
            .iter()
            .map(|&s| (s, aggregate.get(s).copied().unwrap_or(0)))
            .collect(),
        p99,
    })
}

impl TraceReport {
    /// Whether the p99 request's attribution meets the coverage gate.
    pub fn passes(&self, min_coverage_pct: f64) -> bool {
        self.p99.coverage_pct >= min_coverage_pct
    }

    /// The `trace_attribution` JSONL record.
    pub fn to_json(&self) -> Value {
        let stage_obj = |pairs: &[(&'static str, u64)]| {
            Value::object(
                pairs
                    .iter()
                    .map(|&(s, us)| (s, Value::from(us)))
                    .collect::<Vec<_>>(),
            )
        };
        Value::object([
            ("record", Value::from("trace_attribution")),
            ("seen", Value::from(self.seen)),
            ("analyzed", Value::from(self.analyzed as u64)),
            ("aggregate_us", stage_obj(&self.aggregate)),
            ("p99_trace", Value::from(self.p99.trace.as_str())),
            ("p99_route", Value::from(self.p99.route.as_str())),
            ("p99_status", Value::from(self.p99.status)),
            ("p99_wall_us", Value::from(self.p99.wall_us)),
            ("p99_stages_us", stage_obj(&self.p99.stages)),
            ("p99_coverage_pct", Value::from(self.p99.coverage_pct)),
            (
                "p99_critical_path",
                Value::Array(
                    self.p99
                        .critical_path
                        .iter()
                        .map(|(name, us)| {
                            Value::object([
                                ("name", Value::from(name.as_str())),
                                ("us", Value::from(*us)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// A one-screen human summary for the drill log.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace-report: {} trees analysed ({} requests seen)",
            self.analyzed, self.seen
        );
        let _ = writeln!(
            out,
            "trace-report: p99 request {} ({}, status {}): {}us wall, {:.1}% attributed",
            self.p99.trace,
            self.p99.route,
            self.p99.status,
            self.p99.wall_us,
            self.p99.coverage_pct
        );
        for (stage, us) in &self.p99.stages {
            let pct = if self.p99.wall_us > 0 {
                *us as f64 / self.p99.wall_us as f64 * 100.0
            } else {
                0.0
            };
            let _ = writeln!(out, "trace-report:   {stage:<14} {us:>10} us  {pct:5.1}%");
        }
        let path: Vec<String> = self
            .p99
            .critical_path
            .iter()
            .map(|(name, us)| format!("{name} ({us}us)"))
            .collect();
        let _ = writeln!(out, "trace-report: critical path: {}", path.join(" -> "));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, span: u64, parent: u64, start: u64, end: u64) -> Value {
        Value::object([
            ("name", Value::from(name)),
            ("span", Value::from(format!("{span:016x}"))),
            ("parent", Value::from(format!("{parent:016x}"))),
            ("start_ns", Value::from(start)),
            ("end_ns", Value::from(end)),
        ])
    }

    fn export(traces: Vec<Value>) -> Value {
        Value::object([
            ("record", Value::from("trace_export")),
            ("seen", Value::from(traces.len() as u64)),
            ("traces", Value::Array(traces)),
        ])
    }

    fn tree(id: &str, root: u64, wall_us: u64, spans: Vec<Value>) -> Value {
        Value::object([
            ("trace", Value::from(id)),
            ("root", Value::from(format!("{root:016x}"))),
            ("route", Value::from("/api/sessions/:id/ingest")),
            ("status", Value::from(200u64)),
            ("wall_us", Value::from(wall_us)),
            ("spans_tree", Value::Array(spans)),
        ])
    }

    #[test]
    fn self_time_lands_on_the_nearest_categorised_ancestor() {
        // root[0..100us]: lattice.insert[10..60us] containing
        // wait.fsync[20..40us]; wait.queue[0..10us].
        let t = tree(
            "t1",
            1,
            100,
            vec![
                span("http.request", 1, 0, 0, 100_000),
                span("wait.queue", 2, 1, 0, 10_000),
                span("lattice.insert", 3, 1, 10_000, 60_000),
                span("wait.fsync", 4, 3, 20_000, 40_000),
            ],
        );
        let report = analyze(&export(vec![t])).unwrap();
        let stages: BTreeMap<_, _> = report.p99.stages.iter().copied().collect();
        assert_eq!(stages["queue"], 10);
        assert_eq!(stages["lattice"], 30, "fsync time is not lattice time");
        assert_eq!(stages["fsync"], 20);
        assert_eq!(stages["handler"], 40, "root self time");
        assert!((report.p99.coverage_pct - 100.0).abs() < 0.5);
        assert!(report.passes(95.0));
        // Critical path descends into the longest child chain.
        let names: Vec<&str> = report
            .p99
            .critical_path
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(names, ["http.request", "lattice.insert", "wait.fsync"]);
    }

    #[test]
    fn dropped_subtrees_lower_coverage_and_fail_the_gate() {
        // A child hangs off a parent that never made it into the tree:
        // unreachable, so its time is unattributed and the root's self
        // time does not cover the gap either (wall is queue-widened).
        let t = tree(
            "t2",
            1,
            200, // wall includes 100us the tree cannot explain
            vec![
                span("http.request", 1, 0, 0, 100_000),
                span("wait.fsync", 9, 77, 0, 50_000),
            ],
        );
        let report = analyze(&export(vec![t])).unwrap();
        assert!(report.p99.coverage_pct < 95.0);
        assert!(!report.passes(95.0));
    }

    #[test]
    fn damaged_exports_error() {
        assert!(analyze(&Value::object([("record", Value::from("other"))])).is_err());
        assert!(analyze(&export(vec![])).is_err());
        // Repeated span id.
        let t = tree(
            "t3",
            1,
            10,
            vec![
                span("http.request", 1, 0, 0, 10_000),
                span("a", 2, 1, 0, 1_000),
                span("b", 2, 1, 1_000, 2_000),
            ],
        );
        assert!(analyze(&export(vec![t])).is_err());
        // Missing root.
        let t = tree("t4", 99, 10, vec![span("x", 1, 0, 0, 10_000)]);
        assert!(analyze(&export(vec![t])).is_err());
    }

    #[test]
    fn p99_picks_the_slow_tail_and_record_round_trips() {
        let mut traces = Vec::new();
        for i in 0..100u64 {
            let wall = 1_000 + i * 10; // trace 99 is slowest
            traces.push(tree(
                &format!("t{i:02}"),
                1,
                wall,
                vec![span("http.request", 1, 0, 0, wall * 1_000)],
            ));
        }
        let report = analyze(&export(traces)).unwrap();
        assert_eq!(report.analyzed, 100);
        assert_eq!(report.p99.trace, "t98");
        let json = report.to_json();
        assert_eq!(
            json.get("record").and_then(Value::as_str),
            Some("trace_attribution")
        );
        let reparsed = Value::parse(&json.to_string()).unwrap();
        assert_eq!(
            reparsed.get("p99_trace").and_then(Value::as_str),
            Some("t98")
        );
        assert!(report.render().contains("critical path"));
    }
}
