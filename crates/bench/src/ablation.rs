//! Ablation experiments for the design choices DESIGN.md calls out.
//!
//! * [`coring_sweep`] — §6's motivating claim: the original Strauss
//!   removed errors by *coring* (dropping low-frequency transitions).
//!   "Some buggy traces occurred so frequently that suppressing them
//!   would also suppress valid traces." The sweep shows that no coring
//!   threshold separates good from bad the way a Cable-debugged
//!   specification does.
//! * [`dedup_ablation`] — §5.2 builds the lattice "from representatives
//!   for classes of identical scenarios, rather than from all of the
//!   scenarios". The concept lattice is identical either way (duplicate
//!   rows add no concepts); the ablation measures the construction-time
//!   difference, which is the reason for the optimisation.
//! * [`learner_sweep`] — §2.1 step 1b: "by varying parameters of the
//!   FA-learning algorithm, the author can choose … a large FA that makes
//!   very fine distinctions … or a smaller FA that makes coarser
//!   distinctions". The sweep reports FA size versus sk-strings
//!   parameters.

use crate::pipeline::prepare;
use cable_fca::ConceptLattice;
use cable_learn::SkStrings;
use cable_specs::SpecDef;
use cable_strauss::{BackEnd, Learner};
use cable_trace::Trace;
use std::time::Instant;

/// One point of the coring sweep.
#[derive(Debug, Clone)]
pub struct CoringRow {
    /// The coring threshold (minimum transition frequency kept).
    pub threshold: u64,
    /// Erroneous scenario classes still accepted by the cored FA.
    pub errors_kept: usize,
    /// Correct scenario classes wrongly rejected by the cored FA.
    pub good_lost: usize,
}

/// The coring sweep plus the Cable result for comparison.
#[derive(Debug, Clone)]
pub struct CoringReport {
    /// Specification name.
    pub name: String,
    /// Total erroneous classes in the scenario population.
    pub total_bad: usize,
    /// Total correct classes.
    pub total_good: usize,
    /// The sweep, by increasing threshold.
    pub sweep: Vec<CoringRow>,
    /// Errors kept by the Cable-debugged (re-mined) specification.
    pub cable_errors_kept: usize,
    /// Good classes lost by the Cable-debugged specification.
    pub cable_good_lost: usize,
}

/// Runs the coring sweep for one specification.
pub fn coring_sweep(spec: &SpecDef, seed: u64, thresholds: &[u64]) -> CoringReport {
    let mut p = prepare(spec, seed);
    let reps: Vec<(Trace, bool)> = p
        .scenarios
        .identical_classes()
        .iter()
        .map(|c| {
            let t = p.scenarios.trace(c.representative).clone();
            let good = p.oracle.is_good(&t);
            (t, good)
        })
        .collect();
    let total_good = reps.iter().filter(|(_, g)| *g).count();
    let total_bad = reps.len() - total_good;
    let scenario_list: Vec<Trace> = p.scenarios.iter().map(|(_, t)| t.clone()).collect();

    let sweep = thresholds
        .iter()
        .map(|&threshold| {
            let back = BackEnd {
                learner: Learner::SkStrings(SkStrings::default()),
                coring_threshold: Some(threshold),
            };
            let fa = back.mine(&scenario_list);
            let errors_kept = reps
                .iter()
                .filter(|(t, good)| !good && fa.accepts(t))
                .count();
            let good_lost = reps
                .iter()
                .filter(|(t, good)| *good && !fa.accepts(t))
                .count();
            CoringRow {
                threshold,
                errors_kept,
                good_lost,
            }
        })
        .collect();

    // The Cable route: debug with the Expert strategy and re-mine.
    crate::tables::debug_with_expert(&mut p);
    let good_traces: Vec<Trace> = p
        .session
        .traces_with_label("good")
        .into_iter()
        .map(|id| p.session.traces().trace(id).clone())
        .collect();
    let corrected = p.miner.remine(&good_traces);
    let cable_errors_kept = reps
        .iter()
        .filter(|(t, good)| !good && corrected.accepts(t))
        .count();
    let cable_good_lost = reps
        .iter()
        .filter(|(t, good)| *good && !corrected.accepts(t))
        .count();

    CoringReport {
        name: p.name,
        total_bad,
        total_good,
        sweep,
        cable_errors_kept,
        cable_good_lost,
    }
}

/// One row of the deduplication ablation.
#[derive(Debug, Clone)]
pub struct DedupRow {
    /// Specification name.
    pub name: String,
    /// Total scenario traces.
    pub traces: usize,
    /// Identical classes.
    pub unique: usize,
    /// Lattice size (identical for both variants — asserted).
    pub concepts: usize,
    /// Build time over all traces (ms).
    pub all_ms: f64,
    /// Build time over representatives (ms).
    pub dedup_ms: f64,
}

/// Measures lattice construction over all traces vs representatives.
pub fn dedup_ablation(spec: &SpecDef, seed: u64) -> DedupRow {
    let p = prepare(spec, seed);
    let fa = p.session.reference_fa();
    // Context over all traces.
    let mut full = cable_fca::Context::new(p.scenarios.len(), fa.transition_count());
    for (i, (_, t)) in p.scenarios.iter().enumerate() {
        for a in fa.executed_transitions(t).iter() {
            full.add(i, a);
        }
    }
    let start = Instant::now();
    let full_lattice = ConceptLattice::build(&full);
    let all_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let dedup_lattice = ConceptLattice::build(p.session.context());
    let dedup_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        full_lattice.len(),
        dedup_lattice.len(),
        "duplicate rows never add concepts"
    );
    DedupRow {
        name: p.name,
        traces: p.scenarios.len(),
        unique: p.session.classes().len(),
        concepts: dedup_lattice.len(),
        all_ms,
        dedup_ms,
    }
}

/// One row of the learner parameter sweep.
#[derive(Debug, Clone)]
pub struct LearnerRow {
    /// sk-strings `k`.
    pub k: usize,
    /// sk-strings `s` (percent).
    pub s_percent: f64,
    /// States of the learned FA.
    pub states: usize,
    /// Transitions of the learned FA.
    pub transitions: usize,
    /// Whether it is language-equivalent to ground truth.
    pub equivalent: bool,
}

/// Sweeps sk-strings parameters over one specification's *good*
/// scenarios and reports the learned FA size (the §2.1 granularity
/// dial).
pub fn learner_sweep(spec: &SpecDef, seed: u64) -> Vec<LearnerRow> {
    let mut p = prepare(spec, seed);
    let good: Vec<Trace> = p
        .scenarios
        .iter()
        .map(|(_, t)| t.clone())
        .filter(|t| p.oracle.is_good(t))
        .collect();
    let truth = spec.ground_truth(&mut p.vocab);
    [(1, 50.0), (2, 50.0), (2, 100.0), (3, 100.0), (4, 100.0)]
        .into_iter()
        .map(|(k, s_percent)| {
            let fa = SkStrings { k, s_percent }.learn(&good);
            LearnerRow {
                k,
                s_percent,
                states: fa.state_count(),
                transitions: fa.transition_count(),
                equivalent: fa.equivalent(&truth),
            }
        })
        .collect()
}

/// One row of the §6 clustering-technique comparison: minimum *cluster
/// decisions* (one `Label traces`-style command per cluster) needed to
/// realise the oracle labeling, on the concept lattice vs a Jaccard-HAC
/// dendrogram over the same objects.
#[derive(Debug, Clone)]
pub struct HacRow {
    /// Specification name.
    pub name: String,
    /// Trace classes (objects clustered).
    pub classes: usize,
    /// Minimum commands on the concept lattice (`None` when the Optimal
    /// search budget trips).
    pub lattice: Option<usize>,
    /// Minimum commands on the single-linkage dendrogram.
    pub hac_single: usize,
    /// Minimum commands on the complete-linkage dendrogram.
    pub hac_complete: usize,
    /// Minimum commands on the average-linkage dendrogram.
    pub hac_average: usize,
}

/// Runs the §6 clustering comparison for one specification.
pub fn hac_comparison(spec: &SpecDef, seed: u64, optimal_budget: usize) -> HacRow {
    use cable_fca::hac::{cluster, Linkage};
    let mut p = prepare(spec, seed);
    let class_labels: Vec<String> = p
        .session
        .classes()
        .iter()
        .map(|c| {
            p.oracle
                .label(p.session.traces().trace(c.representative))
                .to_owned()
        })
        .collect();
    let label_of = |o: usize| class_labels[o].clone();
    let ctx = p.session.context().clone();
    let hac_single = cluster(&ctx, Linkage::Single).min_uniform_cover(label_of);
    let hac_complete = cluster(&ctx, Linkage::Complete).min_uniform_cover(label_of);
    let hac_average = cluster(&ctx, Linkage::Average).min_uniform_cover(label_of);
    let oracle = p.oracle.clone();
    let o = move |t: &Trace| oracle.label(t).to_owned();
    // Optimal counts inspect+label per command; divide by two to compare
    // command counts.
    let lattice =
        cable_core::strategy::optimal(&mut p.session, &o, optimal_budget).map(|c| c.total() / 2);
    HacRow {
        name: p.name,
        classes: class_labels.len(),
        lattice,
        hac_single,
        hac_complete,
        hac_average,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coring_never_beats_cable() {
        let reg = cable_specs::registry();
        let spec = reg.spec("XOpenDisplay").expect("known spec");
        let report = coring_sweep(spec, 3, &[1, 2, 4, 8, 16]);
        assert_eq!(report.cable_errors_kept, 0, "Cable rejects every bug");
        assert_eq!(report.cable_good_lost, 0, "Cable keeps every good class");
        // Threshold 1 keeps everything, including the errors.
        assert!(report.sweep[0].errors_kept > 0);
        // Every threshold either keeps errors or loses good traces.
        for row in &report.sweep {
            assert!(
                row.errors_kept > 0 || row.good_lost > 0,
                "threshold {} separated perfectly — the §6 claim would be falsified \
                 for this workload",
                row.threshold
            );
        }
    }

    #[test]
    fn dedup_preserves_lattice() {
        let reg = cable_specs::registry();
        let spec = reg.spec("Quarks").expect("known spec");
        let row = dedup_ablation(spec, 3);
        assert!(row.traces >= row.unique);
        assert!(row.concepts >= 1);
    }

    #[test]
    fn lattice_commands_never_exceed_hac_commands_by_much() {
        // The lattice can exploit overlapping clusters; the dendrogram
        // cannot. On a real spec the lattice optimum should be at most
        // the best dendrogram's cover.
        let reg = cable_specs::registry();
        let spec = reg.spec("XInternAtom").expect("known spec");
        let row = hac_comparison(spec, 3, 200_000);
        let lattice = row.lattice.expect("small enough for optimal");
        let best_hac = row.hac_single.min(row.hac_complete).min(row.hac_average);
        assert!(
            lattice <= best_hac,
            "lattice {lattice} vs best HAC {best_hac}"
        );
    }

    #[test]
    fn finer_parameters_give_no_smaller_fas() {
        let reg = cable_specs::registry();
        let spec = reg.spec("RmvTimeOut").expect("known spec");
        let rows = learner_sweep(spec, 3);
        let coarse = rows.first().expect("nonempty").states;
        let fine = rows.last().expect("nonempty").states;
        assert!(fine >= coarse, "finer settings merge less");
    }
}
