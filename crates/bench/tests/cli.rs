//! Process-level tests of the `reproduce` binary's CLI contract:
//! unknown flags exit 2 with usage (the same discipline `cable`
//! enforces), and `--trace-out` produces a structurally valid Chrome
//! trace with one lane per cable-par worker.

use cable_bench::check_chrome_trace;
use cable_obs::json::Value;
use std::path::PathBuf;
use std::process::{Command, Output};

fn reproduce(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(args)
        .output()
        .expect("reproduce runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cable-bench-cli-{}-{name}", std::process::id()))
}

#[test]
fn unknown_flags_exit_2_with_usage() {
    let out = reproduce(&["table2", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown argument \"--frobnicate\""), "{err}");
    assert!(err.contains("usage:"), "{err}");
    // The usage text documents every flag in one place.
    for flag in [
        "--seed",
        "--threads",
        "--quick",
        "--stats",
        "--json-out",
        "--trace-out",
        "--obs-listen",
    ] {
        assert!(err.contains(flag), "usage must document {flag}: {err}");
    }

    let out = reproduce(&["compare", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));

    let out = reproduce(&["--trace-out"]);
    assert_eq!(out.status.code(), Some(2), "flags without values exit 2");
}

#[test]
fn trace_out_produces_a_valid_chrome_trace_with_worker_lanes() {
    let trace_path = tmp("trace.json");
    let threads = 4;
    let out = reproduce(&[
        "table2",
        "--quick",
        "--seed",
        "2003",
        "--threads",
        &threads.to_string(),
        "--trace-out",
        trace_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let summary = check_chrome_trace(&text)
        .unwrap_or_else(|problems| panic!("trace structurally invalid: {problems:?}"));
    assert!(summary.events > 0);

    // One lane per cable-par worker: with N logical threads the pool
    // spawns N-1 workers named cable-par-0..N-2, and each must appear as
    // a named lane with at least one event (check_chrome_trace already
    // rejected empty lanes).
    let parsed = Value::parse(text.trim()).unwrap();
    let events = parsed.get("traceEvents").and_then(Value::as_array).unwrap();
    let lane_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str)
        })
        .collect();
    for i in 0..threads - 1 {
        let worker = format!("cable-par-{i}");
        assert!(
            lane_names.iter().any(|n| *n == worker),
            "trace misses lane for {worker}: lanes are {lane_names:?}"
        );
    }

    // The shipped validator agrees through the CLI too.
    let out = reproduce(&["check-trace", trace_path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "check-trace failed: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let _ = std::fs::remove_file(&trace_path);
}

#[test]
fn check_trace_rejects_damaged_files() {
    let path = tmp("bad-trace.json");
    std::fs::write(&path, "{\"traceEvents\": \"nope\"}").unwrap();
    let out = reproduce(&["check-trace", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("FAIL"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let _ = std::fs::remove_file(&path);

    let out = reproduce(&["check-trace", "/nonexistent/trace.json"]);
    assert_eq!(out.status.code(), Some(2));
}
