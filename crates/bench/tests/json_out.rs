//! End-to-end test of `reproduce --json-out`: the emitted JSONL must be
//! valid, and its per-spec concept counts must agree with what cable-fca
//! computes directly on the same prepared contexts.

use cable_fca::ConceptLattice;
use cable_obs::json::Value;
use cable_obs::parse_jsonl;
use std::collections::BTreeMap;
use std::process::Command;

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::Number(n) => *n as u64,
        other => panic!("expected a number, got {other:?}"),
    }
}

#[test]
fn reproduce_table2_json_matches_direct_fca() {
    let seed = 2003u64;
    let out = std::env::temp_dir().join(format!("cable-bench-json-{}.jsonl", std::process::id()));
    let status = Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(["table2", "--seed", "2003", "--json-out"])
        .arg(&out)
        .output()
        .expect("running reproduce");
    assert!(
        status.status.success(),
        "reproduce failed: {}",
        String::from_utf8_lossy(&status.stderr)
    );
    let text = std::fs::read_to_string(&out).expect("reading the JSONL output");
    let _ = std::fs::remove_file(&out);

    let records = parse_jsonl(&text).expect("every line parses as JSON");
    assert!(!records.is_empty());

    // Split the stream: per-spec records, then the final whole-registry
    // snapshot.
    let mut per_spec: BTreeMap<String, &Value> = BTreeMap::new();
    let mut snapshots = 0;
    for r in &records {
        match r.get("record").expect("tagged record") {
            Value::String(s) if s == "table2_spec" => {
                let name = match r.get("spec").expect("spec name") {
                    Value::String(n) => n.clone(),
                    other => panic!("spec name not a string: {other:?}"),
                };
                per_spec.insert(name, r);
            }
            Value::String(s) if s == "pipeline_snapshot" => snapshots += 1,
            other => panic!("unknown record tag {other:?}"),
        }
    }
    assert_eq!(snapshots, 1, "exactly one final snapshot record");

    // Every registered spec appears, and its reported concept count is
    // what building the lattice with cable-fca gives on the same
    // prepared context.
    let registry = cable_specs::registry();
    for spec in registry.iter() {
        let record = per_spec
            .get(spec.name())
            .unwrap_or_else(|| panic!("missing record for {}", spec.name()));
        let reported = as_u64(record.get("concepts").expect("concepts field"));
        let prepared = cable_bench::prepare(spec, seed);
        let direct = ConceptLattice::build(prepared.session.context()).len() as u64;
        assert_eq!(
            reported,
            direct,
            "{}: JSON says {reported} concepts, cable-fca builds {direct}",
            spec.name()
        );
        // The embedded obs delta is a snapshot object with counters.
        let obs = record.get("obs").expect("obs delta");
        assert!(obs.get("counters").is_some());
        // Preparing a spec inserts its trace classes into the lattice, so
        // the Godin insertion counter must be at least the class count.
        let inserted = obs
            .get("counters")
            .and_then(|c| c.get("fca.godin.objects_inserted"))
            .map(as_u64)
            .unwrap_or(0);
        assert!(
            inserted >= prepared.session.classes().len() as u64,
            "{}: {} insertions for {} classes",
            spec.name(),
            inserted,
            prepared.session.classes().len()
        );
    }
}
