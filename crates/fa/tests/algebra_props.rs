//! Seeded property tests for the completed automaton algebra: De Morgan
//! identities, `A \ A ≡ ∅`, complement-as-partition, and minimality of
//! the distinguishing witness (checked against bounded enumeration).
//!
//! Each test runs a fixed number of seeded cases, so failures reproduce
//! exactly (`seeded(case)` pins the generator).

use cable_fa::ops::WitnessLetter;
use cable_fa::{Fa, FaBuilder};
use cable_trace::Vocab;
use cable_util::rng::{seeded, Rng, SmallRng};

const CASES: u64 = 150;

/// A small random NFA over `f`/`g` labels: `op(X)` patterns, op-only
/// patterns, and the occasional wildcard.
fn gen_fa(rng: &mut SmallRng, vocab: &mut Vocab) -> Fa {
    let n = rng.gen_range(1usize..=4);
    let mut b = FaBuilder::new();
    let states = b.states(n);
    b.start(states[rng.gen_range(0..n)]);
    let mut any_accept = false;
    for &s in &states {
        if rng.gen_bool(0.4) {
            b.accept(s);
            any_accept = true;
        }
    }
    if !any_accept && rng.gen_bool(0.5) {
        b.accept(states[rng.gen_range(0..n)]);
    }
    for _ in 0..rng.gen_range(0usize..=8) {
        let src = states[rng.gen_range(0..n)];
        let dst = states[rng.gen_range(0..n)];
        let op = if rng.gen_bool(0.5) { "f" } else { "g" };
        match rng.gen_range(0u32..10) {
            9 => {
                b.wildcard(src, dst);
            }
            k if k < 6 => {
                b.event_var(src, op, dst, vocab);
            }
            _ => {
                b.event_op(src, op, dst, vocab);
            }
        }
    }
    b.build()
}

/// All letter strings of length `len` over `letters` letters, fed to `f`.
fn for_each_string(letters: usize, len: usize, mut f: impl FnMut(&[usize])) {
    let mut s = vec![0usize; len];
    loop {
        f(&s);
        let mut i = 0;
        loop {
            if i == len {
                return;
            }
            s[i] += 1;
            if s[i] < letters {
                break;
            }
            s[i] = 0;
            i += 1;
        }
    }
}

#[test]
fn de_morgan_identities() {
    for case in 0..CASES {
        let mut rng = seeded(case);
        let mut vocab = Vocab::new();
        let a = gen_fa(&mut rng, &mut vocab);
        let b = gen_fa(&mut rng, &mut vocab);
        let alphabet = a.union_alphabet(&b);
        let da = a.determinize_with_alphabet(&alphabet);
        let db = b.determinize_with_alphabet(&alphabet);
        // ¬(A ∪ B) ≡ ¬A ∩ ¬B
        assert!(
            da.union(&db)
                .complement()
                .same_language(&da.complement().intersect(&db.complement())),
            "case {case}: ¬(A ∪ B) ≢ ¬A ∩ ¬B"
        );
        // ¬(A ∩ B) ≡ ¬A ∪ ¬B
        assert!(
            da.intersect(&db)
                .complement()
                .same_language(&da.complement().union(&db.complement())),
            "case {case}: ¬(A ∩ B) ≢ ¬A ∪ ¬B"
        );
    }
}

#[test]
fn difference_with_self_is_empty() {
    for case in 0..CASES {
        let mut rng = seeded(case);
        let mut vocab = Vocab::new();
        let a = gen_fa(&mut rng, &mut vocab);
        assert!(
            a.difference(&a).is_empty_language(),
            "case {case}: A \\ A not empty"
        );
    }
}

#[test]
fn double_complement_is_identity() {
    for case in 0..CASES {
        let mut rng = seeded(case);
        let mut vocab = Vocab::new();
        let a = gen_fa(&mut rng, &mut vocab);
        let da = a.determinize();
        assert!(
            da.complement().complement().same_language(&da),
            "case {case}: ¬¬A ≢ A"
        );
    }
}

#[test]
fn complement_partitions_every_string() {
    for case in 0..CASES {
        let mut rng = seeded(case);
        let mut vocab = Vocab::new();
        let a = gen_fa(&mut rng, &mut vocab);
        let da = a.determinize();
        let comp = da.complement();
        let letters = da.letter_count();
        for len in 0..=2 {
            for_each_string(letters, len, |s| {
                assert!(
                    da.accepts_letters(s) != comp.accepts_letters(s),
                    "case {case}: {s:?} in both A and ¬A (or neither)"
                );
            });
        }
    }
}

#[test]
fn witness_is_distinguishing_and_minimal() {
    for case in 0..CASES {
        let mut rng = seeded(case);
        let mut vocab = Vocab::new();
        let a = gen_fa(&mut rng, &mut vocab);
        let b = gen_fa(&mut rng, &mut vocab);
        let Some(witness) = a.distinguishing_witness(&b) else {
            assert!(
                a.equivalent(&b),
                "case {case}: no witness but not equivalent"
            );
            continue;
        };
        assert!(!a.equivalent(&b), "case {case}: witness for equivalent FAs");
        // Map witness letters back to letter indices of the shared DFA
        // alphabet and replay through both sides.
        let alphabet = a.union_alphabet(&b);
        let da = a.determinize_with_alphabet(&alphabet);
        let db = b.determinize_with_alphabet(&alphabet);
        let labels = da.labels().to_vec();
        let as_letters: Vec<usize> = witness
            .iter()
            .map(|w| match w {
                WitnessLetter::Other => labels.len(),
                WitnessLetter::Label(l) => labels
                    .iter()
                    .position(|x| x == l)
                    .expect("witness letter drawn from the shared alphabet"),
            })
            .collect();
        assert!(
            da.accepts_letters(&as_letters) != db.accepts_letters(&as_letters),
            "case {case}: witness {as_letters:?} does not distinguish"
        );
        // Minimality: no strictly shorter letter string distinguishes.
        // Bounded enumeration stays cheap for the short witnesses these
        // small FAs produce; skip the rare long ones.
        if witness.len() <= 4 {
            let letters = da.letter_count();
            for len in 0..witness.len() {
                for_each_string(letters, len, |s| {
                    assert!(
                        da.accepts_letters(s) == db.accepts_letters(s),
                        "case {case}: shorter string {s:?} also distinguishes"
                    );
                });
            }
        }
        // The realised trace is accepted by exactly one side.
        let t = a
            .distinguishing_trace(&b, &mut vocab)
            .expect("witness exists");
        assert_eq!(
            t.len(),
            witness.len(),
            "case {case}: realisation changed length"
        );
        assert!(
            a.accepts(&t) != b.accepts(&t),
            "case {case}: realised trace not distinguishing"
        );
    }
}
