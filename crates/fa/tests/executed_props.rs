//! Property tests for the executed-transition relation (§3.2) against a
//! brute-force oracle that enumerates all accepting transition sequences.

use cable_fa::{Fa, FaBuilder, StateId};
use cable_trace::{Event, Trace, Var, Vocab};
use cable_util::BitSet;
use proptest::prelude::*;

/// A small random NFA over operations `op0..op_k` (single-variable
/// events) plus occasional wildcard transitions.
#[derive(Debug, Clone)]
struct RandomFa {
    n_states: usize,
    /// (src, op index or usize::MAX for wildcard, dst)
    transitions: Vec<(usize, usize, usize)>,
    starts: Vec<usize>,
    accepts: Vec<usize>,
}

fn arb_fa(max_states: usize, n_ops: usize) -> impl Strategy<Value = RandomFa> {
    (2..=max_states).prop_flat_map(move |n| {
        let trans = prop::collection::vec(
            (
                0..n,
                prop::sample::select((0..n_ops).chain([usize::MAX]).collect::<Vec<_>>()),
                0..n,
            ),
            1..=12,
        );
        let starts = prop::collection::btree_set(0..n, 1..=2);
        let accepts = prop::collection::btree_set(0..n, 1..=2);
        (trans, starts, accepts).prop_map(move |(transitions, starts, accepts)| RandomFa {
            n_states: n,
            transitions,
            starts: starts.into_iter().collect(),
            accepts: accepts.into_iter().collect(),
        })
    })
}

fn realize(rfa: &RandomFa, vocab: &mut Vocab) -> Fa {
    let mut b = FaBuilder::new();
    let states = b.states(rfa.n_states);
    for &s in &rfa.starts {
        b.start(states[s]);
    }
    for &s in &rfa.accepts {
        b.accept(states[s]);
    }
    for &(src, op, dst) in &rfa.transitions {
        if op == usize::MAX {
            b.wildcard(states[src], states[dst]);
        } else {
            b.event_var(states[src], &format!("op{op}"), states[dst], vocab);
        }
    }
    b.build()
}

fn trace_of(ops: &[usize], vocab: &mut Vocab) -> Trace {
    Trace::new(
        ops.iter()
            .map(|&i| Event::on_var(vocab.op(&format!("op{i}")), Var(0)))
            .collect(),
    )
}

/// Brute force: enumerate every transition sequence consuming the trace
/// from a start state, and union the transitions of those that end in an
/// accepting state.
fn brute_force_executed(fa: &Fa, trace: &Trace) -> BitSet {
    let mut executed = BitSet::new();
    let mut accepted = false;
    for s in fa.start_states().iter() {
        walk(
            fa,
            trace,
            0,
            StateId(s as u32),
            &mut Vec::new(),
            &mut executed,
            &mut accepted,
        );
    }
    executed
}

fn walk(
    fa: &Fa,
    trace: &Trace,
    pos: usize,
    state: StateId,
    path: &mut Vec<usize>,
    executed: &mut BitSet,
    accepted: &mut bool,
) {
    if pos == trace.len() {
        if fa.is_accept(state) {
            *accepted = true;
            for &t in path.iter() {
                executed.insert(t);
            }
        }
        return;
    }
    let event = &trace.events()[pos];
    for &tid in fa.outgoing(state) {
        let t = fa.transition(tid);
        if t.label.matches(event) {
            path.push(tid.index());
            walk(fa, trace, pos + 1, t.dst, path, executed, accepted);
            path.pop();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn executed_matches_brute_force(
        rfa in arb_fa(5, 3),
        ops in prop::collection::vec(0usize..3, 0..6),
    ) {
        let mut vocab = Vocab::new();
        let fa = realize(&rfa, &mut vocab);
        let trace = trace_of(&ops, &mut vocab);
        let fast = fa.executed_transitions(&trace);
        let slow = brute_force_executed(&fa, &trace);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn executed_nonempty_iff_accepted_nonempty_trace(
        rfa in arb_fa(5, 3),
        ops in prop::collection::vec(0usize..3, 1..6),
    ) {
        let mut vocab = Vocab::new();
        let fa = realize(&rfa, &mut vocab);
        let trace = trace_of(&ops, &mut vocab);
        let executed = fa.executed_transitions(&trace);
        prop_assert_eq!(fa.accepts(&trace), !executed.is_empty());
    }

    #[test]
    fn executed_transitions_match_events(
        rfa in arb_fa(5, 3),
        ops in prop::collection::vec(0usize..3, 0..6),
    ) {
        // Every executed transition's label matches at least one event of
        // the trace.
        let mut vocab = Vocab::new();
        let fa = realize(&rfa, &mut vocab);
        let trace = trace_of(&ops, &mut vocab);
        for tid in fa.executed_transitions(&trace).iter() {
            let label = &fa.transitions()[tid].label;
            prop_assert!(
                trace.iter().any(|e| label.matches(e)),
                "label {:?}",
                label
            );
        }
    }

    #[test]
    fn trim_preserves_acceptance(
        rfa in arb_fa(5, 3),
        ops in prop::collection::vec(0usize..3, 0..6),
    ) {
        let mut vocab = Vocab::new();
        let fa = realize(&rfa, &mut vocab);
        let trace = trace_of(&ops, &mut vocab);
        prop_assert_eq!(fa.trim().accepts(&trace), fa.accepts(&trace));
    }

    #[test]
    fn determinize_preserves_acceptance_without_wildcards(
        rfa in arb_fa(5, 3),
        ops in prop::collection::vec(0usize..3, 0..6),
    ) {
        // Restrict to automata without wildcards and run the DFA on the
        // corresponding letter string.
        let mut vocab = Vocab::new();
        let concrete = RandomFa {
            transitions: rfa
                .transitions
                .iter()
                .copied()
                .filter(|&(_, op, _)| op != usize::MAX)
                .collect(),
            ..rfa
        };
        prop_assume!(!concrete.transitions.is_empty());
        let fa = realize(&concrete, &mut vocab);
        let trace = trace_of(&ops, &mut vocab);
        let dfa = fa.determinize();
        // Map each trace event to its DFA letter (or Other).
        let letters: Vec<usize> = trace
            .iter()
            .map(|e| {
                dfa.labels()
                    .iter()
                    .position(|l| l.matches(e))
                    .unwrap_or(dfa.labels().len())
            })
            .collect();
        prop_assert_eq!(dfa.accepts_letters(&letters), fa.accepts(&trace));
        // Minimisation preserves the language too.
        prop_assert_eq!(dfa.minimize().accepts_letters(&letters), fa.accepts(&trace));
    }

    #[test]
    fn union_and_intersection_semantics(
        rfa1 in arb_fa(4, 3),
        rfa2 in arb_fa(4, 3),
        ops in prop::collection::vec(0usize..3, 0..6),
    ) {
        let mut vocab = Vocab::new();
        let a = realize(&rfa1, &mut vocab);
        let b = realize(&rfa2, &mut vocab);
        let trace = trace_of(&ops, &mut vocab);
        prop_assert_eq!(
            a.union(&b).accepts(&trace),
            a.accepts(&trace) || b.accepts(&trace)
        );
        prop_assert_eq!(
            a.intersection(&b).accepts(&trace),
            a.accepts(&trace) && b.accepts(&trace)
        );
    }

    #[test]
    fn equivalence_is_reflexive_and_respects_trim(rfa in arb_fa(5, 3)) {
        let mut vocab = Vocab::new();
        let fa = realize(&rfa, &mut vocab);
        prop_assert!(fa.equivalent(&fa));
        prop_assert!(fa.equivalent(&fa.trim()));
    }

    #[test]
    fn containment_is_consistent_with_union_and_equivalence(
        rfa1 in arb_fa(4, 3),
        rfa2 in arb_fa(4, 3),
    ) {
        let mut vocab = Vocab::new();
        let a = realize(&rfa1, &mut vocab);
        let b = realize(&rfa2, &mut vocab);
        // A ⊆ A∪B and B ⊆ A∪B always.
        let u = a.union(&b);
        prop_assert!(a.language_subset_of(&u));
        prop_assert!(b.language_subset_of(&u));
        // A∩B ⊆ A and ⊆ B.
        let i = a.intersection(&b);
        prop_assert!(i.language_subset_of(&a));
        prop_assert!(i.language_subset_of(&b));
        // Mutual containment ⟺ equivalence.
        let mutual = a.language_subset_of(&b) && b.language_subset_of(&a);
        prop_assert_eq!(mutual, a.equivalent(&b));
    }
}
