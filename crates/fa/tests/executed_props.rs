//! Randomized tests for the executed-transition relation (§3.2) against a
//! brute-force oracle that enumerates all accepting transition sequences.
//!
//! Each test runs a fixed number of seeded cases, so failures reproduce
//! exactly (`seeded(case)` pins the generator).

use cable_fa::{Fa, FaBuilder, StateId};
use cable_trace::{Event, Trace, Var, Vocab};
use cable_util::rng::{seeded, Rng, SmallRng};
use cable_util::BitSet;

/// A small random NFA over operations `op0..op_k` (single-variable
/// events) plus occasional wildcard transitions.
#[derive(Debug, Clone)]
struct RandomFa {
    n_states: usize,
    /// (src, op index or usize::MAX for wildcard, dst)
    transitions: Vec<(usize, usize, usize)>,
    starts: Vec<usize>,
    accepts: Vec<usize>,
}

fn gen_state_set(rng: &mut SmallRng, n: usize) -> Vec<usize> {
    let want = rng.gen_range(1usize..=2);
    let mut set = std::collections::BTreeSet::new();
    while set.len() < want.min(n) {
        set.insert(rng.gen_range(0..n));
    }
    set.into_iter().collect()
}

fn gen_fa(rng: &mut SmallRng, max_states: usize, n_ops: usize) -> RandomFa {
    let n = rng.gen_range(2..=max_states);
    let n_trans = rng.gen_range(1usize..=12);
    let transitions = (0..n_trans)
        .map(|_| {
            // One extra label slot stands for the wildcard.
            let op = rng.gen_range(0..=n_ops);
            let op = if op == n_ops { usize::MAX } else { op };
            (rng.gen_range(0..n), op, rng.gen_range(0..n))
        })
        .collect();
    RandomFa {
        n_states: n,
        transitions,
        starts: gen_state_set(rng, n),
        accepts: gen_state_set(rng, n),
    }
}

fn gen_ops(rng: &mut SmallRng, n_ops: usize, min_len: usize, max_len: usize) -> Vec<usize> {
    let len = rng.gen_range(min_len..max_len);
    (0..len).map(|_| rng.gen_range(0..n_ops)).collect()
}

fn realize(rfa: &RandomFa, vocab: &mut Vocab) -> Fa {
    let mut b = FaBuilder::new();
    let states = b.states(rfa.n_states);
    for &s in &rfa.starts {
        b.start(states[s]);
    }
    for &s in &rfa.accepts {
        b.accept(states[s]);
    }
    for &(src, op, dst) in &rfa.transitions {
        if op == usize::MAX {
            b.wildcard(states[src], states[dst]);
        } else {
            b.event_var(states[src], &format!("op{op}"), states[dst], vocab);
        }
    }
    b.build()
}

fn trace_of(ops: &[usize], vocab: &mut Vocab) -> Trace {
    Trace::new(
        ops.iter()
            .map(|&i| Event::on_var(vocab.op(&format!("op{i}")), Var(0)))
            .collect(),
    )
}

/// Brute force: enumerate every transition sequence consuming the trace
/// from a start state, and union the transitions of those that end in an
/// accepting state.
fn brute_force_executed(fa: &Fa, trace: &Trace) -> BitSet {
    let mut executed = BitSet::new();
    let mut accepted = false;
    for s in fa.start_states().iter() {
        walk(
            fa,
            trace,
            0,
            StateId(s as u32),
            &mut Vec::new(),
            &mut executed,
            &mut accepted,
        );
    }
    executed
}

fn walk(
    fa: &Fa,
    trace: &Trace,
    pos: usize,
    state: StateId,
    path: &mut Vec<usize>,
    executed: &mut BitSet,
    accepted: &mut bool,
) {
    if pos == trace.len() {
        if fa.is_accept(state) {
            *accepted = true;
            for &t in path.iter() {
                executed.insert(t);
            }
        }
        return;
    }
    let event = &trace.events()[pos];
    for &tid in fa.outgoing(state) {
        let t = fa.transition(tid);
        if t.label.matches(event) {
            path.push(tid.index());
            walk(fa, trace, pos + 1, t.dst, path, executed, accepted);
            path.pop();
        }
    }
}

#[test]
fn executed_matches_brute_force() {
    for case in 0..256u64 {
        let mut rng = seeded(case);
        let rfa = gen_fa(&mut rng, 5, 3);
        let ops = gen_ops(&mut rng, 3, 0, 6);
        let mut vocab = Vocab::new();
        let fa = realize(&rfa, &mut vocab);
        let trace = trace_of(&ops, &mut vocab);
        let fast = fa.executed_transitions(&trace);
        let slow = brute_force_executed(&fa, &trace);
        assert_eq!(fast, slow, "case {case}");
    }
}

#[test]
fn executed_nonempty_iff_accepted_nonempty_trace() {
    for case in 0..256u64 {
        let mut rng = seeded(case);
        let rfa = gen_fa(&mut rng, 5, 3);
        let ops = gen_ops(&mut rng, 3, 1, 6);
        let mut vocab = Vocab::new();
        let fa = realize(&rfa, &mut vocab);
        let trace = trace_of(&ops, &mut vocab);
        let executed = fa.executed_transitions(&trace);
        assert_eq!(fa.accepts(&trace), !executed.is_empty(), "case {case}");
    }
}

#[test]
fn executed_transitions_match_events() {
    for case in 0..256u64 {
        let mut rng = seeded(case);
        let rfa = gen_fa(&mut rng, 5, 3);
        let ops = gen_ops(&mut rng, 3, 0, 6);
        // Every executed transition's label matches at least one event of
        // the trace.
        let mut vocab = Vocab::new();
        let fa = realize(&rfa, &mut vocab);
        let trace = trace_of(&ops, &mut vocab);
        for tid in fa.executed_transitions(&trace).iter() {
            let label = &fa.transitions()[tid].label;
            assert!(
                trace.iter().any(|e| label.matches(e)),
                "case {case}: label {label:?}"
            );
        }
    }
}

#[test]
fn trim_preserves_acceptance() {
    for case in 0..256u64 {
        let mut rng = seeded(case);
        let rfa = gen_fa(&mut rng, 5, 3);
        let ops = gen_ops(&mut rng, 3, 0, 6);
        let mut vocab = Vocab::new();
        let fa = realize(&rfa, &mut vocab);
        let trace = trace_of(&ops, &mut vocab);
        assert_eq!(fa.trim().accepts(&trace), fa.accepts(&trace), "case {case}");
    }
}

#[test]
fn determinize_preserves_acceptance_without_wildcards() {
    for case in 0..256u64 {
        let mut rng = seeded(case);
        let rfa = gen_fa(&mut rng, 5, 3);
        let ops = gen_ops(&mut rng, 3, 0, 6);
        // Restrict to automata without wildcards and run the DFA on the
        // corresponding letter string.
        let mut vocab = Vocab::new();
        let concrete = RandomFa {
            transitions: rfa
                .transitions
                .iter()
                .copied()
                .filter(|&(_, op, _)| op != usize::MAX)
                .collect(),
            ..rfa
        };
        if concrete.transitions.is_empty() {
            continue;
        }
        let fa = realize(&concrete, &mut vocab);
        let trace = trace_of(&ops, &mut vocab);
        let dfa = fa.determinize();
        // Map each trace event to its DFA letter (or Other).
        let letters: Vec<usize> = trace
            .iter()
            .map(|e| {
                dfa.labels()
                    .iter()
                    .position(|l| l.matches(e))
                    .unwrap_or(dfa.labels().len())
            })
            .collect();
        assert_eq!(
            dfa.accepts_letters(&letters),
            fa.accepts(&trace),
            "case {case}"
        );
        // Minimisation preserves the language too.
        assert_eq!(
            dfa.minimize().accepts_letters(&letters),
            fa.accepts(&trace),
            "case {case}"
        );
    }
}

#[test]
fn union_and_intersection_semantics() {
    for case in 0..256u64 {
        let mut rng = seeded(case);
        let rfa1 = gen_fa(&mut rng, 4, 3);
        let rfa2 = gen_fa(&mut rng, 4, 3);
        let ops = gen_ops(&mut rng, 3, 0, 6);
        let mut vocab = Vocab::new();
        let a = realize(&rfa1, &mut vocab);
        let b = realize(&rfa2, &mut vocab);
        let trace = trace_of(&ops, &mut vocab);
        assert_eq!(
            a.union(&b).accepts(&trace),
            a.accepts(&trace) || b.accepts(&trace),
            "case {case}"
        );
        assert_eq!(
            a.intersection(&b).accepts(&trace),
            a.accepts(&trace) && b.accepts(&trace),
            "case {case}"
        );
    }
}

#[test]
fn equivalence_is_reflexive_and_respects_trim() {
    for case in 0..256u64 {
        let mut rng = seeded(case);
        let rfa = gen_fa(&mut rng, 5, 3);
        let mut vocab = Vocab::new();
        let fa = realize(&rfa, &mut vocab);
        assert!(fa.equivalent(&fa), "case {case}");
        assert!(fa.equivalent(&fa.trim()), "case {case}");
    }
}

#[test]
fn containment_is_consistent_with_union_and_equivalence() {
    for case in 0..256u64 {
        let mut rng = seeded(case);
        let rfa1 = gen_fa(&mut rng, 4, 3);
        let rfa2 = gen_fa(&mut rng, 4, 3);
        let mut vocab = Vocab::new();
        let a = realize(&rfa1, &mut vocab);
        let b = realize(&rfa2, &mut vocab);
        // A ⊆ A∪B and B ⊆ A∪B always.
        let u = a.union(&b);
        assert!(a.language_subset_of(&u), "case {case}");
        assert!(b.language_subset_of(&u), "case {case}");
        // A∩B ⊆ A and ⊆ B.
        let i = a.intersection(&b);
        assert!(i.language_subset_of(&a), "case {case}");
        assert!(i.language_subset_of(&b), "case {case}");
        // Mutual containment ⟺ equivalence.
        let mutual = a.language_subset_of(&b) && b.language_subset_of(&a);
        assert_eq!(mutual, a.equivalent(&b), "case {case}");
    }
}
