//! Transition labels: event patterns and the wildcard.

use cable_trace::{Arg, Event, Var, Vocab};
use cable_util::Symbol;
use std::fmt;

/// A pattern over a single event argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArgPat {
    /// Matches exactly this canonical variable.
    Var(Var),
    /// Matches exactly this atom.
    Atom(Symbol),
    /// Matches any argument (written `_`).
    Any,
}

impl ArgPat {
    /// Tests whether the pattern matches an argument.
    pub fn matches(self, arg: Arg) -> bool {
        match (self, arg) {
            (ArgPat::Any, _) => true,
            (ArgPat::Var(v), Arg::Var(w)) => v == w,
            (ArgPat::Atom(a), Arg::Atom(b)) => a == b,
            _ => false,
        }
    }
}

/// A pattern over events: an operation name plus (optionally) argument
/// patterns.
///
/// With `args: None` the pattern matches any event with the right
/// operation regardless of arity — useful when only the operation matters.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventPat {
    /// The operation to match.
    pub op: Symbol,
    /// Positional argument patterns, or `None` to accept any arguments.
    pub args: Option<Vec<ArgPat>>,
}

impl EventPat {
    /// A pattern matching `op` with any arguments.
    pub fn op_only(op: Symbol) -> Self {
        EventPat { op, args: None }
    }

    /// A pattern matching `op(var)`.
    pub fn on_var(op: Symbol, var: Var) -> Self {
        EventPat {
            op,
            args: Some(vec![ArgPat::Var(var)]),
        }
    }

    /// Tests whether the pattern matches an event.
    pub fn matches(&self, event: &Event) -> bool {
        if self.op != event.op {
            return false;
        }
        match &self.args {
            None => true,
            Some(pats) => {
                pats.len() == event.args.len()
                    && pats.iter().zip(&event.args).all(|(p, &a)| p.matches(a))
            }
        }
    }

    /// The exact pattern for a concrete event (all arguments pinned).
    ///
    /// Object-id arguments cannot be pinned (patterns range over canonical
    /// variables), so they become [`ArgPat::Any`].
    pub fn exact(event: &Event) -> Self {
        EventPat {
            op: event.op,
            args: Some(
                event
                    .args
                    .iter()
                    .map(|&a| match a {
                        Arg::Var(v) => ArgPat::Var(v),
                        Arg::Atom(s) => ArgPat::Atom(s),
                        Arg::Obj(_) => ArgPat::Any,
                    })
                    .collect(),
            ),
        }
    }

    /// Tests whether the pattern mentions the given variable.
    pub fn mentions_var(&self, var: Var) -> bool {
        self.args
            .as_ref()
            .is_some_and(|ps| ps.iter().any(|p| matches!(p, ArgPat::Var(v) if *v == var)))
    }

    /// Renders the pattern against a vocabulary.
    pub fn display<'a>(&'a self, vocab: &'a Vocab) -> DisplayEventPat<'a> {
        DisplayEventPat { pat: self, vocab }
    }
}

/// A transition label: either an event pattern or the wildcard that
/// matches every event (used by the name-projection template of §4.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TransLabel {
    /// Matches events satisfying the pattern.
    Pat(EventPat),
    /// Matches every event (written `*`).
    Wildcard,
}

impl TransLabel {
    /// Tests whether the label matches an event.
    pub fn matches(&self, event: &Event) -> bool {
        match self {
            TransLabel::Pat(p) => p.matches(event),
            TransLabel::Wildcard => true,
        }
    }

    /// The pattern, unless this is the wildcard.
    pub fn as_pat(&self) -> Option<&EventPat> {
        match self {
            TransLabel::Pat(p) => Some(p),
            TransLabel::Wildcard => None,
        }
    }

    /// Tests whether this is the wildcard.
    pub fn is_wildcard(&self) -> bool {
        matches!(self, TransLabel::Wildcard)
    }

    /// Renders the label against a vocabulary.
    pub fn display<'a>(&'a self, vocab: &'a Vocab) -> DisplayTransLabel<'a> {
        DisplayTransLabel { label: self, vocab }
    }
}

impl From<EventPat> for TransLabel {
    fn from(p: EventPat) -> Self {
        TransLabel::Pat(p)
    }
}

/// Displays an [`EventPat`]; created by [`EventPat::display`].
#[derive(Debug, Clone, Copy)]
pub struct DisplayEventPat<'a> {
    pat: &'a EventPat,
    vocab: &'a Vocab,
}

impl fmt::Display for DisplayEventPat<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.vocab.op_name(self.pat.op))?;
        if let Some(args) = &self.pat.args {
            write!(f, "(")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                match a {
                    ArgPat::Var(v) => write!(f, "{}", v.name())?,
                    ArgPat::Atom(s) => write!(f, "'{}", self.vocab.atom_name(*s))?,
                    ArgPat::Any => write!(f, "_")?,
                }
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Displays a [`TransLabel`]; created by [`TransLabel::display`].
#[derive(Debug, Clone, Copy)]
pub struct DisplayTransLabel<'a> {
    label: &'a TransLabel,
    vocab: &'a Vocab,
}

impl fmt::Display for DisplayTransLabel<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.label {
            TransLabel::Pat(p) => write!(f, "{}", p.display(self.vocab)),
            TransLabel::Wildcard => write!(f, "*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cable_trace::Trace;

    fn ev(text: &str, v: &mut Vocab) -> Event {
        Trace::parse(text, v).unwrap().events()[0].clone()
    }

    #[test]
    fn exact_pattern_matches_only_that_event() {
        let mut v = Vocab::new();
        let e = ev("f(X)", &mut v);
        let other_var = ev("f(Y)", &mut v);
        let other_op = ev("g(X)", &mut v);
        let p = EventPat::exact(&e);
        assert!(p.matches(&e));
        assert!(!p.matches(&other_var));
        assert!(!p.matches(&other_op));
    }

    #[test]
    fn op_only_ignores_arity() {
        let mut v = Vocab::new();
        let f = v.op("f");
        let p = EventPat::op_only(f);
        assert!(p.matches(&ev("f()", &mut v)));
        assert!(p.matches(&ev("f(X,Y)", &mut v)));
        assert!(!p.matches(&ev("g()", &mut v)));
    }

    #[test]
    fn any_matches_objects_and_atoms() {
        let mut v = Vocab::new();
        let f = v.op("f");
        let p = EventPat {
            op: f,
            args: Some(vec![ArgPat::Any]),
        };
        assert!(p.matches(&ev("f(#3)", &mut v)));
        assert!(p.matches(&ev("f('A)", &mut v)));
        assert!(p.matches(&ev("f(X)", &mut v)));
        assert!(!p.matches(&ev("f(X,Y)", &mut v)), "arity still checked");
    }

    #[test]
    fn wildcard_matches_everything() {
        let mut v = Vocab::new();
        assert!(TransLabel::Wildcard.matches(&ev("anything(X,#1,'A)", &mut v)));
        assert!(TransLabel::Wildcard.is_wildcard());
        assert!(TransLabel::Wildcard.as_pat().is_none());
    }

    #[test]
    fn mentions_var() {
        let mut v = Vocab::new();
        let e = ev("f(X,Y)", &mut v);
        let p = EventPat::exact(&e);
        assert!(p.mentions_var(Var(0)));
        assert!(p.mentions_var(Var(1)));
        assert!(!p.mentions_var(Var(2)));
        assert!(!EventPat::op_only(e.op).mentions_var(Var(0)));
    }

    #[test]
    fn display_forms() {
        let mut v = Vocab::new();
        let e = ev("f(X,'P,#9)", &mut v);
        let p = EventPat::exact(&e);
        assert_eq!(p.display(&v).to_string(), "f(X,'P,_)");
        assert_eq!(
            TransLabel::from(EventPat::op_only(e.op))
                .display(&v)
                .to_string(),
            "f"
        );
        assert_eq!(TransLabel::Wildcard.display(&v).to_string(), "*");
    }
}
