//! Graphviz DOT export for automata.
//!
//! The original Cable displayed automata and lattices through Dotty; we
//! regenerate the paper's figures as `.dot` files.

use crate::fa::Fa;
use cable_trace::Vocab;
use std::fmt::Write as _;

impl Fa {
    /// Renders the automaton in Graphviz DOT syntax.
    ///
    /// Start states get an incoming arrow from an invisible node;
    /// accepting states are drawn with a double circle.
    ///
    /// # Examples
    ///
    /// ```
    /// use cable_fa::FaBuilder;
    /// use cable_trace::Vocab;
    ///
    /// let mut v = Vocab::new();
    /// let mut b = FaBuilder::new();
    /// let s = b.state();
    /// b.start(s).accept(s);
    /// b.event_var(s, "f", s, &mut v);
    /// let dot = b.build().to_dot(&v, "example");
    /// assert!(dot.contains("digraph"));
    /// assert!(dot.contains("f(X)"));
    /// ```
    pub fn to_dot(&self, vocab: &Vocab, name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", escape(name));
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [shape=circle];");
        for s in self.states() {
            let shape = if self.is_accept(s) {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(out, "  {s} [shape={shape}];");
            if self.is_start(s) {
                let _ = writeln!(out, "  __start_{s} [shape=point, style=invis];");
                let _ = writeln!(out, "  __start_{s} -> {s};");
            }
        }
        for id in self.transition_ids() {
            let t = self.transition(id);
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"{}\"];",
                t.src,
                t.dst,
                escape(&t.label.display(vocab).to_string())
            );
        }
        let _ = writeln!(out, "}}");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use crate::builder::FaBuilder;
    use cable_trace::Vocab;

    #[test]
    fn dot_mentions_all_parts() {
        let mut v = Vocab::new();
        let mut b = FaBuilder::new();
        let s0 = b.state();
        let s1 = b.state();
        b.start(s0).accept(s1);
        b.event_var(s0, "fopen", s1, &mut v);
        b.wildcard(s1, s1);
        let dot = b.build().to_dot(&v, "t");
        assert!(dot.contains("s0 -> s1 [label=\"fopen(X)\"]"));
        assert!(dot.contains("s1 -> s1 [label=\"*\"]"));
        assert!(dot.contains("s1 [shape=doublecircle]"));
        assert!(dot.contains("__start_s0 -> s0"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_escapes_quotes() {
        let v = Vocab::new();
        let mut b = FaBuilder::new();
        let s = b.state();
        b.start(s);
        let dot = b.build().to_dot(&v, "a\"b");
        assert!(dot.contains("a\\\"b"));
    }
}
