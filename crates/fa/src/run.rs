//! Running traces on automata: acceptance and the executed-transition
//! relation.
//!
//! §3.2 of the paper: let `AS(o)` be the set of accepting transition
//! sequences for trace `o`. The context relation is
//! `R = {(o, a) | ∃ s ∈ AS(o). a appears in s}` — transition `a` *can be
//! executed* while accepting `o`. We compute, for each trace, the set of
//! such transitions with a forward/backward reachability sweep:
//!
//! * `fwd[i]` — states reachable from a start state by consuming
//!   `o[0..i]`,
//! * `bwd[i]` — states from which an accepting state is reachable by
//!   consuming `o[i..]`,
//! * transition `(s, ℓ, d)` is executed at position `i` iff `ℓ` matches
//!   `o[i]`, `s ∈ fwd[i]`, and `d ∈ bwd[i+1]`.
//!
//! This is `O(|o| · |δ|)` per trace and needs no enumeration of the
//! (possibly exponential) accepting-sequence set.

use crate::fa::{Fa, StateId};
use cable_obs::{CounterHandle, HistogramHandle, Span};
use cable_trace::Trace;
use cable_util::BitSet;

/// Executed-transition relation computations (one per trace).
static EXECUTED_CALLS: CounterHandle = CounterHandle::new("fa.executed.calls");
/// Events consumed across all executed-transition sweeps.
static EXECUTED_EVENTS: CounterHandle = CounterHandle::new("fa.executed.events");
/// Acceptance runs.
static ACCEPT_CALLS: CounterHandle = CounterHandle::new("fa.accepts.calls");
/// Wall-clock cost of executed-transition sweeps.
static EXECUTED_NS: HistogramHandle = HistogramHandle::new("fa.executed.sweep_ns");

impl Fa {
    /// Tests whether the automaton accepts the trace.
    ///
    /// # Examples
    ///
    /// ```
    /// use cable_fa::templates;
    /// use cable_trace::{Trace, Vocab};
    ///
    /// let mut v = Vocab::new();
    /// let t = Trace::parse("a(X) b(X)", &mut v).unwrap();
    /// let fa = templates::unordered_of_trace_events(std::slice::from_ref(&t));
    /// assert!(fa.accepts(&t));
    /// ```
    pub fn accepts(&self, trace: &Trace) -> bool {
        ACCEPT_CALLS.get().incr();
        let mut current = self.start_states().clone();
        for event in trace.iter() {
            let mut next = BitSet::with_capacity(self.state_count());
            for s in current.iter() {
                for &tid in self.outgoing(StateId(s as u32)) {
                    let t = self.transition(tid);
                    if t.label.matches(event) {
                        next.insert(t.dst.index());
                    }
                }
            }
            current = next;
            if current.is_empty() {
                return false;
            }
        }
        !current.is_disjoint(self.accept_states())
    }

    /// Forward state sets: `fwd[i]` is the set of states reachable from a
    /// start state by consuming the first `i` events. Has length
    /// `trace.len() + 1`.
    pub fn forward_sets(&self, trace: &Trace) -> Vec<BitSet> {
        let mut sets = Vec::with_capacity(trace.len() + 1);
        sets.push(self.start_states().clone());
        for event in trace.iter() {
            let mut next = BitSet::with_capacity(self.state_count());
            for s in sets.last().expect("nonempty").iter() {
                for &tid in self.outgoing(StateId(s as u32)) {
                    let t = self.transition(tid);
                    if t.label.matches(event) {
                        next.insert(t.dst.index());
                    }
                }
            }
            sets.push(next);
        }
        sets
    }

    /// Backward state sets: `bwd[i]` is the set of states from which an
    /// accepting state is reachable by consuming events `i..`. Has length
    /// `trace.len() + 1`.
    pub fn backward_sets(&self, trace: &Trace) -> Vec<BitSet> {
        let mut sets = vec![BitSet::new(); trace.len() + 1];
        sets[trace.len()] = self.accept_states().clone();
        for i in (0..trace.len()).rev() {
            let event = &trace.events()[i];
            let mut prev = BitSet::with_capacity(self.state_count());
            for t in self.transitions() {
                if sets[i + 1].contains(t.dst.index()) && t.label.matches(event) {
                    prev.insert(t.src.index());
                }
            }
            sets[i] = prev;
        }
        sets
    }

    /// The set of transition ids that appear on **some** accepting
    /// sequence for the trace (the paper's relation `R`, §3.2).
    ///
    /// Returns the empty set when the automaton does not accept the trace
    /// (there are no accepting sequences).
    pub fn executed_transitions(&self, trace: &Trace) -> BitSet {
        let _span = Span::enter("fa.executed.sweep", &EXECUTED_NS);
        EXECUTED_CALLS.get().incr();
        EXECUTED_EVENTS.get().add(trace.len() as u64);
        let fwd = self.forward_sets(trace);
        let bwd = self.backward_sets(trace);
        let mut executed = BitSet::with_capacity(self.transition_count());
        // An empty trace executes no transitions even when accepted.
        for (i, event) in trace.iter().enumerate() {
            for (tid, t) in self.transitions().iter().enumerate() {
                if !executed.contains(tid)
                    && t.label.matches(event)
                    && fwd[i].contains(t.src.index())
                    && bwd[i + 1].contains(t.dst.index())
                {
                    executed.insert(tid);
                }
            }
        }
        executed
    }

    /// [`executed_transitions`](Fa::executed_transitions) for a batch of
    /// traces, swept in parallel on the [`cable_par`] pool.
    ///
    /// The result is index-ordered — `out[i]` is the relation for
    /// `traces[i]` — and bit-for-bit identical to mapping the sequential
    /// method over the slice, whatever the pool size. Each sweep starts
    /// with a `cable-guard` cancel point, so a poisoned scope or an
    /// explicit cancellation stops the fan-out promptly.
    pub fn executed_transitions_batch(&self, traces: &[&Trace]) -> Vec<BitSet> {
        cable_par::par_map("fa.executed", traces, |t| {
            cable_guard::cancel_point("fa.executed");
            self.executed_transitions(t)
        })
    }

    /// [`executed_transitions_batch`](Fa::executed_transitions_batch)
    /// under the installed `cable-guard` budget: with a budget active the
    /// traces are swept sequentially with a checkpoint before each one,
    /// so a trip returns the relations of the already-swept prefix —
    /// index-exact, identical across `CABLE_PAR` settings. With no
    /// budget this is the parallel batch sweep.
    ///
    /// # Errors
    ///
    /// A [`SweepStop`] carrying the typed error and the prefix of
    /// relations swept before the trip.
    pub fn try_executed_transitions_batch(
        &self,
        traces: &[&Trace],
    ) -> Result<Vec<BitSet>, Box<SweepStop>> {
        if !cable_guard::budget_active() {
            return Ok(self.executed_transitions_batch(traces));
        }
        let mut out = Vec::with_capacity(traces.len());
        for (i, t) in traces.iter().enumerate() {
            if let Err(error) = cable_guard::checkpoint("fa.executed.sweep") {
                return Err(Box::new(SweepStop {
                    error,
                    partial: out,
                    traces_swept: i,
                }));
            }
            out.push(self.executed_transitions(t));
        }
        Ok(out)
    }
}

/// A budget-stopped [`Fa::try_executed_transitions_batch`]: the typed
/// error plus the relations of the traces swept before the trip
/// (`partial.len() == traces_swept`, aligned with the input prefix).
#[derive(Debug)]
pub struct SweepStop {
    /// Why the sweep stopped.
    pub error: cable_guard::GuardError,
    /// Relations for the first [`SweepStop::traces_swept`] traces.
    pub partial: Vec<BitSet>,
    /// How many leading traces were fully swept.
    pub traces_swept: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FaBuilder;
    use cable_trace::Vocab;

    /// The stdio example of Figure 1 (buggy: fclose closes both kinds).
    fn stdio_fa(v: &mut Vocab) -> Fa {
        let mut b = FaBuilder::new();
        let s0 = b.state();
        let s1 = b.state();
        let s2 = b.state();
        b.start(s0).accept(s2);
        b.event_var(s0, "fopen", s1, v);
        b.event_var(s0, "popen", s1, v);
        b.event_var(s1, "fread", s1, v);
        b.event_var(s1, "fwrite", s1, v);
        b.event_var(s1, "fclose", s2, v);
        b.build()
    }

    #[test]
    fn accepts_and_rejects() {
        let mut v = Vocab::new();
        let fa = stdio_fa(&mut v);
        let ok = Trace::parse("fopen(X) fread(X) fwrite(X) fclose(X)", &mut v).unwrap();
        let ok2 = Trace::parse("popen(X) fclose(X)", &mut v).unwrap();
        let bad = Trace::parse("fopen(X) fread(X)", &mut v).unwrap();
        let bad2 = Trace::parse("fclose(X)", &mut v).unwrap();
        assert!(fa.accepts(&ok));
        assert!(fa.accepts(&ok2), "the Figure 1 bug: popen …fclose accepted");
        assert!(!fa.accepts(&bad));
        assert!(!fa.accepts(&bad2));
    }

    #[test]
    fn executed_transitions_exact() {
        let mut v = Vocab::new();
        let fa = stdio_fa(&mut v);
        // Transitions: 0 fopen, 1 popen, 2 fread, 3 fwrite, 4 fclose.
        let t = Trace::parse("fopen(X) fread(X) fclose(X)", &mut v).unwrap();
        assert_eq!(fa.executed_transitions(&t).to_vec(), vec![0, 2, 4]);
        let u = Trace::parse("popen(X) fclose(X)", &mut v).unwrap();
        assert_eq!(fa.executed_transitions(&u).to_vec(), vec![1, 4]);
    }

    #[test]
    fn rejected_trace_executes_nothing() {
        let mut v = Vocab::new();
        let fa = stdio_fa(&mut v);
        let t = Trace::parse("fopen(X) fread(X)", &mut v).unwrap();
        assert!(fa.executed_transitions(&t).is_empty());
    }

    #[test]
    fn empty_trace() {
        let mut v = Vocab::new();
        let fa = stdio_fa(&mut v);
        let t = Trace::empty();
        assert!(!fa.accepts(&t), "start is not accepting here");
        assert!(fa.executed_transitions(&t).is_empty());
        let mut b = FaBuilder::new();
        let s = b.state();
        b.start(s).accept(s);
        b.event_var(s, "f", s, &mut v);
        let loop_fa = b.build();
        assert!(loop_fa.accepts(&t));
        assert!(loop_fa.executed_transitions(&t).is_empty());
    }

    #[test]
    fn nondeterminism_unions_paths() {
        // Two parallel paths accepting the same trace: both executed.
        let mut v = Vocab::new();
        let mut b = FaBuilder::new();
        let s0 = b.state();
        let a1 = b.state();
        let a2 = b.state();
        b.start(s0).accept(a1).accept(a2);
        b.event_var(s0, "f", a1, &mut v);
        b.event_var(s0, "f", a2, &mut v);
        let fa = b.build();
        let t = Trace::parse("f(X)", &mut v).unwrap();
        assert_eq!(fa.executed_transitions(&t).len(), 2);
    }

    #[test]
    fn dead_end_transitions_not_executed() {
        // A transition matching the event but leading to a dead end is not
        // on any accepting sequence.
        let mut v = Vocab::new();
        let mut b = FaBuilder::new();
        let s0 = b.state();
        let dead = b.state();
        let acc = b.state();
        b.start(s0).accept(acc);
        b.event_var(s0, "f", dead, &mut v); // tid 0: dead end
        b.event_var(s0, "f", acc, &mut v); // tid 1: accepting
        let fa = b.build();
        let t = Trace::parse("f(X)", &mut v).unwrap();
        assert_eq!(fa.executed_transitions(&t).to_vec(), vec![1]);
    }

    #[test]
    fn batch_matches_per_trace_sweeps() {
        let mut v = Vocab::new();
        let fa = stdio_fa(&mut v);
        let traces: Vec<Trace> = [
            "fopen(X) fread(X) fclose(X)",
            "popen(X) fclose(X)",
            "fopen(X) fread(X)",
            "fopen(X) fwrite(X) fclose(X)",
        ]
        .iter()
        .map(|s| Trace::parse(s, &mut v).unwrap())
        .collect();
        let refs: Vec<&Trace> = traces.iter().collect();
        let batch = fa.executed_transitions_batch(&refs);
        let sequential: Vec<_> = traces.iter().map(|t| fa.executed_transitions(t)).collect();
        assert_eq!(batch, sequential);
    }

    #[test]
    fn forward_backward_shapes() {
        let mut v = Vocab::new();
        let fa = stdio_fa(&mut v);
        let t = Trace::parse("fopen(X) fclose(X)", &mut v).unwrap();
        let fwd = fa.forward_sets(&t);
        let bwd = fa.backward_sets(&t);
        assert_eq!(fwd.len(), 3);
        assert_eq!(bwd.len(), 3);
        assert_eq!(fwd[0], fa.start_states().clone());
        assert_eq!(bwd[2], fa.accept_states().clone());
        assert!(!fwd[2].is_disjoint(fa.accept_states()));
    }
}
