//! A parseable text format for automata.
//!
//! ```text
//! ; the Figure 1 specification
//! start s0
//! accept s2
//! s0 -> s1 : fopen(X)
//! s1 -> s1 : fread(X)
//! s1 -> s2 : fclose(X)
//! s1 -> s1 : *
//! ```
//!
//! States are `s<N>` and are created on first mention. Labels use the
//! trace argument syntax plus `_` for "any argument" and a bare `*` for
//! the wildcard label. `op` with no parentheses matches the operation with
//! any arguments.

use crate::builder::FaBuilder;
use crate::fa::{Fa, StateId};
use crate::label::{ArgPat, EventPat, TransLabel};
use cable_trace::{Var, Vocab};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Error parsing the FA text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFaError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ParseFaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FA parse error on line {}: {}", self.line, self.message)
    }
}

impl Error for ParseFaError {}

fn err(line: usize, message: impl Into<String>) -> ParseFaError {
    ParseFaError {
        line,
        message: message.into(),
    }
}

fn parse_label(token: &str, line: usize, vocab: &mut Vocab) -> Result<TransLabel, ParseFaError> {
    if token == "*" {
        return Ok(TransLabel::Wildcard);
    }
    let (name, rest) = match token.find('(') {
        Some(i) => (&token[..i], Some(&token[i..])),
        None => (token, None),
    };
    if name.is_empty() {
        return Err(err(line, format!("bad label {token:?}")));
    }
    let op = vocab.op(name);
    let args = match rest {
        None => None,
        Some(rest) => {
            let inner = rest
                .strip_prefix('(')
                .and_then(|r| r.strip_suffix(')'))
                .ok_or_else(|| err(line, format!("unbalanced parentheses in {token:?}")))?;
            let mut pats = Vec::new();
            if !inner.is_empty() {
                for part in inner.split(',') {
                    let part = part.trim();
                    if part == "_" {
                        pats.push(ArgPat::Any);
                    } else if let Some(atom) = part.strip_prefix('\'') {
                        pats.push(ArgPat::Atom(vocab.atom(atom)));
                    } else if let Some(v) = Var::from_name(part) {
                        pats.push(ArgPat::Var(v));
                    } else {
                        return Err(err(line, format!("bad argument pattern {part:?}")));
                    }
                }
            }
            Some(pats)
        }
    };
    Ok(TransLabel::Pat(EventPat { op, args }))
}

impl Fa {
    /// Parses the text format.
    ///
    /// # Errors
    ///
    /// Returns [`ParseFaError`] on malformed input, including an automaton
    /// with no `start` line.
    pub fn parse(text: &str, vocab: &mut Vocab) -> Result<Fa, ParseFaError> {
        let mut b = FaBuilder::new();
        let mut states: HashMap<String, StateId> = HashMap::new();
        let mut saw_start = false;
        let mut state_of = |name: &str, b: &mut FaBuilder| -> StateId {
            *states.entry(name.to_owned()).or_insert_with(|| b.state())
        };
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with(';') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("start ") {
                for name in rest.split_whitespace() {
                    let s = state_of(name, &mut b);
                    b.start(s);
                    saw_start = true;
                }
            } else if let Some(rest) = line.strip_prefix("accept ") {
                for name in rest.split_whitespace() {
                    let s = state_of(name, &mut b);
                    b.accept(s);
                }
            } else {
                // src -> dst : label
                let (edge, label) = line
                    .split_once(':')
                    .ok_or_else(|| err(lineno, "expected `src -> dst : label`"))?;
                let (src, dst) = edge
                    .split_once("->")
                    .ok_or_else(|| err(lineno, "expected `src -> dst`"))?;
                let src = state_of(src.trim(), &mut b);
                let dst = state_of(dst.trim(), &mut b);
                let label = parse_label(label.trim(), lineno, vocab)?;
                b.transition(src, label, dst);
            }
        }
        if !saw_start {
            return Err(err(0, "no start state declared"));
        }
        Ok(b.build())
    }

    /// Renders the automaton in the text format; `parse` of the output
    /// reconstructs an identical automaton.
    pub fn to_text(&self, vocab: &Vocab) -> String {
        let mut out = String::new();
        let starts: Vec<String> = self
            .start_states()
            .iter()
            .map(|s| format!("s{s}"))
            .collect();
        let _ = writeln!(out, "start {}", starts.join(" "));
        if !self.accept_states().is_empty() {
            let accepts: Vec<String> = self
                .accept_states()
                .iter()
                .map(|s| format!("s{s}"))
                .collect();
            let _ = writeln!(out, "accept {}", accepts.join(" "));
        }
        for id in self.transition_ids() {
            let t = self.transition(id);
            let _ = writeln!(out, "{} -> {} : {}", t.src, t.dst, t.label.display(vocab));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: &str = "\
; Figure 1 (buggy stdio specification)
start s0
accept s2
s0 -> s1 : fopen(X)
s0 -> s1 : popen(X)
s1 -> s1 : fread(X)
s1 -> s1 : fwrite(X)
s1 -> s2 : fclose(X)
";

    #[test]
    fn parse_fig1() {
        let mut v = Vocab::new();
        let fa = Fa::parse(FIG1, &mut v).unwrap();
        assert_eq!(fa.state_count(), 3);
        assert_eq!(fa.transition_count(), 5);
        let t = cable_trace::Trace::parse("popen(X) fclose(X)", &mut v).unwrap();
        assert!(fa.accepts(&t));
    }

    #[test]
    fn round_trip() {
        let mut v = Vocab::new();
        let fa = Fa::parse(FIG1, &mut v).unwrap();
        let text = fa.to_text(&v);
        let fa2 = Fa::parse(&text, &mut v).unwrap();
        assert_eq!(fa, fa2);
    }

    #[test]
    fn round_trip_exotic_labels() {
        let mut v = Vocab::new();
        let text = "start s0\naccept s0\ns0 -> s0 : *\ns0 -> s0 : f\ns0 -> s0 : g(_,'A,Y)\n";
        let fa = Fa::parse(text, &mut v).unwrap();
        let fa2 = Fa::parse(&fa.to_text(&v), &mut v).unwrap();
        assert_eq!(fa, fa2);
        assert!(fa.has_wildcard());
    }

    #[test]
    fn errors() {
        let mut v = Vocab::new();
        assert!(Fa::parse("s0 -> s1 : f\n", &mut v).is_err(), "no start");
        assert!(Fa::parse("start s0\ns0 s1 : f\n", &mut v).is_err());
        assert!(Fa::parse("start s0\ns0 -> s1 f\n", &mut v).is_err());
        assert!(Fa::parse("start s0\ns0 -> s1 : f(%%)\n", &mut v).is_err());
        let e = Fa::parse("start s0\nbogus line here\n", &mut v).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn multiple_starts_and_accepts() {
        let mut v = Vocab::new();
        let fa = Fa::parse("start s0 s1\naccept s0 s1\ns0 -> s1 : f\n", &mut v).unwrap();
        assert_eq!(fa.start_states().len(), 2);
        assert_eq!(fa.accept_states().len(), 2);
    }
}
