//! Construction of automata.

use crate::fa::{Fa, StateId, TransId, Transition};
use crate::label::{EventPat, TransLabel};
use cable_trace::{Var, Vocab};
use cable_util::BitSet;

/// Builds an [`Fa`] incrementally.
///
/// # Examples
///
/// ```
/// use cable_fa::FaBuilder;
/// use cable_trace::Vocab;
///
/// let mut v = Vocab::new();
/// let mut b = FaBuilder::new();
/// let s = b.state();
/// b.start(s).accept(s);
/// b.event_var(s, "ping", s, &mut v);
/// let fa = b.build();
/// assert_eq!(fa.state_count(), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct FaBuilder {
    n_states: u32,
    transitions: Vec<Transition>,
    starts: BitSet,
    accepts: BitSet,
}

impl FaBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fresh state.
    pub fn state(&mut self) -> StateId {
        let id = StateId(self.n_states);
        self.n_states += 1;
        id
    }

    /// Adds `n` fresh states.
    pub fn states(&mut self, n: usize) -> Vec<StateId> {
        (0..n).map(|_| self.state()).collect()
    }

    /// Marks a state as a start state.
    pub fn start(&mut self, s: StateId) -> &mut Self {
        self.starts.insert(s.index());
        self
    }

    /// Marks a state as accepting.
    pub fn accept(&mut self, s: StateId) -> &mut Self {
        self.accepts.insert(s.index());
        self
    }

    /// Adds a transition with an arbitrary label, returning its id.
    pub fn transition(&mut self, src: StateId, label: TransLabel, dst: StateId) -> TransId {
        let id = TransId(self.transitions.len() as u32);
        self.transitions.push(Transition { src, dst, label });
        id
    }

    /// Adds a transition labelled with an event pattern.
    pub fn pat(&mut self, src: StateId, pat: EventPat, dst: StateId) -> TransId {
        self.transition(src, TransLabel::Pat(pat), dst)
    }

    /// Adds a transition labelled `op(X)` — the common single-object form.
    pub fn event_var(
        &mut self,
        src: StateId,
        op: &str,
        dst: StateId,
        vocab: &mut Vocab,
    ) -> TransId {
        let pat = EventPat::on_var(vocab.op(op), Var(0));
        self.pat(src, pat, dst)
    }

    /// Adds a transition matching `op` with any arguments.
    pub fn event_op(&mut self, src: StateId, op: &str, dst: StateId, vocab: &mut Vocab) -> TransId {
        let pat = EventPat::op_only(vocab.op(op));
        self.pat(src, pat, dst)
    }

    /// Adds a wildcard transition.
    pub fn wildcard(&mut self, src: StateId, dst: StateId) -> TransId {
        self.transition(src, TransLabel::Wildcard, dst)
    }

    /// Finishes construction.
    ///
    /// # Panics
    ///
    /// Panics if no state was marked as a start state (an FA with no start
    /// states accepts nothing, which is never intended here).
    pub fn build(self) -> Fa {
        assert!(!self.starts.is_empty(), "automaton has no start state");
        Fa::from_parts(self.n_states, self.transitions, self.starts, self.accepts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_states() {
        let mut b = FaBuilder::new();
        let ss = b.states(3);
        assert_eq!(ss.len(), 3);
        assert_eq!(ss[2], StateId(2));
        b.start(ss[0]);
        let fa = b.build();
        assert_eq!(fa.state_count(), 3);
    }

    #[test]
    #[should_panic(expected = "no start state")]
    fn requires_start() {
        let mut b = FaBuilder::new();
        b.state();
        let _ = b.build();
    }
}
