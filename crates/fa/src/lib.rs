//! Finite automata over program events.
//!
//! A temporal specification is a finite automaton (FA) that accepts some
//! program execution traces and rejects others (§2 of the paper). This
//! crate provides:
//!
//! * [`Fa`] — a nondeterministic FA whose transitions are labelled by
//!   event patterns ([`TransLabel`]) or a wildcard,
//! * [`FaBuilder`] — ergonomic construction,
//! * the **executed-transition relation** ([`Fa::executed_transitions`]):
//!   the set of transitions that lie on *some accepting sequence* for a
//!   trace. This relation is the context `R ⊆ O × A` of the paper's
//!   concept analysis (§3.2) and therefore the definition of trace
//!   similarity,
//! * classical automaton algebra ([`ops`]): determinisation, completion,
//!   complement, products (intersection, union, difference, symmetric
//!   difference), DFA minimisation, language-equivalence checking, and
//!   shortest-distinguishing-witness extraction ([`Fa::distinguishing_trace`])
//!   — used to validate mined specifications against ground truth and to
//!   diff buggy specs against fixed ones (`cable diff-spec`),
//! * the three **template FAs** of §4.1 ([`templates`]): unordered, name
//!   projection, and seed order, used by Cable's *Focus* command,
//! * DOT export ([`dot`]) and a parseable text format ([`text`]).
//!
//! # Examples
//!
//! ```
//! use cable_fa::FaBuilder;
//! use cable_trace::{Trace, Vocab};
//!
//! let mut v = Vocab::new();
//! // fopen(X) (fread(X)|fwrite(X))* fclose(X)
//! let mut b = FaBuilder::new();
//! let s0 = b.state();
//! let s1 = b.state();
//! let s2 = b.state();
//! b.start(s0).accept(s2);
//! b.event_var(s0, "fopen", s1, &mut v);
//! b.event_var(s1, "fread", s1, &mut v);
//! b.event_var(s1, "fwrite", s1, &mut v);
//! b.event_var(s1, "fclose", s2, &mut v);
//! let fa = b.build();
//!
//! let ok = Trace::parse("fopen(X) fread(X) fclose(X)", &mut v).unwrap();
//! let bad = Trace::parse("fopen(X) fread(X)", &mut v).unwrap();
//! assert!(fa.accepts(&ok));
//! assert!(!fa.accepts(&bad));
//! assert_eq!(fa.executed_transitions(&ok).len(), 3);
//! ```

pub mod builder;
pub mod dot;
pub mod fa;
pub mod label;
pub mod ops;
pub mod run;
pub mod templates;
pub mod text;

pub use builder::FaBuilder;
pub use fa::{Fa, StateId, TransId, Transition};
pub use label::{ArgPat, EventPat, TransLabel};
pub use ops::{Dfa, WitnessLetter};
pub use run::SweepStop;
pub use text::ParseFaError;
