//! The nondeterministic finite automaton.

use crate::label::TransLabel;
use cable_util::BitSet;
use std::fmt;

/// Index of a state within an [`Fa`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

impl StateId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Index of a transition within an [`Fa`]. Transitions are the
/// *attributes* of the concept analysis (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransId(pub u32);

impl TransId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TransId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// A labelled transition `src --label--> dst`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Transition {
    /// Source state (the "head" in the paper's terminology).
    pub src: StateId,
    /// Destination state (the "tail").
    pub dst: StateId,
    /// The label.
    pub label: TransLabel,
}

/// A nondeterministic finite automaton over event labels.
///
/// States and transitions are densely numbered; the automaton is immutable
/// after construction (see [`crate::FaBuilder`]). There are no ε
/// transitions: every transition consumes exactly one event, which keeps
/// the executed-transition relation ([`Fa::executed_transitions`]) aligned
/// with trace positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fa {
    n_states: u32,
    transitions: Vec<Transition>,
    starts: BitSet,
    accepts: BitSet,
    /// Outgoing transition ids per state.
    out: Vec<Vec<TransId>>,
}

impl Fa {
    pub(crate) fn from_parts(
        n_states: u32,
        transitions: Vec<Transition>,
        starts: BitSet,
        accepts: BitSet,
    ) -> Self {
        let mut out = vec![Vec::new(); n_states as usize];
        for (i, t) in transitions.iter().enumerate() {
            assert!(
                t.src.0 < n_states && t.dst.0 < n_states,
                "transition out of range"
            );
            out[t.src.index()].push(TransId(i as u32));
        }
        assert!(
            starts.last().is_none_or(|s| (s as u32) < n_states),
            "start state out of range"
        );
        assert!(
            accepts.last().is_none_or(|s| (s as u32) < n_states),
            "accept state out of range"
        );
        Fa {
            n_states,
            transitions,
            starts,
            accepts,
            out,
        }
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.n_states as usize
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// All state ids.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.n_states).map(StateId)
    }

    /// All transition ids.
    pub fn transition_ids(&self) -> impl Iterator<Item = TransId> {
        (0..self.transitions.len() as u32).map(TransId)
    }

    /// Looks up a transition.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn transition(&self, id: TransId) -> &Transition {
        &self.transitions[id.index()]
    }

    /// All transitions in id order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Outgoing transitions of a state.
    pub fn outgoing(&self, s: StateId) -> &[TransId] {
        &self.out[s.index()]
    }

    /// The start states.
    pub fn start_states(&self) -> &BitSet {
        &self.starts
    }

    /// The accepting states.
    pub fn accept_states(&self) -> &BitSet {
        &self.accepts
    }

    /// Tests whether `s` is a start state.
    pub fn is_start(&self, s: StateId) -> bool {
        self.starts.contains(s.index())
    }

    /// Tests whether `s` is an accepting state.
    pub fn is_accept(&self, s: StateId) -> bool {
        self.accepts.contains(s.index())
    }

    /// Tests whether the automaton has a wildcard transition.
    pub fn has_wildcard(&self) -> bool {
        self.transitions.iter().any(|t| t.label.is_wildcard())
    }

    /// The distinct non-wildcard labels, in first-appearance order.
    pub fn concrete_labels(&self) -> Vec<&TransLabel> {
        let mut seen = Vec::new();
        for t in &self.transitions {
            if !t.label.is_wildcard() && !seen.contains(&&t.label) {
                seen.push(&t.label);
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FaBuilder;
    use cable_trace::Vocab;

    #[test]
    fn accessors() {
        let mut v = Vocab::new();
        let mut b = FaBuilder::new();
        let s0 = b.state();
        let s1 = b.state();
        b.start(s0).accept(s1);
        let t = b.event_var(s0, "f", s1, &mut v);
        b.wildcard(s1, s1);
        let fa = b.build();
        assert_eq!(fa.state_count(), 2);
        assert_eq!(fa.transition_count(), 2);
        assert!(fa.is_start(s0));
        assert!(!fa.is_start(s1));
        assert!(fa.is_accept(s1));
        assert_eq!(fa.outgoing(s0), &[t]);
        assert!(fa.has_wildcard());
        assert_eq!(fa.concrete_labels().len(), 1);
        assert_eq!(fa.transition(t).src, s0);
        assert_eq!(fa.states().count(), 2);
        assert_eq!(fa.transition_ids().count(), 2);
    }

    #[test]
    #[should_panic(expected = "transition out of range")]
    fn rejects_out_of_range_transition() {
        use crate::label::TransLabel;
        use cable_util::BitSet;
        let t = Transition {
            src: StateId(0),
            dst: StateId(5),
            label: TransLabel::Wildcard,
        };
        let _ = Fa::from_parts(1, vec![t], BitSet::singleton(0), BitSet::singleton(0));
    }
}
