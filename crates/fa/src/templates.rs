//! The three focus-template automata of §4.1.
//!
//! When a concept looks too complicated, the Cable user starts a *focused
//! sub-session* whose concept lattice is induced by a different, simpler
//! reference FA. The paper names three templates:
//!
//! * **Unordered** — `(e0|e1|…|en)*`: distinguishes traces only by *which*
//!   events they contain, ignoring order entirely.
//! * **Name projection** — `(e0(…X…)|…|en(…X…)|wildcard)*`: attends only
//!   to the events that mention one variable `X`, letting the user check
//!   correctness one name at a time.
//! * **Seed order** — `(e0|…|en)*; seed; (e0|…|en)*`: distinguishes traces
//!   by which events occur before vs after the (unique) seed event.

use crate::builder::FaBuilder;
use crate::fa::Fa;
use crate::label::EventPat;
use cable_trace::{Trace, Var};

/// Builds the unordered template `(e0|e1|…|en)*` over the given event
/// patterns.
///
/// The single state is both start and accept; each pattern becomes a
/// self-loop, so the executed-transition set of a trace is exactly the set
/// of patterns that occur in it.
pub fn unordered(events: &[EventPat]) -> Fa {
    let mut b = FaBuilder::new();
    let s = b.state();
    b.start(s).accept(s);
    for e in events {
        b.pat(s, e.clone(), s);
    }
    b.build()
}

/// Builds the unordered template over the exact events occurring in the
/// given traces (deduplicated, in first-appearance order).
pub fn unordered_of_trace_events(traces: &[Trace]) -> Fa {
    unordered(&distinct_event_pats(traces))
}

/// Builds the name-projection template for variable `var`:
/// `(e0(…X…)|…|en(…X…)|wildcard)*`.
///
/// Only patterns mentioning `var` get their own self-loop; a wildcard
/// self-loop absorbs everything else, so the automaton accepts every
/// trace but its executed-transition relation distinguishes traces only
/// by which `var`-events they contain.
pub fn name_projection(events: &[EventPat], var: Var) -> Fa {
    let mut b = FaBuilder::new();
    let s = b.state();
    b.start(s).accept(s);
    for e in events {
        if e.mentions_var(var) {
            b.pat(s, e.clone(), s);
        }
    }
    b.wildcard(s, s);
    b.build()
}

/// Builds the seed-order template:
/// `(e0|…|en)*; seed; (e0|…|en)*`.
///
/// Events equal to the seed pattern are excluded from the loops, so the
/// trace must contain exactly one seed event; the executed transitions
/// then record which events occur before and which after it.
pub fn seed_order(events: &[EventPat], seed: &EventPat) -> Fa {
    let mut b = FaBuilder::new();
    let before = b.state();
    let after = b.state();
    b.start(before).accept(after);
    for e in events {
        if e != seed {
            b.pat(before, e.clone(), before);
        }
    }
    b.pat(before, seed.clone(), after);
    for e in events {
        if e != seed {
            b.pat(after, e.clone(), after);
        }
    }
    b.build()
}

/// Collects the distinct exact event patterns occurring in the traces, in
/// first-appearance order.
pub fn distinct_event_pats(traces: &[Trace]) -> Vec<EventPat> {
    let mut pats: Vec<EventPat> = Vec::new();
    for t in traces {
        for e in t.iter() {
            let p = EventPat::exact(e);
            if !pats.contains(&p) {
                pats.push(p);
            }
        }
    }
    pats
}

#[cfg(test)]
mod tests {
    use super::*;
    use cable_trace::{Trace, Vocab};

    fn parse(text: &str, v: &mut Vocab) -> Trace {
        Trace::parse(text, v).unwrap()
    }

    #[test]
    fn unordered_ignores_order() {
        let mut v = Vocab::new();
        let ab = parse("a(X) b(X)", &mut v);
        let ba = parse("b(X) a(X)", &mut v);
        let fa = unordered_of_trace_events(std::slice::from_ref(&ab));
        assert!(fa.accepts(&ab));
        assert!(fa.accepts(&ba));
        assert_eq!(fa.executed_transitions(&ab), fa.executed_transitions(&ba));
        // A trace with an unknown event is rejected.
        let c = parse("c(X)", &mut v);
        assert!(!fa.accepts(&c));
    }

    #[test]
    fn unordered_distinguishes_event_sets() {
        let mut v = Vocab::new();
        let ab = parse("a(X) b(X)", &mut v);
        let a = parse("a(X)", &mut v);
        let fa = unordered_of_trace_events(&[ab.clone(), a.clone()]);
        assert_ne!(fa.executed_transitions(&ab), fa.executed_transitions(&a));
        assert!(fa
            .executed_transitions(&a)
            .is_subset(&fa.executed_transitions(&ab)));
    }

    #[test]
    fn name_projection_sees_only_one_var() {
        let mut v = Vocab::new();
        let t1 = parse("a(X) b(Y) c(X)", &mut v);
        let t2 = parse("a(X) d(Y) c(X)", &mut v);
        let pats = distinct_event_pats(&[t1.clone(), t2.clone()]);
        let fa = name_projection(&pats, Var(0));
        assert!(fa.accepts(&t1));
        assert!(fa.accepts(&t2));
        // b(Y) vs d(Y) both fall into the wildcard, so the executed sets
        // are identical: the projection ignores Y-events.
        assert_eq!(fa.executed_transitions(&t1), fa.executed_transitions(&t2));
        // But dropping an X-event is visible.
        let t3 = parse("a(X) b(Y)", &mut v);
        assert_ne!(fa.executed_transitions(&t1), fa.executed_transitions(&t3));
    }

    #[test]
    fn seed_order_distinguishes_before_after() {
        let mut v = Vocab::new();
        let before = parse("a(X) s(X) b(X)", &mut v);
        let after = parse("b(X) s(X) a(X)", &mut v);
        let pats = distinct_event_pats(&[before.clone(), after.clone()]);
        let seed = EventPat::exact(&parse("s(X)", &mut v).events()[0]);
        let fa = seed_order(&pats, &seed);
        assert!(fa.accepts(&before));
        assert!(fa.accepts(&after));
        assert_ne!(
            fa.executed_transitions(&before),
            fa.executed_transitions(&after)
        );
        // No seed, or two seeds: rejected.
        assert!(!fa.accepts(&parse("a(X) b(X)", &mut v)));
        assert!(!fa.accepts(&parse("s(X) s(X)", &mut v)));
    }

    #[test]
    fn distinct_pats_dedup() {
        let mut v = Vocab::new();
        let t = parse("a(X) b(X) a(X)", &mut v);
        assert_eq!(distinct_event_pats(&[t]).len(), 2);
        assert!(distinct_event_pats(&[]).is_empty());
    }
}
