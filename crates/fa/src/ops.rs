//! Automaton algebra: trimming, determinisation, minimisation, product,
//! and language equivalence.
//!
//! These operations are not needed by Cable's clustering itself, but the
//! reproduction uses them to *validate* results: e.g. checking that a
//! re-mined specification is language-equivalent to the ground-truth
//! specification after debugging.
//!
//! # Letters
//!
//! Determinisation works over a finite alphabet of *letters*: the
//! meet-closure of the concrete transition labels ([`meet_closure`]),
//! plus a synthetic `Other` letter standing for every event that matches
//! none of them (only wildcard transitions fire on `Other`). The closure
//! refines overlapping labels — e.g. the op-only `f` against the specific
//! `f(X)` — so that every event has a unique minimal matching letter and
//! the letters partition the event space.

use crate::fa::{Fa, StateId};
use crate::label::{ArgPat, EventPat, TransLabel};
use cable_obs::CounterHandle;
use cable_util::BitSet;
use std::collections::{HashMap, VecDeque};

/// Subset constructions performed.
static DETERMINIZE_CALLS: CounterHandle = CounterHandle::new("fa.determinize.calls");
/// DFA states produced by subset constructions.
static DETERMINIZE_STATES: CounterHandle = CounterHandle::new("fa.determinize.dfa_states");
/// DFA minimisations performed.
static MINIMIZE_CALLS: CounterHandle = CounterHandle::new("fa.minimize.calls");
/// States removed by minimisation (input minus output states).
static MINIMIZE_STATES_REMOVED: CounterHandle = CounterHandle::new("fa.minimize.states_removed");

/// Tests whether two argument patterns can match a common argument.
fn arg_pats_overlap(a: &ArgPat, b: &ArgPat) -> bool {
    match (a, b) {
        (ArgPat::Any, _) | (_, ArgPat::Any) => true,
        (ArgPat::Var(x), ArgPat::Var(y)) => x == y,
        (ArgPat::Atom(x), ArgPat::Atom(y)) => x == y,
        _ => false,
    }
}

/// Tests whether two event patterns can match a common event.
pub fn event_pats_overlap(a: &EventPat, b: &EventPat) -> bool {
    if a.op != b.op {
        return false;
    }
    match (&a.args, &b.args) {
        (None, _) | (_, None) => true,
        (Some(xs), Some(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| arg_pats_overlap(x, y))
        }
    }
}

/// The meet (most general common refinement) of two argument patterns,
/// or `None` when they are disjoint.
fn arg_pat_meet(a: &ArgPat, b: &ArgPat) -> Option<ArgPat> {
    match (a, b) {
        (ArgPat::Any, x) | (x, ArgPat::Any) => Some(*x),
        (ArgPat::Var(x), ArgPat::Var(y)) if x == y => Some(ArgPat::Var(*x)),
        (ArgPat::Atom(x), ArgPat::Atom(y)) if x == y => Some(ArgPat::Atom(*x)),
        _ => None,
    }
}

/// The meet of two transition labels: a label matching exactly the
/// events both match, or `None` when no event matches both. Used by the
/// intersection product.
pub fn label_meet(a: &TransLabel, b: &TransLabel) -> Option<TransLabel> {
    match (a, b) {
        (TransLabel::Wildcard, x) | (x, TransLabel::Wildcard) => Some(x.clone()),
        (TransLabel::Pat(p), TransLabel::Pat(q)) => {
            if p.op != q.op {
                return None;
            }
            let args = match (&p.args, &q.args) {
                (None, x) | (x, None) => x.clone(),
                (Some(xs), Some(ys)) => {
                    if xs.len() != ys.len() {
                        return None;
                    }
                    Some(
                        xs.iter()
                            .zip(ys)
                            .map(|(x, y)| arg_pat_meet(x, y))
                            .collect::<Option<Vec<_>>>()?,
                    )
                }
            };
            Some(TransLabel::Pat(EventPat { op: p.op, args }))
        }
    }
}

/// Tests whether `a` matches every event `b` matches.
pub fn label_subsumes(a: &TransLabel, b: &TransLabel) -> bool {
    match (a, b) {
        (TransLabel::Wildcard, _) => true,
        (_, TransLabel::Wildcard) => false,
        (TransLabel::Pat(p), TransLabel::Pat(q)) => {
            if p.op != q.op {
                return false;
            }
            match (&p.args, &q.args) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some(xs), Some(ys)) => {
                    xs.len() == ys.len()
                        && xs.iter().zip(ys).all(|(x, y)| match (x, y) {
                            (ArgPat::Any, _) => true,
                            (x, y) => x == y,
                        })
                }
            }
        }
    }
}

/// The meet-closure of a label set: the input labels plus all pairwise
/// meets, iterated to a fixpoint. Every event matching any subset of the
/// input labels has a unique minimal matching label in the closure, so
/// the closure's members serve as refined, non-ambiguous letters for
/// determinisation.
pub fn meet_closure(labels: &[TransLabel]) -> Vec<TransLabel> {
    let mut closed: Vec<TransLabel> = Vec::new();
    for l in labels {
        if !closed.contains(l) {
            closed.push(l.clone());
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        let snapshot = closed.clone();
        for (i, a) in snapshot.iter().enumerate() {
            for b in &snapshot[i + 1..] {
                if let Some(m) = label_meet(a, b) {
                    if !closed.contains(&m) {
                        closed.push(m);
                        changed = true;
                    }
                }
            }
        }
    }
    closed
}

/// A deterministic finite automaton over a letter alphabet.
///
/// Letter `i < labels.len()` is the concrete label `labels[i]` from the
/// meet-closed refinement of the requested alphabet (see
/// [`Fa::determinize_with_alphabet`]); letter `labels.len()` is `Other`.
/// Missing transitions mean rejection.
#[derive(Debug, Clone)]
pub struct Dfa {
    labels: Vec<TransLabel>,
    /// `delta[state][letter]`; the extra final column is `Other`.
    delta: Vec<Vec<Option<u32>>>,
    start: u32,
    accepts: BitSet,
}

impl Dfa {
    /// The concrete alphabet (excluding `Other`).
    pub fn labels(&self) -> &[TransLabel] {
        &self.labels
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.delta.len()
    }

    /// The start state index.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Tests whether a state is accepting.
    pub fn is_accept(&self, s: u32) -> bool {
        self.accepts.contains(s as usize)
    }

    /// The successor of `s` on letter `l` (where `l == labels.len()` means
    /// `Other`), if any.
    pub fn step(&self, s: u32, l: usize) -> Option<u32> {
        self.delta[s as usize][l]
    }

    /// Number of letters including `Other`.
    pub fn letter_count(&self) -> usize {
        self.labels.len() + 1
    }

    /// Runs a letter string.
    pub fn accepts_letters(&self, letters: &[usize]) -> bool {
        let mut s = self.start;
        for &l in letters {
            match self.step(s, l) {
                Some(n) => s = n,
                None => return false,
            }
        }
        self.is_accept(s)
    }

    /// Completes the DFA by adding a rejecting sink so that every state
    /// has a successor on every letter. Idempotent in effect.
    pub fn complete(&self) -> Dfa {
        let mut d = self.clone();
        let needs_sink = d.delta.iter().any(|row| row.iter().any(Option::is_none));
        if !needs_sink {
            return d;
        }
        let sink = d.delta.len() as u32;
        let letters = d.letter_count();
        d.delta.push(vec![Some(sink); letters]);
        for row in &mut d.delta {
            for cell in row.iter_mut() {
                if cell.is_none() {
                    *cell = Some(sink);
                }
            }
        }
        d
    }

    /// Hopcroft-style (here: Moore) DFA minimisation. The result is
    /// complete and has the minimal number of states for the language
    /// *over this letter alphabet*.
    pub fn minimize(&self) -> Dfa {
        let d = self.complete();
        let n = d.delta.len();
        let letters = d.letter_count();
        // Initial partition: accepting vs non-accepting.
        let mut class: Vec<u32> = (0..n).map(|s| u32::from(d.is_accept(s as u32))).collect();
        let mut n_classes = 2;
        loop {
            // Signature of a state: (class, classes of successors).
            let mut sig_map: HashMap<Vec<u32>, u32> = HashMap::new();
            let mut new_class = vec![0u32; n];
            for s in 0..n {
                let mut sig = Vec::with_capacity(letters + 1);
                sig.push(class[s]);
                for l in 0..letters {
                    sig.push(class[d.delta[s][l].expect("complete") as usize]);
                }
                let next = sig_map.len() as u32;
                new_class[s] = *sig_map.entry(sig).or_insert(next);
            }
            let count = sig_map.len();
            class = new_class;
            if count == n_classes {
                break;
            }
            n_classes = count;
        }
        MINIMIZE_CALLS.get().incr();
        MINIMIZE_STATES_REMOVED
            .get()
            .add((n.saturating_sub(n_classes)) as u64);
        // Rebuild.
        let mut delta = vec![vec![None; letters]; n_classes];
        let mut accepts = BitSet::with_capacity(n_classes);
        for s in 0..n {
            let c = class[s] as usize;
            for l in 0..letters {
                delta[c][l] = Some(class[d.delta[s][l].expect("complete") as usize]);
            }
            if d.is_accept(s as u32) {
                accepts.insert(c);
            }
        }
        let min = Dfa {
            labels: d.labels.clone(),
            delta,
            start: class[d.start as usize],
            accepts,
        };
        min.trim_reachable()
    }

    /// Drops states unreachable from the start (keeps completeness only if
    /// the reachable part is complete).
    fn trim_reachable(&self) -> Dfa {
        let n = self.delta.len();
        let mut seen = vec![false; n];
        let mut order = Vec::new();
        let mut queue = VecDeque::from([self.start]);
        seen[self.start as usize] = true;
        while let Some(s) = queue.pop_front() {
            order.push(s);
            for d in self.delta[s as usize].iter().flatten() {
                if !seen[*d as usize] {
                    seen[*d as usize] = true;
                    queue.push_back(*d);
                }
            }
        }
        let mut remap = vec![u32::MAX; n];
        for (new, &old) in order.iter().enumerate() {
            remap[old as usize] = new as u32;
        }
        let mut delta = Vec::with_capacity(order.len());
        let mut accepts = BitSet::with_capacity(order.len());
        for (new, &old) in order.iter().enumerate() {
            delta.push(
                self.delta[old as usize]
                    .iter()
                    .map(|c| c.map(|d| remap[d as usize]))
                    .collect(),
            );
            if self.is_accept(old) {
                accepts.insert(new);
            }
        }
        Dfa {
            labels: self.labels.clone(),
            delta,
            start: 0,
            accepts,
        }
    }

    /// Number of states in the minimal equivalent DFA (a canonical size
    /// measure for Table 1).
    pub fn minimal_state_count(&self) -> usize {
        self.minimize().state_count()
    }
}

impl Fa {
    /// Removes states that are unreachable from a start state or from
    /// which no accepting state is reachable, renumbering the rest.
    ///
    /// If nothing useful remains, the result is a single non-accepting
    /// start state with no transitions (the empty language).
    pub fn trim(&self) -> Fa {
        let n = self.state_count();
        // Forward reachability.
        let mut fwd = self.start_states().clone();
        let mut changed = true;
        while changed {
            changed = false;
            for t in self.transitions() {
                if fwd.contains(t.src.index()) && fwd.insert(t.dst.index()) {
                    changed = true;
                }
            }
        }
        // Backward reachability.
        let mut bwd = self.accept_states().clone();
        changed = true;
        while changed {
            changed = false;
            for t in self.transitions() {
                if bwd.contains(t.dst.index()) && bwd.insert(t.src.index()) {
                    changed = true;
                }
            }
        }
        let keep = fwd.intersection(&bwd);
        if keep.is_empty() {
            let mut b = crate::builder::FaBuilder::new();
            let s = b.state();
            b.start(s);
            return b.build();
        }
        let mut remap = vec![u32::MAX; n];
        for (new, old) in keep.iter().enumerate() {
            remap[old] = new as u32;
        }
        let transitions = self
            .transitions()
            .iter()
            .filter(|t| keep.contains(t.src.index()) && keep.contains(t.dst.index()))
            .map(|t| crate::fa::Transition {
                src: StateId(remap[t.src.index()]),
                dst: StateId(remap[t.dst.index()]),
                label: t.label.clone(),
            })
            .collect();
        let starts = self
            .start_states()
            .iter()
            .filter(|s| keep.contains(*s))
            .map(|s| remap[s] as usize)
            .collect();
        let accepts = self
            .accept_states()
            .iter()
            .filter(|s| keep.contains(*s))
            .map(|s| remap[s] as usize)
            .collect();
        Fa::from_parts(keep.len() as u32, transitions, starts, accepts)
    }

    /// The union automaton: accepts a trace iff either operand does
    /// (disjoint NFA union). The §2.1 fix step often *adds* behaviour to
    /// a specification; union composes the addition.
    ///
    /// # Examples
    ///
    /// ```
    /// use cable_fa::Fa;
    /// use cable_trace::{Trace, Vocab};
    ///
    /// let mut v = Vocab::new();
    /// let a = Fa::parse("start s0\naccept s1\ns0 -> s1 : f(X)\n", &mut v)?;
    /// let b = Fa::parse("start s0\naccept s1\ns0 -> s1 : g(X)\n", &mut v)?;
    /// let u = a.union(&b);
    /// assert!(u.accepts(&Trace::parse("f(X)", &mut v).unwrap()));
    /// assert!(u.accepts(&Trace::parse("g(X)", &mut v).unwrap()));
    /// # Ok::<(), cable_fa::ParseFaError>(())
    /// ```
    pub fn union(&self, other: &Fa) -> Fa {
        let offset = self.state_count() as u32;
        let mut transitions: Vec<crate::fa::Transition> = self.transitions().to_vec();
        transitions.extend(other.transitions().iter().map(|t| crate::fa::Transition {
            src: StateId(t.src.0 + offset),
            dst: StateId(t.dst.0 + offset),
            label: t.label.clone(),
        }));
        let mut starts = self.start_states().clone();
        starts.extend(other.start_states().iter().map(|s| s + offset as usize));
        let mut accepts = self.accept_states().clone();
        accepts.extend(other.accept_states().iter().map(|s| s + offset as usize));
        Fa::from_parts(
            offset + other.state_count() as u32,
            transitions,
            starts,
            accepts,
        )
    }

    /// The intersection automaton: accepts a trace iff both operands do
    /// (synchronous product; paired transitions carry the
    /// [`label_meet`] of the operand labels).
    pub fn intersection(&self, other: &Fa) -> Fa {
        let n2 = other.state_count() as u32;
        let pair = |a: StateId, b: StateId| StateId(a.0 * n2 + b.0);
        let mut b = crate::builder::FaBuilder::new();
        let _states = b.states(self.state_count() * other.state_count());
        for s1 in self.start_states().iter() {
            for s2 in other.start_states().iter() {
                b.start(pair(StateId(s1 as u32), StateId(s2 as u32)));
            }
        }
        for a1 in self.accept_states().iter() {
            for a2 in other.accept_states().iter() {
                b.accept(pair(StateId(a1 as u32), StateId(a2 as u32)));
            }
        }
        for t1 in self.transitions() {
            for t2 in other.transitions() {
                if let Some(label) = label_meet(&t1.label, &t2.label) {
                    b.transition(pair(t1.src, t2.src), label, pair(t1.dst, t2.dst));
                }
            }
        }
        b.build().trim()
    }

    /// Determinises over the given alphabet (which must contain every
    /// concrete label of this automaton).
    ///
    /// Overlapping labels (e.g. the op-only `XGetSelectionOwner` and the
    /// specific `XGetSelectionOwner(X,'PRIMARY)`) are handled by *label
    /// refinement*: the letter set is the meet-closure of the alphabet,
    /// and a transition fires on every letter its label subsumes. Every
    /// event has a unique minimal matching meet, so the letters partition
    /// the event space exactly (assuming each meet is realisable by some
    /// event — true for this workspace's pattern language, where variable
    /// and atom spaces are never exhausted).
    ///
    /// # Panics
    ///
    /// Panics if the automaton has a concrete label missing from
    /// `alphabet`, or the alphabet contains a wildcard.
    pub fn determinize_with_alphabet(&self, alphabet: &[TransLabel]) -> Dfa {
        for a in alphabet {
            assert!(!a.is_wildcard(), "alphabet letters must be concrete");
        }
        for l in self.concrete_labels() {
            assert!(
                alphabet.contains(l),
                "automaton label missing from alphabet"
            );
        }
        let letter_labels = meet_closure(alphabet);
        let letters = letter_labels.len() + 1; // + Other
        let mut states: HashMap<BitSet, u32> = HashMap::new();
        let mut order: Vec<BitSet> = Vec::new();
        let mut delta: Vec<Vec<Option<u32>>> = Vec::new();
        let start_set = self.start_states().clone();
        states.insert(start_set.clone(), 0);
        order.push(start_set);
        let mut i = 0;
        while i < order.len() {
            let current = order[i].clone();
            let mut row = vec![None; letters];
            for (l, row_cell) in row.iter_mut().enumerate() {
                let mut next = BitSet::new();
                for s in current.iter() {
                    for &tid in self.outgoing(StateId(s as u32)) {
                        let t = self.transition(tid);
                        let fires = if l < letter_labels.len() {
                            t.label.is_wildcard() || label_subsumes(&t.label, &letter_labels[l])
                        } else {
                            // Other: only wildcards fire.
                            t.label.is_wildcard()
                        };
                        if fires {
                            next.insert(t.dst.index());
                        }
                    }
                }
                if !next.is_empty() {
                    let id = *states.entry(next.clone()).or_insert_with(|| {
                        order.push(next.clone());
                        (order.len() - 1) as u32
                    });
                    *row_cell = Some(id);
                }
            }
            delta.push(row);
            i += 1;
        }
        let mut accepts = BitSet::with_capacity(order.len());
        for (id, set) in order.iter().enumerate() {
            if !set.is_disjoint(self.accept_states()) {
                accepts.insert(id);
            }
        }
        DETERMINIZE_CALLS.get().incr();
        DETERMINIZE_STATES.get().add(order.len() as u64);
        Dfa {
            labels: letter_labels,
            delta,
            start: 0,
            accepts,
        }
    }

    /// Determinises over this automaton's own concrete labels.
    ///
    /// # Panics
    ///
    /// See [`Fa::determinize_with_alphabet`].
    pub fn determinize(&self) -> Dfa {
        let alphabet: Vec<TransLabel> = self.concrete_labels().into_iter().cloned().collect();
        self.determinize_with_alphabet(&alphabet)
    }

    /// Tests language containment: every trace this automaton accepts is
    /// accepted by `other`.
    ///
    /// Useful for validating debugging outcomes, e.g. that a re-mined
    /// specification does not accept behaviour outside the ground truth.
    ///
    /// # Panics
    ///
    /// See [`Fa::determinize_with_alphabet`].
    ///
    /// # Examples
    ///
    /// ```
    /// use cable_fa::Fa;
    /// use cable_trace::Vocab;
    ///
    /// let mut v = Vocab::new();
    /// let small = Fa::parse("start s0\naccept s1\ns0 -> s1 : f(X)\n", &mut v)?;
    /// let big = Fa::parse("start s0\naccept s1\ns0 -> s1 : f(X)\ns1 -> s1 : f(X)\n", &mut v)?;
    /// assert!(small.language_subset_of(&big));
    /// assert!(!big.language_subset_of(&small));
    /// # Ok::<(), cable_fa::ParseFaError>(())
    /// ```
    pub fn language_subset_of(&self, other: &Fa) -> bool {
        let mut alphabet: Vec<TransLabel> = self.concrete_labels().into_iter().cloned().collect();
        for l in other.concrete_labels() {
            if !alphabet.contains(l) {
                alphabet.push(l.clone());
            }
        }
        let a = self.determinize_with_alphabet(&alphabet).complete();
        let b = other.determinize_with_alphabet(&alphabet).complete();
        let letters = a.letter_count();
        let mut seen = std::collections::HashSet::new();
        let mut queue = VecDeque::from([(a.start(), b.start())]);
        seen.insert((a.start(), b.start()));
        while let Some((x, y)) = queue.pop_front() {
            if a.is_accept(x) && !b.is_accept(y) {
                return false; // A witness trace separates the languages.
            }
            for l in 0..letters {
                let pair = (
                    a.step(x, l).expect("complete"),
                    b.step(y, l).expect("complete"),
                );
                if seen.insert(pair) {
                    queue.push_back(pair);
                }
            }
        }
        true
    }

    /// Tests language equivalence with another automaton.
    ///
    /// Both automata are determinised over the union of their concrete
    /// alphabets and compared by a synchronous product walk.
    ///
    /// # Panics
    ///
    /// See [`Fa::determinize_with_alphabet`].
    pub fn equivalent(&self, other: &Fa) -> bool {
        let mut alphabet: Vec<TransLabel> = self.concrete_labels().into_iter().cloned().collect();
        for l in other.concrete_labels() {
            if !alphabet.contains(l) {
                alphabet.push(l.clone());
            }
        }
        let a = self.determinize_with_alphabet(&alphabet).complete();
        let b = other.determinize_with_alphabet(&alphabet).complete();
        let letters = a.letter_count();
        let mut seen = std::collections::HashSet::new();
        let mut queue = VecDeque::from([(a.start, b.start)]);
        seen.insert((a.start, b.start));
        while let Some((x, y)) = queue.pop_front() {
            if a.is_accept(x) != b.is_accept(y) {
                return false;
            }
            for l in 0..letters {
                let pair = (
                    a.step(x, l).expect("complete"),
                    b.step(y, l).expect("complete"),
                );
                if seen.insert(pair) {
                    queue.push_back(pair);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FaBuilder;
    use cable_trace::{Trace, Vocab};

    fn linear_fa(ops: &[&str], v: &mut Vocab) -> Fa {
        let mut b = FaBuilder::new();
        let mut prev = b.state();
        b.start(prev);
        for op in ops {
            let next = b.state();
            b.event_var(prev, op, next, v);
            prev = next;
        }
        b.accept(prev);
        b.build()
    }

    #[test]
    fn trim_removes_dead_states() {
        let mut v = Vocab::new();
        let mut b = FaBuilder::new();
        let s0 = b.state();
        let dead = b.state();
        let acc = b.state();
        let unreachable = b.state();
        b.start(s0).accept(acc);
        b.event_var(s0, "f", acc, &mut v);
        b.event_var(s0, "g", dead, &mut v);
        b.event_var(unreachable, "h", acc, &mut v);
        let fa = b.build().trim();
        assert_eq!(fa.state_count(), 2);
        assert_eq!(fa.transition_count(), 1);
        let t = Trace::parse("f(X)", &mut v).unwrap();
        assert!(fa.accepts(&t));
    }

    #[test]
    fn trim_empty_language() {
        let mut b = FaBuilder::new();
        let s = b.state();
        b.start(s); // no accepting state
        let fa = b.build().trim();
        assert_eq!(fa.state_count(), 1);
        assert_eq!(fa.transition_count(), 0);
        assert!(!fa.accepts(&Trace::empty()));
    }

    #[test]
    fn determinize_merges_nondeterminism() {
        let mut v = Vocab::new();
        let mut b = FaBuilder::new();
        let s0 = b.state();
        let a1 = b.state();
        let a2 = b.state();
        b.start(s0).accept(a1).accept(a2);
        b.event_var(s0, "f", a1, &mut v);
        b.event_var(s0, "f", a2, &mut v);
        let dfa = b.build().determinize();
        assert_eq!(dfa.state_count(), 2);
        assert!(dfa.accepts_letters(&[0]));
        assert!(!dfa.accepts_letters(&[0, 0]));
    }

    #[test]
    fn minimize_collapses_equivalent_states() {
        let mut v = Vocab::new();
        // Two redundant paths of the same length: f g | f g (duplicated states).
        let mut b = FaBuilder::new();
        let s0 = b.state();
        let p1 = b.state();
        let p2 = b.state();
        let a1 = b.state();
        let a2 = b.state();
        b.start(s0).accept(a1).accept(a2);
        b.event_var(s0, "f", p1, &mut v);
        b.event_var(s0, "f", p2, &mut v);
        b.event_var(p1, "g", a1, &mut v);
        b.event_var(p2, "g", a2, &mut v);
        let dfa = b.build().determinize();
        let min = dfa.minimize();
        // f g over alphabet {f,g}: states {start, after-f, accept, sink} = 4.
        assert_eq!(min.state_count(), 4);
        assert!(min.accepts_letters(&[0, 1]));
        assert!(!min.accepts_letters(&[0]));
    }

    #[test]
    fn equivalence_positive_and_negative() {
        let mut v = Vocab::new();
        let a = linear_fa(&["f", "g"], &mut v);
        let b = linear_fa(&["f", "g"], &mut v);
        let c = linear_fa(&["f", "h"], &mut v);
        assert!(a.equivalent(&b));
        assert!(!a.equivalent(&c));
    }

    #[test]
    fn equivalence_distinguishes_wildcard() {
        let mut v = Vocab::new();
        let mut b1 = FaBuilder::new();
        let s = b1.state();
        b1.start(s).accept(s);
        b1.wildcard(s, s);
        let anything = b1.build();
        let mut b2 = FaBuilder::new();
        let s = b2.state();
        b2.start(s).accept(s);
        b2.event_var(s, "f", s, &mut v);
        let only_f = b2.build();
        assert!(!anything.equivalent(&only_f));
        assert!(anything.equivalent(&anything.clone()));
    }

    #[test]
    fn overlap_detection() {
        let mut v = Vocab::new();
        let f = v.op("f");
        let a = EventPat::op_only(f);
        let b = EventPat::on_var(f, cable_trace::Var(0));
        assert!(event_pats_overlap(&a, &b));
        let c = EventPat::on_var(f, cable_trace::Var(1));
        assert!(!event_pats_overlap(&b, &c));
        let g = EventPat::op_only(v.op("g"));
        assert!(!event_pats_overlap(&a, &g));
    }

    #[test]
    fn determinize_refines_overlapping_labels() {
        // `f` (any args) overlaps `f(X)`; refinement keeps them apart:
        // an automaton accepting any-f once is NOT equivalent to one
        // accepting exactly f(X) once, but IS equivalent to its own
        // two-transition restatement.
        let mut v = Vocab::new();
        let mut b = FaBuilder::new();
        let s0 = b.state();
        let s1 = b.state();
        b.start(s0).accept(s1);
        b.event_op(s0, "f", s1, &mut v);
        let any_f = b.build();

        let mut b = FaBuilder::new();
        let s0 = b.state();
        let s1 = b.state();
        b.start(s0).accept(s1);
        b.event_var(s0, "f", s1, &mut v);
        let only_fx = b.build();

        let mut b = FaBuilder::new();
        let s0 = b.state();
        let s1 = b.state();
        b.start(s0).accept(s1);
        b.event_var(s0, "f", s1, &mut v);
        b.event_op(s0, "f", s1, &mut v);
        let both = b.build();

        assert!(!any_f.equivalent(&only_fx), "f(Y) separates them");
        assert!(any_f.equivalent(&both));
        // Direct acceptance agrees.
        let fy = Trace::parse("f(Y)", &mut v).unwrap();
        let fx = Trace::parse("f(X)", &mut v).unwrap();
        assert!(any_f.accepts(&fy) && !only_fx.accepts(&fy));
        assert!(any_f.accepts(&fx) && only_fx.accepts(&fx));
    }

    #[test]
    fn meet_closure_adds_refinements() {
        let mut v = Vocab::new();
        let f = v.op("f");
        let any = TransLabel::Pat(EventPat::op_only(f));
        let fx = TransLabel::Pat(EventPat::on_var(f, cable_trace::Var(0)));
        let closure = meet_closure(&[any.clone(), fx.clone()]);
        assert_eq!(closure.len(), 2, "f ⊓ f(X) = f(X), already present");
        assert!(label_subsumes(&any, &fx));
        assert!(!label_subsumes(&fx, &any));
        // Incomparable overlapping labels generate their meet.
        let f_x_any = TransLabel::Pat(EventPat {
            op: f,
            args: Some(vec![ArgPat::Var(cable_trace::Var(0)), ArgPat::Any]),
        });
        let f_any_y = TransLabel::Pat(EventPat {
            op: f,
            args: Some(vec![ArgPat::Any, ArgPat::Var(cable_trace::Var(1))]),
        });
        let closure = meet_closure(&[f_x_any, f_any_y]);
        assert_eq!(closure.len(), 3);
    }

    #[test]
    fn union_accepts_either_language() {
        let mut v = Vocab::new();
        let a = linear_fa(&["f"], &mut v);
        let b = linear_fa(&["g", "h"], &mut v);
        let u = a.union(&b);
        for text in ["f(X)", "g(X) h(X)"] {
            assert!(u.accepts(&Trace::parse(text, &mut v).unwrap()), "{text}");
        }
        assert!(!u.accepts(&Trace::parse("f(X) g(X)", &mut v).unwrap()));
        assert!(!u.accepts(&Trace::parse("g(X)", &mut v).unwrap()));
    }

    #[test]
    fn intersection_requires_both() {
        let mut v = Vocab::new();
        // a: f then anything*; b: anything* then g.
        let mut b1 = FaBuilder::new();
        let s0 = b1.state();
        let s1 = b1.state();
        b1.start(s0).accept(s1);
        b1.event_var(s0, "f", s1, &mut v);
        b1.wildcard(s1, s1);
        let a = b1.build();
        let mut b2 = FaBuilder::new();
        let t0 = b2.state();
        let t1 = b2.state();
        b2.start(t0).accept(t1);
        b2.wildcard(t0, t0);
        b2.event_var(t0, "g", t1, &mut v);
        let b = b2.build();
        let i = a.intersection(&b);
        assert!(i.accepts(&Trace::parse("f(X) g(X)", &mut v).unwrap()));
        assert!(i.accepts(&Trace::parse("f(X) h(X) g(X)", &mut v).unwrap()));
        assert!(!i.accepts(&Trace::parse("f(X)", &mut v).unwrap()));
        assert!(!i.accepts(&Trace::parse("g(X)", &mut v).unwrap()));
    }

    #[test]
    fn intersection_of_disjoint_languages_is_empty() {
        let mut v = Vocab::new();
        let a = linear_fa(&["f"], &mut v);
        let b = linear_fa(&["g"], &mut v);
        let i = a.intersection(&b);
        assert!(!i.accepts(&Trace::parse("f(X)", &mut v).unwrap()));
        assert!(!i.accepts(&Trace::parse("g(X)", &mut v).unwrap()));
        assert_eq!(i.transition_count(), 0, "trimmed to nothing");
    }

    #[test]
    fn label_meet_cases() {
        use cable_trace::Var;
        let mut v = Vocab::new();
        let f = v.op("f");
        let g = v.op("g");
        let fx = TransLabel::Pat(EventPat::on_var(f, Var(0)));
        let f_any = TransLabel::Pat(EventPat::op_only(f));
        let gx = TransLabel::Pat(EventPat::on_var(g, Var(0)));
        // Wildcard is the identity.
        assert_eq!(label_meet(&TransLabel::Wildcard, &fx), Some(fx.clone()));
        assert_eq!(label_meet(&fx, &TransLabel::Wildcard), Some(fx.clone()));
        // Same op: the more specific side wins.
        assert_eq!(label_meet(&f_any, &fx), Some(fx.clone()));
        // Different ops are disjoint.
        assert_eq!(label_meet(&fx, &gx), None);
        // Positionwise meet of argument patterns.
        let f_x_any = TransLabel::Pat(EventPat {
            op: f,
            args: Some(vec![ArgPat::Var(Var(0)), ArgPat::Any]),
        });
        let f_any_y = TransLabel::Pat(EventPat {
            op: f,
            args: Some(vec![ArgPat::Any, ArgPat::Var(Var(1))]),
        });
        let met = label_meet(&f_x_any, &f_any_y).expect("overlap");
        let expect = TransLabel::Pat(EventPat {
            op: f,
            args: Some(vec![ArgPat::Var(Var(0)), ArgPat::Var(Var(1))]),
        });
        assert_eq!(met, expect);
        // Mismatched arity is disjoint.
        assert_eq!(label_meet(&fx, &f_x_any), None);
    }

    #[test]
    fn minimal_state_count_of_loop() {
        let mut v = Vocab::new();
        let mut b = FaBuilder::new();
        let s = b.state();
        b.start(s).accept(s);
        b.event_var(s, "f", s, &mut v);
        let dfa = b.build().determinize();
        // f*: minimal complete DFA over {f}: one accept state + sink... but
        // on alphabet {f, Other}: accept state loops on f, Other -> sink.
        assert_eq!(dfa.minimal_state_count(), 2);
    }
}
