//! Automaton algebra: trimming, determinisation, minimisation, product,
//! and language equivalence.
//!
//! These operations are not needed by Cable's clustering itself, but the
//! reproduction uses them to *validate* results: e.g. checking that a
//! re-mined specification is language-equivalent to the ground-truth
//! specification after debugging.
//!
//! # Letters
//!
//! Determinisation works over a finite alphabet of *letters*: the
//! meet-closure of the concrete transition labels ([`meet_closure`]),
//! plus a synthetic `Other` letter standing for every event that matches
//! none of them (only wildcard transitions fire on `Other`). The closure
//! refines overlapping labels — e.g. the op-only `f` against the specific
//! `f(X)` — so that every event has a unique minimal matching letter and
//! the letters partition the event space.

use crate::fa::{Fa, StateId};
use crate::label::{ArgPat, EventPat, TransLabel};
use cable_obs::CounterHandle;
use cable_trace::{Arg, Event, Trace, Var, Vocab};
use cable_util::{BitSet, Symbol};
use std::collections::{HashMap, HashSet, VecDeque};

/// Subset constructions performed.
static DETERMINIZE_CALLS: CounterHandle = CounterHandle::new("fa.determinize.calls");
/// DFA states produced by subset constructions.
static DETERMINIZE_STATES: CounterHandle = CounterHandle::new("fa.determinize.dfa_states");
/// DFA minimisations performed.
static MINIMIZE_CALLS: CounterHandle = CounterHandle::new("fa.minimize.calls");
/// States removed by minimisation (input minus output states).
static MINIMIZE_STATES_REMOVED: CounterHandle = CounterHandle::new("fa.minimize.states_removed");
/// Product-DFA states created by the algebra's synchronous products
/// (intersection, union, difference, symmetric difference).
static PRODUCT_STATES: CounterHandle = CounterHandle::new("fa.algebra.product_states");

/// Tests whether two argument patterns can match a common argument.
fn arg_pats_overlap(a: &ArgPat, b: &ArgPat) -> bool {
    match (a, b) {
        (ArgPat::Any, _) | (_, ArgPat::Any) => true,
        (ArgPat::Var(x), ArgPat::Var(y)) => x == y,
        (ArgPat::Atom(x), ArgPat::Atom(y)) => x == y,
        _ => false,
    }
}

/// Tests whether two event patterns can match a common event.
pub fn event_pats_overlap(a: &EventPat, b: &EventPat) -> bool {
    if a.op != b.op {
        return false;
    }
    match (&a.args, &b.args) {
        (None, _) | (_, None) => true,
        (Some(xs), Some(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| arg_pats_overlap(x, y))
        }
    }
}

/// The meet (most general common refinement) of two argument patterns,
/// or `None` when they are disjoint.
fn arg_pat_meet(a: &ArgPat, b: &ArgPat) -> Option<ArgPat> {
    match (a, b) {
        (ArgPat::Any, x) | (x, ArgPat::Any) => Some(*x),
        (ArgPat::Var(x), ArgPat::Var(y)) if x == y => Some(ArgPat::Var(*x)),
        (ArgPat::Atom(x), ArgPat::Atom(y)) if x == y => Some(ArgPat::Atom(*x)),
        _ => None,
    }
}

/// The meet of two transition labels: a label matching exactly the
/// events both match, or `None` when no event matches both. Used by the
/// intersection product.
pub fn label_meet(a: &TransLabel, b: &TransLabel) -> Option<TransLabel> {
    match (a, b) {
        (TransLabel::Wildcard, x) | (x, TransLabel::Wildcard) => Some(x.clone()),
        (TransLabel::Pat(p), TransLabel::Pat(q)) => {
            if p.op != q.op {
                return None;
            }
            let args = match (&p.args, &q.args) {
                (None, x) | (x, None) => x.clone(),
                (Some(xs), Some(ys)) => {
                    if xs.len() != ys.len() {
                        return None;
                    }
                    Some(
                        xs.iter()
                            .zip(ys)
                            .map(|(x, y)| arg_pat_meet(x, y))
                            .collect::<Option<Vec<_>>>()?,
                    )
                }
            };
            Some(TransLabel::Pat(EventPat { op: p.op, args }))
        }
    }
}

/// Tests whether `a` matches every event `b` matches.
pub fn label_subsumes(a: &TransLabel, b: &TransLabel) -> bool {
    match (a, b) {
        (TransLabel::Wildcard, _) => true,
        (_, TransLabel::Wildcard) => false,
        (TransLabel::Pat(p), TransLabel::Pat(q)) => {
            if p.op != q.op {
                return false;
            }
            match (&p.args, &q.args) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some(xs), Some(ys)) => {
                    xs.len() == ys.len()
                        && xs.iter().zip(ys).all(|(x, y)| match (x, y) {
                            (ArgPat::Any, _) => true,
                            (x, y) => x == y,
                        })
                }
            }
        }
    }
}

/// The meet-closure of a label set: the input labels plus all pairwise
/// meets, iterated to a fixpoint. Every event matching any subset of the
/// input labels has a unique minimal matching label in the closure, so
/// the closure's members serve as refined, non-ambiguous letters for
/// determinisation.
pub fn meet_closure(labels: &[TransLabel]) -> Vec<TransLabel> {
    let mut closed: Vec<TransLabel> = Vec::new();
    for l in labels {
        if !closed.contains(l) {
            closed.push(l.clone());
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        let snapshot = closed.clone();
        for (i, a) in snapshot.iter().enumerate() {
            for b in &snapshot[i + 1..] {
                if let Some(m) = label_meet(a, b) {
                    if !closed.contains(&m) {
                        closed.push(m);
                        changed = true;
                    }
                }
            }
        }
    }
    closed
}

/// A deterministic finite automaton over a letter alphabet.
///
/// Letter `i < labels.len()` is the concrete label `labels[i]` from the
/// meet-closed refinement of the requested alphabet (see
/// [`Fa::determinize_with_alphabet`]); letter `labels.len()` is `Other`.
/// Missing transitions mean rejection.
#[derive(Debug, Clone)]
pub struct Dfa {
    labels: Vec<TransLabel>,
    /// `delta[state][letter]`; the extra final column is `Other`.
    delta: Vec<Vec<Option<u32>>>,
    start: u32,
    accepts: BitSet,
}

impl Dfa {
    /// The concrete alphabet (excluding `Other`).
    pub fn labels(&self) -> &[TransLabel] {
        &self.labels
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.delta.len()
    }

    /// The start state index.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Tests whether a state is accepting.
    pub fn is_accept(&self, s: u32) -> bool {
        self.accepts.contains(s as usize)
    }

    /// The successor of `s` on letter `l` (where `l == labels.len()` means
    /// `Other`), if any.
    pub fn step(&self, s: u32, l: usize) -> Option<u32> {
        self.delta[s as usize][l]
    }

    /// Number of letters including `Other`.
    pub fn letter_count(&self) -> usize {
        self.labels.len() + 1
    }

    /// Runs a letter string.
    pub fn accepts_letters(&self, letters: &[usize]) -> bool {
        let mut s = self.start;
        for &l in letters {
            match self.step(s, l) {
                Some(n) => s = n,
                None => return false,
            }
        }
        self.is_accept(s)
    }

    /// Completes the DFA by adding a rejecting sink so that every state
    /// has a successor on every letter. Idempotent in effect.
    pub fn complete(&self) -> Dfa {
        let mut d = self.clone();
        let needs_sink = d.delta.iter().any(|row| row.iter().any(Option::is_none));
        if !needs_sink {
            return d;
        }
        let sink = d.delta.len() as u32;
        let letters = d.letter_count();
        d.delta.push(vec![Some(sink); letters]);
        for row in &mut d.delta {
            for cell in row.iter_mut() {
                if cell.is_none() {
                    *cell = Some(sink);
                }
            }
        }
        d
    }

    /// Hopcroft-style (here: Moore) DFA minimisation. The result is
    /// complete and has the minimal number of states for the language
    /// *over this letter alphabet*.
    pub fn minimize(&self) -> Dfa {
        let d = self.complete();
        let n = d.delta.len();
        let letters = d.letter_count();
        // Initial partition: accepting vs non-accepting.
        let mut class: Vec<u32> = (0..n).map(|s| u32::from(d.is_accept(s as u32))).collect();
        let mut n_classes = 2;
        loop {
            // Signature of a state: (class, classes of successors).
            let mut sig_map: HashMap<Vec<u32>, u32> = HashMap::new();
            let mut new_class = vec![0u32; n];
            for s in 0..n {
                let mut sig = Vec::with_capacity(letters + 1);
                sig.push(class[s]);
                for l in 0..letters {
                    sig.push(class[d.delta[s][l].expect("complete") as usize]);
                }
                let next = sig_map.len() as u32;
                new_class[s] = *sig_map.entry(sig).or_insert(next);
            }
            let count = sig_map.len();
            class = new_class;
            if count == n_classes {
                break;
            }
            n_classes = count;
        }
        MINIMIZE_CALLS.get().incr();
        MINIMIZE_STATES_REMOVED
            .get()
            .add((n.saturating_sub(n_classes)) as u64);
        // Rebuild.
        let mut delta = vec![vec![None; letters]; n_classes];
        let mut accepts = BitSet::with_capacity(n_classes);
        for s in 0..n {
            let c = class[s] as usize;
            for l in 0..letters {
                delta[c][l] = Some(class[d.delta[s][l].expect("complete") as usize]);
            }
            if d.is_accept(s as u32) {
                accepts.insert(c);
            }
        }
        let min = Dfa {
            labels: d.labels.clone(),
            delta,
            start: class[d.start as usize],
            accepts,
        };
        min.trim_reachable()
    }

    /// Drops states unreachable from the start (keeps completeness only if
    /// the reachable part is complete).
    fn trim_reachable(&self) -> Dfa {
        let n = self.delta.len();
        let mut seen = vec![false; n];
        let mut order = Vec::new();
        let mut queue = VecDeque::from([self.start]);
        seen[self.start as usize] = true;
        while let Some(s) = queue.pop_front() {
            order.push(s);
            for d in self.delta[s as usize].iter().flatten() {
                if !seen[*d as usize] {
                    seen[*d as usize] = true;
                    queue.push_back(*d);
                }
            }
        }
        let mut remap = vec![u32::MAX; n];
        for (new, &old) in order.iter().enumerate() {
            remap[old as usize] = new as u32;
        }
        let mut delta = Vec::with_capacity(order.len());
        let mut accepts = BitSet::with_capacity(order.len());
        for (new, &old) in order.iter().enumerate() {
            delta.push(
                self.delta[old as usize]
                    .iter()
                    .map(|c| c.map(|d| remap[d as usize]))
                    .collect(),
            );
            if self.is_accept(old) {
                accepts.insert(new);
            }
        }
        Dfa {
            labels: self.labels.clone(),
            delta,
            start: 0,
            accepts,
        }
    }

    /// Number of states in the minimal equivalent DFA (a canonical size
    /// measure for Table 1).
    pub fn minimal_state_count(&self) -> usize {
        self.minimize().state_count()
    }

    /// The complement over the same letter alphabet.
    ///
    /// Completes first, then flips every state's acceptance — including
    /// the rejecting sink the completion may introduce, which becomes
    /// accepting. The order matters: flipping before completing (or not
    /// completing at all) silently drops exactly the strings on which
    /// the original automaton dies, and those are complement members.
    /// Wildcard-heavy automata are the other edge: their completed DFA
    /// may already be total (every letter, including `Other`, steps
    /// somewhere), so no sink exists and the flip alone is the whole
    /// complement. Both edges have regression tests.
    pub fn complement(&self) -> Dfa {
        let d = self.complete();
        let n = d.state_count();
        let mut accepts = BitSet::with_capacity(n);
        for s in 0..n {
            if !d.is_accept(s as u32) {
                accepts.insert(s);
            }
        }
        Dfa { accepts, ..d }
    }

    /// The synchronous product with an arbitrary acceptance combiner.
    /// Both operands are completed first, so the product is total and
    /// covers the full letter space (including `Other`).
    fn product_with<F: Fn(bool, bool) -> bool>(&self, other: &Dfa, accept: F) -> Dfa {
        assert_eq!(
            self.labels, other.labels,
            "product requires the same letter alphabet"
        );
        let a = self.complete();
        let b = other.complete();
        let letters = a.letter_count();
        let mut states: HashMap<(u32, u32), u32> = HashMap::new();
        let mut order = vec![(a.start, b.start)];
        states.insert((a.start, b.start), 0);
        let mut delta: Vec<Vec<Option<u32>>> = Vec::new();
        let mut accepts = BitSet::new();
        let mut i = 0;
        while i < order.len() {
            let (x, y) = order[i];
            if accept(a.is_accept(x), b.is_accept(y)) {
                accepts.insert(i);
            }
            let mut row = Vec::with_capacity(letters);
            for l in 0..letters {
                let pair = (
                    a.step(x, l).expect("complete"),
                    b.step(y, l).expect("complete"),
                );
                let id = *states.entry(pair).or_insert_with(|| {
                    order.push(pair);
                    (order.len() - 1) as u32
                });
                row.push(Some(id));
            }
            delta.push(row);
            i += 1;
        }
        PRODUCT_STATES.get().add(order.len() as u64);
        Dfa {
            labels: a.labels.clone(),
            delta,
            start: 0,
            accepts,
        }
    }

    /// Product accepting iff both operands accept.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        self.product_with(other, |x, y| x && y)
    }

    /// Product accepting iff either operand accepts.
    pub fn union(&self, other: &Dfa) -> Dfa {
        self.product_with(other, |x, y| x || y)
    }

    /// Product accepting iff `self` accepts and `other` does not
    /// (`self ∩ ¬other`).
    pub fn minus(&self, other: &Dfa) -> Dfa {
        self.product_with(other, |x, y| x && !y)
    }

    /// Product accepting iff exactly one operand accepts: the union of
    /// `self ∩ ¬other` and `other ∩ ¬self` over one shared state space.
    pub fn symmetric_difference(&self, other: &Dfa) -> Dfa {
        self.product_with(other, |x, y| x != y)
    }

    /// Tests whether the two DFAs (over the same letter alphabet) accept
    /// the same letter language.
    pub fn same_language(&self, other: &Dfa) -> bool {
        self.symmetric_difference(other).is_empty_language()
    }

    /// Tests whether no letter string is accepted.
    pub fn is_empty_language(&self) -> bool {
        self.shortest_accepted().is_none()
    }

    /// A shortest accepted letter string (BFS from the start), or `None`
    /// for the empty language. Ties are broken deterministically by
    /// letter order.
    pub fn shortest_accepted(&self) -> Option<Vec<usize>> {
        let n = self.state_count();
        let mut prev: Vec<Option<(u32, usize)>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([self.start]);
        seen[self.start as usize] = true;
        while let Some(s) = queue.pop_front() {
            if self.is_accept(s) {
                let mut letters = Vec::new();
                let mut cur = s;
                while let Some((p, l)) = prev[cur as usize] {
                    letters.push(l);
                    cur = p;
                }
                letters.reverse();
                return Some(letters);
            }
            for l in 0..self.letter_count() {
                if let Some(next) = self.step(s, l) {
                    if !seen[next as usize] {
                        seen[next as usize] = true;
                        prev[next as usize] = Some((s, l));
                        queue.push_back(next);
                    }
                }
            }
        }
        None
    }
}

/// One letter of a distinguishing witness between two specifications.
///
/// Letters are drawn from the meet-closed union alphabet of the two
/// automata (see [`Fa::determinize_with_alphabet`]); `Other` stands for
/// any event matching none of those labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WitnessLetter {
    /// A concrete letter: a label from the meet-closed union alphabet.
    Label(TransLabel),
    /// The synthetic letter for events outside the shared alphabet
    /// (only wildcard transitions fire on it).
    Other,
}

impl Fa {
    /// The union of the two automata's concrete alphabets, deduplicated
    /// in first-appearance order (self's labels first).
    pub fn union_alphabet(&self, other: &Fa) -> Vec<TransLabel> {
        let mut alphabet: Vec<TransLabel> = self.concrete_labels().into_iter().cloned().collect();
        for l in other.concrete_labels() {
            if !alphabet.contains(l) {
                alphabet.push(l.clone());
            }
        }
        alphabet
    }

    /// Tests whether diffing this spec against `other` is meaningful:
    /// they share at least one operation, or either side has a wildcard
    /// (and thus speaks about every operation), or either side has no
    /// concrete labels at all. Two specs over disjoint operation sets
    /// trivially differ on any single event, so a "minimal
    /// distinguishing trace" between them carries no information;
    /// `cable diff-spec` refuses such pairs (exit 2).
    pub fn alphabet_compatible(&self, other: &Fa) -> bool {
        if self.has_wildcard() || other.has_wildcard() {
            return true;
        }
        let ops = |fa: &Fa| -> HashSet<Symbol> {
            fa.concrete_labels()
                .into_iter()
                .filter_map(|l| l.as_pat().map(|p| p.op))
                .collect()
        };
        let mine = ops(self);
        let theirs = ops(other);
        if mine.is_empty() || theirs.is_empty() {
            return true;
        }
        !mine.is_disjoint(&theirs)
    }

    /// The complement DFA over an explicit alphabet.
    ///
    /// Wildcard-aware: wildcard entries in the requested alphabet are
    /// ignored (a wildcard is not a letter — it already fires on every
    /// letter including `Other`), and this automaton's own concrete
    /// labels are always included, so the call never panics on a label
    /// missing from the alphabet.
    pub fn complement_over(&self, alphabet: &[TransLabel]) -> Dfa {
        let mut full: Vec<TransLabel> = self.concrete_labels().into_iter().cloned().collect();
        for l in alphabet {
            if !l.is_wildcard() && !full.contains(l) {
                full.push(l.clone());
            }
        }
        self.determinize_with_alphabet(&full).complement()
    }

    /// The difference `self \ other` as a DFA over the meet-closed union
    /// alphabet: accepts exactly the letter strings `self` accepts and
    /// `other` rejects.
    pub fn difference(&self, other: &Fa) -> Dfa {
        let alphabet = self.union_alphabet(other);
        let a = self.determinize_with_alphabet(&alphabet);
        let b = other.determinize_with_alphabet(&alphabet);
        a.minus(&b)
    }

    /// A shortest letter string accepted by exactly one of the two
    /// automata, or `None` when they are language-equivalent.
    ///
    /// Implemented as a BFS over the completed synchronous product with
    /// XOR acceptance — the union of the `self ∩ ¬other` and
    /// `other ∩ ¬self` products over one shared state space, so a single
    /// search finds the minimum over both directions.
    pub fn distinguishing_witness(&self, other: &Fa) -> Option<Vec<WitnessLetter>> {
        let alphabet = self.union_alphabet(other);
        let a = self.determinize_with_alphabet(&alphabet);
        let b = other.determinize_with_alphabet(&alphabet);
        let sym = a.symmetric_difference(&b);
        let letters = sym.shortest_accepted()?;
        let concrete = sym.labels().len();
        Some(
            letters
                .into_iter()
                .map(|l| {
                    if l < concrete {
                        WitnessLetter::Label(sym.labels()[l].clone())
                    } else {
                        WitnessLetter::Other
                    }
                })
                .collect(),
        )
    }

    /// A minimal distinguishing trace: the witness of
    /// [`Fa::distinguishing_witness`] realised as concrete events (see
    /// [`Fa::realize_witness`]), or `None` when the automata are
    /// language-equivalent. Replayed through both automata with
    /// [`Fa::accepts`], the trace is accepted by exactly one.
    pub fn distinguishing_trace(&self, other: &Fa, vocab: &mut Vocab) -> Option<Trace> {
        let witness = self.distinguishing_witness(other)?;
        Some(self.realize_witness(other, &witness, vocab))
    }

    /// Realises a letter-level witness as a concrete event trace whose
    /// NFA replay follows exactly the witness letters, on both automata.
    ///
    /// Each letter label is instantiated so the resulting event matches
    /// precisely the alphabet labels that subsume that letter (plus
    /// wildcards): `Var`/`Atom` argument patterns are kept verbatim,
    /// `_` (any) positions get a fresh variable no label mentions,
    /// op-only letters get an arity exceeding every argument-carrying
    /// label of the same operation, and `Other` becomes an event on a
    /// fresh operation (`__other`) neither automaton names.
    ///
    /// # Panics
    ///
    /// Panics if realisation would exhaust the `u8` variable space —
    /// unreachable for this workspace's specs, whose labels mention at
    /// most a handful of variables.
    pub fn realize_witness(
        &self,
        other: &Fa,
        witness: &[WitnessLetter],
        vocab: &mut Vocab,
    ) -> Trace {
        let closure = meet_closure(&self.union_alphabet(other));
        // A variable index strictly above everything any label mentions:
        // events built from it match no Var pattern.
        let mut max_var: i32 = -1;
        for l in &closure {
            if let Some(p) = l.as_pat() {
                if let Some(args) = &p.args {
                    for a in args {
                        if let ArgPat::Var(v) = a {
                            max_var = max_var.max(i32::from(v.0));
                        }
                    }
                }
            }
        }
        let fresh_base = u8::try_from(max_var + 1).expect("variable space exhausted");
        let fresh_var = |i: usize| {
            let idx = usize::from(fresh_base) + i;
            Arg::Var(Var(u8::try_from(idx).expect("variable space exhausted")))
        };
        let used_ops: HashSet<Symbol> = closure
            .iter()
            .filter_map(|l| l.as_pat().map(|p| p.op))
            .collect();
        let events = witness
            .iter()
            .map(|letter| match letter {
                WitnessLetter::Other => {
                    // An operation no label names: matches only wildcards.
                    let mut k = 0usize;
                    loop {
                        let name = if k == 0 {
                            "__other".to_owned()
                        } else {
                            format!("__other{k}")
                        };
                        let op = vocab.op(&name);
                        if !used_ops.contains(&op) {
                            return Event::new(op, vec![fresh_var(0)]);
                        }
                        k += 1;
                    }
                }
                WitnessLetter::Label(TransLabel::Wildcard) => {
                    unreachable!("witness letters are concrete")
                }
                WitnessLetter::Label(TransLabel::Pat(p)) => match &p.args {
                    Some(args) => Event::new(
                        p.op,
                        args.iter()
                            .enumerate()
                            .map(|(i, a)| match a {
                                ArgPat::Var(v) => Arg::Var(*v),
                                ArgPat::Atom(s) => Arg::Atom(*s),
                                ArgPat::Any => fresh_var(i),
                            })
                            .collect(),
                    ),
                    None => {
                        // Op-only letter: pick an arity no argument-carrying
                        // label of this op has, so only op-only labels (and
                        // wildcards) match.
                        let max_arity = closure
                            .iter()
                            .filter_map(|l| l.as_pat())
                            .filter(|q| q.op == p.op)
                            .filter_map(|q| q.args.as_ref().map(Vec::len))
                            .max();
                        let arity = max_arity.map_or(1, |m| m + 1);
                        Event::new(p.op, (0..arity).map(fresh_var).collect())
                    }
                },
            })
            .collect();
        Trace::new(events)
    }
}

impl Fa {
    /// Removes states that are unreachable from a start state or from
    /// which no accepting state is reachable, renumbering the rest.
    ///
    /// If nothing useful remains, the result is a single non-accepting
    /// start state with no transitions (the empty language).
    pub fn trim(&self) -> Fa {
        let n = self.state_count();
        // Forward reachability.
        let mut fwd = self.start_states().clone();
        let mut changed = true;
        while changed {
            changed = false;
            for t in self.transitions() {
                if fwd.contains(t.src.index()) && fwd.insert(t.dst.index()) {
                    changed = true;
                }
            }
        }
        // Backward reachability.
        let mut bwd = self.accept_states().clone();
        changed = true;
        while changed {
            changed = false;
            for t in self.transitions() {
                if bwd.contains(t.dst.index()) && bwd.insert(t.src.index()) {
                    changed = true;
                }
            }
        }
        let keep = fwd.intersection(&bwd);
        if keep.is_empty() {
            let mut b = crate::builder::FaBuilder::new();
            let s = b.state();
            b.start(s);
            return b.build();
        }
        let mut remap = vec![u32::MAX; n];
        for (new, old) in keep.iter().enumerate() {
            remap[old] = new as u32;
        }
        let transitions = self
            .transitions()
            .iter()
            .filter(|t| keep.contains(t.src.index()) && keep.contains(t.dst.index()))
            .map(|t| crate::fa::Transition {
                src: StateId(remap[t.src.index()]),
                dst: StateId(remap[t.dst.index()]),
                label: t.label.clone(),
            })
            .collect();
        let starts = self
            .start_states()
            .iter()
            .filter(|s| keep.contains(*s))
            .map(|s| remap[s] as usize)
            .collect();
        let accepts = self
            .accept_states()
            .iter()
            .filter(|s| keep.contains(*s))
            .map(|s| remap[s] as usize)
            .collect();
        Fa::from_parts(keep.len() as u32, transitions, starts, accepts)
    }

    /// The union automaton: accepts a trace iff either operand does
    /// (disjoint NFA union). The §2.1 fix step often *adds* behaviour to
    /// a specification; union composes the addition.
    ///
    /// # Examples
    ///
    /// ```
    /// use cable_fa::Fa;
    /// use cable_trace::{Trace, Vocab};
    ///
    /// let mut v = Vocab::new();
    /// let a = Fa::parse("start s0\naccept s1\ns0 -> s1 : f(X)\n", &mut v)?;
    /// let b = Fa::parse("start s0\naccept s1\ns0 -> s1 : g(X)\n", &mut v)?;
    /// let u = a.union(&b);
    /// assert!(u.accepts(&Trace::parse("f(X)", &mut v).unwrap()));
    /// assert!(u.accepts(&Trace::parse("g(X)", &mut v).unwrap()));
    /// # Ok::<(), cable_fa::ParseFaError>(())
    /// ```
    pub fn union(&self, other: &Fa) -> Fa {
        let offset = self.state_count() as u32;
        let mut transitions: Vec<crate::fa::Transition> = self.transitions().to_vec();
        transitions.extend(other.transitions().iter().map(|t| crate::fa::Transition {
            src: StateId(t.src.0 + offset),
            dst: StateId(t.dst.0 + offset),
            label: t.label.clone(),
        }));
        let mut starts = self.start_states().clone();
        starts.extend(other.start_states().iter().map(|s| s + offset as usize));
        let mut accepts = self.accept_states().clone();
        accepts.extend(other.accept_states().iter().map(|s| s + offset as usize));
        Fa::from_parts(
            offset + other.state_count() as u32,
            transitions,
            starts,
            accepts,
        )
    }

    /// The intersection automaton: accepts a trace iff both operands do
    /// (synchronous product; paired transitions carry the
    /// [`label_meet`] of the operand labels).
    pub fn intersection(&self, other: &Fa) -> Fa {
        let n2 = other.state_count() as u32;
        let pair = |a: StateId, b: StateId| StateId(a.0 * n2 + b.0);
        let mut b = crate::builder::FaBuilder::new();
        let _states = b.states(self.state_count() * other.state_count());
        for s1 in self.start_states().iter() {
            for s2 in other.start_states().iter() {
                b.start(pair(StateId(s1 as u32), StateId(s2 as u32)));
            }
        }
        for a1 in self.accept_states().iter() {
            for a2 in other.accept_states().iter() {
                b.accept(pair(StateId(a1 as u32), StateId(a2 as u32)));
            }
        }
        for t1 in self.transitions() {
            for t2 in other.transitions() {
                if let Some(label) = label_meet(&t1.label, &t2.label) {
                    b.transition(pair(t1.src, t2.src), label, pair(t1.dst, t2.dst));
                }
            }
        }
        b.build().trim()
    }

    /// Determinises over the given alphabet (which must contain every
    /// concrete label of this automaton).
    ///
    /// Overlapping labels (e.g. the op-only `XGetSelectionOwner` and the
    /// specific `XGetSelectionOwner(X,'PRIMARY)`) are handled by *label
    /// refinement*: the letter set is the meet-closure of the alphabet,
    /// and a transition fires on every letter its label subsumes. Every
    /// event has a unique minimal matching meet, so the letters partition
    /// the event space exactly (assuming each meet is realisable by some
    /// event — true for this workspace's pattern language, where variable
    /// and atom spaces are never exhausted).
    ///
    /// # Panics
    ///
    /// Panics if the automaton has a concrete label missing from
    /// `alphabet`, or the alphabet contains a wildcard.
    pub fn determinize_with_alphabet(&self, alphabet: &[TransLabel]) -> Dfa {
        for a in alphabet {
            assert!(!a.is_wildcard(), "alphabet letters must be concrete");
        }
        for l in self.concrete_labels() {
            assert!(
                alphabet.contains(l),
                "automaton label missing from alphabet"
            );
        }
        let letter_labels = meet_closure(alphabet);
        let letters = letter_labels.len() + 1; // + Other
        let mut states: HashMap<BitSet, u32> = HashMap::new();
        let mut order: Vec<BitSet> = Vec::new();
        let mut delta: Vec<Vec<Option<u32>>> = Vec::new();
        let start_set = self.start_states().clone();
        states.insert(start_set.clone(), 0);
        order.push(start_set);
        let mut i = 0;
        while i < order.len() {
            let current = order[i].clone();
            let mut row = vec![None; letters];
            for (l, row_cell) in row.iter_mut().enumerate() {
                let mut next = BitSet::new();
                for s in current.iter() {
                    for &tid in self.outgoing(StateId(s as u32)) {
                        let t = self.transition(tid);
                        let fires = if l < letter_labels.len() {
                            t.label.is_wildcard() || label_subsumes(&t.label, &letter_labels[l])
                        } else {
                            // Other: only wildcards fire.
                            t.label.is_wildcard()
                        };
                        if fires {
                            next.insert(t.dst.index());
                        }
                    }
                }
                if !next.is_empty() {
                    let id = *states.entry(next.clone()).or_insert_with(|| {
                        order.push(next.clone());
                        (order.len() - 1) as u32
                    });
                    *row_cell = Some(id);
                }
            }
            delta.push(row);
            i += 1;
        }
        let mut accepts = BitSet::with_capacity(order.len());
        for (id, set) in order.iter().enumerate() {
            if !set.is_disjoint(self.accept_states()) {
                accepts.insert(id);
            }
        }
        DETERMINIZE_CALLS.get().incr();
        DETERMINIZE_STATES.get().add(order.len() as u64);
        Dfa {
            labels: letter_labels,
            delta,
            start: 0,
            accepts,
        }
    }

    /// Determinises over this automaton's own concrete labels.
    ///
    /// # Panics
    ///
    /// See [`Fa::determinize_with_alphabet`].
    pub fn determinize(&self) -> Dfa {
        let alphabet: Vec<TransLabel> = self.concrete_labels().into_iter().cloned().collect();
        self.determinize_with_alphabet(&alphabet)
    }

    /// Tests language containment: every trace this automaton accepts is
    /// accepted by `other`.
    ///
    /// Useful for validating debugging outcomes, e.g. that a re-mined
    /// specification does not accept behaviour outside the ground truth.
    ///
    /// # Panics
    ///
    /// See [`Fa::determinize_with_alphabet`].
    ///
    /// # Examples
    ///
    /// ```
    /// use cable_fa::Fa;
    /// use cable_trace::Vocab;
    ///
    /// let mut v = Vocab::new();
    /// let small = Fa::parse("start s0\naccept s1\ns0 -> s1 : f(X)\n", &mut v)?;
    /// let big = Fa::parse("start s0\naccept s1\ns0 -> s1 : f(X)\ns1 -> s1 : f(X)\n", &mut v)?;
    /// assert!(small.language_subset_of(&big));
    /// assert!(!big.language_subset_of(&small));
    /// # Ok::<(), cable_fa::ParseFaError>(())
    /// ```
    pub fn language_subset_of(&self, other: &Fa) -> bool {
        let mut alphabet: Vec<TransLabel> = self.concrete_labels().into_iter().cloned().collect();
        for l in other.concrete_labels() {
            if !alphabet.contains(l) {
                alphabet.push(l.clone());
            }
        }
        let a = self.determinize_with_alphabet(&alphabet).complete();
        let b = other.determinize_with_alphabet(&alphabet).complete();
        let letters = a.letter_count();
        let mut seen = std::collections::HashSet::new();
        let mut queue = VecDeque::from([(a.start(), b.start())]);
        seen.insert((a.start(), b.start()));
        while let Some((x, y)) = queue.pop_front() {
            if a.is_accept(x) && !b.is_accept(y) {
                return false; // A witness trace separates the languages.
            }
            for l in 0..letters {
                let pair = (
                    a.step(x, l).expect("complete"),
                    b.step(y, l).expect("complete"),
                );
                if seen.insert(pair) {
                    queue.push_back(pair);
                }
            }
        }
        true
    }

    /// Tests language equivalence with another automaton.
    ///
    /// Both automata are determinised over the union of their concrete
    /// alphabets and compared by a synchronous product walk.
    ///
    /// # Panics
    ///
    /// See [`Fa::determinize_with_alphabet`].
    pub fn equivalent(&self, other: &Fa) -> bool {
        let mut alphabet: Vec<TransLabel> = self.concrete_labels().into_iter().cloned().collect();
        for l in other.concrete_labels() {
            if !alphabet.contains(l) {
                alphabet.push(l.clone());
            }
        }
        let a = self.determinize_with_alphabet(&alphabet).complete();
        let b = other.determinize_with_alphabet(&alphabet).complete();
        let letters = a.letter_count();
        let mut seen = std::collections::HashSet::new();
        let mut queue = VecDeque::from([(a.start, b.start)]);
        seen.insert((a.start, b.start));
        while let Some((x, y)) = queue.pop_front() {
            if a.is_accept(x) != b.is_accept(y) {
                return false;
            }
            for l in 0..letters {
                let pair = (
                    a.step(x, l).expect("complete"),
                    b.step(y, l).expect("complete"),
                );
                if seen.insert(pair) {
                    queue.push_back(pair);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FaBuilder;
    use cable_trace::{Trace, Vocab};

    fn linear_fa(ops: &[&str], v: &mut Vocab) -> Fa {
        let mut b = FaBuilder::new();
        let mut prev = b.state();
        b.start(prev);
        for op in ops {
            let next = b.state();
            b.event_var(prev, op, next, v);
            prev = next;
        }
        b.accept(prev);
        b.build()
    }

    #[test]
    fn trim_removes_dead_states() {
        let mut v = Vocab::new();
        let mut b = FaBuilder::new();
        let s0 = b.state();
        let dead = b.state();
        let acc = b.state();
        let unreachable = b.state();
        b.start(s0).accept(acc);
        b.event_var(s0, "f", acc, &mut v);
        b.event_var(s0, "g", dead, &mut v);
        b.event_var(unreachable, "h", acc, &mut v);
        let fa = b.build().trim();
        assert_eq!(fa.state_count(), 2);
        assert_eq!(fa.transition_count(), 1);
        let t = Trace::parse("f(X)", &mut v).unwrap();
        assert!(fa.accepts(&t));
    }

    #[test]
    fn trim_empty_language() {
        let mut b = FaBuilder::new();
        let s = b.state();
        b.start(s); // no accepting state
        let fa = b.build().trim();
        assert_eq!(fa.state_count(), 1);
        assert_eq!(fa.transition_count(), 0);
        assert!(!fa.accepts(&Trace::empty()));
    }

    #[test]
    fn determinize_merges_nondeterminism() {
        let mut v = Vocab::new();
        let mut b = FaBuilder::new();
        let s0 = b.state();
        let a1 = b.state();
        let a2 = b.state();
        b.start(s0).accept(a1).accept(a2);
        b.event_var(s0, "f", a1, &mut v);
        b.event_var(s0, "f", a2, &mut v);
        let dfa = b.build().determinize();
        assert_eq!(dfa.state_count(), 2);
        assert!(dfa.accepts_letters(&[0]));
        assert!(!dfa.accepts_letters(&[0, 0]));
    }

    #[test]
    fn minimize_collapses_equivalent_states() {
        let mut v = Vocab::new();
        // Two redundant paths of the same length: f g | f g (duplicated states).
        let mut b = FaBuilder::new();
        let s0 = b.state();
        let p1 = b.state();
        let p2 = b.state();
        let a1 = b.state();
        let a2 = b.state();
        b.start(s0).accept(a1).accept(a2);
        b.event_var(s0, "f", p1, &mut v);
        b.event_var(s0, "f", p2, &mut v);
        b.event_var(p1, "g", a1, &mut v);
        b.event_var(p2, "g", a2, &mut v);
        let dfa = b.build().determinize();
        let min = dfa.minimize();
        // f g over alphabet {f,g}: states {start, after-f, accept, sink} = 4.
        assert_eq!(min.state_count(), 4);
        assert!(min.accepts_letters(&[0, 1]));
        assert!(!min.accepts_letters(&[0]));
    }

    #[test]
    fn equivalence_positive_and_negative() {
        let mut v = Vocab::new();
        let a = linear_fa(&["f", "g"], &mut v);
        let b = linear_fa(&["f", "g"], &mut v);
        let c = linear_fa(&["f", "h"], &mut v);
        assert!(a.equivalent(&b));
        assert!(!a.equivalent(&c));
    }

    #[test]
    fn equivalence_distinguishes_wildcard() {
        let mut v = Vocab::new();
        let mut b1 = FaBuilder::new();
        let s = b1.state();
        b1.start(s).accept(s);
        b1.wildcard(s, s);
        let anything = b1.build();
        let mut b2 = FaBuilder::new();
        let s = b2.state();
        b2.start(s).accept(s);
        b2.event_var(s, "f", s, &mut v);
        let only_f = b2.build();
        assert!(!anything.equivalent(&only_f));
        assert!(anything.equivalent(&anything.clone()));
    }

    #[test]
    fn overlap_detection() {
        let mut v = Vocab::new();
        let f = v.op("f");
        let a = EventPat::op_only(f);
        let b = EventPat::on_var(f, cable_trace::Var(0));
        assert!(event_pats_overlap(&a, &b));
        let c = EventPat::on_var(f, cable_trace::Var(1));
        assert!(!event_pats_overlap(&b, &c));
        let g = EventPat::op_only(v.op("g"));
        assert!(!event_pats_overlap(&a, &g));
    }

    #[test]
    fn determinize_refines_overlapping_labels() {
        // `f` (any args) overlaps `f(X)`; refinement keeps them apart:
        // an automaton accepting any-f once is NOT equivalent to one
        // accepting exactly f(X) once, but IS equivalent to its own
        // two-transition restatement.
        let mut v = Vocab::new();
        let mut b = FaBuilder::new();
        let s0 = b.state();
        let s1 = b.state();
        b.start(s0).accept(s1);
        b.event_op(s0, "f", s1, &mut v);
        let any_f = b.build();

        let mut b = FaBuilder::new();
        let s0 = b.state();
        let s1 = b.state();
        b.start(s0).accept(s1);
        b.event_var(s0, "f", s1, &mut v);
        let only_fx = b.build();

        let mut b = FaBuilder::new();
        let s0 = b.state();
        let s1 = b.state();
        b.start(s0).accept(s1);
        b.event_var(s0, "f", s1, &mut v);
        b.event_op(s0, "f", s1, &mut v);
        let both = b.build();

        assert!(!any_f.equivalent(&only_fx), "f(Y) separates them");
        assert!(any_f.equivalent(&both));
        // Direct acceptance agrees.
        let fy = Trace::parse("f(Y)", &mut v).unwrap();
        let fx = Trace::parse("f(X)", &mut v).unwrap();
        assert!(any_f.accepts(&fy) && !only_fx.accepts(&fy));
        assert!(any_f.accepts(&fx) && only_fx.accepts(&fx));
    }

    #[test]
    fn meet_closure_adds_refinements() {
        let mut v = Vocab::new();
        let f = v.op("f");
        let any = TransLabel::Pat(EventPat::op_only(f));
        let fx = TransLabel::Pat(EventPat::on_var(f, cable_trace::Var(0)));
        let closure = meet_closure(&[any.clone(), fx.clone()]);
        assert_eq!(closure.len(), 2, "f ⊓ f(X) = f(X), already present");
        assert!(label_subsumes(&any, &fx));
        assert!(!label_subsumes(&fx, &any));
        // Incomparable overlapping labels generate their meet.
        let f_x_any = TransLabel::Pat(EventPat {
            op: f,
            args: Some(vec![ArgPat::Var(cable_trace::Var(0)), ArgPat::Any]),
        });
        let f_any_y = TransLabel::Pat(EventPat {
            op: f,
            args: Some(vec![ArgPat::Any, ArgPat::Var(cable_trace::Var(1))]),
        });
        let closure = meet_closure(&[f_x_any, f_any_y]);
        assert_eq!(closure.len(), 3);
    }

    #[test]
    fn union_accepts_either_language() {
        let mut v = Vocab::new();
        let a = linear_fa(&["f"], &mut v);
        let b = linear_fa(&["g", "h"], &mut v);
        let u = a.union(&b);
        for text in ["f(X)", "g(X) h(X)"] {
            assert!(u.accepts(&Trace::parse(text, &mut v).unwrap()), "{text}");
        }
        assert!(!u.accepts(&Trace::parse("f(X) g(X)", &mut v).unwrap()));
        assert!(!u.accepts(&Trace::parse("g(X)", &mut v).unwrap()));
    }

    #[test]
    fn intersection_requires_both() {
        let mut v = Vocab::new();
        // a: f then anything*; b: anything* then g.
        let mut b1 = FaBuilder::new();
        let s0 = b1.state();
        let s1 = b1.state();
        b1.start(s0).accept(s1);
        b1.event_var(s0, "f", s1, &mut v);
        b1.wildcard(s1, s1);
        let a = b1.build();
        let mut b2 = FaBuilder::new();
        let t0 = b2.state();
        let t1 = b2.state();
        b2.start(t0).accept(t1);
        b2.wildcard(t0, t0);
        b2.event_var(t0, "g", t1, &mut v);
        let b = b2.build();
        let i = a.intersection(&b);
        assert!(i.accepts(&Trace::parse("f(X) g(X)", &mut v).unwrap()));
        assert!(i.accepts(&Trace::parse("f(X) h(X) g(X)", &mut v).unwrap()));
        assert!(!i.accepts(&Trace::parse("f(X)", &mut v).unwrap()));
        assert!(!i.accepts(&Trace::parse("g(X)", &mut v).unwrap()));
    }

    #[test]
    fn intersection_of_disjoint_languages_is_empty() {
        let mut v = Vocab::new();
        let a = linear_fa(&["f"], &mut v);
        let b = linear_fa(&["g"], &mut v);
        let i = a.intersection(&b);
        assert!(!i.accepts(&Trace::parse("f(X)", &mut v).unwrap()));
        assert!(!i.accepts(&Trace::parse("g(X)", &mut v).unwrap()));
        assert_eq!(i.transition_count(), 0, "trimmed to nothing");
    }

    #[test]
    fn label_meet_cases() {
        use cable_trace::Var;
        let mut v = Vocab::new();
        let f = v.op("f");
        let g = v.op("g");
        let fx = TransLabel::Pat(EventPat::on_var(f, Var(0)));
        let f_any = TransLabel::Pat(EventPat::op_only(f));
        let gx = TransLabel::Pat(EventPat::on_var(g, Var(0)));
        // Wildcard is the identity.
        assert_eq!(label_meet(&TransLabel::Wildcard, &fx), Some(fx.clone()));
        assert_eq!(label_meet(&fx, &TransLabel::Wildcard), Some(fx.clone()));
        // Same op: the more specific side wins.
        assert_eq!(label_meet(&f_any, &fx), Some(fx.clone()));
        // Different ops are disjoint.
        assert_eq!(label_meet(&fx, &gx), None);
        // Positionwise meet of argument patterns.
        let f_x_any = TransLabel::Pat(EventPat {
            op: f,
            args: Some(vec![ArgPat::Var(Var(0)), ArgPat::Any]),
        });
        let f_any_y = TransLabel::Pat(EventPat {
            op: f,
            args: Some(vec![ArgPat::Any, ArgPat::Var(Var(1))]),
        });
        let met = label_meet(&f_x_any, &f_any_y).expect("overlap");
        let expect = TransLabel::Pat(EventPat {
            op: f,
            args: Some(vec![ArgPat::Var(Var(0)), ArgPat::Var(Var(1))]),
        });
        assert_eq!(met, expect);
        // Mismatched arity is disjoint.
        assert_eq!(label_meet(&fx, &f_x_any), None);
    }

    #[test]
    fn minimal_state_count_of_loop() {
        let mut v = Vocab::new();
        let mut b = FaBuilder::new();
        let s = b.state();
        b.start(s).accept(s);
        b.event_var(s, "f", s, &mut v);
        let dfa = b.build().determinize();
        // f*: minimal complete DFA over {f}: one accept state + sink... but
        // on alphabet {f, Other}: accept state loops on f, Other -> sink.
        assert_eq!(dfa.minimal_state_count(), 2);
    }

    /// An automaton accepting everything (wildcard self-loop).
    fn universal_fa() -> Fa {
        let mut b = FaBuilder::new();
        let s = b.state();
        b.start(s).accept(s);
        b.wildcard(s, s);
        b.build()
    }

    #[test]
    fn complement_completes_before_flipping() {
        // Language {f}: the incomplete DFA has no explicit dead state, so
        // a flip-without-complete would lose the sink — exactly the
        // strings ff, fff, … and every Other-containing string that the
        // complement must accept.
        let mut v = Vocab::new();
        let dfa = linear_fa(&["f"], &mut v).determinize();
        let comp = dfa.complement();
        assert!(comp.accepts_letters(&[]), "ε is not in {{f}}");
        assert!(!comp.accepts_letters(&[0]));
        assert!(comp.accepts_letters(&[0, 0]), "sink must be accepting");
        assert!(comp.accepts_letters(&[1]), "Other leads to the sink");
        // The complement is itself complete: complementing again restores
        // the original language.
        assert!(comp.complement().same_language(&dfa.complete()));
    }

    #[test]
    fn complement_of_universal_wildcard_is_empty() {
        // A wildcard-total automaton determinises to a DFA that is
        // already complete (every letter, including Other, steps) — no
        // sink is added, and the flipped DFA accepts nothing.
        let mut v = Vocab::new();
        let fx = TransLabel::Pat(EventPat::on_var(v.op("f"), cable_trace::Var(0)));
        let universal = universal_fa();
        let d = universal.determinize_with_alphabet(std::slice::from_ref(&fx));
        assert_eq!(
            d.complete().state_count(),
            d.state_count(),
            "wildcard-total DFA needs no sink"
        );
        assert!(universal.complement_over(&[fx]).is_empty_language());
    }

    #[test]
    fn complement_keeps_sink_with_wildcard_suffix() {
        // f then anything*: the wildcard keeps the post-f states total,
        // but the start state still dies on Other — the completion's sink
        // must survive into the complement as an accepting state.
        let mut v = Vocab::new();
        let mut b = FaBuilder::new();
        let s0 = b.state();
        let s1 = b.state();
        b.start(s0).accept(s1);
        b.event_var(s0, "f", s1, &mut v);
        b.wildcard(s1, s1);
        let fa = b.build();
        let comp = fa.determinize().complement();
        assert!(comp.accepts_letters(&[]));
        assert!(
            comp.accepts_letters(&[1]),
            "Other from start reaches the sink"
        );
        assert!(comp.accepts_letters(&[1, 0]), "the sink absorbs");
        assert!(!comp.accepts_letters(&[0]));
        assert!(
            !comp.accepts_letters(&[0, 1]),
            "wildcard keeps f-prefixed strings"
        );
    }

    #[test]
    fn complement_over_ignores_wildcard_letters() {
        // A wildcard in the requested alphabet is not a letter; it must
        // be filtered rather than panicking determinisation.
        let mut v = Vocab::new();
        let fx = TransLabel::Pat(EventPat::on_var(v.op("f"), cable_trace::Var(0)));
        let comp = universal_fa().complement_over(&[TransLabel::Wildcard, fx]);
        assert!(comp.is_empty_language());
    }

    #[test]
    fn dfa_products_follow_boolean_algebra() {
        let mut v = Vocab::new();
        let a = linear_fa(&["f"], &mut v);
        let b = linear_fa(&["f", "f"], &mut v);
        let alphabet = a.union_alphabet(&b);
        let da = a.determinize_with_alphabet(&alphabet);
        let db = b.determinize_with_alphabet(&alphabet);
        assert!(da.intersect(&db).is_empty_language());
        let u = da.union(&db);
        assert!(u.accepts_letters(&[0]));
        assert!(u.accepts_letters(&[0, 0]));
        assert!(!u.accepts_letters(&[]));
        assert_eq!(da.minus(&db).shortest_accepted(), Some(vec![0]));
        assert_eq!(db.minus(&da).shortest_accepted(), Some(vec![0, 0]));
        assert!(da.same_language(&da.complement().complement()));
    }

    #[test]
    fn difference_of_self_is_empty() {
        let mut v = Vocab::new();
        let a = linear_fa(&["f", "g"], &mut v);
        assert!(a.difference(&a).is_empty_language());
    }

    #[test]
    fn distinguishing_witness_is_shortest() {
        let mut v = Vocab::new();
        let a = linear_fa(&["f"], &mut v);
        let b = linear_fa(&["f", "f"], &mut v);
        let w = a.distinguishing_witness(&b).expect("languages differ");
        // Both reject ε, so the one-letter string f is minimal.
        assert_eq!(w.len(), 1);
        let t = a
            .distinguishing_trace(&b, &mut v)
            .expect("languages differ");
        assert_eq!(t.len(), 1);
        assert!(a.accepts(&t) != b.accepts(&t), "accepted by exactly one");
    }

    #[test]
    fn distinguishing_witness_none_for_equivalent() {
        let mut v = Vocab::new();
        let a = linear_fa(&["f", "g"], &mut v);
        let b = linear_fa(&["f", "g"], &mut v);
        assert!(a.distinguishing_witness(&b).is_none());
        assert!(a.distinguishing_trace(&b, &mut v).is_none());
    }

    #[test]
    fn witness_realizes_other_letter() {
        // Universal vs f*: every language difference involves a non-f
        // event, so the witness is the Other letter and must be realised
        // as an operation neither spec names.
        let mut v = Vocab::new();
        let universal = universal_fa();
        let mut b = FaBuilder::new();
        let s = b.state();
        b.start(s).accept(s);
        b.event_var(s, "f", s, &mut v);
        let only_f = b.build();
        let w = universal.distinguishing_witness(&only_f).expect("differ");
        assert_eq!(w, vec![WitnessLetter::Other]);
        let t = universal
            .distinguishing_trace(&only_f, &mut v)
            .expect("differ");
        assert!(universal.accepts(&t) && !only_f.accepts(&t));
        let shown = format!("{}", t.display(&v));
        assert!(shown.starts_with("__other("), "fresh op, got {shown}");
    }

    #[test]
    fn witness_realizes_refined_op_only_letter() {
        // Op-only f vs f(X): the distinguishing events match f but not
        // f(X); realisation picks an arity f(X) cannot match.
        let mut v = Vocab::new();
        let mut b = FaBuilder::new();
        let s0 = b.state();
        let s1 = b.state();
        b.start(s0).accept(s1);
        b.event_op(s0, "f", s1, &mut v);
        let any_f = b.build();
        let mut b = FaBuilder::new();
        let s0 = b.state();
        let s1 = b.state();
        b.start(s0).accept(s1);
        b.event_var(s0, "f", s1, &mut v);
        let only_fx = b.build();
        let t = any_f
            .distinguishing_trace(&only_fx, &mut v)
            .expect("differ");
        assert!(any_f.accepts(&t) && !only_fx.accepts(&t));
        // The realised trace survives a display/parse round trip.
        let shown = format!("{}", t.display(&v));
        let reparsed = Trace::parse(&shown, &mut v).unwrap();
        assert!(any_f.accepts(&reparsed) && !only_fx.accepts(&reparsed));
    }

    #[test]
    fn alphabet_compatibility() {
        let mut v = Vocab::new();
        let locks = linear_fa(&["lock", "unlock"], &mut v);
        let files = linear_fa(&["fopen", "fclose"], &mut v);
        let lock_only = linear_fa(&["lock"], &mut v);
        assert!(!locks.alphabet_compatible(&files), "disjoint op sets");
        assert!(locks.alphabet_compatible(&lock_only), "shared op");
        assert!(locks.alphabet_compatible(&universal_fa()), "wildcard side");
        assert!(universal_fa().alphabet_compatible(&files));
        let mut b = FaBuilder::new();
        let s = b.state();
        b.start(s).accept(s);
        let empty = b.build();
        assert!(empty.alphabet_compatible(&files), "no labels to clash");
    }
}
