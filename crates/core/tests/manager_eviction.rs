//! LRU-eviction correctness for the session manager: an
//! evicted-then-reopened session must be byte-identical (by
//! `session_state` digest) to one that was never evicted, including
//! sessions evicted between ingest batches and sessions hammered from
//! many threads while eviction pressure is on.
//!
//! This is the property that makes eviction safe to do at all: every
//! mutation journals before it applies, so dropping the in-memory
//! session loses nothing.

use cable_core::digest::session_state_record;
use cable_core::manager::{SessionKey, SessionManager};
use cable_core::session::{CableSession, TraceSelector};
use cable_fa::templates;
use cable_obs::json::Value;
use cable_trace::{Trace, TraceSet, Vocab};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cable-core-evict-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The deterministic op sequence each scenario replays: seed traces,
/// then alternating ingest batches and labels.
const SEED: &str = "fopen(#1) fread(#1) fclose(#1)\nfopen(#2)\n";

fn batch(i: usize) -> String {
    let a = 10 + 2 * i;
    let b = a + 1;
    format!("fopen(#{a}) fwrite(#{a}) fclose(#{a})\nfopen(#{b}) fread(#{b})\n")
}

fn new_session(text: &str) -> (CableSession, Vocab) {
    let mut vocab = Vocab::new();
    let traces = TraceSet::parse(text, &mut vocab).unwrap();
    let list: Vec<Trace> = traces.iter().map(|(_, t)| t.clone()).collect();
    let fa = templates::unordered_of_trace_events(&list);
    (CableSession::new(traces, fa), vocab)
}

/// Runs the scripted session life under `manager`: create, `rounds`
/// ingest batches, a label on the top concept, and returns the final
/// digest record.
fn run_script(manager: &SessionManager, key: &SessionKey, rounds: usize) -> Value {
    let (session, vocab) = new_session(SEED);
    manager.create(key, session, vocab).unwrap();
    for i in 0..rounds {
        manager
            .with_session(key, |stored| {
                stored
                    .ingest_text(&batch(i), false)
                    .map_err(cable_core::manager::ManagerError::Store)?;
                Ok(())
            })
            .unwrap();
    }
    manager
        .with_session(key, |stored| {
            let top = stored.session().lattice().top();
            stored
                .label_traces(top, &TraceSelector::Unlabeled, "good")
                .map_err(cable_core::manager::ManagerError::Store)?;
            Ok(session_state_record(stored))
        })
        .unwrap()
}

#[test]
fn evicted_between_every_op_matches_never_evicted() {
    let root = tmp_root("between-ops");
    // Control: a roomy manager that never evicts.
    let control = SessionManager::new(root.join("control"), 64);
    let key = SessionKey::new("t1", "s").unwrap();
    let expected = run_script(&control, &key, 4);

    // Victim: a 1-slot manager plus a decoy session touched between
    // every scripted op, so the victim is evicted before each access
    // and every access is a reopen-from-disk.
    let squeezed = SessionManager::new(root.join("squeezed"), 1);
    let decoy = SessionKey::new("t1", "decoy").unwrap();
    let (session, vocab) = new_session(SEED);
    squeezed.create(&decoy, session, vocab).unwrap();
    let touch_decoy = || {
        squeezed
            .with_session(&decoy, |stored| Ok(stored.session().traces().len()))
            .unwrap();
    };

    let (session, vocab) = new_session(SEED);
    touch_decoy();
    squeezed.create(&key, session, vocab).unwrap();
    for i in 0..4 {
        touch_decoy(); // evicts the victim
        assert!(
            !squeezed.list_open().contains(&key),
            "victim must actually be evicted between ops"
        );
        squeezed
            .with_session(&key, |stored| {
                stored
                    .ingest_text(&batch(i), false)
                    .map_err(cable_core::manager::ManagerError::Store)?;
                Ok(())
            })
            .unwrap();
    }
    touch_decoy();
    let actual = squeezed
        .with_session(&key, |stored| {
            let top = stored.session().lattice().top();
            stored
                .label_traces(top, &TraceSelector::Unlabeled, "good")
                .map_err(cable_core::manager::ManagerError::Store)?;
            Ok(session_state_record(stored))
        })
        .unwrap();

    assert_eq!(
        expected, actual,
        "evicted-then-reopened session diverged from the never-evicted control"
    );
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn concurrent_labelers_under_eviction_pressure_stay_deterministic() {
    let root = tmp_root("concurrent");
    const LABELERS: usize = 8;
    const ROUNDS: usize = 3;

    // Controls: each labeler's script replayed sequentially, no
    // eviction, one manager per labeler so nothing interleaves.
    let mut expected = Vec::new();
    for i in 0..LABELERS {
        let control = SessionManager::new(root.join(format!("control-{i}")), 64);
        let key = SessionKey::new(&format!("tenant{i}"), "s").unwrap();
        expected.push(run_script(&control, &key, ROUNDS));
    }

    // The contended run: all labelers share one 2-slot manager, so
    // almost every access evicts someone else's session.
    let shared = Arc::new(SessionManager::new(root.join("shared"), 2));
    let digests: Vec<Value> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..LABELERS)
            .map(|i| {
                let shared = Arc::clone(&shared);
                scope.spawn(move || {
                    let key = SessionKey::new(&format!("tenant{i}"), "s").unwrap();
                    run_script(&shared, &key, ROUNDS)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert!(
        shared.open_count() <= 2,
        "ceiling held: {} resident",
        shared.open_count()
    );
    for (i, (want, got)) in expected.iter().zip(&digests).enumerate() {
        assert_eq!(want, got, "labeler {i} diverged under eviction pressure");
    }
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn eviction_skips_sessions_mid_ingest() {
    let root = tmp_root("mid-ingest");
    let manager = Arc::new(SessionManager::new(&root, 1));
    let victim = SessionKey::new("t1", "victim").unwrap();
    let (session, vocab) = new_session(SEED);
    manager.create(&victim, session, vocab).unwrap();

    // Inside the victim's with_session, hammer other sessions from
    // another thread: eviction pressure peaks while the victim's slot
    // lock is held, and try_lock-only eviction must skip it.
    let digest = manager
        .with_session(&victim, |stored| {
            std::thread::scope(|scope| -> Result<(), cable_core::manager::ManagerError> {
                let pressure = Arc::clone(&manager);
                scope.spawn(move || {
                    for i in 0..4 {
                        let key = SessionKey::new("t1", &format!("other{i}")).unwrap();
                        let (session, vocab) = new_session(SEED);
                        pressure.create(&key, session, vocab).unwrap();
                    }
                });
                // Meanwhile the victim keeps ingesting mid-flight.
                for i in 0..4 {
                    stored
                        .ingest_text(&batch(i), false)
                        .map_err(cable_core::manager::ManagerError::Store)?;
                }
                Ok(())
            })?;
            Ok(session_state_record(stored))
        })
        .unwrap();

    // The mid-flight state was never torn down; after the dust settles
    // the victim may be evicted — reopening must reproduce it exactly.
    let reopened = manager
        .with_session(&victim, |stored| Ok(session_state_record(stored)))
        .unwrap();
    assert_eq!(digest, reopened, "mid-ingest state lost across eviction");
    std::fs::remove_dir_all(&root).unwrap();
}
