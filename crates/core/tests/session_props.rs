//! Randomized tests for Cable sessions and strategies on random trace
//! populations clustered under the unordered template.
//!
//! Each test runs a fixed number of seeded cases, so failures reproduce
//! exactly (`seeded(case)` pins the generator).

use cable_core::{strategy, CableSession, ConceptState, TraceSelector};
use cable_fa::templates;
use cable_trace::{Event, Trace, TraceSet, Var, Vocab};
use cable_util::rng::{seeded, Rng, SmallRng};

/// Random trace population: op sequences over a 4-op alphabet, with
/// duplicates likely.
fn gen_population(rng: &mut SmallRng) -> Vec<Vec<usize>> {
    let n = rng.gen_range(1usize..14);
    (0..n)
        .map(|_| {
            let len = rng.gen_range(1usize..5);
            (0..len).map(|_| rng.gen_range(0usize..4)).collect()
        })
        .collect()
}

fn build_session(raw: &[Vec<usize>]) -> (CableSession, Vocab) {
    let mut vocab = Vocab::new();
    let mut traces = TraceSet::new();
    for ops in raw {
        traces.push(Trace::new(
            ops.iter()
                .map(|&i| Event::on_var(vocab.op(&format!("op{i}")), Var(0)))
                .collect(),
        ));
    }
    let all: Vec<Trace> = traces.iter().map(|(_, t)| t.clone()).collect();
    let fa = templates::unordered_of_trace_events(&all);
    (CableSession::new(traces, fa), vocab)
}

/// An oracle that labels by the *set* of ops in the trace — always
/// well-formed for the unordered template by construction.
fn set_oracle(t: &Trace) -> String {
    let mut ops: Vec<usize> = t.iter().map(|e| e.op.index()).collect();
    ops.sort_unstable();
    ops.dedup();
    format!("{ops:?}")
}

#[test]
fn classes_partition_traces() {
    for case in 0..96u64 {
        let raw = gen_population(&mut seeded(case));
        let (session, _) = build_session(&raw);
        let total: usize = session.classes().iter().map(|c| c.count()).sum();
        assert_eq!(total, session.traces().len(), "case {case}");
        // class_of is consistent with membership.
        for (c, class) in session.classes().iter().enumerate() {
            for &m in &class.members {
                assert_eq!(session.class_of(m), c, "case {case}");
            }
        }
    }
}

#[test]
fn top_concept_holds_every_class() {
    for case in 0..96u64 {
        let raw = gen_population(&mut seeded(case));
        let (session, _) = build_session(&raw);
        let top = session.lattice().top();
        assert_eq!(
            session.select(top, &TraceSelector::All).len(),
            session.classes().len(),
            "case {case}"
        );
    }
}

#[test]
fn label_all_makes_everything_fully_labeled() {
    for case in 0..96u64 {
        let raw = gen_population(&mut seeded(case));
        let (mut session, _) = build_session(&raw);
        session.label_traces(session.lattice().top(), &TraceSelector::All, "x");
        assert!(session.all_labeled(), "case {case}");
        for id in session.lattice().ids() {
            assert_eq!(
                session.concept_state(id),
                ConceptState::FullyLabeled,
                "case {case}"
            );
        }
    }
}

#[test]
fn selectors_partition_every_concept() {
    for case in 0..96u64 {
        let raw = gen_population(&mut seeded(case));
        let (mut session, _) = build_session(&raw);
        // Label one child of the top, if any.
        let top = session.lattice().top();
        if let Some(&child) = session.lattice().children(top).first() {
            session.label_traces(child, &TraceSelector::All, "good");
        }
        for id in session.lattice().ids() {
            let all = session.select(id, &TraceSelector::All).len();
            let unlabeled = session.select(id, &TraceSelector::Unlabeled).len();
            let good = session
                .select(id, &TraceSelector::WithLabel("good".into()))
                .len();
            assert_eq!(all, unlabeled + good, "case {case}");
        }
    }
}

#[test]
fn set_oracle_is_always_well_formed_for_unordered() {
    for case in 0..96u64 {
        let raw = gen_population(&mut seeded(case));
        // The unordered lattice can always express a labeling that is a
        // function of the op set.
        let (session, _) = build_session(&raw);
        assert!(session.is_well_formed_for(set_oracle), "case {case}");
    }
}

#[test]
fn strategies_reach_the_set_oracle_labeling() {
    for case in 0..96u64 {
        let raw = gen_population(&mut seeded(case));
        let (mut session, _) = build_session(&raw);
        let o = |t: &Trace| set_oracle(t);
        let mut rng = seeded(42);
        for which in 0..4 {
            let cost = match which {
                0 => strategy::top_down(&mut session, &o, &mut rng),
                1 => strategy::bottom_up(&mut session, &o, &mut rng),
                2 => strategy::random(&mut session, &o, &mut rng),
                _ => strategy::expert(&mut session, &o),
            };
            assert!(cost.is_some(), "case {case}: strategy {which} failed");
            assert!(session.all_labeled(), "case {case}");
            for (c, class) in session.classes().iter().enumerate() {
                let want = set_oracle(session.traces().trace(class.representative));
                let got = session
                    .labels()
                    .get(c)
                    .map(|l| session.labels().name(l).to_owned());
                assert_eq!(got, Some(want), "case {case}");
            }
        }
    }
}

#[test]
fn optimal_lower_bounds_strategies() {
    for case in 0..96u64 {
        let raw = gen_population(&mut seeded(case));
        let (mut session, _) = build_session(&raw);
        let o = |t: &Trace| set_oracle(t);
        let opt = strategy::optimal(&mut session, &o, 200_000);
        let Some(opt) = opt else { continue };
        let opt = opt.total();
        let mut rng = seeded(1);
        let td = strategy::top_down(&mut session, &o, &mut rng)
            .unwrap()
            .total();
        let bu = strategy::bottom_up(&mut session, &o, &mut rng)
            .unwrap()
            .total();
        let ex = strategy::expert(&mut session, &o).unwrap().total();
        assert!(
            opt <= td && opt <= bu && opt <= ex,
            "case {case}: opt {opt} td {td} bu {bu} ex {ex}"
        );
    }
}

#[test]
fn focus_round_trip_preserves_labels() {
    for case in 0..96u64 {
        let raw = gen_population(&mut seeded(case));
        let (mut session, _) = build_session(&raw);
        let top = session.lattice().top();
        // Label everything via a focus session over the exact same FA.
        let fa = session.reference_fa().clone();
        let mut focus = session.focus(top, fa);
        let ftop = focus.session().lattice().top();
        focus
            .session_mut()
            .label_traces(ftop, &TraceSelector::All, "good");
        session.merge_focus(focus);
        assert!(session.all_labeled(), "case {case}");
    }
}
