//! Property tests for Cable sessions and strategies on random trace
//! populations clustered under the unordered template.

use cable_core::{strategy, CableSession, ConceptState, TraceSelector};
use cable_fa::templates;
use cable_trace::{Event, Trace, TraceSet, Var, Vocab};
use proptest::prelude::*;

/// Random trace population: op sequences over a 4-op alphabet, with
/// duplicates likely.
fn arb_population() -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(prop::collection::vec(0usize..4, 1..5), 1..14)
}

fn build_session(raw: &[Vec<usize>]) -> (CableSession, Vocab) {
    let mut vocab = Vocab::new();
    let mut traces = TraceSet::new();
    for ops in raw {
        traces.push(Trace::new(
            ops.iter()
                .map(|&i| Event::on_var(vocab.op(&format!("op{i}")), Var(0)))
                .collect(),
        ));
    }
    let all: Vec<Trace> = traces.iter().map(|(_, t)| t.clone()).collect();
    let fa = templates::unordered_of_trace_events(&all);
    (CableSession::new(traces, fa), vocab)
}

/// An oracle that labels by the *set* of ops in the trace — always
/// well-formed for the unordered template by construction.
fn set_oracle(t: &Trace) -> String {
    let mut ops: Vec<usize> = t.iter().map(|e| e.op.index()).collect();
    ops.sort_unstable();
    ops.dedup();
    format!("{ops:?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn classes_partition_traces(raw in arb_population()) {
        let (session, _) = build_session(&raw);
        let total: usize = session.classes().iter().map(|c| c.count()).sum();
        prop_assert_eq!(total, session.traces().len());
        // class_of is consistent with membership.
        for (c, class) in session.classes().iter().enumerate() {
            for &m in &class.members {
                prop_assert_eq!(session.class_of(m), c);
            }
        }
    }

    #[test]
    fn top_concept_holds_every_class(raw in arb_population()) {
        let (session, _) = build_session(&raw);
        let top = session.lattice().top();
        prop_assert_eq!(
            session.select(top, &TraceSelector::All).len(),
            session.classes().len()
        );
    }

    #[test]
    fn label_all_makes_everything_fully_labeled(raw in arb_population()) {
        let (mut session, _) = build_session(&raw);
        session.label_traces(session.lattice().top(), &TraceSelector::All, "x");
        prop_assert!(session.all_labeled());
        for id in session.lattice().ids() {
            prop_assert_eq!(session.concept_state(id), ConceptState::FullyLabeled);
        }
    }

    #[test]
    fn selectors_partition_every_concept(raw in arb_population()) {
        let (mut session, _) = build_session(&raw);
        // Label one child of the top, if any.
        let top = session.lattice().top();
        if let Some(&child) = session.lattice().children(top).first() {
            session.label_traces(child, &TraceSelector::All, "good");
        }
        for id in session.lattice().ids() {
            let all = session.select(id, &TraceSelector::All).len();
            let unlabeled = session.select(id, &TraceSelector::Unlabeled).len();
            let good = session
                .select(id, &TraceSelector::WithLabel("good".into()))
                .len();
            prop_assert_eq!(all, unlabeled + good);
        }
    }

    #[test]
    fn set_oracle_is_always_well_formed_for_unordered(raw in arb_population()) {
        // The unordered lattice can always express a labeling that is a
        // function of the op set.
        let (session, _) = build_session(&raw);
        prop_assert!(session.is_well_formed_for(set_oracle));
    }

    #[test]
    fn strategies_reach_the_set_oracle_labeling(raw in arb_population()) {
        let (mut session, _) = build_session(&raw);
        let o = |t: &Trace| set_oracle(t);
        let mut rng = cable_util::rng::seeded(42);
        for which in 0..4 {
            let cost = match which {
                0 => strategy::top_down(&mut session, &o, &mut rng),
                1 => strategy::bottom_up(&mut session, &o, &mut rng),
                2 => strategy::random(&mut session, &o, &mut rng),
                _ => strategy::expert(&mut session, &o),
            };
            prop_assert!(cost.is_some(), "strategy {which} failed");
            prop_assert!(session.all_labeled());
            for (c, class) in session.classes().iter().enumerate() {
                let want = set_oracle(session.traces().trace(class.representative));
                let got = session.labels().get(c).map(|l| session.labels().name(l).to_owned());
                prop_assert_eq!(got, Some(want));
            }
        }
    }

    #[test]
    fn optimal_lower_bounds_strategies(raw in arb_population()) {
        let (mut session, _) = build_session(&raw);
        let o = |t: &Trace| set_oracle(t);
        let opt = strategy::optimal(&mut session, &o, 200_000);
        prop_assume!(opt.is_some());
        let opt = opt.unwrap().total();
        let mut rng = cable_util::rng::seeded(1);
        let td = strategy::top_down(&mut session, &o, &mut rng).unwrap().total();
        let bu = strategy::bottom_up(&mut session, &o, &mut rng).unwrap().total();
        let ex = strategy::expert(&mut session, &o).unwrap().total();
        prop_assert!(opt <= td && opt <= bu && opt <= ex, "opt {opt} td {td} bu {bu} ex {ex}");
    }

    #[test]
    fn focus_round_trip_preserves_labels(raw in arb_population()) {
        let (mut session, _) = build_session(&raw);
        let top = session.lattice().top();
        // Label everything via a focus session over the exact same FA.
        let fa = session.reference_fa().clone();
        let mut focus = session.focus(top, fa);
        let ftop = focus.session().lattice().top();
        focus.session_mut().label_traces(ftop, &TraceSelector::All, "good");
        session.merge_focus(focus);
        prop_assert!(session.all_labeled());
    }
}
