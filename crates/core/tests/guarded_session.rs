//! Guarded session builds: a budget trip during clustering returns a
//! valid partial session over the leading trace classes, equal to the
//! session built from those classes' traces alone.
//!
//! Budgets are process-global, so these tests run in their own
//! integration binary and serialise on a local mutex.

use cable_core::CableSession;
use cable_fa::templates;
use cable_guard::{Budget, GuardError, Limit};
use cable_trace::{Trace, TraceSet, Vocab};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A corpus with many distinct trace shapes, so the lattice is big
/// enough for a concept ceiling to land mid-build.
fn corpus(v: &mut Vocab) -> (TraceSet, cable_fa::Fa) {
    let ops = ["open", "read", "write", "seek", "close", "flush"];
    let mut traces = TraceSet::new();
    let mut all = Vec::new();
    for i in 0..40usize {
        // Vary the subset of operations per trace deterministically.
        let text: Vec<String> = ops
            .iter()
            .enumerate()
            .filter(|(j, _)| (i >> j) & 1 == 1 || i % (j + 2) == 0)
            .map(|(_, op)| format!("{op}(X)"))
            .collect();
        let t = Trace::parse(&text.join(" "), v).unwrap();
        all.push(t.clone());
        traces.push(t);
    }
    let fa = templates::unordered_of_trace_events(&all);
    (traces, fa)
}

#[test]
fn try_new_without_a_guard_equals_new() {
    let _l = lock();
    let mut v = Vocab::new();
    let (traces, fa) = corpus(&mut v);
    let guarded = CableSession::try_new(traces.clone(), fa.clone()).expect("no budget installed");
    let plain = CableSession::new(traces, fa);
    assert_eq!(guarded.classes().len(), plain.classes().len());
    assert_eq!(guarded.lattice().len(), plain.lattice().len());
}

#[test]
fn concept_ceiling_returns_a_valid_partial_session() {
    let _l = lock();
    let mut v = Vocab::new();
    let (traces, fa) = corpus(&mut v);
    let full = CableSession::new(traces.clone(), fa.clone());
    let ceiling = full.lattice().len() as u64 / 2;

    let guard = Budget {
        max_concepts: Some(ceiling),
        ..Budget::default()
    }
    .install();
    let stop = CableSession::try_new(traces, fa.clone()).expect_err("ceiling must trip");
    drop(guard);

    assert!(matches!(
        stop.error,
        GuardError::BudgetExceeded {
            limit: Limit::Concepts { .. },
            ..
        }
    ));
    let partial = &stop.partial;
    assert_eq!(partial.classes().len(), stop.classes_clustered);
    assert!(stop.classes_clustered < full.classes().len());

    // The partial session equals the session built from just the
    // covered classes' traces.
    let mut sub = TraceSet::new();
    for (id, t) in partial.traces().iter() {
        let _ = id;
        sub.push(t.clone());
    }
    let rebuilt = CableSession::new(sub, fa);
    assert_eq!(partial.classes().len(), rebuilt.classes().len());
    assert_eq!(partial.lattice().len(), rebuilt.lattice().len());
    for (_, c) in rebuilt.lattice().iter() {
        assert!(partial.lattice().find_by_extent(&c.extent).is_some());
    }
}

#[test]
fn expired_deadline_stops_the_sweep_with_an_empty_partial() {
    let _l = lock();
    let mut v = Vocab::new();
    let (traces, fa) = corpus(&mut v);
    let guard = Budget {
        deadline: Some(Duration::ZERO),
        ..Budget::default()
    }
    .install();
    let stop = CableSession::try_new(traces, fa).expect_err("expired deadline must trip");
    drop(guard);
    assert!(matches!(
        stop.error,
        GuardError::BudgetExceeded {
            limit: Limit::Deadline { .. },
            ..
        }
    ));
    assert_eq!(stop.classes_clustered, 0);
    assert_eq!(stop.partial.traces().len(), 0);
    // Even the empty partial is a well-formed session object.
    assert_eq!(stop.partial.lattice().len(), 1);
}

/// The partial session is fully usable: it can be labeled and saved
/// like any complete session.
#[test]
fn partial_sessions_are_labelable_and_persistable() {
    let _l = lock();
    let mut v = Vocab::new();
    let (traces, fa) = corpus(&mut v);
    let full = CableSession::new(traces.clone(), fa.clone());
    let guard = Budget {
        max_concepts: Some(full.lattice().len() as u64 / 2),
        ..Budget::default()
    }
    .install();
    let stop = CableSession::try_new(traces, fa).expect_err("ceiling must trip");
    drop(guard);

    let mut partial = stop.partial;
    let top = partial.lattice().top();
    partial.label_traces(top, &cable_core::TraceSelector::All, "seen");
    assert!(partial.all_labeled());

    let dir = std::env::temp_dir().join(format!(
        "cable-guarded-session-{}-persist",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let stored = partial.save(v.clone(), &dir).expect("partial saves");
    drop(stored);
    let (reopened, _) = CableSession::open(&dir).expect("partial reopens");
    assert!(reopened.session().all_labeled());
    std::fs::remove_dir_all(&dir).unwrap();
}
