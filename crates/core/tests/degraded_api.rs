//! Fail-stop durability through the API (DESIGN.md §17): an injected
//! fsync failure flips the store read-only, writes answer a *declared*
//! degraded `503` (body says `degraded: true`, header says
//! `Retry-After`), reads keep serving, and recovery — operator-
//! triggered or automatic on the next write — restores exactly the
//! acknowledged pre-fault state.
//!
//! The fault plane is process-global, so these tests run in their own
//! integration binary and serialise on a local mutex.

use cable_core::CableApi;
use cable_core::SessionManager;
use cable_obs::json::Value;
use cable_obs::{ApiHandler, ApiRequest, ApiResponse};
use std::sync::{Arc, Mutex, MutexGuard};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn api(tag: &str) -> (CableApi, std::path::PathBuf) {
    let root = std::env::temp_dir().join(format!(
        "cable-core-degraded-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    let manager = Arc::new(SessionManager::new(&root, 4));
    (CableApi::new(manager, None), root)
}

fn post(api: &CableApi, route: &str, body: &str) -> ApiResponse {
    api.handle(&ApiRequest {
        method: "POST".into(),
        route: route.into(),
        query: None,
        body: body.into(),
    })
}

fn get(api: &CableApi, route: &str, query: Option<&str>) -> ApiResponse {
    api.handle(&ApiRequest {
        method: "GET".into(),
        route: route.into(),
        query: query.map(str::to_owned),
        body: String::new(),
    })
}

fn body_json(response: &ApiResponse) -> Value {
    Value::parse(response.body.trim()).expect("response body is JSON")
}

fn corpus_digest_of(api: &CableApi, session: &str) -> String {
    let digest = get(
        api,
        &format!("/api/sessions/{session}/digest"),
        Some("tenant=t1"),
    );
    assert_eq!(digest.status, 200, "{}", digest.body);
    body_json(&digest)
        .get("corpus_digest")
        .and_then(Value::as_str)
        .expect("digest response carries corpus_digest")
        .to_owned()
}

fn corpus_digest(api: &CableApi) -> String {
    corpus_digest_of(api, "s1")
}

/// Asserts the declared degraded shape the chaos drill gates on: a
/// `503` whose body admits degradation and whose `Retry-After` marks
/// it retryable.
fn assert_declared_degraded(response: &ApiResponse) {
    assert_eq!(response.status, 503, "{}", response.body);
    assert_eq!(
        response.retry_after,
        Some(cable_obs::RETRY_AFTER_SECONDS),
        "degraded 503 must carry Retry-After"
    );
    let body = body_json(response);
    assert_eq!(body.get("degraded"), Some(&Value::Bool(true)), "{body}");
    assert!(
        body.get("cause").and_then(Value::as_str).is_some(),
        "{body}"
    );
}

const INGEST_FSYNC: &str = r#"{"tenant": "t1", "traces": "fopen(Z) fclose(Z)", "fsync": true}"#;

#[test]
fn fsync_failure_degrades_reads_survive_and_recovery_restores_state() {
    let _l = lock();
    let (api, root) = api("lifecycle");
    let created = post(
        &api,
        "/api/sessions",
        r#"{"tenant": "t1", "session": "s1", "traces": "fopen(X) fclose(X)\nfopen(Y)"}"#,
    );
    assert_eq!(created.status, 201, "{}", created.body);
    let before = corpus_digest(&api);

    // The next four fsyncs fail (a bare rule fires on its first hit
    // only, so the disk stays "broken" across several attempts): the
    // first synced ingest degrades the store within that one request.
    cable_guard::faults::install(
        "7:io@store.fsync#1,io@store.fsync#2,io@store.fsync#3,io@store.fsync#4",
    )
    .unwrap();
    let failed = post(&api, "/api/sessions/s1/ingest", INGEST_FSYNC);
    assert_declared_degraded(&failed);

    // Still broken: the next write's automatic recovery attempt fails
    // (recovery republishes, whose snapshot fsync is the next hit) and
    // the refusal is declared with the updated cause.
    let refused = post(&api, "/api/sessions/s1/ingest", INGEST_FSYNC);
    assert_declared_degraded(&refused);
    assert_eq!(
        body_json(&refused).get("cause").and_then(Value::as_str),
        Some("publish")
    );

    // Reads keep serving while the store is read-only — and the state
    // they serve is exactly the acknowledged pre-fault state.
    let lattice = get(&api, "/api/sessions/s1/lattice", Some("tenant=t1"));
    assert_eq!(lattice.status, 200, "{}", lattice.body);
    assert_eq!(corpus_digest(&api), before);

    // Disk healed: the operator endpoint recovers in one request.
    cable_guard::faults::uninstall();
    let recovered = post(&api, "/api/sessions/s1/recover", r#"{"tenant": "t1"}"#);
    assert_eq!(recovered.status, 200, "{}", recovered.body);
    let report = body_json(&recovered);
    assert_eq!(report.get("recovered"), Some(&Value::Bool(true)));
    assert_eq!(report.get("degraded"), Some(&Value::Bool(false)));

    // Recovery restored exactly the pre-fault state, and writes flow.
    assert_eq!(corpus_digest(&api), before);
    let ingested = post(&api, "/api/sessions/s1/ingest", INGEST_FSYNC);
    assert_eq!(ingested.status, 200, "{}", ingested.body);
    assert_ne!(corpus_digest(&api), before);

    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn next_write_after_the_disk_heals_recovers_automatically() {
    let _l = lock();
    let (api, root) = api("auto");
    let created = post(
        &api,
        "/api/sessions",
        r#"{"tenant": "t1", "session": "s1", "traces": "fopen(X) fclose(X)"}"#,
    );
    assert_eq!(created.status, 201, "{}", created.body);

    cable_guard::faults::install("7:io@store.fsync").unwrap();
    assert_declared_degraded(&post(&api, "/api/sessions/s1/ingest", INGEST_FSYNC));
    cable_guard::faults::uninstall();

    // No operator action: the next write recovers and proceeds itself.
    let ingested = post(&api, "/api/sessions/s1/ingest", INGEST_FSYNC);
    assert_eq!(ingested.status, 200, "{}", ingested.body);

    // Idempotent when already writable.
    let recovered = post(&api, "/api/sessions/s1/recover", r#"{"tenant": "t1"}"#);
    assert_eq!(recovered.status, 200, "{}", recovered.body);
    assert_eq!(
        body_json(&recovered).get("recovered"),
        Some(&Value::Bool(false))
    );

    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn a_failed_create_cleans_up_so_the_retry_succeeds() {
    let _l = lock();
    let (api, root) = api("create-retry");
    let create = r#"{"tenant": "t1", "session": "s1", "traces": "fopen(X) fclose(X)"}"#;

    // The create's own fsync fails: the response is a declared 503, and
    // the half-written store directory must not survive to turn the
    // retry into a permanent "already exists".
    cable_guard::faults::install("7:io@store.fsync").unwrap();
    let failed = post(&api, "/api/sessions", create);
    assert_declared_degraded(&failed);
    cable_guard::faults::uninstall();

    let retried = post(&api, "/api/sessions", create);
    assert_eq!(retried.status, 201, "{}", retried.body);
    let digest = get(&api, "/api/sessions/s1/digest", Some("tenant=t1"));
    assert_eq!(digest.status, 200, "{}", digest.body);

    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn a_mid_batch_ingest_fault_applies_nothing_and_the_retry_applies_once() {
    let _l = lock();
    let (api, root) = api("batch");
    for session in ["s1", "s2"] {
        let created = post(
            &api,
            "/api/sessions",
            &format!(
                r#"{{"tenant": "t1", "session": "{session}", "traces": "fopen(X) fclose(X)"}}"#
            ),
        );
        assert_eq!(created.status, 201, "{}", created.body);
    }
    let before = corpus_digest(&api);
    let batch = r#"{"tenant": "t1", "traces": "fopen(Z) fclose(Z)\nfopen(Y) fread(Y) fclose(Y)\npopen(X) pclose(X)", "fsync": true}"#;

    // The batch's second journal append fails: the request must answer
    // a declared 503 with *none* of the batch applied — not even the
    // line that journaled fine. Ingest is all-or-nothing, because the
    // client retries the whole batch it was never acked.
    cable_guard::faults::install("7:io@store.journal.append#2").unwrap();
    let failed = post(&api, "/api/sessions/s1/ingest", batch);
    assert_declared_degraded(&failed);
    assert_eq!(corpus_digest(&api), before, "partial batch leaked");
    cable_guard::faults::uninstall();

    // The retry (auto-recovery plus the full batch) lands exactly once:
    // the corpus ends bit-identical to a session that saw the batch a
    // single time on a healthy disk.
    let retried = post(&api, "/api/sessions/s1/ingest", batch);
    assert_eq!(retried.status, 200, "{}", retried.body);
    let clean = post(&api, "/api/sessions/s2/ingest", batch);
    assert_eq!(clean.status, 200, "{}", clean.body);
    assert_eq!(corpus_digest_of(&api, "s1"), corpus_digest_of(&api, "s2"));

    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn journal_append_failure_also_degrades_with_a_declared_503() {
    let _l = lock();
    let (api, root) = api("append");
    let created = post(
        &api,
        "/api/sessions",
        r#"{"tenant": "t1", "session": "s1", "traces": "fopen(X) fclose(X)"}"#,
    );
    assert_eq!(created.status, 201, "{}", created.body);

    cable_guard::faults::install("7:io:enospc@store.journal.append").unwrap();
    let failed = post(&api, "/api/sessions/s1/ingest", INGEST_FSYNC);
    assert_declared_degraded(&failed);
    cable_guard::faults::uninstall();

    let ingested = post(&api, "/api/sessions/s1/ingest", INGEST_FSYNC);
    assert_eq!(ingested.status, 200, "{}", ingested.body);

    std::fs::remove_dir_all(&root).unwrap();
}
