//! Cable sessions: the lattice, concept states, labeling, summaries, and
//! focus.

use crate::label::{Label, LabelStore};
use cable_fa::{Fa, TransId};
use cable_fca::{ConceptId, ConceptLattice, Context};
use cable_learn::SkStrings;
use cable_obs::{CounterHandle, HistogramHandle, Span};
use cable_trace::{IdenticalClass, Trace, TraceId, TraceSet, Vocab};
use cable_util::BitSet;
use std::fmt::Write as _;

/// Sessions built (context + lattice construction).
static SESSIONS_BUILT: CounterHandle = CounterHandle::new("core.session.built");
/// Wall-clock cost of building a session.
static SESSION_BUILD_NS: HistogramHandle = HistogramHandle::new("core.session.build_ns");
/// `Label traces` operations.
static LABEL_OPS: CounterHandle = CounterHandle::new("core.session.label_ops");
/// Classes relabeled across all `Label traces` operations.
static CLASSES_LABELED: CounterHandle = CounterHandle::new("core.session.classes_labeled");
/// `Show FA` summary views computed.
static SHOW_FA_OPS: CounterHandle = CounterHandle::new("core.session.show_fa_ops");
/// Focused sub-sessions started.
static FOCUS_OPS: CounterHandle = CounterHandle::new("core.session.focus_ops");
/// Traces absorbed live through `push_trace`.
static TRACES_PUSHED: CounterHandle = CounterHandle::new("core.session.traces_pushed");
/// `push_trace` calls that created a fresh class (lattice insertion).
static CLASSES_PUSHED: CounterHandle = CounterHandle::new("core.session.classes_pushed");

/// The labeling state of a concept (§4.1). The original Cable displayed
/// these as green, yellow and red.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConceptState {
    /// Unlabeled traces only (green). An empty concept is never in this
    /// state.
    Unlabeled,
    /// Some labeled and some unlabeled traces (yellow).
    PartlyLabeled,
    /// No unlabeled traces (red) — including the empty concept.
    FullyLabeled,
}

/// Which of a concept's traces a command applies to — the choice Cable
/// offers for `Label traces` and the summary views.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceSelector {
    /// All of the concept's traces.
    All,
    /// Only the unlabeled traces.
    Unlabeled,
    /// Only the traces with the given label.
    WithLabel(String),
}

/// A Cable debugging session over one set of traces and one reference FA.
///
/// Identical traces are grouped into classes (the lattice objects, as in
/// §5.2); labels attach to classes, so labeling one trace of a class
/// labels them all — identical traces are indistinguishable to every
/// summary view and must be classified together.
#[derive(Debug, Clone)]
pub struct CableSession {
    traces: TraceSet,
    classes: Vec<IdenticalClass>,
    class_of: Vec<usize>,
    fa: Fa,
    context: Context,
    lattice: ConceptLattice,
    labels: LabelStore,
}

impl CableSession {
    /// Builds a session: computes each class representative's executed
    /// transitions under the reference FA (the relation `R` of §3.2) and
    /// the concept lattice of the resulting context.
    pub fn new(traces: TraceSet, fa: Fa) -> Self {
        let _span = Span::enter("core.session.build", &SESSION_BUILD_NS);
        SESSIONS_BUILT.get().incr();
        let classes = traces.identical_classes();
        let representatives: Vec<&Trace> = classes
            .iter()
            .map(|class| traces.trace(class.representative))
            .collect();
        // One sweep per class representative, fanned out on the
        // cable-par pool; rows come back in class order.
        let rows = fa.executed_transitions_batch(&representatives);
        let context = Self::context_of(&rows, classes.len(), fa.transition_count());
        let lattice = ConceptLattice::build(&context);
        Self::assemble(traces, classes, fa, context, lattice)
    }

    /// [`CableSession::new`] under the installed `cable-guard` budget:
    /// both construction passes — the executed-transition sweep and the
    /// Godin lattice build — checkpoint as they go, and a trip returns a
    /// *valid partial session* over the leading trace classes instead of
    /// panicking or hanging.
    ///
    /// The partial session is exactly the session [`CableSession::new`]
    /// would build over the covered classes' traces (prefix-exact, see
    /// [`cable_fca::PartialBuild`]); a concept-count trip lands at the
    /// same class whatever `CABLE_PAR` is, so those partials are
    /// deterministic across worker counts.
    ///
    /// # Errors
    ///
    /// A [`SessionStop`] carrying the typed [`cable_guard::GuardError`]
    /// and the partial session.
    pub fn try_new(traces: TraceSet, fa: Fa) -> Result<Self, Box<SessionStop>> {
        let _span = Span::enter("core.session.build", &SESSION_BUILD_NS);
        SESSIONS_BUILT.get().incr();
        let classes = traces.identical_classes();
        let representatives: Vec<&Trace> = classes
            .iter()
            .map(|class| traces.trace(class.representative))
            .collect();
        let rows = match fa.try_executed_transitions_batch(&representatives) {
            Ok(rows) => rows,
            Err(stop) => {
                let k = stop.traces_swept;
                let partial = Self::prefix_session(&traces, &fa, &classes, &stop.partial, k, None);
                return Err(Box::new(SessionStop {
                    error: stop.error,
                    partial,
                    classes_clustered: k,
                }));
            }
        };
        let context = Self::context_of(&rows, classes.len(), fa.transition_count());
        match ConceptLattice::try_build(&context) {
            Ok(lattice) => Ok(Self::assemble(traces, classes, fa, context, lattice)),
            Err(stop) => {
                let k = stop.objects_inserted;
                let partial =
                    Self::prefix_session(&traces, &fa, &classes, &rows, k, Some(stop.lattice));
                Err(Box::new(SessionStop {
                    error: stop.error,
                    partial,
                    classes_clustered: k,
                }))
            }
        }
    }

    fn context_of(rows: &[BitSet], n_objects: usize, n_attrs: usize) -> Context {
        let mut context = Context::new(n_objects, n_attrs);
        for (c, executed) in rows.iter().enumerate() {
            for a in executed.iter() {
                context.add(c, a);
            }
        }
        context
    }

    fn assemble(
        traces: TraceSet,
        classes: Vec<IdenticalClass>,
        fa: Fa,
        context: Context,
        lattice: ConceptLattice,
    ) -> CableSession {
        let mut class_of = vec![0usize; traces.len()];
        for (c, class) in classes.iter().enumerate() {
            for &m in &class.members {
                class_of[m.index()] = c;
            }
        }
        let labels = LabelStore::new(classes.len());
        CableSession {
            traces,
            classes,
            class_of,
            fa,
            context,
            lattice,
            labels,
        }
    }

    /// A valid session over the first `k` trace classes: traces of later
    /// classes are dropped, the context keeps the first `k` rows, and
    /// the lattice is the supplied prefix-exact partial — or is built
    /// fresh from the truncated context when the sweep itself was the
    /// pass that stopped.
    fn prefix_session(
        traces: &TraceSet,
        fa: &Fa,
        classes: &[IdenticalClass],
        rows: &[BitSet],
        k: usize,
        lattice: Option<ConceptLattice>,
    ) -> CableSession {
        let mut keep = vec![false; traces.len()];
        for class in &classes[..k] {
            for &m in &class.members {
                keep[m.index()] = true;
            }
        }
        let mut sub = TraceSet::new();
        for (id, t) in traces.iter() {
            if keep[id.index()] {
                sub.push(t.clone());
            }
        }
        // Dropping whole trailing classes preserves the grouping of the
        // leading ones: same classes, same order, same representatives.
        let sub_classes = sub.identical_classes();
        debug_assert_eq!(sub_classes.len(), k);
        let context = Self::context_of(&rows[..k], k, fa.transition_count());
        let lattice = lattice.unwrap_or_else(|| ConceptLattice::build(&context));
        Self::assemble(sub, sub_classes, fa.clone(), context, lattice)
    }

    /// The traces being debugged.
    pub fn traces(&self) -> &TraceSet {
        &self.traces
    }

    /// The reference FA that defines trace similarity.
    pub fn reference_fa(&self) -> &Fa {
        &self.fa
    }

    /// The trace-class × transition context.
    pub fn context(&self) -> &Context {
        &self.context
    }

    /// The concept lattice.
    pub fn lattice(&self) -> &ConceptLattice {
        &self.lattice
    }

    /// The label store (class-indexed).
    pub fn labels(&self) -> &LabelStore {
        &self.labels
    }

    /// The classes of identical traces (the lattice objects).
    pub fn classes(&self) -> &[IdenticalClass] {
        &self.classes
    }

    /// The class index of a trace.
    pub fn class_of(&self, trace: TraceId) -> usize {
        self.class_of[trace.index()]
    }

    /// The label of a trace (via its class), if any.
    pub fn label_of_trace(&self, trace: TraceId) -> Option<Label> {
        self.labels.get(self.class_of(trace))
    }

    /// The state of a concept.
    pub fn concept_state(&self, concept: ConceptId) -> ConceptState {
        let extent = &self.lattice.concept(concept).extent;
        let mut labeled = false;
        let mut unlabeled = false;
        for c in extent.iter() {
            if self.labels.is_labeled(c) {
                labeled = true;
            } else {
                unlabeled = true;
            }
        }
        match (labeled, unlabeled) {
            (_, false) => ConceptState::FullyLabeled,
            (false, true) => ConceptState::Unlabeled,
            (true, true) => ConceptState::PartlyLabeled,
        }
    }

    /// The class indices a selector picks within a concept.
    pub fn select(&self, concept: ConceptId, selector: &TraceSelector) -> Vec<usize> {
        let extent = &self.lattice.concept(concept).extent;
        extent
            .iter()
            .filter(|&c| match selector {
                TraceSelector::All => true,
                TraceSelector::Unlabeled => !self.labels.is_labeled(c),
                TraceSelector::WithLabel(name) => self
                    .labels
                    .find(name)
                    .is_some_and(|l| self.labels.get(c) == Some(l)),
            })
            .collect()
    }

    /// The unlabeled class indices of a concept.
    pub fn unlabeled_in(&self, concept: ConceptId) -> Vec<usize> {
        self.select(concept, &TraceSelector::Unlabeled)
    }

    /// All trace ids (not classes) a selector picks within a concept.
    pub fn select_traces(&self, concept: ConceptId, selector: &TraceSelector) -> Vec<TraceId> {
        self.select(concept, selector)
            .into_iter()
            .flat_map(|c| self.classes[c].members.iter().copied())
            .collect()
    }

    /// The `Label traces` command: labels the selected traces of a
    /// concept. Because no trace may have more than one label, the new
    /// label replaces any existing labels of the selection. Returns the
    /// number of classes affected.
    pub fn label_traces(
        &mut self,
        concept: ConceptId,
        selector: &TraceSelector,
        label: &str,
    ) -> usize {
        let selected = self.select(concept, selector);
        for &c in &selected {
            self.labels.set(c, label);
        }
        LABEL_OPS.get().incr();
        CLASSES_LABELED.get().add(selected.len() as u64);
        selected.len()
    }

    /// Removes every label — used when re-running strategies.
    pub fn clear_labels(&mut self) {
        self.labels.clear_all();
    }

    /// Tests whether every trace is labeled.
    pub fn all_labeled(&self) -> bool {
        self.labels.all_labeled()
    }

    /// All representative traces carrying the given label name (one per
    /// class) — what the user feeds back to the miner or uses to fix the
    /// specification.
    pub fn representatives_with_label(&self, name: &str) -> Vec<&Trace> {
        match self.labels.find(name) {
            None => Vec::new(),
            Some(label) => self
                .labels
                .objects_with(label)
                .into_iter()
                .map(|c| self.traces.trace(self.classes[c].representative))
                .collect(),
        }
    }

    /// All traces (not just representatives) carrying the given label.
    pub fn traces_with_label(&self, name: &str) -> Vec<TraceId> {
        match self.labels.find(name) {
            None => Vec::new(),
            Some(label) => self
                .labels
                .objects_with(label)
                .into_iter()
                .flat_map(|c| self.classes[c].members.iter().copied())
                .collect(),
        }
    }

    /// Incrementally absorbs a freshly reported trace into the live
    /// session — the §6 "interactive algorithms" extension, built on
    /// Godin's incremental insertion.
    ///
    /// If the trace is identical to an existing class it simply joins
    /// that class (inheriting its label, if any); otherwise a new class
    /// is created, its executed-transition row computed, and the lattice
    /// updated in place. Existing labels are untouched either way.
    ///
    /// Returns the trace's id and whether a new class was created.
    pub fn push_trace(&mut self, trace: Trace) -> (TraceId, bool) {
        TRACES_PUSHED.get().incr();
        // Identical to an existing class?
        if let Some(class) = self
            .classes
            .iter()
            .position(|c| self.traces.trace(c.representative).event_key() == trace.event_key())
        {
            let id = self.traces.push(trace);
            self.classes[class].members.push(id);
            self.class_of.push(class);
            return (id, false);
        }
        CLASSES_PUSHED.get().incr();
        let executed = self.fa.executed_transitions(&trace);
        let id = self.traces.push(trace);
        let class = self.context.push_object(&executed);
        debug_assert_eq!(class, self.classes.len());
        self.classes.push(IdenticalClass {
            representative: id,
            members: vec![id],
        });
        self.class_of.push(class);
        let pushed = self.labels.push_unlabeled();
        debug_assert_eq!(pushed, class);
        // Incremental Godin insertion.
        let lattice = std::mem::replace(
            &mut self.lattice,
            ConceptLattice::from_concepts(vec![cable_fca::Concept {
                extent: BitSet::new(),
                intent: BitSet::new(),
            }]),
        );
        self.lattice = lattice.insert_object(class, &executed);
        (id, true)
    }

    /// Bulk form of [`CableSession::push_trace`]: absorbs a batch of
    /// traces with one live [`cable_fca::godin::Inserter`] across every
    /// new class and a single Hasse rebuild at the end
    /// ([`ConceptLattice::insert_objects`]), instead of a per-trace
    /// bucket rebuild. This is the ingest path of a resumed store
    /// session; the `fca.godin.bucket_reuses` /
    /// `fca.godin.bucket_rebuilds` counters tell the two apart.
    ///
    /// Returns, per trace in order, its id and whether it created a new
    /// class. Duplicates within the batch join the class the batch
    /// itself created.
    pub fn push_traces(&mut self, traces: Vec<Trace>) -> Vec<(TraceId, bool)> {
        let mut results = Vec::with_capacity(traces.len());
        let mut new_rows: Vec<(usize, BitSet)> = Vec::new();
        for trace in traces {
            TRACES_PUSHED.get().incr();
            if let Some(class) = self
                .classes
                .iter()
                .position(|c| self.traces.trace(c.representative).event_key() == trace.event_key())
            {
                let id = self.traces.push(trace);
                self.classes[class].members.push(id);
                self.class_of.push(class);
                results.push((id, false));
                continue;
            }
            CLASSES_PUSHED.get().incr();
            let executed = self.fa.executed_transitions(&trace);
            let id = self.traces.push(trace);
            let class = self.context.push_object(&executed);
            debug_assert_eq!(class, self.classes.len());
            self.classes.push(IdenticalClass {
                representative: id,
                members: vec![id],
            });
            self.class_of.push(class);
            let pushed = self.labels.push_unlabeled();
            debug_assert_eq!(pushed, class);
            new_rows.push((class, executed));
            results.push((id, true));
        }
        if !new_rows.is_empty() {
            // `lattice.` names the trace-report stage: incremental Godin
            // work attributed against lock-wait and fsync time.
            cable_obs::recorder::begin("lattice.insert");
            let lattice = std::mem::replace(
                &mut self.lattice,
                ConceptLattice::from_concepts(vec![cable_fca::Concept {
                    extent: BitSet::new(),
                    intent: BitSet::new(),
                }]),
            );
            self.lattice = lattice.insert_objects(new_rows.iter().map(|(c, row)| (*c, row)));
            cable_obs::recorder::end("lattice.insert");
        }
        results
    }

    /// Directly labels one class by index — the replay entry point for
    /// persisted label decisions, which journal as `(class, name)`
    /// pairs rather than concept selections so they apply regardless of
    /// how the lattice has grown since.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn set_class_label(&mut self, class: usize, name: &str) {
        self.labels.set(class, name);
        CLASSES_LABELED.get().incr();
    }

    /// Reassembles a session from persisted parts, skipping every
    /// construction pass: the context rows and lattice concepts come in
    /// ready-made (so no `executed_transitions` sweep and no Godin
    /// build — `fca.godin.objects_inserted` stays untouched), and only
    /// the identical-class grouping is recomputed from the traces,
    /// which is deterministic. All labels start unassigned; the caller
    /// replays persisted label decisions via
    /// [`CableSession::set_class_label`].
    ///
    /// # Errors
    ///
    /// Returns a message when the parts disagree structurally — the
    /// context has the wrong number of objects or attributes for the
    /// traces and FA, or the lattice does not cover the classes.
    pub fn from_parts(
        traces: TraceSet,
        fa: Fa,
        context: Context,
        lattice: ConceptLattice,
    ) -> Result<CableSession, String> {
        let classes = traces.identical_classes();
        if context.object_count() != classes.len() {
            return Err(format!(
                "context has {} objects but the traces form {} classes",
                context.object_count(),
                classes.len()
            ));
        }
        if context.attribute_count() != fa.transition_count() {
            return Err(format!(
                "context has {} attributes but the FA has {} transitions",
                context.attribute_count(),
                fa.transition_count()
            ));
        }
        let covered = lattice.concept(lattice.top()).extent.len();
        if covered != classes.len() {
            return Err(format!(
                "lattice top covers {covered} classes, expected {}",
                classes.len()
            ));
        }
        let mut class_of = vec![0usize; traces.len()];
        for (c, class) in classes.iter().enumerate() {
            for &m in &class.members {
                class_of[m.index()] = c;
            }
        }
        let labels = LabelStore::new(classes.len());
        Ok(CableSession {
            traces,
            classes,
            class_of,
            fa,
            context,
            lattice,
            labels,
        })
    }

    // ------------------------------------------------------------------
    // Summary views (§4.1).
    // ------------------------------------------------------------------

    /// **Show FA**: an automaton learned (with sk-strings) from the
    /// selected traces of a concept — "the most frequently used summary".
    pub fn show_fa(&self, concept: ConceptId, selector: &TraceSelector) -> Fa {
        self.show_fa_with(concept, selector, SkStrings::default())
    }

    /// **Show FA** with an explicit learner configuration.
    pub fn show_fa_with(
        &self,
        concept: ConceptId,
        selector: &TraceSelector,
        learner: SkStrings,
    ) -> Fa {
        SHOW_FA_OPS.get().incr();
        let traces: Vec<Trace> = self
            .select(concept, selector)
            .into_iter()
            .map(|c| self.traces.trace(self.classes[c].representative).clone())
            .collect();
        learner.learn(&traces)
    }

    /// **Show transitions**: the concept's intent as transition ids.
    pub fn show_transitions(&self, concept: ConceptId) -> Vec<TransId> {
        self.lattice
            .concept(concept)
            .intent
            .iter()
            .map(|a| TransId(a as u32))
            .collect()
    }

    /// **Show traces**: the selected representative traces of a concept.
    pub fn show_traces(&self, concept: ConceptId, selector: &TraceSelector) -> Vec<&Trace> {
        self.select(concept, selector)
            .into_iter()
            .map(|c| self.traces.trace(self.classes[c].representative))
            .collect()
    }

    // ------------------------------------------------------------------
    // Focus (§4.1).
    // ------------------------------------------------------------------

    /// Starts a focused sub-session on one concept's traces, clustered by
    /// a different reference FA (typically one of the §4.1 templates).
    /// Existing labels carry over into the sub-session.
    pub fn focus(&self, concept: ConceptId, fa: Fa) -> FocusSession {
        FOCUS_OPS.get().incr();
        let parent_classes: Vec<usize> = self.lattice.concept(concept).extent.iter().collect();
        let mut traces = TraceSet::new();
        for &c in &parent_classes {
            traces.push(self.traces.trace(self.classes[c].representative).clone());
        }
        let mut session = CableSession::new(traces, fa);
        // Carry existing labels into the sub-session.
        for (i, &c) in parent_classes.iter().enumerate() {
            if let Some(label) = self.labels.get(c) {
                let name = self.labels.name(label).to_owned();
                let sub_class = session.class_of(TraceId(i as u32));
                session.labels.set(sub_class, &name);
            }
        }
        FocusSession {
            parent_classes,
            session,
        }
    }

    /// Ends a focused sub-session, merging any labels it assigned back
    /// into this session (§4.1: "any labels that he assigned are
    /// automatically merged into the original session").
    pub fn merge_focus(&mut self, focus: FocusSession) {
        for (i, &parent_class) in focus.parent_classes.iter().enumerate() {
            let sub_class = focus.session.class_of(TraceId(i as u32));
            if let Some(label) = focus.session.labels.get(sub_class) {
                let name = focus.session.labels.name(label).to_owned();
                self.labels.set(parent_class, &name);
            }
        }
    }

    /// A progress summary of the labeling effort: how many classes and
    /// traces are labeled, broken down per label.
    pub fn progress(&self) -> SessionProgress {
        let mut per_label = Vec::new();
        for label in self.labels.labels_in_use() {
            let classes = self.labels.objects_with(label);
            let traces = classes.iter().map(|&c| self.classes[c].count()).sum();
            per_label.push(LabelCount {
                name: self.labels.name(label).to_owned(),
                classes: classes.len(),
                traces,
            });
        }
        per_label.sort_by(|a, b| b.classes.cmp(&a.classes).then_with(|| a.name.cmp(&b.name)));
        SessionProgress {
            classes: self.classes.len(),
            traces: self.traces.len(),
            labeled_classes: self.classes.len() - self.labels.unlabeled_count(),
            per_label,
        }
    }

    // ------------------------------------------------------------------
    // Display.
    // ------------------------------------------------------------------

    /// DOT export of the lattice with the paper's state colours (green /
    /// yellow / red) and per-concept class counts.
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", name.replace('"', "\\\""));
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  node [style=filled, shape=box];");
        for (id, concept) in self.lattice.iter() {
            let colour = match self.concept_state(id) {
                ConceptState::Unlabeled => "palegreen",
                ConceptState::PartlyLabeled => "khaki",
                ConceptState::FullyLabeled => "lightcoral",
            };
            let n_traces: usize = concept.extent.iter().map(|c| self.classes[c].count()).sum();
            let _ = writeln!(
                out,
                "  {id} [fillcolor={colour}, label=\"{id}: {} classes / {} traces, {} transitions\"];",
                concept.extent.len(),
                n_traces,
                concept.intent.len()
            );
        }
        for (id, _) in self.lattice.iter() {
            for &child in self.lattice.children(id) {
                let _ = writeln!(out, "  {id} -> {child};");
            }
        }
        let _ = writeln!(out, "}}");
        out
    }

    /// A textual transition summary for display, e.g. for `Show
    /// transitions`.
    pub fn transitions_text(&self, concept: ConceptId, vocab: &Vocab) -> String {
        let mut out = String::new();
        for tid in self.show_transitions(concept) {
            let t = self.fa.transition(tid);
            let _ = writeln!(
                out,
                "{} : {} -> {} on {}",
                tid,
                t.src,
                t.dst,
                t.label.display(vocab)
            );
        }
        out
    }

    /// The extent of a concept as a bit set over class indices.
    pub fn concept_classes(&self, concept: ConceptId) -> &BitSet {
        &self.lattice.concept(concept).extent
    }
}

/// A budget-stopped [`CableSession::try_new`]: the typed error plus a
/// valid session over the leading
/// [`SessionStop::classes_clustered`] trace classes.
#[derive(Debug)]
pub struct SessionStop {
    /// Why the build stopped.
    pub error: cable_guard::GuardError,
    /// The session over the covered prefix of classes — labelable,
    /// summarisable, and persistable like any other session.
    pub partial: CableSession,
    /// How many leading trace classes the partial session covers.
    pub classes_clustered: usize,
}

/// Per-label tallies within a [`SessionProgress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelCount {
    /// The label name.
    pub name: String,
    /// Classes carrying the label.
    pub classes: usize,
    /// Traces carrying the label (classes expanded).
    pub traces: usize,
}

/// A snapshot of how far a labeling session has progressed; see
/// [`CableSession::progress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionProgress {
    /// Total classes of identical traces.
    pub classes: usize,
    /// Total traces.
    pub traces: usize,
    /// Classes with a label.
    pub labeled_classes: usize,
    /// Per-label tallies, largest first.
    pub per_label: Vec<LabelCount>,
}

impl SessionProgress {
    /// Tests whether every class is labeled.
    pub fn is_complete(&self) -> bool {
        self.labeled_classes == self.classes
    }
}

/// A focused sub-session (the `Focus` command): the traces of one
/// concept, re-clustered under a different reference FA.
#[derive(Debug, Clone)]
pub struct FocusSession {
    parent_classes: Vec<usize>,
    session: CableSession,
}

impl FocusSession {
    /// The sub-session (all [`CableSession`] operations apply).
    pub fn session(&self) -> &CableSession {
        &self.session
    }

    /// Mutable access to the sub-session.
    pub fn session_mut(&mut self) -> &mut CableSession {
        &mut self.session
    }

    /// The parent-session class indices, in sub-session trace order.
    pub fn parent_classes(&self) -> &[usize] {
        &self.parent_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cable_fa::templates;

    /// The running example: violation traces from verifying the Figure 1
    /// specification, clustered with the unordered template.
    fn stdio_session(v: &mut Vocab) -> CableSession {
        let texts = [
            "popen(X) fread(X) pclose(X)",
            "popen(X) fread(X) pclose(X)",
            "popen(X) fread(X)",
            "fopen(X) fwrite(X)",
            "fopen(X) fwrite(X) pclose(X)",
        ];
        let mut traces = TraceSet::new();
        for t in texts {
            traces.push(Trace::parse(t, v).unwrap());
        }
        let all: Vec<Trace> = traces.iter().map(|(_, t)| t.clone()).collect();
        let fa = templates::unordered_of_trace_events(&all);
        CableSession::new(traces, fa)
    }

    #[test]
    fn classes_group_identical_traces() {
        let mut v = Vocab::new();
        let s = stdio_session(&mut v);
        assert_eq!(s.traces().len(), 5);
        assert_eq!(s.classes().len(), 4);
        assert_eq!(s.class_of(TraceId(0)), s.class_of(TraceId(1)));
    }

    #[test]
    fn concept_states_evolve() {
        let mut v = Vocab::new();
        let mut s = stdio_session(&mut v);
        let top = s.lattice().top();
        assert_eq!(s.concept_state(top), ConceptState::Unlabeled);
        // Label one child cluster.
        let child = s.lattice().children(top)[0];
        s.label_traces(child, &TraceSelector::All, "good");
        assert_eq!(s.concept_state(top), ConceptState::PartlyLabeled);
        assert_eq!(s.concept_state(child), ConceptState::FullyLabeled);
        // Label the rest.
        s.label_traces(top, &TraceSelector::Unlabeled, "bad");
        assert_eq!(s.concept_state(top), ConceptState::FullyLabeled);
        assert!(s.all_labeled());
    }

    #[test]
    fn empty_concept_is_fully_labeled() {
        let mut v = Vocab::new();
        let s = stdio_session(&mut v);
        let bottom = s.lattice().bottom();
        if s.lattice().concept(bottom).extent.is_empty() {
            assert_eq!(s.concept_state(bottom), ConceptState::FullyLabeled);
        }
    }

    #[test]
    fn label_replaces_label() {
        let mut v = Vocab::new();
        let mut s = stdio_session(&mut v);
        let top = s.lattice().top();
        s.label_traces(top, &TraceSelector::All, "good");
        // Relabel the subset with label `good` to `bad`.
        let n = s.label_traces(top, &TraceSelector::WithLabel("good".into()), "bad");
        assert_eq!(n, s.classes().len());
        assert!(s.representatives_with_label("good").is_empty());
        assert_eq!(s.representatives_with_label("bad").len(), 4);
    }

    #[test]
    fn selectors_partition() {
        let mut v = Vocab::new();
        let mut s = stdio_session(&mut v);
        let top = s.lattice().top();
        let child = s.lattice().children(top)[0];
        s.label_traces(child, &TraceSelector::All, "good");
        let all = s.select(top, &TraceSelector::All).len();
        let unlabeled = s.select(top, &TraceSelector::Unlabeled).len();
        let good = s
            .select(top, &TraceSelector::WithLabel("good".into()))
            .len();
        assert_eq!(all, unlabeled + good);
        assert_eq!(
            s.select(top, &TraceSelector::WithLabel("nope".into()))
                .len(),
            0
        );
    }

    #[test]
    fn select_traces_expands_classes() {
        let mut v = Vocab::new();
        let s = stdio_session(&mut v);
        let top = s.lattice().top();
        assert_eq!(s.select_traces(top, &TraceSelector::All).len(), 5);
    }

    #[test]
    fn show_fa_learns_from_selection() {
        let mut v = Vocab::new();
        let s = stdio_session(&mut v);
        let top = s.lattice().top();
        let fa = s.show_fa(top, &TraceSelector::All);
        // The learned FA accepts the representatives it was trained on.
        for t in s.show_traces(top, &TraceSelector::All) {
            assert!(fa.accepts(t), "{}", t.display(&v));
        }
    }

    #[test]
    fn show_transitions_matches_intent() {
        let mut v = Vocab::new();
        let s = stdio_session(&mut v);
        let top = s.lattice().top();
        // Top concept shares no transitions (its traces are diverse).
        assert!(s.show_transitions(top).is_empty());
        let text = s.transitions_text(s.lattice().bottom(), &v);
        assert!(!text.is_empty());
    }

    #[test]
    fn focus_and_merge_back() {
        let mut v = Vocab::new();
        let mut s = stdio_session(&mut v);
        let top = s.lattice().top();
        // Pre-label one class; the label must carry into the focus.
        let child = s.lattice().children(top)[0];
        s.label_traces(child, &TraceSelector::All, "good");
        let pclose = v.op("pclose");
        let seed = cable_fa::EventPat::on_var(pclose, cable_trace::Var(0));
        let pats = templates::distinct_event_pats(
            &s.traces()
                .iter()
                .map(|(_, t)| t.clone())
                .collect::<Vec<_>>(),
        );
        let focus_fa = templates::name_projection(&pats, cable_trace::Var(0));
        let _ = seed;
        let mut focus = s.focus(top, focus_fa);
        let carried = focus.session().labels().labels_in_use().len();
        assert_eq!(carried, 1, "pre-existing label carried over");
        // Label everything unlabeled in the focus, then merge back.
        let ftop = focus.session().lattice().top();
        focus
            .session_mut()
            .label_traces(ftop, &TraceSelector::Unlabeled, "bad");
        assert!(focus.session().all_labeled());
        s.merge_focus(focus);
        assert!(s.all_labeled());
    }

    #[test]
    fn dot_reflects_states() {
        let mut v = Vocab::new();
        let mut s = stdio_session(&mut v);
        let dot = s.to_dot("session");
        assert!(dot.contains("palegreen"));
        let top = s.lattice().top();
        s.label_traces(top, &TraceSelector::All, "good");
        let dot = s.to_dot("session");
        assert!(dot.contains("lightcoral"));
        assert!(!dot.contains("palegreen"));
    }

    #[test]
    fn push_trace_duplicate_joins_class_and_inherits_label() {
        let mut v = Vocab::new();
        let mut s = stdio_session(&mut v);
        let n_classes = s.classes().len();
        s.label_traces(s.lattice().top(), &TraceSelector::All, "good");
        let dup = Trace::parse("popen(X) fread(X) pclose(X)", &mut v).unwrap();
        let (id, new_class) = s.push_trace(dup);
        assert!(!new_class);
        assert_eq!(s.classes().len(), n_classes);
        assert!(s.label_of_trace(id).is_some(), "inherits the class label");
        assert!(s.all_labeled());
    }

    #[test]
    fn push_trace_new_class_updates_lattice_incrementally() {
        let mut v = Vocab::new();
        let mut s = stdio_session(&mut v);
        s.label_traces(s.lattice().top(), &TraceSelector::All, "good");
        // A genuinely new shape (still over known events, so the
        // unordered reference FA accepts it).
        let fresh = Trace::parse("popen(X) fwrite(X)", &mut v).unwrap();
        let (id, new_class) = s.push_trace(fresh.clone());
        assert!(new_class);
        assert_eq!(s.label_of_trace(id), None, "new classes arrive unlabeled");
        assert!(!s.all_labeled());
        // The incremental lattice equals a batch rebuild over the same
        // traces.
        let rebuilt = CableSession::new(s.traces().clone(), s.reference_fa().clone());
        assert_eq!(s.lattice().len(), rebuilt.lattice().len());
        for (_, c) in rebuilt.lattice().iter() {
            assert!(
                s.lattice().find_by_extent(&c.extent).is_some(),
                "missing extent {:?}",
                c.extent
            );
        }
        // Old labels survived.
        let labeled = (0..s.classes().len())
            .filter(|&c| s.labels().is_labeled(c))
            .count();
        assert_eq!(labeled, s.classes().len() - 1);
    }

    #[test]
    fn push_traces_batch_matches_per_trace_pushes() {
        let mut v = Vocab::new();
        let mut batch = stdio_session(&mut v);
        let mut single = batch.clone();
        let fresh = [
            "popen(X) fwrite(X)",
            "popen(X) fwrite(X)", // duplicate within the batch
            "fopen(X) fread(X) pclose(X)",
        ];
        let parsed: Vec<Trace> = fresh
            .iter()
            .map(|t| Trace::parse(t, &mut v).unwrap())
            .collect();
        let before = cable_obs::registry().snapshot();
        let results = batch.push_traces(parsed.clone());
        let delta = cable_obs::registry().snapshot().delta_since(&before);
        assert_eq!(
            results.iter().map(|&(_, fresh)| fresh).collect::<Vec<_>>(),
            vec![true, false, true]
        );
        for t in parsed {
            single.push_trace(t);
        }
        assert_eq!(batch.classes().len(), single.classes().len());
        assert_eq!(batch.lattice().len(), single.lattice().len());
        for (_, c) in single.lattice().iter() {
            assert!(batch.lattice().find_by_extent(&c.extent).is_some());
        }
        // The batch went through live buckets, not per-trace rebuilds.
        assert!(delta.counter("fca.godin.bucket_reuses").unwrap_or(0) >= 2);
        assert_eq!(delta.counter("fca.godin.bucket_rebuilds").unwrap_or(0), 0);
    }

    #[test]
    fn from_parts_rebuilds_an_equal_session() {
        let mut v = Vocab::new();
        let s = stdio_session(&mut v);
        let rebuilt = CableSession::from_parts(
            s.traces().clone(),
            s.reference_fa().clone(),
            s.context().clone(),
            s.lattice().clone(),
        )
        .unwrap();
        assert_eq!(rebuilt.classes().len(), s.classes().len());
        assert_eq!(rebuilt.lattice().len(), s.lattice().len());
        assert_eq!(rebuilt.context().pair_count(), s.context().pair_count());
    }

    #[test]
    fn from_parts_rejects_mismatched_parts() {
        let mut v = Vocab::new();
        let s = stdio_session(&mut v);
        // A context with the wrong object count.
        let bad = Context::new(1, s.reference_fa().transition_count());
        assert!(CableSession::from_parts(
            s.traces().clone(),
            s.reference_fa().clone(),
            bad,
            s.lattice().clone(),
        )
        .is_err());
    }

    #[test]
    fn progress_reports_per_label_tallies() {
        let mut v = Vocab::new();
        let mut s = stdio_session(&mut v);
        let p = s.progress();
        assert_eq!(p.classes, 4);
        assert_eq!(p.traces, 5);
        assert_eq!(p.labeled_classes, 0);
        assert!(!p.is_complete());
        assert!(p.per_label.is_empty());
        let top = s.lattice().top();
        let child = s.lattice().children(top)[0];
        s.label_traces(child, &TraceSelector::All, "good");
        s.label_traces(top, &TraceSelector::Unlabeled, "bad");
        let p = s.progress();
        assert!(p.is_complete());
        let total_traces: usize = p.per_label.iter().map(|l| l.traces).sum();
        assert_eq!(total_traces, 5);
        let total_classes: usize = p.per_label.iter().map(|l| l.classes).sum();
        assert_eq!(total_classes, 4);
    }

    #[test]
    fn clear_labels_resets() {
        let mut v = Vocab::new();
        let mut s = stdio_session(&mut v);
        let top = s.lattice().top();
        s.label_traces(top, &TraceSelector::All, "good");
        assert!(s.all_labeled());
        s.clear_labels();
        assert!(!s.all_labeled());
        assert_eq!(s.labels().unlabeled_count(), 4);
    }
}
