//! Well-formedness of a lattice for a desired labeling (§4.3).
//!
//! Because Cable only labels the traces of a concept *en masse*, a bad
//! lattice can make a labeling unreachable. A concept `c` is well-formed
//! for a labeling iff
//!
//! 1. every trace in `c` has the same label, or
//! 2. every child of `c` is well-formed, and every trace of `c` that is
//!    in no child has the same label.
//!
//! The lattice is well-formed iff every concept is. When it is not, the
//! §4.3 remedies apply: change the reference FA (Focus) or label the
//! offending concepts `mixed` and handle their traces separately.

use crate::session::CableSession;
use cable_fca::ConceptLattice;
use cable_util::BitSet;

/// Tests whether a lattice is well-formed for the labeling `label_of`
/// (a function from object/class index to an arbitrary label value).
pub fn is_well_formed<L, F>(lattice: &ConceptLattice, label_of: F) -> bool
where
    L: PartialEq,
    F: Fn(usize) -> L,
{
    ill_formed_concepts(lattice, label_of).is_empty()
}

/// The set of concepts that are *not* well-formed for the labeling, as a
/// bit set over concept indices. Empty iff the lattice is well-formed.
pub fn ill_formed_concepts<L, F>(lattice: &ConceptLattice, label_of: F) -> BitSet
where
    L: PartialEq,
    F: Fn(usize) -> L,
{
    let n = lattice.len();
    let mut well = vec![false; n];
    // Process bottom-up: ids are sorted by decreasing extent size, so
    // reverse id order is a valid children-first order.
    for id in lattice.ids().collect::<Vec<_>>().into_iter().rev() {
        let concept = lattice.concept(id);
        // Case 1: uniform labels over the whole extent.
        if uniform(concept.extent.iter(), &label_of) {
            well[id.index()] = true;
            continue;
        }
        // Case 2: all children well-formed and the residue is uniform.
        let children = lattice.children(id);
        if children.iter().all(|c| well[c.index()]) {
            let mut residue = concept.extent.clone();
            for c in children {
                residue.difference_with(&lattice.concept(*c).extent);
            }
            if uniform(residue.iter(), &label_of) {
                well[id.index()] = true;
            }
        }
    }
    (0..n).filter(|&i| !well[i]).collect()
}

fn uniform<L, F, I>(objects: I, label_of: &F) -> bool
where
    L: PartialEq,
    F: Fn(usize) -> L,
    I: IntoIterator<Item = usize>,
{
    let mut first: Option<L> = None;
    for o in objects {
        let l = label_of(o);
        match &first {
            None => first = Some(l),
            Some(f) => {
                if *f != l {
                    return false;
                }
            }
        }
    }
    true
}

impl CableSession {
    /// Tests whether this session's lattice is well-formed for the given
    /// reference labeling over *traces* (applied to class
    /// representatives).
    pub fn is_well_formed_for<L, F>(&self, label_of_trace: F) -> bool
    where
        L: PartialEq,
        F: Fn(&cable_trace::Trace) -> L,
    {
        is_well_formed(self.lattice(), |class| {
            label_of_trace(self.traces().trace(self.classes()[class].representative))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cable_fca::Context;

    fn lattice_of(rows: &[&[usize]], m: usize) -> ConceptLattice {
        let mut ctx = Context::new(rows.len(), m);
        for (o, row) in rows.iter().enumerate() {
            for &a in *row {
                ctx.add(o, a);
            }
        }
        ConceptLattice::build(&ctx)
    }

    #[test]
    fn uniform_labeling_is_always_well_formed() {
        let l = lattice_of(&[&[0], &[1], &[0, 1]], 2);
        assert!(is_well_formed(&l, |_| "same"));
    }

    #[test]
    fn separable_labeling_is_well_formed() {
        // Objects 0,1 share attribute 0; object 2 has attribute 1.
        // Labeling {0,1}=good, {2}=bad is achievable: label the
        // attribute-0 concept, then the rest.
        let l = lattice_of(&[&[0], &[0], &[1]], 2);
        assert!(is_well_formed(&l, |o| if o < 2 { "good" } else { "bad" }));
    }

    #[test]
    fn parity_example_is_not_well_formed() {
        // §4.3's example: all traces exercise the sole transition, so all
        // end up in one concept; an even/odd labeling is unreachable.
        // Model: 4 objects all with the same single attribute.
        let l = lattice_of(&[&[0], &[0], &[0], &[0]], 1);
        assert!(!is_well_formed(&l, |o| o % 2 == 0));
        let ill = ill_formed_concepts(&l, |o| o % 2 == 0);
        assert!(!ill.is_empty());
    }

    #[test]
    fn residue_rule_applies() {
        // Objects: 0 {a}, 1 {a,b}, 2 {a,c}. Concept {a} = {0,1,2} with
        // children {a,b}={1} and {a,c}={2}; residue {0}.
        // Labeling 1=x, 2=y, 0=z is well-formed via case 2.
        let l = lattice_of(&[&[0], &[0, 1], &[0, 2]], 3);
        let labels = ["z", "x", "y"];
        assert!(is_well_formed(&l, |o| labels[o]));
    }

    #[test]
    fn mixed_residue_is_ill_formed() {
        // Objects 0 and 1 have identical attributes but different labels,
        // and 2 is separable.
        let l = lattice_of(&[&[0], &[0], &[1]], 2);
        let labels = ["x", "y", "z"];
        let ill = ill_formed_concepts(&l, |o| labels[o]);
        assert!(!ill.is_empty());
    }

    #[test]
    fn session_level_check() {
        use cable_fa::templates;
        use cable_trace::{Trace, TraceSet, Vocab};
        let mut v = Vocab::new();
        let mut traces = TraceSet::new();
        traces.push(Trace::parse("a(X) c(X)", &mut v).unwrap());
        traces.push(Trace::parse("a(X)", &mut v).unwrap());
        let all: Vec<Trace> = traces.iter().map(|(_, t)| t.clone()).collect();
        let fa = templates::unordered_of_trace_events(&all);
        let s = CableSession::new(traces, fa);
        // Label by whether the trace contains `c`: separable.
        let c = v.find_op("c").unwrap();
        assert!(s.is_well_formed_for(|t| t.iter().any(|e| e.op == c)));
    }
}
