//! The session-manager layer behind the labeling service: a bounded
//! in-memory cache of open [`StoredSession`]s over per-tenant store
//! directories, with LRU eviction back to disk.
//!
//! # Layout and isolation
//!
//! Stores live at `<root>/<tenant>/<session>`, which is exactly the
//! shape [`crate::persist`]'s `session_scope` labels metrics and wide
//! events with — every request a tenant makes is attributed to
//! `tenant=<tenant>, session=<session>` in `/metrics` for free. Tenant
//! and session names are validated against `[A-Za-z0-9_-]{1,64}` before
//! they ever touch a path, so a request cannot traverse outside its
//! tenant directory. Isolation is *directory-level*, not cryptographic:
//! any client of the service can name any tenant (see DESIGN.md §14 for
//! the posture and its boundary).
//!
//! # Eviction = drop
//!
//! Every mutation journals before it applies (`cable-store`'s
//! write-ahead discipline), so an open session's disk state is always
//! complete: evicting is literally dropping the in-memory
//! [`StoredSession`], and reopening replays the journal back to the
//! identical state. The eviction test suite pins this down by digest
//! ([`crate::digest::session_state_record`]), including sessions evicted
//! between ingest batches.
//!
//! Eviction only takes slots it can `try_lock` — a session in the middle
//! of a request holds its slot lock, so in-flight work is never torn
//! down, and the manager never blocks on a busy session while holding
//! another lock (no lock-order deadlocks by construction).

use crate::persist::StoredSession;
use crate::CableSession;
use cable_obs::{CounterHandle, HistogramHandle, WideEvent};
use cable_store::StoreError;
use cable_trace::Vocab;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Sessions created through the manager ([`SessionManager::create`]).
static CREATES: CounterHandle = CounterHandle::new("core.manager.creates");
/// Closed sessions reopened from disk on access (cache misses).
static REOPENS: CounterHandle = CounterHandle::new("core.manager.reopens");
/// Accesses that found the session already open (cache hits).
static HITS: CounterHandle = CounterHandle::new("core.manager.cache_hits");
/// Open sessions evicted back to disk by the LRU sweep.
static EVICTIONS: CounterHandle = CounterHandle::new("core.manager.evictions");
/// Time spent waiting for the process-wide slot-map mutex, µs. This is
/// the contention signal ROADMAP item 1 (sharded slot map) hinges on:
/// the `trace-report` lock-wait stage and the `/metrics` family both
/// read from here.
static WAIT_SLOTS: HistogramHandle = HistogramHandle::new("wait.slots.us");
/// Time spent waiting for a single session's state mutex, µs — high
/// values mean requests are serialising on one hot session, which
/// sharding the slot map would *not* fix.
static WAIT_STATE: HistogramHandle = HistogramHandle::new("wait.state.us");

/// Ceiling on tenant and session name length.
pub const MAX_NAME_LEN: usize = 64;

/// What the caller did wrong (or what the disk did wrong underneath).
#[derive(Debug)]
pub enum ManagerError {
    /// A tenant or session name failed validation.
    BadName {
        /// Which name (`"tenant"` or `"session"`).
        field: &'static str,
        /// The offending value.
        name: String,
    },
    /// [`SessionManager::create`] hit an existing store.
    AlreadyExists(SessionKey),
    /// An access named a session with no store on disk.
    NotFound(SessionKey),
    /// The store layer failed (I/O, corruption, or a guard trip).
    Store(StoreError),
}

impl fmt::Display for ManagerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManagerError::BadName { field, name } => write!(
                f,
                "invalid {field} name {name:?}: use 1-{MAX_NAME_LEN} characters from [A-Za-z0-9_-]"
            ),
            ManagerError::AlreadyExists(key) => {
                write!(f, "session {key} already exists")
            }
            ManagerError::NotFound(key) => write!(f, "session {key} does not exist"),
            ManagerError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl Error for ManagerError {}

impl From<StoreError> for ManagerError {
    fn from(e: StoreError) -> Self {
        ManagerError::Store(e)
    }
}

/// A tenant-qualified session name — the cache key and the relative
/// store path (`<tenant>/<session>`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SessionKey {
    /// The tenant directory name.
    pub tenant: String,
    /// The session directory name.
    pub session: String,
}

impl SessionKey {
    /// Builds a validated key.
    ///
    /// # Errors
    ///
    /// [`ManagerError::BadName`] if either name is empty, longer than
    /// [`MAX_NAME_LEN`], or holds anything outside `[A-Za-z0-9_-]`.
    pub fn new(tenant: &str, session: &str) -> Result<SessionKey, ManagerError> {
        validate_name("tenant", tenant)?;
        validate_name("session", session)?;
        Ok(SessionKey {
            tenant: tenant.to_owned(),
            session: session.to_owned(),
        })
    }
}

impl fmt::Display for SessionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.tenant, self.session)
    }
}

fn validate_name(field: &'static str, name: &str) -> Result<(), ManagerError> {
    let ok = !name.is_empty()
        && name.len() <= MAX_NAME_LEN
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-');
    if ok {
        Ok(())
    } else {
        Err(ManagerError::BadName {
            field,
            name: name.to_owned(),
        })
    }
}

/// One session's cache slot. The slot mutex serializes all access to
/// the session — per-session operations are strictly ordered, which is
/// what makes a tenant's digest reproducible by sequential CLI replay.
struct Slot {
    key: SessionKey,
    /// Logical LRU clock value of the last access (manager-wide ticks,
    /// not wall time — deterministic under test).
    last_used: AtomicU64,
    state: Mutex<SlotState>,
}

enum SlotState {
    /// On disk only; the next access reopens it.
    Closed,
    /// Resident. Boxed: a `StoredSession` is large and slots outlive it.
    Open(Box<StoredSession>),
}

/// The bounded cache of open sessions (see module docs).
pub struct SessionManager {
    root: PathBuf,
    max_open: usize,
    clock: AtomicU64,
    open: AtomicUsize,
    slots: Mutex<HashMap<SessionKey, Arc<Slot>>>,
}

impl SessionManager {
    /// A manager rooted at `root` (created lazily) keeping at most
    /// `max_open` sessions resident; 0 is treated as 1.
    pub fn new(root: impl Into<PathBuf>, max_open: usize) -> SessionManager {
        SessionManager {
            root: root.into(),
            max_open: max_open.max(1),
            clock: AtomicU64::new(0),
            open: AtomicUsize::new(0),
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// The store root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The resident-session ceiling.
    pub fn max_open(&self) -> usize {
        self.max_open
    }

    /// Sessions currently resident.
    pub fn open_count(&self) -> usize {
        self.open.load(Ordering::Relaxed)
    }

    /// The store directory for a key.
    pub fn dir(&self, key: &SessionKey) -> PathBuf {
        self.root.join(&key.tenant).join(&key.session)
    }

    /// Whether a store for the key exists on disk.
    pub fn exists(&self, key: &SessionKey) -> bool {
        self.dir(key).is_dir()
    }

    /// Keys of the currently resident sessions, unordered.
    pub fn list_open(&self) -> Vec<SessionKey> {
        let slots = self.lock_slots();
        slots
            .values()
            .filter(|slot| {
                self.try_lock_state(slot)
                    .map(|state| matches!(*state, SlotState::Open(_)))
                    // A locked slot is mid-request, hence open.
                    .unwrap_or(true)
            })
            .map(|slot| slot.key.clone())
            .collect()
    }

    /// Creates a new stored session under the key and caches it open.
    ///
    /// # Errors
    ///
    /// [`ManagerError::AlreadyExists`] if the store directory exists,
    /// [`ManagerError::Store`] on I/O errors.
    pub fn create(
        &self,
        key: &SessionKey,
        session: CableSession,
        vocab: Vocab,
    ) -> Result<(), ManagerError> {
        let dir = self.dir(key);
        if dir.exists() {
            return Err(ManagerError::AlreadyExists(key.clone()));
        }
        if let Some(parent) = dir.parent() {
            std::fs::create_dir_all(parent).map_err(|e| ManagerError::Store(e.into()))?;
        }
        let stored = match session.save(vocab, &dir) {
            Ok(stored) => stored,
            Err(e) => {
                // A torn create must not wedge the name: the directory
                // did not exist before this call, so drop whatever the
                // failed save left behind and let a retry start clean.
                let _ = std::fs::remove_dir_all(&dir);
                return Err(e.into());
            }
        };
        let slot = self.slot(key);
        {
            let mut state = self.lock_state(&slot);
            // A concurrent create of the same key lost the Store::create
            // race above, so this slot can only be Closed here.
            if matches!(*state, SlotState::Closed) {
                *state = SlotState::Open(Box::new(stored));
                self.open.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.touch(&slot);
        CREATES.get().incr();
        self.evict_excess();
        Ok(())
    }

    /// Runs `f` over the key's session, reopening it from disk if it is
    /// not resident. The slot lock is held for the duration of `f`: a
    /// session's operations are strictly serialized, and eviction cannot
    /// touch a session mid-operation.
    ///
    /// # Errors
    ///
    /// [`ManagerError::NotFound`] for a key with no store on disk,
    /// [`ManagerError::Store`] if reopening fails, plus whatever `f`
    /// returns.
    pub fn with_session<T>(
        &self,
        key: &SessionKey,
        f: impl FnOnce(&mut StoredSession) -> Result<T, ManagerError>,
    ) -> Result<T, ManagerError> {
        let slot = self.slot(key);
        let result = {
            let mut state = self.lock_state(&slot);
            if matches!(*state, SlotState::Closed) {
                let dir = self.dir(key);
                if !dir.is_dir() {
                    return Err(ManagerError::NotFound(key.clone()));
                }
                let (stored, _report) = CableSession::open(&dir)?;
                *state = SlotState::Open(Box::new(stored));
                self.open.fetch_add(1, Ordering::Relaxed);
                REOPENS.get().incr();
            } else {
                HITS.get().incr();
            }
            let SlotState::Open(stored) = &mut *state else {
                unreachable!("slot was just opened");
            };
            f(stored)
        };
        self.touch(&slot);
        self.evict_excess();
        result
    }

    /// Evicts least-recently-used resident sessions until at most
    /// `max_open` remain. Busy slots (lock held by an in-flight
    /// operation) are skipped — they are by definition recently used.
    fn evict_excess(&self) {
        while self.open.load(Ordering::Relaxed) > self.max_open {
            let candidates: Vec<(u64, Arc<Slot>)> = {
                let slots = self.lock_slots();
                // Snapshot each slot's LRU tick *before* sorting: the
                // tick moves under concurrent touches, and a comparator
                // over a moving key is not a total order — std's sort
                // panics on that, here while the slots lock is held.
                let mut v: Vec<(u64, Arc<Slot>)> = slots
                    .values()
                    .map(|slot| (slot.last_used.load(Ordering::Relaxed), Arc::clone(slot)))
                    .collect();
                v.sort_by_key(|&(tick, _)| tick);
                v
            };
            let mut evicted = false;
            for (_, slot) in candidates {
                if self.open.load(Ordering::Relaxed) <= self.max_open {
                    return;
                }
                let Some(mut state) = self.try_lock_state(&slot) else {
                    continue;
                };
                if let SlotState::Open(stored) = &*state {
                    // A degraded store is pinned until it recovers: it
                    // must exit read-only through recovery's front door
                    // (republish + `store_recovered`), not evaporate
                    // through an eviction-and-reopen. This also covers
                    // the rare failed journal rollback, where the file
                    // still holds unacknowledged frames that a reopen
                    // would wrongly replay. The pin clears on the
                    // tenant's next write (auto-recovery) or the
                    // operator's `/recover`.
                    if stored.store().is_degraded() {
                        continue;
                    }
                    cable_obs::events::emit(
                        WideEvent::new("session_evict", slot.key.session.as_str())
                            .stage("evict")
                            .tenant(slot.key.tenant.as_str())
                            .field("generation", stored.store().generation()),
                    );
                    *state = SlotState::Closed;
                    self.open.fetch_sub(1, Ordering::Relaxed);
                    EVICTIONS.get().incr();
                    evicted = true;
                }
            }
            if !evicted {
                // Everything over the ceiling is busy; they will evict
                // themselves on their next quiet sweep.
                return;
            }
        }
    }

    /// Locks the slot map, shrugging off poison. Nothing under this
    /// lock mutates the map except `entry().or_insert_with`, so a panic
    /// mid-critical-section cannot leave the map torn — recovering the
    /// guard is always sound, and refusing would turn one contained
    /// panic into a permanent all-requests-500 outage.
    fn lock_slots(&self) -> std::sync::MutexGuard<'_, HashMap<SessionKey, Arc<Slot>>> {
        let wait_start = cable_obs::enabled().then(std::time::Instant::now);
        cable_obs::recorder::begin("wait.slots");
        let guard = match self.slots.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.slots.clear_poison();
                poisoned.into_inner()
            }
        };
        cable_obs::recorder::end("wait.slots");
        if let Some(start) = wait_start {
            WAIT_SLOTS.get().record(start.elapsed().as_micros() as u64);
        }
        guard
    }

    /// Locks a slot's state, recovering from poison by dropping the
    /// resident session. A panic inside an operation may have torn the
    /// in-memory `StoredSession`, but the disk is always complete
    /// (journal-before-apply), so `Closed` + reopen reconstructs the
    /// exact pre-recovery state. One panicked request costs one reopen;
    /// it never wedges the session.
    fn lock_state<'a>(&self, slot: &'a Slot) -> std::sync::MutexGuard<'a, SlotState> {
        let wait_start = cable_obs::enabled().then(std::time::Instant::now);
        cable_obs::recorder::begin("wait.state");
        let guard = match slot.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => self.recover_state(slot, poisoned.into_inner()),
        };
        cable_obs::recorder::end("wait.state");
        if let Some(start) = wait_start {
            WAIT_STATE.get().record(start.elapsed().as_micros() as u64);
        }
        guard
    }

    /// Non-blocking [`Self::lock_state`]: `None` means busy, poison is
    /// recovered the same way.
    fn try_lock_state<'a>(&self, slot: &'a Slot) -> Option<std::sync::MutexGuard<'a, SlotState>> {
        match slot.state.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::WouldBlock) => None,
            Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                Some(self.recover_state(slot, poisoned.into_inner()))
            }
        }
    }

    fn recover_state<'a>(
        &self,
        slot: &'a Slot,
        mut guard: std::sync::MutexGuard<'a, SlotState>,
    ) -> std::sync::MutexGuard<'a, SlotState> {
        if matches!(*guard, SlotState::Open(_)) {
            *guard = SlotState::Closed;
            self.open.fetch_sub(1, Ordering::Relaxed);
            EVICTIONS.get().incr();
        }
        slot.state.clear_poison();
        cable_obs::events::emit(
            WideEvent::new("session_poison_recovered", slot.key.session.as_str())
                .stage("recover")
                .tenant(slot.key.tenant.as_str()),
        );
        guard
    }

    fn slot(&self, key: &SessionKey) -> Arc<Slot> {
        let mut slots = self.lock_slots();
        Arc::clone(slots.entry(key.clone()).or_insert_with(|| {
            Arc::new(Slot {
                key: key.clone(),
                last_used: AtomicU64::new(0),
                state: Mutex::new(SlotState::Closed),
            })
        }))
    }

    fn touch(&self, slot: &Slot) {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        slot.last_used.store(tick, Ordering::Relaxed);
    }
}

impl fmt::Debug for SessionManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionManager")
            .field("root", &self.root)
            .field("max_open", &self.max_open)
            .field("open", &self.open_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cable_fa::templates;
    use cable_trace::{Trace, TraceSet};
    use std::path::PathBuf;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cable-core-manager-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_session() -> (CableSession, Vocab) {
        let mut vocab = Vocab::new();
        let mut traces = TraceSet::new();
        traces.push(Trace::parse("fopen(X) fclose(X)", &mut vocab).unwrap());
        let all: Vec<Trace> = traces.iter().map(|(_, t)| t.clone()).collect();
        let fa = templates::unordered_of_trace_events(&all);
        (CableSession::new(traces, fa), vocab)
    }

    #[test]
    fn names_are_validated_before_touching_paths() {
        assert!(SessionKey::new("t1", "s1").is_ok());
        assert!(SessionKey::new("t-1_A", "s-2_B").is_ok());
        for bad in ["", "a/b", "..", "a b", "a\nb", &"x".repeat(65)] {
            assert!(SessionKey::new(bad, "s").is_err(), "tenant {bad:?}");
            assert!(SessionKey::new("t", bad).is_err(), "session {bad:?}");
        }
    }

    #[test]
    fn create_open_evict_reopen_round_trip() {
        let root = tmp_root("roundtrip");
        let manager = SessionManager::new(&root, 1);
        let a = SessionKey::new("t1", "a").unwrap();
        let b = SessionKey::new("t1", "b").unwrap();
        let (session, vocab) = sample_session();
        manager.create(&a, session, vocab).unwrap();
        assert_eq!(manager.open_count(), 1);
        assert!(manager.exists(&a));
        assert!(root.join("t1").join("a").is_dir());

        // Creating a second session under a 1-session ceiling evicts the
        // first back to disk.
        let (session, vocab) = sample_session();
        manager.create(&b, session, vocab).unwrap();
        assert_eq!(manager.open_count(), 1);
        let open = manager.list_open();
        assert_eq!(open, vec![b.clone()]);

        // Accessing the evicted session reopens it transparently.
        let traces = manager
            .with_session(&a, |stored| Ok(stored.session().traces().len()))
            .unwrap();
        assert_eq!(traces, 1);
        assert_eq!(manager.open_count(), 1, "reopening a evicted b");

        // Double create is a conflict, not an overwrite.
        let (session, vocab) = sample_session();
        assert!(matches!(
            manager.create(&a, session, vocab),
            Err(ManagerError::AlreadyExists(_))
        ));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn panic_mid_operation_does_not_wedge_the_session() {
        let root = tmp_root("poison");
        let manager = SessionManager::new(&root, 4);
        let key = SessionKey::new("t1", "s").unwrap();
        let (session, vocab) = sample_session();
        manager.create(&key, session, vocab).unwrap();

        // A panic inside an operation poisons the slot mutex with the
        // session resident. The manager must absorb it: drop the torn
        // in-memory state and reopen from the (always-complete) journal
        // on the next access, instead of cascading poison panics into a
        // permanent 500 for this session.
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = manager.with_session(&key, |_| -> Result<(), ManagerError> {
                panic!("injected mid-operation panic");
            });
        }));
        assert!(unwound.is_err(), "the injected panic must unwind");

        let traces = manager
            .with_session(&key, |stored| Ok(stored.session().traces().len()))
            .expect("session recovers after a poisoned operation");
        assert_eq!(traces, 1);
        assert_eq!(manager.open_count(), 1);
        assert_eq!(manager.list_open(), vec![key]);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn missing_sessions_are_not_found() {
        let root = tmp_root("missing");
        let manager = SessionManager::new(&root, 4);
        let key = SessionKey::new("t1", "nope").unwrap();
        assert!(matches!(
            manager.with_session(&key, |_| Ok(())),
            Err(ManagerError::NotFound(_))
        ));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn tenants_do_not_share_session_names() {
        let root = tmp_root("tenants");
        let manager = SessionManager::new(&root, 4);
        let t1 = SessionKey::new("t1", "s").unwrap();
        let t2 = SessionKey::new("t2", "s").unwrap();
        let (session, vocab) = sample_session();
        manager.create(&t1, session, vocab).unwrap();
        assert!(!manager.exists(&t2), "t2/s is a different store");
        let (session, vocab) = sample_session();
        manager.create(&t2, session, vocab).unwrap();
        assert!(root.join("t1").join("s").is_dir());
        assert!(root.join("t2").join("s").is_dir());
        std::fs::remove_dir_all(&root).unwrap();
    }
}
