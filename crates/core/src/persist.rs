//! Saving and resuming sessions through `cable-store`.
//!
//! The paper's workflow is a long labeling conversation: the user
//! clusters a corpus once, then spends many sittings walking the
//! lattice and naming concepts. This module makes that conversation
//! durable. [`CableSession::save`] publishes the whole session —
//! vocabulary, automaton, traces, labels, context rows, lattice — as a
//! store snapshot; [`CableSession::open`] reads it back and replays the
//! write-ahead journal of decisions made since.
//!
//! The payoff is *incremental resume*: the snapshot carries the context
//! rows and lattice concepts verbatim, so opening a store rebuilds the
//! session with `Context::from_rows` and `ConceptLattice::from_concepts`
//! — no Godin pass over the corpus — and traces ingested afterwards go
//! through [`CableSession::push_traces`], which extends the persisted
//! lattice with `fca::godin::Inserter` instead of rebuilding it. The
//! `fca.godin.*` and `store.journal.*` counters make both savings
//! visible.
//!
//! [`StoredSession`] pairs the live session with its open store and
//! keeps the two in step under a write-ahead discipline: every mutation
//! is journaled (and fsynced) *before* it is applied in memory, so the
//! store never claims less than the session knows.

use crate::session::CableSession;
use cable_fa::Fa;
use cable_fca::{Concept, ConceptLattice, Context};
use cable_obs::{scoped, CounterHandle, Scope, WideEvent};
use cable_store::{JournalRecord, RecoveryReport, SnapshotData, Store, StoreError};
use cable_trace::{Trace, TraceId, TraceSet, Vocab};
use std::path::Path;
use std::time::Instant;

/// Sessions saved to a store.
static SAVES: CounterHandle = CounterHandle::new("core.session.saves");
/// Sessions resumed from a store.
static RESUMES: CounterHandle = CounterHandle::new("core.session.resumes");
/// Successful degraded-store recoveries through
/// [`StoredSession::recover`].
static RECOVERIES: CounterHandle = CounterHandle::new("core.session.recoveries");

/// Opens the attribution scope for a stored session: `session` is the
/// store directory's basename, `tenant` its parent directory's. Every
/// metric the session writes through this scope rolls up into the
/// global registry and exports as a labelled series on `/metrics`.
fn session_scope(dir: &Path) -> Scope {
    let name = |p: Option<&Path>| -> String {
        p.and_then(Path::file_name)
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "-".to_owned())
    };
    scoped().open(&[
        ("session", &name(Some(dir))),
        ("tenant", &name(dir.parent())),
    ])
}

impl CableSession {
    /// Captures the session as a snapshot at `generation`.
    ///
    /// `vocab` must be the vocabulary the session's traces and
    /// automaton are interned against.
    pub fn to_snapshot(&self, vocab: &Vocab, generation: u64) -> SnapshotData {
        let labels = (0..self.classes().len())
            .filter_map(|c| {
                self.labels()
                    .get(c)
                    .map(|l| (c as u32, self.labels().name(l).to_owned()))
            })
            .collect();
        let context = self.context();
        SnapshotData {
            generation,
            n_attributes: context.attribute_count(),
            vocab: vocab.clone(),
            fa_text: self.reference_fa().to_text(vocab),
            traces: self.traces().clone(),
            labels,
            rows: (0..context.object_count())
                .map(|c| context.row(c).clone())
                .collect(),
            concepts: self
                .lattice()
                .iter()
                .map(|(_, c)| (c.extent.clone(), c.intent.clone()))
                .collect(),
        }
    }

    /// Rebuilds a session from a snapshot without re-clustering: the
    /// persisted rows and concepts become the context and lattice
    /// directly (no Godin pass — `fca.godin.objects_inserted` stays
    /// flat across this call).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Format`] when the snapshot's parts are
    /// internally inconsistent — wrong counts, unparsable automaton,
    /// duplicate concept extents.
    pub fn from_snapshot(data: SnapshotData) -> Result<(CableSession, Vocab), StoreError> {
        let SnapshotData {
            generation: _,
            n_attributes,
            mut vocab,
            fa_text,
            traces,
            labels,
            rows,
            concepts,
        } = data;
        let fa = Fa::parse(&fa_text, &mut vocab)
            .map_err(|e| StoreError::format(format!("snapshot automaton: {e}")))?;
        if fa.transition_count() != n_attributes {
            return Err(StoreError::format(format!(
                "snapshot automaton has {} transitions, context expects {}",
                fa.transition_count(),
                n_attributes
            )));
        }
        if concepts.is_empty() {
            return Err(StoreError::format("snapshot holds no concepts"));
        }
        // `from_concepts` panics on duplicate extents; turn that shape
        // of damage into an error first.
        let mut extents: Vec<&cable_util::BitSet> = concepts.iter().map(|(e, _)| e).collect();
        extents.sort();
        if extents.windows(2).any(|w| w[0] == w[1]) {
            return Err(StoreError::format("snapshot concepts repeat an extent"));
        }
        let context = Context::from_rows(rows, n_attributes);
        let lattice = ConceptLattice::from_concepts(
            concepts
                .into_iter()
                .map(|(extent, intent)| Concept { extent, intent })
                .collect(),
        );
        let mut session =
            CableSession::from_parts(traces, fa, context, lattice).map_err(StoreError::Format)?;
        let n_classes = session.classes().len();
        for (class, name) in labels {
            let class = class as usize;
            if class >= n_classes {
                return Err(StoreError::format(format!(
                    "snapshot labels class {class} of {n_classes}"
                )));
            }
            session.set_class_label(class, &name);
        }
        Ok((session, vocab))
    }

    /// Saves the session as a new store at `dir` and returns it open.
    ///
    /// # Errors
    ///
    /// Fails if `dir` already holds a store, or on I/O errors.
    pub fn save(self, vocab: Vocab, dir: &Path) -> Result<StoredSession, StoreError> {
        let store = Store::create(dir, &self.to_snapshot(&vocab, 0))?;
        SAVES.get().incr();
        cable_obs::recorder::instant("core.session.save");
        let scope = session_scope(dir);
        scope.incr("core.session.saves_scoped");
        cable_obs::events::emit(
            WideEvent::new("session_save", scope.label("session").unwrap_or("-"))
                .stage("save")
                .tenant(scope.label("tenant").unwrap_or("-"))
                .field("traces", self.traces().len() as u64),
        );
        Ok(StoredSession {
            session: self,
            vocab,
            store,
            scope,
        })
    }

    /// Opens a saved session: decodes the snapshot, rebuilds the
    /// session from its persisted rows and lattice, and replays the
    /// journal's surviving records in append order.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, a damaged snapshot, or journal records that
    /// contradict the snapshot (unparsable trace text, out-of-range
    /// label classes).
    pub fn open(dir: &Path) -> Result<(StoredSession, RecoveryReport), StoreError> {
        let started = Instant::now();
        let (store, data, records, report) = Store::open(dir)?;
        let (session, vocab) = CableSession::from_snapshot(data)?;
        let mut stored = StoredSession {
            session,
            vocab,
            store,
            scope: session_scope(dir),
        };
        stored.apply(&records)?;
        RESUMES.get().incr();
        cable_obs::recorder::instant("core.session.resume");
        stored.scope.incr("core.session.resumes_scoped");
        stored
            .scope
            .record_duration("core.session.resume_ns", started.elapsed());
        cable_obs::events::emit(
            stored
                .event("session_resume", "resume")
                .duration(started.elapsed())
                .field("replayed", report.replayed as u64),
        );
        Ok((stored, report))
    }
}

/// Outcome of a continue-on-error ingestion
/// ([`StoredSession::ingest_text_keep_going`]).
#[derive(Debug)]
pub struct IngestReport {
    /// Per ingested trace in order: its id and whether it founded a new
    /// identical class.
    pub results: Vec<(cable_trace::TraceId, bool)>,
    /// Lines that failed to parse: 1-based line number and message.
    pub errors: Vec<(usize, String)>,
}

impl IngestReport {
    /// Whether every line made it in.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

/// A live session paired with its open store.
///
/// Mutations go through [`StoredSession::ingest_text`] and
/// [`StoredSession::label_traces`], which journal first and apply
/// second — the write-ahead ordering the crash-recovery drill relies
/// on.
#[derive(Debug)]
pub struct StoredSession {
    session: CableSession,
    vocab: Vocab,
    store: Store,
    scope: Scope,
}

impl StoredSession {
    /// The live session.
    pub fn session(&self) -> &CableSession {
        &self.session
    }

    /// The session's attribution scope (see [`cable_obs::scope`]).
    pub fn scope(&self) -> &Scope {
        &self.scope
    }

    /// Starts a wide event carrying this session's scope identity.
    fn event(&self, kind: &'static str, stage: &'static str) -> WideEvent {
        WideEvent::new(kind, self.scope.label("session").unwrap_or("-"))
            .stage(stage)
            .tenant(self.scope.label("tenant").unwrap_or("-"))
    }

    /// The vocabulary the session is interned against.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// The open store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The store's health as `/healthz` reports it: snapshot generation
    /// plus the journal lag in bytes and records. Publish it with
    /// [`cable_obs::http::set_health`] whenever the store changes.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors sizing the journal file.
    pub fn health(&self) -> Result<cable_obs::HealthInfo, StoreError> {
        Ok(cable_obs::HealthInfo {
            generation: self.store.generation(),
            journal_lag_bytes: self.store.journal_lag_bytes()?,
            journal_lag_records: self.store.journal_lag_records(),
            degraded: self.store.degraded_cause().map(str::to_owned),
        })
    }

    /// Attempts to restore write service after a fail-stop degradation
    /// (see DESIGN.md §17): the in-memory session — which holds exactly
    /// the acknowledged operations — is republished as the next
    /// generation through fresh file handles, and the store turns
    /// writable again. Returns whether a recovery was actually
    /// performed (`false` when the store was already writable).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors during the republish; the store then stays
    /// read-only and the call can be retried.
    pub fn recover(&mut self) -> Result<bool, StoreError> {
        let Some(cause) = self.store.degraded_cause().map(str::to_owned) else {
            return Ok(false);
        };
        let started = Instant::now();
        let data = self
            .session
            .to_snapshot(&self.vocab, self.store.generation() + 1);
        let result = self.store.recover(&data);
        if result.is_ok() {
            RECOVERIES.get().incr();
            self.scope.incr("core.session.recoveries_scoped");
        }
        cable_obs::events::emit(
            self.event("session_recover", "recover")
                .outcome(if result.is_ok() { "ok" } else { "error" })
                .duration(started.elapsed())
                .field("cause", cause)
                .field("generation", self.store.generation()),
        );
        result.map(|_| true)
    }

    /// Replays journal records onto the session, batching runs of
    /// consecutive traces into single [`CableSession::push_traces`]
    /// calls so the lattice extends once per run.
    fn apply(&mut self, records: &[JournalRecord]) -> Result<(), StoreError> {
        let mut pending: Vec<Trace> = Vec::new();
        for record in records {
            cable_guard::checkpoint("core.persist.replay")?;
            match record {
                JournalRecord::Trace(line) => {
                    let trace = Trace::parse(line, &mut self.vocab)
                        .map_err(|e| StoreError::format(format!("journal trace: {e}")))?;
                    pending.push(trace);
                }
                JournalRecord::Label { class, name } => {
                    if !pending.is_empty() {
                        self.session.push_traces(std::mem::take(&mut pending));
                    }
                    let class = *class as usize;
                    if class >= self.session.classes().len() {
                        return Err(StoreError::format(format!(
                            "journal labels class {class} of {}",
                            self.session.classes().len()
                        )));
                    }
                    self.session.set_class_label(class, name);
                }
            }
        }
        if !pending.is_empty() {
            self.session.push_traces(std::mem::take(&mut pending));
        }
        Ok(())
    }

    /// Parses `text` as a trace set and ingests every trace: journals
    /// each one (as its canonical display line), fsyncs, then absorbs
    /// the batch through the incremental insert path. With `sync_each`
    /// every trace is fsynced and applied individually, so a crash
    /// loses at most the trace being written.
    ///
    /// Returns, per trace, its id and whether it founded a new
    /// identical class.
    ///
    /// # Errors
    ///
    /// Fails on a parse error (with the 1-based line number) or I/O
    /// errors. On an I/O failure partway through `sync_each` ingestion,
    /// the journal and session stay in step: every record journaled so
    /// far has been applied.
    pub fn ingest_text(
        &mut self,
        text: &str,
        sync_each: bool,
    ) -> Result<Vec<(TraceId, bool)>, StoreError> {
        let started = Instant::now();
        let before = self.scope.snapshot().metrics;
        let result = self.ingest_text_inner(text, sync_each);
        let ingested = result.as_ref().map(Vec::len).unwrap_or(0);
        self.ingest_event(started, &before, ingested, 0, result.is_ok());
        result
    }

    fn ingest_text_inner(
        &mut self,
        text: &str,
        sync_each: bool,
    ) -> Result<Vec<(TraceId, bool)>, StoreError> {
        cable_obs::recorder::begin("parse.traces");
        let batch = TraceSet::parse(text, &mut self.vocab).map_err(|e| {
            cable_obs::recorder::end("parse.traces");
            StoreError::format(e.to_string())
        })?;
        cable_obs::recorder::end("parse.traces");
        let traces: Vec<Trace> = batch.iter().map(|(_, t)| t.clone()).collect();
        let records: Vec<JournalRecord> = traces
            .iter()
            .map(|t| JournalRecord::Trace(t.display(&self.vocab).to_string()))
            .collect();
        // Journal the whole batch before applying any of it: a mid-batch
        // failure (guard trip or degraded disk) must leave the in-memory
        // session exactly at the acknowledged state — recovery
        // republishes memory as truth, and the client will retry the
        // entire batch it was never acked. `append_all` rolls the
        // journal file back too, so the failed batch cannot resurrect
        // through a later reopen either.
        cable_guard::checkpoint("core.persist.ingest")?;
        self.store.append_all(&records, sync_each)?;
        Ok(self.session.push_traces(traces))
    }

    /// [`StoredSession::ingest_text`] in continue-on-error mode: each
    /// line is parsed independently, malformed lines are collected (with
    /// their 1-based line numbers) instead of aborting the batch, and
    /// every well-formed trace is journaled and ingested exactly as the
    /// strict path would.
    ///
    /// # Errors
    ///
    /// Parse failures are *not* errors here — they come back inside the
    /// [`IngestReport`]. Only I/O failures (and guard trips) abort.
    pub fn ingest_text_keep_going(
        &mut self,
        text: &str,
        sync_each: bool,
    ) -> Result<IngestReport, StoreError> {
        let started = Instant::now();
        let before = self.scope.snapshot().metrics;
        let result = self.ingest_keep_going_inner(text, sync_each);
        let (ingested, parse_errors) = result
            .as_ref()
            .map(|r| (r.results.len(), r.errors.len()))
            .unwrap_or((0, 0));
        self.ingest_event(started, &before, ingested, parse_errors, result.is_ok());
        result
    }

    fn ingest_keep_going_inner(
        &mut self,
        text: &str,
        sync_each: bool,
    ) -> Result<IngestReport, StoreError> {
        let mut traces: Vec<Trace> = Vec::new();
        let mut errors: Vec<(usize, String)> = Vec::new();
        cable_obs::recorder::begin("parse.traces");
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with(';') {
                continue;
            }
            match Trace::parse(line, &mut self.vocab) {
                Ok(trace) => traces.push(trace),
                Err(e) => errors.push((lineno + 1, e.to_string())),
            }
        }
        cable_obs::recorder::end("parse.traces");
        let records: Vec<JournalRecord> = traces
            .iter()
            .map(|t| JournalRecord::Trace(t.display(&self.vocab).to_string()))
            .collect();
        // Same batch-atomicity discipline as the strict path: journal
        // everything, then apply everything, so a failure applies
        // nothing.
        cable_guard::checkpoint("core.persist.ingest")?;
        self.store.append_all(&records, sync_each)?;
        let results = self.session.push_traces(traces);
        Ok(IngestReport { results, errors })
    }

    /// Scope accounting plus the `ingest_batch` wide event shared by
    /// both ingestion paths. The event carries this scope's counter
    /// deltas over the batch, so one record tells the whole story.
    fn ingest_event(
        &self,
        started: Instant,
        before: &cable_obs::Snapshot,
        ingested: usize,
        parse_errors: usize,
        ok: bool,
    ) {
        self.scope
            .add("core.session.traces_ingested", ingested as u64);
        self.scope
            .record_duration("core.session.ingest_ns", started.elapsed());
        let delta = self.scope.snapshot().metrics.delta_since(before);
        cable_obs::events::emit(
            self.event("ingest_batch", "ingest")
                .outcome(if ok { "ok" } else { "error" })
                .duration(started.elapsed())
                .field("traces", ingested as u64)
                .field("parse_errors", parse_errors as u64)
                .deltas(&delta),
        );
    }

    /// Labels the selected traces of a concept, journaling each class's
    /// decision before applying it. Returns the number of classes
    /// affected.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors; the journal is synced before the session
    /// changes.
    pub fn label_traces(
        &mut self,
        concept: cable_fca::ConceptId,
        selector: &crate::session::TraceSelector,
        label: &str,
    ) -> Result<usize, StoreError> {
        let started = Instant::now();
        let selected = self.session.select(concept, selector);
        let records: Vec<JournalRecord> = selected
            .iter()
            .map(|&c| JournalRecord::Label {
                class: c as u32,
                name: label.to_owned(),
            })
            .collect();
        let appended = self.store.append_all(&records, false);
        if appended.is_ok() {
            for &c in &selected {
                self.session.set_class_label(c, label);
            }
        }
        self.scope.incr("core.session.label_ops");
        self.scope
            .add("core.session.classes_labeled", selected.len() as u64);
        cable_obs::events::emit(
            self.event("label_op", "label")
                .outcome(if appended.is_ok() { "ok" } else { "error" })
                .duration(started.elapsed())
                .field("classes", selected.len() as u64)
                .field("label", label),
        );
        appended?;
        Ok(selected.len())
    }

    /// Folds the journal into a fresh snapshot of the current session
    /// state and resets the journal.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors; crash-safe at every step (see
    /// `cable-store`'s module docs).
    pub fn compact(&mut self) -> Result<(), StoreError> {
        let started = Instant::now();
        let data = self
            .session
            .to_snapshot(&self.vocab, self.store.generation() + 1);
        let result = self.store.compact(&data);
        self.scope.incr("core.session.compactions");
        cable_obs::events::emit(
            self.event("compact", "compact")
                .outcome(if result.is_ok() { "ok" } else { "error" })
                .duration(started.elapsed())
                .field("generation", self.store.generation()),
        );
        result
    }

    /// Tears the pairing down, returning the live session and its
    /// vocabulary. The store's files remain on disk.
    pub fn into_session(self) -> (CableSession, Vocab) {
        (self.session, self.vocab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::TraceSelector;
    use std::path::PathBuf;

    const FA: &str = "\
start s0
accept s0
s0 -> s1 : fopen(X)
s1 -> s0 : fclose(X)
s1 -> s1 : fread(X)
s1 -> s1 : fwrite(X)
s0 -> s2 : popen(X)
s2 -> s0 : pclose(X)
";

    const CORPUS: &str = "\
fopen(X) fread(X) fclose(X)
fopen(X) fread(X) fclose(X)
fopen(X) fwrite(X) fclose(X)
popen(Y) fread(Y) pclose(Y)
fopen(X) fread(X)
";

    fn build(corpus: &str) -> (CableSession, Vocab) {
        let mut vocab = Vocab::new();
        let fa = Fa::parse(FA, &mut vocab).unwrap();
        let traces = TraceSet::parse(corpus, &mut vocab).unwrap();
        (CableSession::new(traces, fa), vocab)
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cable-core-persist-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn assert_sessions_equal(a: &CableSession, b: &CableSession) {
        assert_eq!(a.traces().len(), b.traces().len());
        assert_eq!(a.classes().len(), b.classes().len());
        assert_eq!(a.context().pair_count(), b.context().pair_count());
        assert_eq!(a.lattice().len(), b.lattice().len());
        for (_, c) in a.lattice().iter() {
            let other = b
                .lattice()
                .find_by_extent(&c.extent)
                .expect("extent present in both lattices");
            assert_eq!(b.lattice().concept(other).intent, c.intent);
        }
        for c in 0..a.classes().len() {
            let name_a = a.labels().get(c).map(|l| a.labels().name(l));
            let name_b = b.labels().get(c).map(|l| b.labels().name(l));
            assert_eq!(name_a, name_b, "label of class {c}");
        }
    }

    #[test]
    fn snapshot_round_trip_preserves_the_session() {
        let (mut session, vocab) = build(CORPUS);
        let top = session.lattice().top();
        session.label_traces(top, &TraceSelector::All, "seen");
        let data = session.to_snapshot(&vocab, 0);
        let (rebuilt, vocab2) = CableSession::from_snapshot(data).unwrap();
        assert_sessions_equal(&session, &rebuilt);
        assert_eq!(vocab.op_count(), vocab2.op_count());
        assert_eq!(vocab.atom_count(), vocab2.atom_count());
    }

    #[test]
    fn save_open_round_trips_without_a_godin_pass() {
        let dir = tmp_dir("roundtrip");
        let (session, vocab) = build(CORPUS);
        let stored = session.save(vocab, &dir).unwrap();
        let (original, _) = stored.into_session();

        let before = cable_obs::registry().snapshot();
        let (stored, report) = CableSession::open(&dir).unwrap();
        let delta = cable_obs::registry().snapshot().delta_since(&before);

        assert_eq!(report.replayed, 0);
        assert!(!report.stale_journal);
        assert_sessions_equal(&original, stored.session());
        // Resume used the persisted rows and concepts: no Godin work.
        assert_eq!(delta.counter("fca.godin.objects_inserted").unwrap_or(0), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ingest_journals_then_extends_incrementally() {
        let dir = tmp_dir("ingest");
        let (session, vocab) = build(CORPUS);
        let mut stored = session.save(vocab, &dir).unwrap();

        let before = cable_obs::registry().snapshot();
        let fresh = "popen(Y) fwrite(Y) pclose(Y)\nfopen(X) fread(X) fclose(X)\n";
        let results = stored.ingest_text(fresh, false).unwrap();
        let delta = cable_obs::registry().snapshot().delta_since(&before);

        assert_eq!(results.len(), 2);
        assert!(results[0].1, "new shape founds a class");
        assert!(!results[1].1, "duplicate joins its class");
        // The insert went through live Inserter buckets, not rebuilds.
        assert_eq!(delta.counter("fca.godin.bucket_rebuilds").unwrap_or(0), 0);
        assert!(delta.counter("fca.godin.objects_inserted").unwrap_or(0) >= 1);

        // The journaled state survives a reopen and equals a session
        // built from the whole corpus at once.
        drop(stored);
        let (reopened, report) = CableSession::open(&dir).unwrap();
        assert_eq!(report.replayed, 2);
        let (full, _) = build(&format!("{CORPUS}{fresh}"));
        assert_sessions_equal(&full, reopened.session());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn labels_journal_and_replay() {
        let dir = tmp_dir("labels");
        let (session, vocab) = build(CORPUS);
        let mut stored = session.save(vocab, &dir).unwrap();
        let top = stored.session().lattice().top();
        let n = stored
            .label_traces(top, &TraceSelector::All, "checked")
            .unwrap();
        assert_eq!(n, stored.session().classes().len());
        // Interleave: a trace after the labels.
        stored.ingest_text("fopen(Y) fclose(Y)\n", true).unwrap();
        let (live, _) = stored.into_session();

        let (reopened, report) = CableSession::open(&dir).unwrap();
        assert_eq!(report.replayed, n + 1);
        assert_sessions_equal(&live, reopened.session());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_folds_the_journal_and_reopens_clean() {
        let dir = tmp_dir("compact");
        let (session, vocab) = build(CORPUS);
        let mut stored = session.save(vocab, &dir).unwrap();
        stored.ingest_text("popen(Z) pclose(Z)\n", false).unwrap();
        let top = stored.session().lattice().top();
        stored
            .label_traces(top, &TraceSelector::Unlabeled, "ok")
            .unwrap();
        let journal_before = stored.store().journal_bytes().unwrap();
        stored.compact().unwrap();
        assert!(stored.store().journal_bytes().unwrap() < journal_before);
        assert_eq!(stored.store().generation(), 1);
        let (live, _) = stored.into_session();

        let (reopened, report) = CableSession::open(&dir).unwrap();
        assert_eq!(report.replayed, 0, "compaction folded the journal in");
        assert_sessions_equal(&live, reopened.session());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn health_reports_generation_and_journal_lag() {
        let dir = tmp_dir("health");
        let (session, vocab) = build(CORPUS);
        let mut stored = session.save(vocab, &dir).unwrap();
        let h = stored.health().unwrap();
        assert_eq!(h.generation, 0);
        assert_eq!(h.journal_lag_records, 0);
        assert_eq!(h.journal_lag_bytes, 0);

        stored.ingest_text("popen(Z) pclose(Z)\n", false).unwrap();
        let h = stored.health().unwrap();
        assert_eq!(h.journal_lag_records, 1);
        assert!(h.journal_lag_bytes > 0);

        stored.compact().unwrap();
        let h = stored.health().unwrap();
        assert_eq!(h.generation, 1);
        assert_eq!(h.journal_lag_records, 0);
        assert_eq!(h.journal_lag_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn keep_going_ingest_skips_bad_lines_and_reports_them() {
        let dir = tmp_dir("keepgoing");
        let (session, vocab) = build(CORPUS);
        let mut stored = session.save(vocab, &dir).unwrap();
        let traces_before = stored.session().traces().len();

        let mixed = "\
popen(Y) fwrite(Y) pclose(Y)
this is ((( not a trace
fopen(X) fread(X) fclose(X)

bad_line_two(((
";
        let report = stored.ingest_text_keep_going(mixed, false).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.results.len(), 2, "both good lines ingested");
        assert_eq!(report.errors.len(), 2);
        assert_eq!(report.errors[0].0, 2, "1-based line number");
        assert_eq!(report.errors[1].0, 5);
        assert_eq!(stored.session().traces().len(), traces_before + 2);

        // The good traces are durable: a reopen replays exactly them.
        drop(stored);
        let (reopened, report) = CableSession::open(&dir).unwrap();
        assert_eq!(report.replayed, 2);
        assert_eq!(reopened.session().traces().len(), traces_before + 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_parts_error_instead_of_panicking() {
        let (session, vocab) = build(CORPUS);
        let good = session.to_snapshot(&vocab, 0);

        let mut bad = good.clone();
        bad.fa_text = "fa broken {".to_owned();
        assert!(CableSession::from_snapshot(bad).is_err());

        let mut bad = good.clone();
        bad.concepts.clear();
        assert!(CableSession::from_snapshot(bad).is_err());

        let mut bad = good.clone();
        let first = bad.concepts[0].clone();
        bad.concepts.push(first);
        assert!(CableSession::from_snapshot(bad).is_err());

        let mut bad = good.clone();
        bad.labels.push((u32::MAX, "out of range".to_owned()));
        assert!(CableSession::from_snapshot(bad).is_err());

        let mut bad = good;
        bad.rows.pop();
        assert!(CableSession::from_snapshot(bad).is_err());
    }
}
