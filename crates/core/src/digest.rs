//! Deterministic session-state digests: the currency every
//! determinism gate trades in.
//!
//! A [`session_state_record`] summarises a session as counts plus FNV-1a
//! digests of its corpus, labels, and lattice — timing-free by
//! construction, so `reproduce diff` can compare a crash-recovered run
//! against an uninterrupted one, a 1-worker run against an 8-worker run,
//! or (the service drill) a store grown through concurrent HTTP requests
//! against the same operations replayed sequentially through the CLI.
//! The CLI (`cable session resume --json-out`) and the service
//! (`GET /api/sessions/:id/digest`) both emit exactly this record.

use crate::persist::StoredSession;
use cable_obs::json::Value;

/// FNV-1a 64 over a byte stream. Not cryptographic — the digests detect
/// divergence between runs of our own code, not adversaries.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

impl Fnv {
    /// The FNV-1a 64 offset basis.
    pub fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// The digest as 16 lowercase hex digits.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// The deterministic `session_state` JSONL record: counts plus digests
/// of the corpus (canonical trace display lines, in trace order), the
/// labels (per-class label names, in class order), and the lattice
/// (extent/intent element runs per concept, in concept order).
pub fn session_state_record(stored: &StoredSession) -> Value {
    let session = stored.session();
    let vocab = stored.vocab();
    let mut corpus = Fnv::new();
    for (_, trace) in session.traces().iter() {
        corpus.update(trace.display(vocab).to_string().as_bytes());
        corpus.update(b"\n");
    }
    let mut labels = Fnv::new();
    let mut labeled = 0u64;
    for c in 0..session.classes().len() {
        if let Some(l) = session.labels().get(c) {
            labels.update(session.labels().name(l).as_bytes());
            labeled += 1;
        }
        labels.update(b"\n");
    }
    let mut lattice = Fnv::new();
    for (_, concept) in session.lattice().iter() {
        for v in concept.extent.iter() {
            lattice.update(&(v as u64).to_le_bytes());
        }
        lattice.update(b"/");
        for v in concept.intent.iter() {
            lattice.update(&(v as u64).to_le_bytes());
        }
        lattice.update(b";");
    }
    Value::object([
        ("record", Value::from("session_state")),
        ("traces", Value::from(session.traces().len() as u64)),
        ("classes", Value::from(session.classes().len() as u64)),
        ("concepts", Value::from(session.lattice().len() as u64)),
        ("labeled", Value::from(labeled)),
        ("generation", Value::from(stored.store().generation())),
        ("corpus_digest", Value::from(corpus.hex())),
        ("labels_digest", Value::from(labels.hex())),
        ("lattice_digest", Value::from(lattice.hex())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::TraceSelector;
    use crate::CableSession;
    use cable_fa::templates;
    use cable_trace::{Trace, TraceSet, Vocab};
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cable-core-digest-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_session() -> (CableSession, Vocab) {
        let mut vocab = Vocab::new();
        let mut traces = TraceSet::new();
        traces.push(Trace::parse("fopen(X) fclose(X)", &mut vocab).unwrap());
        traces.push(Trace::parse("fopen(X)", &mut vocab).unwrap());
        let all: Vec<Trace> = traces.iter().map(|(_, t)| t.clone()).collect();
        let fa = templates::unordered_of_trace_events(&all);
        (CableSession::new(traces, fa), vocab)
    }

    #[test]
    fn fnv_is_stable_and_order_sensitive() {
        let mut a = Fnv::new();
        a.update(b"hello");
        // Known FNV-1a 64 vector.
        assert_eq!(a.hex(), "a430d84680aabd0b");
        let mut b = Fnv::new();
        b.update(b"olleh");
        assert_ne!(a.hex(), b.hex());
    }

    #[test]
    fn record_changes_with_labels_and_not_with_time() {
        let dir = tmp_dir("record");
        let (session, vocab) = sample_session();
        let mut stored = session.save(vocab, &dir).unwrap();
        let before = session_state_record(&stored);
        assert_eq!(
            before.get("record").and_then(Value::as_str),
            Some("session_state")
        );
        let again = session_state_record(&stored);
        assert_eq!(before, again, "digests are pure functions of state");

        let top = stored.session().lattice().top();
        stored
            .label_traces(top, &TraceSelector::Unlabeled, "good")
            .unwrap();
        let after = session_state_record(&stored);
        assert_ne!(
            before.get("labels_digest"),
            after.get("labels_digest"),
            "labeling moves the labels digest"
        );
        assert_eq!(
            before.get("corpus_digest"),
            after.get("corpus_digest"),
            "labeling leaves the corpus digest alone"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
