//! The labeling strategies of §4.2 and their cost accounting.
//!
//! Strategy cost counts Cable operations: *inspecting* a concept and
//! *labeling* traces. Inspection is counted so that an "optimal" strategy
//! cannot cheat by inspecting everything for free; no strategy may label
//! a concept without inspecting it first.
//!
//! All strategies are measured against a *reference labeling* (the
//! oracle): at a concept they label its unlabeled traces iff the oracle
//! gives them all the same label. A strategy returns `None` when the
//! desired labeling is unreachable — exactly when the lattice is not
//! well-formed for it (§4.3).
//!
//! * [`top_down`] — repeated breadth-first traversals from the top.
//! * [`bottom_up`] — always visits a concept whose children are all
//!   FullyLabeled; equivalent to Baseline on loop-free specifications
//!   (§5.3).
//! * [`random`] — visits non-FullyLabeled concepts in random order.
//! * [`optimal`] — exact minimum cost by breadth-first search over
//!   labeled-set states, with an explored-state budget (the paper, too,
//!   could not measure Optimal on its four largest specifications).
//! * [`expert`] — a heuristic model of §5.3's expert: mostly top-down but
//!   jumps to the largest uniformly-labelable concept.
//! * [`baseline`] — no Cable at all: inspect and label one representative
//!   per class of identical traces (cost `2 × #classes`).

use crate::session::{CableSession, ConceptState, TraceSelector};
use cable_fca::ConceptId;
use cable_obs::{CounterHandle, HistogramHandle, Span};
use cable_trace::Trace;
use cable_util::rng::shuffle;
use cable_util::rng::{Rng, SmallRng};
use cable_util::BitSet;
use std::collections::{HashSet, VecDeque};

/// Strategy runs started (all strategies).
static STRATEGY_RUNS: CounterHandle = CounterHandle::new("core.strategy.runs");
/// Labeled-set states explored by `optimal`'s breadth-first search.
static OPTIMAL_STATES: CounterHandle = CounterHandle::new("core.strategy.optimal.states_explored");
/// `optimal` searches abandoned on the explored-state budget.
static OPTIMAL_BUDGET_TRIPS: CounterHandle =
    CounterHandle::new("core.strategy.optimal.budget_trips");
/// Wall-clock cost of `optimal` searches.
static OPTIMAL_NS: HistogramHandle = HistogramHandle::new("core.strategy.optimal.search_ns");

/// The cost of a strategy run, in Cable operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cost {
    /// Number of concept inspections.
    pub inspections: usize,
    /// Number of `Label traces` commands.
    pub labelings: usize,
}

impl Cost {
    /// Total operations (the paper's Table 3 quantity).
    pub fn total(&self) -> usize {
        self.inspections + self.labelings
    }
}

impl std::ops::Add for Cost {
    type Output = Cost;

    fn add(self, other: Cost) -> Cost {
        Cost {
            inspections: self.inspections + other.inspections,
            labelings: self.labelings + other.labelings,
        }
    }
}

/// Resolves the oracle labeling to one label name per trace class.
fn class_labels<F>(session: &CableSession, oracle: &F) -> Vec<String>
where
    F: Fn(&Trace) -> String,
{
    session
        .classes()
        .iter()
        .map(|class| oracle(session.traces().trace(class.representative)))
        .collect()
}

/// The common label of the given classes, if they agree and the set is
/// non-empty.
fn uniform_label<'a>(classes: &[usize], labels: &'a [String]) -> Option<&'a str> {
    let (first, rest) = classes.split_first()?;
    let candidate = labels[*first].as_str();
    rest.iter()
        .all(|&c| labels[c] == candidate)
        .then_some(candidate)
}

/// Labels the unlabeled traces of `concept` if the oracle is uniform on
/// them. Returns whether a labeling happened.
fn try_label(session: &mut CableSession, concept: ConceptId, labels: &[String]) -> bool {
    let unlabeled = session.unlabeled_in(concept);
    match uniform_label(&unlabeled, labels) {
        Some(name) => {
            let name = name.to_owned();
            session.label_traces(concept, &TraceSelector::Unlabeled, &name);
            true
        }
        None => false,
    }
}

/// The Baseline method (§5.3): inspect and label each class of identical
/// traces separately, without Cable. Cost is `2 × #classes`.
pub fn baseline(session: &CableSession) -> Cost {
    let n = session.classes().len();
    Cost {
        inspections: n,
        labelings: n,
    }
}

/// The Top-down strategy: repeated breadth-first lattice traversals from
/// the top, inspecting every concept that still has unlabeled traces and
/// labeling those whose unlabeled traces agree under the oracle.
///
/// Sibling order is randomised by `rng` (the paper reports the best of
/// several runs; see [`best_of`]). Returns `None` when the labeling is
/// unreachable.
pub fn top_down<F>(session: &mut CableSession, oracle: &F, rng: &mut SmallRng) -> Option<Cost>
where
    F: Fn(&Trace) -> String,
{
    STRATEGY_RUNS.get().incr();
    session.clear_labels();
    let labels = class_labels(session, oracle);
    let mut cost = Cost::default();
    while !session.all_labeled() {
        let mut progress = false;
        // One BFS traversal with shuffled sibling order.
        let mut seen = vec![false; session.lattice().len()];
        let mut queue = VecDeque::from([session.lattice().top()]);
        seen[session.lattice().top().index()] = true;
        while let Some(id) = queue.pop_front() {
            if session.concept_state(id) == ConceptState::FullyLabeled {
                // Skipped without cost; its descendants hold no unlabeled
                // traces either.
                continue;
            }
            cost.inspections += 1;
            if try_label(session, id, &labels) {
                cost.labelings += 1;
                progress = true;
            }
            let mut children: Vec<ConceptId> = session.lattice().children(id).to_vec();
            shuffle(&mut children, rng);
            for child in children {
                if !seen[child.index()] {
                    seen[child.index()] = true;
                    queue.push_back(child);
                }
            }
        }
        if !progress {
            return None;
        }
    }
    Some(cost)
}

/// The Bottom-up strategy: repeatedly visit a (random) concept that is
/// not FullyLabeled but whose children all are, and label its remaining
/// traces. Fails (`None`) iff the lattice is not well-formed for the
/// labeling.
pub fn bottom_up<F>(session: &mut CableSession, oracle: &F, rng: &mut SmallRng) -> Option<Cost>
where
    F: Fn(&Trace) -> String,
{
    STRATEGY_RUNS.get().incr();
    session.clear_labels();
    let labels = class_labels(session, oracle);
    let mut cost = Cost::default();
    while !session.all_labeled() {
        let candidates: Vec<ConceptId> = session
            .lattice()
            .ids()
            .filter(|&id| {
                session.concept_state(id) != ConceptState::FullyLabeled
                    && session
                        .lattice()
                        .children(id)
                        .iter()
                        .all(|&c| session.concept_state(c) == ConceptState::FullyLabeled)
            })
            .collect();
        // A minimal not-FullyLabeled concept always exists while some
        // trace is unlabeled.
        let id = candidates[rng.gen_range(0..candidates.len())];
        cost.inspections += 1;
        if try_label(session, id, &labels) {
            cost.labelings += 1;
        } else {
            return None; // Ill-formed concept: residue is mixed.
        }
    }
    Some(cost)
}

/// The Random strategy: visit non-FullyLabeled concepts in random order,
/// labeling whenever the visited concept's unlabeled traces agree.
pub fn random<F>(session: &mut CableSession, oracle: &F, rng: &mut SmallRng) -> Option<Cost>
where
    F: Fn(&Trace) -> String,
{
    STRATEGY_RUNS.get().incr();
    session.clear_labels();
    let labels = class_labels(session, oracle);
    let mut cost = Cost::default();
    while !session.all_labeled() {
        let candidates: Vec<ConceptId> = session
            .lattice()
            .ids()
            .filter(|&id| session.concept_state(id) != ConceptState::FullyLabeled)
            .collect();
        // Unreachable-labeling guard: some candidate must be labelable.
        if !candidates
            .iter()
            .any(|&id| uniform_label(&session.unlabeled_in(id), &labels).is_some())
        {
            return None;
        }
        let id = candidates[rng.gen_range(0..candidates.len())];
        cost.inspections += 1;
        if try_label(session, id, &labels) {
            cost.labelings += 1;
        }
    }
    Some(cost)
}

/// The Optimal strategy: the minimum-cost operation sequence, computed by
/// breadth-first search over sets of labeled classes. Each step labels
/// the unlabeled traces of one concept (cost 2: inspect + label).
///
/// Returns `None` if the labeling is unreachable **or** the search
/// explores more than `max_states` states (the budget that §5.3's
/// evaluation also ran into on its four largest specifications).
pub fn optimal<F>(session: &mut CableSession, oracle: &F, max_states: usize) -> Option<Cost>
where
    F: Fn(&Trace) -> String,
{
    STRATEGY_RUNS.get().incr();
    let _span = Span::enter("core.strategy.optimal.search", &OPTIMAL_NS);
    session.clear_labels();
    let labels = class_labels(session, oracle);
    let n_classes = session.classes().len();
    let full: BitSet = (0..n_classes).collect();
    let start = BitSet::new();
    if start == full {
        return Some(Cost::default());
    }
    // Precompute per-concept extents.
    let extents: Vec<BitSet> = session
        .lattice()
        .ids()
        .map(|id| session.lattice().concept(id).extent.clone())
        .collect();
    let mut visited: HashSet<BitSet> = HashSet::from([start.clone()]);
    let mut frontier = vec![start];
    let mut steps = 0usize;
    while !frontier.is_empty() {
        steps += 1;
        let mut next = Vec::new();
        for state in &frontier {
            for extent in &extents {
                let unlabeled: Vec<usize> = extent.iter().filter(|&c| !state.contains(c)).collect();
                if unlabeled.is_empty() || uniform_label(&unlabeled, &labels).is_none() {
                    continue;
                }
                let new_state = state.union(extent);
                if new_state == full {
                    OPTIMAL_STATES.get().add(visited.len() as u64);
                    return Some(Cost {
                        inspections: steps,
                        labelings: steps,
                    });
                }
                if visited.insert(new_state.clone()) {
                    if visited.len() > max_states {
                        OPTIMAL_STATES.get().add(visited.len() as u64);
                        OPTIMAL_BUDGET_TRIPS.get().incr();
                        return None; // Budget exceeded.
                    }
                    next.push(new_state);
                }
            }
        }
        frontier = next;
    }
    OPTIMAL_STATES.get().add(visited.len() as u64);
    None // Labeling unreachable.
}

/// The Expert heuristic of §5.3: one initial look at the top of the
/// lattice, then repeatedly jump to the concept that labels the most
/// still-unlabeled classes in one command (the expert "directed his
/// search based on transitions he found interesting" — i.e. towards big
/// homogeneous clusters).
pub fn expert<F>(session: &mut CableSession, oracle: &F) -> Option<Cost>
where
    F: Fn(&Trace) -> String,
{
    STRATEGY_RUNS.get().incr();
    session.clear_labels();
    let labels = class_labels(session, oracle);
    let mut cost = Cost {
        inspections: 1, // The initial look at the top concept.
        labelings: 0,
    };
    while !session.all_labeled() {
        let best = session
            .lattice()
            .ids()
            .filter_map(|id| {
                let unlabeled = session.unlabeled_in(id);
                uniform_label(&unlabeled, &labels).map(|_| (id, unlabeled.len()))
            })
            .max_by_key(|&(id, n)| (n, std::cmp::Reverse(id)))?;
        cost.inspections += 1;
        let labeled = try_label(session, best.0, &labels);
        debug_assert!(labeled);
        cost.labelings += 1;
    }
    Some(cost)
}

/// A cautious variant of [`expert`]: §4.2 notes that a real user, "even
/// when all of a concept's traces should receive the same label, … might
/// need to inspect the concept's subconcepts to convince himself of that
/// fact". This variant charges one extra inspection per child concept
/// that shares traces with each labeled selection — an upper-bound model
/// of the confirmation work a careful human does.
pub fn expert_cautious<F>(session: &mut CableSession, oracle: &F) -> Option<Cost>
where
    F: Fn(&Trace) -> String,
{
    STRATEGY_RUNS.get().incr();
    session.clear_labels();
    let labels = class_labels(session, oracle);
    let mut cost = Cost {
        inspections: 1,
        labelings: 0,
    };
    while !session.all_labeled() {
        let (best, unlabeled) = session
            .lattice()
            .ids()
            .filter_map(|id| {
                let unlabeled = session.unlabeled_in(id);
                uniform_label(&unlabeled, &labels).map(|_| (id, unlabeled))
            })
            .max_by_key(|(id, u)| (u.len(), std::cmp::Reverse(*id)))?;
        // Confirmation: look into every child that holds part of the
        // selection before committing.
        let selection: BitSet = unlabeled.iter().copied().collect();
        let confirmations = session
            .lattice()
            .children(best)
            .iter()
            .filter(|&&c| !session.lattice().concept(c).extent.is_disjoint(&selection))
            .count();
        cost.inspections += 1 + confirmations;
        let labeled = try_label(session, best, &labels);
        debug_assert!(labeled);
        cost.labelings += 1;
    }
    Some(cost)
}

/// Runs a strategy `trials` times with derived seeds, returning the
/// minimum and mean total cost over the successful runs (or `None` if any
/// run fails — failures are labeling-unreachability, which is
/// deterministic for these strategies).
pub fn best_of<F, S>(
    session: &mut CableSession,
    oracle: &F,
    strategy: S,
    trials: usize,
    seed: u64,
) -> Option<(usize, f64)>
where
    F: Fn(&Trace) -> String,
    S: Fn(&mut CableSession, &F, &mut SmallRng) -> Option<Cost>,
{
    let mut best = usize::MAX;
    let mut sum = 0usize;
    for trial in 0..trials {
        let mut rng = cable_util::rng::seeded(cable_util::rng::derive_seed(seed, trial as u64));
        let cost = strategy(session, oracle, &mut rng)?.total();
        best = best.min(cost);
        sum += cost;
    }
    Some((best, sum as f64 / trials as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cable_fa::templates;
    use cable_trace::{TraceSet, Vocab};
    use cable_util::rng::seeded;

    /// Violation traces of the running example, with duplicates.
    fn stdio_session(v: &mut Vocab) -> CableSession {
        let texts = [
            "popen(X) fread(X) pclose(X)",
            "popen(X) fread(X) pclose(X)",
            "popen(X) fwrite(X) pclose(X)",
            "popen(X) fread(X)",
            "fopen(X) fwrite(X)",
            "fopen(X) fwrite(X)",
            "fopen(X) fread(X) pclose(X)",
        ];
        let mut traces = TraceSet::new();
        for t in texts {
            traces.push(Trace::parse(t, v).unwrap());
        }
        let all: Vec<Trace> = traces.iter().map(|(_, t)| t.clone()).collect();
        let fa = templates::unordered_of_trace_events(&all);
        CableSession::new(traces, fa)
    }

    /// The reference labeling: popen…pclose traces are good, the rest
    /// demonstrate bugs.
    fn oracle(v: &Vocab) -> impl Fn(&Trace) -> String + '_ {
        let popen = v.find_op("popen").unwrap();
        let pclose = v.find_op("pclose").unwrap();
        move |t: &Trace| {
            let starts = t.events().first().is_some_and(|e| e.op == popen);
            let ends = t.events().last().is_some_and(|e| e.op == pclose);
            if starts && ends {
                "good".into()
            } else {
                "bad".into()
            }
        }
    }

    #[test]
    fn all_strategies_reach_the_labeling() {
        let mut v = Vocab::new();
        let mut s = stdio_session(&mut v);
        let o = oracle(&v);
        let mut rng = seeded(1);
        for (name, cost) in [
            ("top_down", top_down(&mut s, &o, &mut rng)),
            ("bottom_up", bottom_up(&mut s, &o, &mut rng)),
            ("random", random(&mut s, &o, &mut rng)),
            ("optimal", optimal(&mut s, &o, 100_000)),
            ("expert", expert(&mut s, &o)),
        ] {
            let cost = cost.unwrap_or_else(|| panic!("{name} failed"));
            assert!(cost.total() > 0, "{name}");
            // After each run the session is fully and correctly labeled.
            for (i, class) in s.classes().iter().enumerate() {
                let want = o(s.traces().trace(class.representative));
                let got = s.labels().get(i).map(|l| s.labels().name(l).to_owned());
                assert_eq!(got.as_deref(), Some(want.as_str()), "{name}");
            }
        }
    }

    #[test]
    fn optimal_is_minimal() {
        let mut v = Vocab::new();
        let mut s = stdio_session(&mut v);
        let o = oracle(&v);
        let opt = optimal(&mut s, &o, 100_000).unwrap().total();
        let mut rng = seeded(2);
        for _ in 0..20 {
            if let Some(c) = top_down(&mut s, &o, &mut rng) {
                assert!(opt <= c.total());
            }
            if let Some(c) = random(&mut s, &o, &mut rng) {
                assert!(opt <= c.total());
            }
        }
        if let Some(c) = bottom_up(&mut s, &o, &mut seeded(3)) {
            assert!(opt <= c.total());
        }
        if let Some(c) = expert(&mut s, &o) {
            assert!(opt <= c.total());
        }
    }

    #[test]
    fn cautious_expert_costs_at_least_the_expert() {
        let mut v = Vocab::new();
        let mut s = stdio_session(&mut v);
        let o = oracle(&v);
        let plain = expert(&mut s, &o).expect("well-formed").total();
        let cautious = expert_cautious(&mut s, &o).expect("well-formed").total();
        assert!(cautious >= plain, "cautious {cautious} vs {plain}");
        // And it still produces the right labeling.
        for (i, class) in s.classes().iter().enumerate() {
            let want = o(s.traces().trace(class.representative));
            let got = s.labels().get(i).map(|l| s.labels().name(l).to_owned());
            assert_eq!(got.as_deref(), Some(want.as_str()));
        }
    }

    #[test]
    fn baseline_is_two_per_class() {
        let mut v = Vocab::new();
        let s = stdio_session(&mut v);
        let b = baseline(&s);
        assert_eq!(b.total(), 2 * s.classes().len());
        assert_eq!(b.total(), 10); // 5 distinct traces.
    }

    #[test]
    fn strategies_fail_on_ill_formed_lattice() {
        // Two identical-attribute but differently-labeled traces: the
        // §4.3 parity situation. (Different event *orders* with the same
        // unordered attributes.)
        let mut v = Vocab::new();
        let mut traces = TraceSet::new();
        traces.push(Trace::parse("a(X) b(X)", &mut v).unwrap());
        traces.push(Trace::parse("b(X) a(X)", &mut v).unwrap());
        let all: Vec<Trace> = traces.iter().map(|(_, t)| t.clone()).collect();
        let fa = templates::unordered_of_trace_events(&all);
        let mut s = CableSession::new(traces, fa);
        let a = v.find_op("a").unwrap();
        let o = move |t: &Trace| {
            if t.events()[0].op == a {
                "good".to_owned()
            } else {
                "bad".to_owned()
            }
        };
        assert!(!s.is_well_formed_for(|t| o(t)));
        let mut rng = seeded(4);
        assert_eq!(top_down(&mut s, &o, &mut rng), None);
        assert_eq!(bottom_up(&mut s, &o, &mut rng), None);
        assert_eq!(random(&mut s, &o, &mut rng), None);
        assert_eq!(optimal(&mut s, &o, 100_000), None);
        assert_eq!(expert(&mut s, &o), None);
    }

    #[test]
    fn optimal_budget_trips() {
        let mut v = Vocab::new();
        let mut s = stdio_session(&mut v);
        let o = oracle(&v);
        assert_eq!(optimal(&mut s, &o, 1), None);
    }

    #[test]
    fn best_of_aggregates() {
        let mut v = Vocab::new();
        let mut s = stdio_session(&mut v);
        let o = oracle(&v);
        let (best, mean) = best_of(&mut s, &o, top_down, 8, 42).unwrap();
        assert!(best > 0);
        assert!(mean >= best as f64);
    }

    #[test]
    fn uniform_oracle_labels_in_one_command() {
        let mut v = Vocab::new();
        let mut s = stdio_session(&mut v);
        let o = |_: &Trace| "good".to_owned();
        let opt = optimal(&mut s, &o, 10_000).unwrap();
        assert_eq!(opt.total(), 2, "label everything at the top");
        let e = expert(&mut s, &o).unwrap();
        assert_eq!(e.total(), 3); // initial inspection + one labeled concept.
    }

    #[test]
    fn trivial_session_costs_nothing_extra() {
        let mut v = Vocab::new();
        let mut traces = TraceSet::new();
        traces.push(Trace::parse("a(X)", &mut v).unwrap());
        let all: Vec<Trace> = traces.iter().map(|(_, t)| t.clone()).collect();
        let fa = templates::unordered_of_trace_events(&all);
        let mut s = CableSession::new(traces, fa);
        let o = |_: &Trace| "good".to_owned();
        assert_eq!(optimal(&mut s, &o, 1000).unwrap().total(), 2);
        assert_eq!(baseline(&s).total(), 2);
    }
}
