//! Labels and the label store.
//!
//! "The user records his decision about a set of traces by labeling the
//! traces … Cable keeps track of which traces have been labeled \[and\]
//! ensures that each trace receives no more than one label" (§4.1).
//! Labels are free-form strings — the flexibility §2.2 exploits with
//! `good fopen` / `good popen` — interned to small ids.

use cable_util::{Interner, Symbol};

/// An interned label, valid relative to the [`LabelStore`] that produced
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub(crate) Symbol);

impl Label {
    /// The raw index of this label.
    pub fn index(self) -> usize {
        self.0.index()
    }
}

/// Tracks the (at most one) label of each object — in Cable, each class
/// of identical traces.
#[derive(Debug, Clone)]
pub struct LabelStore {
    names: Interner,
    assignment: Vec<Option<Label>>,
}

impl LabelStore {
    /// Creates a store for `n` objects, all unlabeled.
    pub fn new(n: usize) -> Self {
        LabelStore {
            names: Interner::new(),
            assignment: vec![None; n],
        }
    }

    /// Number of objects tracked.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Tests whether the store tracks no objects.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Appends a new, unlabeled object, returning its index.
    pub fn push_unlabeled(&mut self) -> usize {
        self.assignment.push(None);
        self.assignment.len() - 1
    }

    /// Interns a label name.
    pub fn intern(&mut self, name: &str) -> Label {
        Label(self.names.intern(name))
    }

    /// Looks up a label name without interning.
    pub fn find(&self, name: &str) -> Option<Label> {
        self.names.get(name).map(Label)
    }

    /// Resolves a label to its name.
    ///
    /// # Panics
    ///
    /// Panics if the label did not come from this store.
    pub fn name(&self, label: Label) -> &str {
        self.names.resolve(label.0)
    }

    /// The label of object `i`, if any.
    pub fn get(&self, i: usize) -> Option<Label> {
        self.assignment[i]
    }

    /// Assigns a label (replacing any existing one — no object ever has
    /// two labels).
    pub fn set(&mut self, i: usize, name: &str) -> Label {
        let label = self.intern(name);
        self.assignment[i] = Some(label);
        label
    }

    /// Removes the label of object `i`.
    pub fn clear(&mut self, i: usize) {
        self.assignment[i] = None;
    }

    /// Removes every label (label names stay interned).
    pub fn clear_all(&mut self) {
        for a in &mut self.assignment {
            *a = None;
        }
    }

    /// Tests whether object `i` is labeled.
    pub fn is_labeled(&self, i: usize) -> bool {
        self.assignment[i].is_some()
    }

    /// Number of unlabeled objects.
    pub fn unlabeled_count(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_none()).count()
    }

    /// Tests whether every object is labeled.
    pub fn all_labeled(&self) -> bool {
        self.assignment.iter().all(Option::is_some)
    }

    /// All objects carrying the given label.
    pub fn objects_with(&self, label: Label) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, a)| **a == Some(label))
            .map(|(i, _)| i)
            .collect()
    }

    /// The distinct labels in use, in interning order.
    pub fn labels_in_use(&self) -> Vec<Label> {
        let mut used = vec![false; self.names.len()];
        for a in self.assignment.iter().flatten() {
            used[a.index()] = true;
        }
        used.iter()
            .enumerate()
            .filter(|(_, u)| **u)
            .map(|(i, _)| Label(Symbol::from_index(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_label_per_object() {
        let mut s = LabelStore::new(3);
        assert_eq!(s.unlabeled_count(), 3);
        let good = s.set(0, "good");
        assert_eq!(s.get(0), Some(good));
        // Relabeling replaces.
        let bad = s.set(0, "bad");
        assert_eq!(s.get(0), Some(bad));
        assert_ne!(good, bad);
        assert_eq!(s.name(bad), "bad");
        assert_eq!(s.unlabeled_count(), 2);
        assert!(!s.all_labeled());
    }

    #[test]
    fn objects_with_and_labels_in_use() {
        let mut s = LabelStore::new(4);
        s.set(0, "good");
        s.set(2, "good");
        s.set(3, "bad");
        let good = s.find("good").unwrap();
        assert_eq!(s.objects_with(good), vec![0, 2]);
        assert_eq!(s.labels_in_use().len(), 2);
        // Relabel everything good -> bad; good no longer in use.
        s.set(0, "bad");
        s.set(2, "bad");
        assert_eq!(s.labels_in_use().len(), 1);
        assert!(s.objects_with(good).is_empty());
    }

    #[test]
    fn clear_operations() {
        let mut s = LabelStore::new(2);
        s.set(0, "x");
        s.set(1, "y");
        assert!(s.all_labeled());
        s.clear(0);
        assert!(!s.is_labeled(0));
        s.clear_all();
        assert_eq!(s.unlabeled_count(), 2);
        // Names remain interned.
        assert!(s.find("x").is_some());
    }

    #[test]
    fn empty_store() {
        let s = LabelStore::new(0);
        assert!(s.is_empty());
        assert!(s.all_labeled(), "vacuously");
    }
}
