//! Cable: concept-lattice-driven debugging of temporal specifications.
//!
//! This crate is the paper's primary contribution. A [`CableSession`]
//! takes a set of traces (violation traces from a verifier, or scenario
//! traces from a miner) and a *reference FA*, builds the concept lattice
//! whose objects are trace classes and whose attributes are the FA
//! transitions each trace can execute, and then supports the §4 workflow:
//!
//! * concept states ([`ConceptState`]: Unlabeled / PartlyLabeled /
//!   FullyLabeled — green / yellow / red in the original UI),
//! * the **Label traces** command ([`CableSession::label_traces`]) with
//!   its all / unlabeled / with-label selectors,
//! * the summary views **Show FA** (sk-strings-learned automaton),
//!   **Show transitions**, and **Show traces**,
//! * **Focus** sub-sessions over a different reference FA, with label
//!   merge-back,
//! * the **well-formedness** check of §4.3,
//! * the §4.2 labeling **strategies** (Top-down, Bottom-up, Random,
//!   Optimal, Expert, Baseline) with the paper's operation-cost
//!   accounting ([`strategy`]).
//!
//! Identical traces (equal event sequences) are grouped into classes, and
//! the lattice is built over class representatives, exactly as §5.2
//! describes; labels attach to classes (hence to every member trace).
//!
//! # Examples
//!
//! ```
//! use cable_core::{CableSession, Label, TraceSelector};
//! use cable_fa::templates;
//! use cable_trace::{Trace, TraceSet, Vocab};
//!
//! let mut v = Vocab::new();
//! let mut traces = TraceSet::new();
//! traces.push(Trace::parse("popen(X) pclose(X)", &mut v).unwrap());
//! traces.push(Trace::parse("popen(X)", &mut v).unwrap());
//! let all: Vec<Trace> = traces.iter().map(|(_, t)| t.clone()).collect();
//! let fa = templates::unordered_of_trace_events(&all);
//! let mut session = CableSession::new(traces, fa);
//!
//! // Label the cluster of traces that execute pclose as good.
//! let top = session.lattice().top();
//! let child = session.lattice().children(top)[0];
//! session.label_traces(child, &TraceSelector::All, "good");
//! // The remaining unlabeled traces at the top are the leaks.
//! session.label_traces(top, &TraceSelector::Unlabeled, "bad");
//! assert!(session.all_labeled());
//! ```

pub mod api;
pub mod digest;
pub mod label;
pub mod manager;
pub mod persist;
pub mod session;
pub mod strategy;
pub mod wellformed;

pub use api::CableApi;
pub use digest::session_state_record;
pub use label::{Label, LabelStore};
pub use manager::{ManagerError, SessionKey, SessionManager};
pub use persist::{IngestReport, StoredSession};
pub use session::{
    CableSession, ConceptState, FocusSession, LabelCount, SessionProgress, SessionStop,
    TraceSelector,
};
pub use strategy::Cost;
