//! The JSON session API (`/api/…`): the paper's labeling workflow as a
//! multi-tenant service.
//!
//! [`CableApi`] implements `cable-obs`'s [`ApiHandler`] and is installed
//! into the HTTP server by `cable serve --api`. Every request resolves a
//! tenant-qualified session through the [`SessionManager`]
//! ([`crate::manager`]) and runs under an optional per-request
//! `cable-guard` budget ([`cable_guard::Budget::install_local`]), so one
//! runaway lattice build times out its own request instead of the
//! process.
//!
//! # Endpoints
//!
//! | Method & path | Body / query | Meaning |
//! |---|---|---|
//! | `GET  /api/sessions` | — | list resident sessions |
//! | `POST /api/sessions` | `{tenant?, session, traces, template?}` | open (§4: start a labeling session) — `201` |
//! | `POST /api/sessions/:id/ingest` | `{tenant?, traces, fsync?}` | add traces to the corpus |
//! | `POST /api/sessions/:id/label` | `{tenant?, concept, selector?, label}` | the Label-traces command |
//! | `GET  /api/sessions/:id/lattice` | `?tenant=` | concept-lattice structure |
//! | `GET  /api/sessions/:id/concepts` | `?tenant=` | per-concept labeling states + progress |
//! | `GET  /api/sessions/:id/focus` | `?tenant=&concept=` | Focus sub-session summary |
//! | `GET  /api/sessions/:id/digest` | `?tenant=` | the deterministic `session_state` record |
//!
//! `tenant` defaults to `"default"`. `concept` is `"cN"` or `N` (the
//! `ConceptId` index); `selector` is `"all"`, `"unlabeled"`, or
//! `"with:<label>"` ([`TraceSelector`]), defaulting to `"all"`. Errors
//! are `{"error": …, "status": …}` with the matching HTTP status:
//! malformed JSON is `400`, an unknown session `404`, a create over an
//! existing store `409`, and a tripped request budget `503`.

use crate::digest::session_state_record;
use crate::manager::{ManagerError, SessionKey, SessionManager};
use crate::session::{CableSession, ConceptState, TraceSelector};
use cable_fa::templates;
use cable_fca::ConceptId;
use cable_guard::{Budget, GuardError};
use cable_obs::json::Value;
use cable_obs::{ApiHandler, ApiRequest, ApiResponse};
use cable_store::StoreError;
use cable_trace::{Trace, TraceSet, Vocab};
use std::sync::Arc;
use std::time::Duration;

/// The tenant used when a request names none.
pub const DEFAULT_TENANT: &str = "default";

/// The `/api/` handler: a [`SessionManager`] plus the per-request
/// budget policy.
pub struct CableApi {
    manager: Arc<SessionManager>,
    request_deadline: Option<Duration>,
}

/// An API failure: the HTTP status to answer with and the message.
struct ApiError {
    status: u16,
    message: String,
    /// The degradation cause when the failure is the store's fail-stop
    /// read-only mode (or the write-path I/O error that triggered it).
    /// A `Some` here makes the response a *declared* degraded `503`:
    /// `{"degraded": true, "cause": …}` + `Retry-After` — how load
    /// clients distinguish "retry, the store is recovering" from a
    /// genuine server bug.
    degraded: Option<String>,
}

impl ApiError {
    fn new(status: u16, message: impl Into<String>) -> ApiError {
        ApiError {
            status,
            message: message.into(),
            degraded: None,
        }
    }
}

impl From<ManagerError> for ApiError {
    fn from(e: ManagerError) -> Self {
        let (status, degraded) = match &e {
            ManagerError::BadName { .. } => (400, None),
            ManagerError::AlreadyExists(_) => (409, None),
            ManagerError::NotFound(_) => (404, None),
            ManagerError::Store(StoreError::Guard(_)) => (503, None),
            // Fail-stop durability (DESIGN.md §17): a degraded store —
            // and the write-path I/O failure that just degraded it —
            // answer a declared, retryable 503, never a naked 500.
            ManagerError::Store(StoreError::Degraded { cause }) => (503, Some(cause.clone())),
            ManagerError::Store(StoreError::Io(_)) => (503, Some("io".to_owned())),
            ManagerError::Store(_) => (500, None),
        };
        ApiError {
            status,
            message: e.to_string(),
            degraded,
        }
    }
}

impl From<StoreError> for ApiError {
    fn from(e: StoreError) -> Self {
        ApiError::from(ManagerError::from(e))
    }
}

type ApiResult = Result<ApiResponse, ApiError>;

impl CableApi {
    /// Builds the handler. `request_deadline` bounds each request's
    /// wall-clock via a thread-local guard budget; `None` leaves
    /// requests unbounded (the service drill's configuration — a budget
    /// trip answers `503`, and the drill gates zero 5xx).
    pub fn new(manager: Arc<SessionManager>, request_deadline: Option<Duration>) -> CableApi {
        CableApi {
            manager,
            request_deadline,
        }
    }

    /// The manager, for callers that also serve `/healthz` or tests.
    pub fn manager(&self) -> &Arc<SessionManager> {
        &self.manager
    }

    fn route(&self, request: &ApiRequest) -> ApiResult {
        let segments: Vec<&str> = request
            .route
            .strip_prefix("/api/")
            .unwrap_or("")
            .split('/')
            .filter(|s| !s.is_empty())
            .collect();
        match (request.method.as_str(), segments.as_slice()) {
            ("GET", ["sessions"]) => self.list(),
            ("POST", ["sessions"]) => self.create(&parse_body(&request.body)?),
            ("POST", ["sessions", id, "ingest"]) => {
                let body = parse_body(&request.body)?;
                self.ingest(&self.key(&body, None, id)?, &body)
            }
            ("POST", ["sessions", id, "label"]) => {
                let body = parse_body(&request.body)?;
                self.label(&self.key(&body, None, id)?, &body)
            }
            ("POST", ["sessions", id, "recover"]) => {
                let body = if request.body.trim().is_empty() {
                    Value::Null
                } else {
                    parse_body(&request.body)?
                };
                self.recover(&self.key(&body, request.query.as_deref(), id)?)
            }
            ("GET", ["sessions", id, "lattice"]) => {
                self.lattice(&self.key(&Value::Null, request.query.as_deref(), id)?)
            }
            ("GET", ["sessions", id, "concepts"]) => {
                self.concepts(&self.key(&Value::Null, request.query.as_deref(), id)?)
            }
            ("GET", ["sessions", id, "focus"]) => self.focus(
                &self.key(&Value::Null, request.query.as_deref(), id)?,
                request.query.as_deref(),
            ),
            ("GET", ["sessions", id, "digest"]) => {
                self.digest(&self.key(&Value::Null, request.query.as_deref(), id)?)
            }
            ("GET" | "POST", _) => Err(ApiError::new(
                404,
                format!("no such API route: {} {}", request.method, request.route),
            )),
            _ => Err(ApiError::new(
                405,
                format!("method {} is not served under /api/", request.method),
            )),
        }
    }

    /// Resolves the tenant (body field, else `tenant=` query, else the
    /// default) and validates the key.
    fn key(
        &self,
        body: &Value,
        query: Option<&str>,
        session: &str,
    ) -> Result<SessionKey, ApiError> {
        let from_query = query.and_then(|q| {
            q.split('&').find_map(|pair| {
                pair.split_once('=')
                    .filter(|(k, _)| *k == "tenant")
                    .map(|(_, v)| v)
            })
        });
        let tenant = body
            .get("tenant")
            .and_then(Value::as_str)
            .or(from_query)
            .unwrap_or(DEFAULT_TENANT);
        Ok(SessionKey::new(tenant, session)?)
    }

    fn list(&self) -> ApiResult {
        let mut open: Vec<Value> = self
            .manager
            .list_open()
            .into_iter()
            .map(|key| {
                Value::object([
                    ("tenant", Value::from(key.tenant)),
                    ("session", Value::from(key.session)),
                ])
            })
            .collect();
        open.sort_by(|a, b| format!("{a}").cmp(&format!("{b}")));
        Ok(ApiResponse::json(
            200,
            &Value::object([
                ("open", Value::Array(open)),
                ("open_count", Value::from(self.manager.open_count() as u64)),
                ("max_open", Value::from(self.manager.max_open() as u64)),
            ]),
        ))
    }

    fn create(&self, body: &Value) -> ApiResult {
        let session_name = require_str(body, "session")?;
        let tenant = body
            .get("tenant")
            .and_then(Value::as_str)
            .unwrap_or(DEFAULT_TENANT);
        let key = SessionKey::new(tenant, session_name)?;
        let text = require_str(body, "traces")?;
        let mut vocab = Vocab::new();
        cable_obs::recorder::begin("parse.traces");
        let traces = TraceSet::parse(text, &mut vocab).map_err(|e| {
            cable_obs::recorder::end("parse.traces");
            ApiError::new(422, format!("traces: {e}"))
        })?;
        cable_obs::recorder::end("parse.traces");
        let list: Vec<Trace> = traces.iter().map(|(_, t)| t.clone()).collect();
        let fa = match body.get("template").and_then(Value::as_str) {
            None | Some("unordered") => templates::unordered_of_trace_events(&list),
            Some(other) => {
                return Err(ApiError::new(
                    422,
                    format!("unknown template {other:?} (only \"unordered\" is served)"),
                ))
            }
        };
        let session = CableSession::try_new(traces, fa)
            .map_err(|stop| ApiError::new(503, format!("budget exceeded: {}", stop.error)))?;
        self.manager.create(&key, session, vocab)?;
        let summary = self.summary(&key)?;
        Ok(ApiResponse::json(201, &summary))
    }

    /// Attempts automatic recovery before a write lands on a degraded
    /// store. Best-effort by design: when the disk is still refusing
    /// writes the recovery fails, the store stays read-only, and the
    /// write below answers the declared degraded `503` — the client
    /// retries, and whichever retry lands after the disk heals recovers
    /// and proceeds in one request.
    fn try_recover(stored: &mut crate::persist::StoredSession) {
        if stored.store().is_degraded() {
            let _ = stored.recover();
        }
    }

    fn recover(&self, key: &SessionKey) -> ApiResult {
        let value = self.manager.with_session(key, |stored| {
            let recovered = stored.recover().map_err(ManagerError::Store)?;
            Ok(Value::object([
                ("tenant", Value::from(key.tenant.as_str())),
                ("session", Value::from(key.session.as_str())),
                ("recovered", Value::from(recovered)),
                ("generation", Value::from(stored.store().generation())),
                (
                    "degraded",
                    match stored.store().degraded_cause() {
                        Some(cause) => Value::from(cause),
                        None => Value::from(false),
                    },
                ),
            ]))
        })?;
        Ok(ApiResponse::json(200, &value))
    }

    fn ingest(&self, key: &SessionKey, body: &Value) -> ApiResult {
        let text = require_str(body, "traces")?;
        let fsync = body.get("fsync").and_then(Value::as_bool).unwrap_or(false);
        let outcome = self.manager.with_session(key, |stored| {
            Self::try_recover(stored);
            let results = stored
                .ingest_text(text, fsync)
                .map_err(ManagerError::Store)?;
            let new_classes = results.iter().filter(|(_, founded)| *founded).count();
            Ok(Value::object([
                ("tenant", Value::from(key.tenant.as_str())),
                ("session", Value::from(key.session.as_str())),
                ("ingested", Value::from(results.len() as u64)),
                ("new_classes", Value::from(new_classes as u64)),
                (
                    "classes",
                    Value::from(stored.session().classes().len() as u64),
                ),
                (
                    "concepts",
                    Value::from(stored.session().lattice().len() as u64),
                ),
            ]))
        });
        match outcome {
            Ok(v) => Ok(ApiResponse::json(200, &v)),
            // A parse error inside ingest_text is the client's malformed
            // trace text, not a server fault.
            Err(ManagerError::Store(StoreError::Format(m))) => Err(ApiError::new(422, m)),
            Err(e) => Err(e.into()),
        }
    }

    fn label(&self, key: &SessionKey, body: &Value) -> ApiResult {
        let concept_field = body
            .get("concept")
            .ok_or_else(|| ApiError::new(400, "body needs a \"concept\" field"))?;
        let label = require_str(body, "label")?;
        if label.is_empty() {
            return Err(ApiError::new(422, "\"label\" must be non-empty"));
        }
        let selector = match body.get("selector").and_then(Value::as_str) {
            None | Some("all") => TraceSelector::All,
            Some("unlabeled") => TraceSelector::Unlabeled,
            Some(s) if s.starts_with("with:") => {
                TraceSelector::WithLabel(s["with:".len()..].to_owned())
            }
            Some(other) => {
                return Err(ApiError::new(
                    422,
                    format!(
                        "selector {other:?} is not \"all\", \"unlabeled\", or \"with:<label>\""
                    ),
                ))
            }
        };
        let label = label.to_owned();
        let value = self.manager.with_session(key, |stored| {
            Self::try_recover(stored);
            let concept = parse_concept(concept_field, stored.session().lattice().len())
                .map_err(|e| ManagerError::Store(StoreError::format(e.message)))?;
            let classes = stored
                .label_traces(concept, &selector, &label)
                .map_err(ManagerError::Store)?;
            let progress = stored.session().progress();
            Ok(Value::object([
                ("tenant", Value::from(key.tenant.as_str())),
                ("session", Value::from(key.session.as_str())),
                ("concept", Value::from(format!("c{}", concept.index()))),
                ("classes_labeled", Value::from(classes as u64)),
                (
                    "classes_unlabeled",
                    Value::from((progress.classes - progress.labeled_classes) as u64),
                ),
                ("complete", Value::from(progress.is_complete())),
            ]))
        });
        match value {
            Ok(v) => Ok(ApiResponse::json(200, &v)),
            // parse_concept tunnels its message through StoreError::Format.
            Err(ManagerError::Store(StoreError::Format(m))) => Err(ApiError::new(422, m)),
            Err(e) => Err(e.into()),
        }
    }

    fn lattice(&self, key: &SessionKey) -> ApiResult {
        let value = self.manager.with_session(key, |stored| {
            let session = stored.session();
            let lattice = session.lattice();
            let concepts: Vec<Value> = lattice
                .iter()
                .map(|(id, concept)| {
                    let children: Vec<Value> = lattice
                        .children(id)
                        .iter()
                        .map(|c| Value::from(format!("c{}", c.index())))
                        .collect();
                    Value::object([
                        ("id", Value::from(format!("c{}", id.index()))),
                        (
                            "classes",
                            Value::Array(
                                concept
                                    .extent
                                    .iter()
                                    .map(|v| Value::from(v as u64))
                                    .collect(),
                            ),
                        ),
                        ("transitions", Value::from(concept.intent.len() as u64)),
                        ("state", Value::from(state_name(session.concept_state(id)))),
                        ("children", Value::Array(children)),
                    ])
                })
                .collect();
            Ok(Value::object([
                ("tenant", Value::from(key.tenant.as_str())),
                ("session", Value::from(key.session.as_str())),
                ("top", Value::from(format!("c{}", lattice.top().index()))),
                (
                    "bottom",
                    Value::from(format!("c{}", lattice.bottom().index())),
                ),
                ("concepts", Value::Array(concepts)),
            ]))
        })?;
        Ok(ApiResponse::json(200, &value))
    }

    fn concepts(&self, key: &SessionKey) -> ApiResult {
        let value = self.manager.with_session(key, |stored| {
            let session = stored.session();
            let mut unlabeled = 0u64;
            let mut partly = 0u64;
            let mut fully = 0u64;
            let states: Vec<Value> = session
                .lattice()
                .iter()
                .map(|(id, _)| {
                    let state = session.concept_state(id);
                    match state {
                        ConceptState::Unlabeled => unlabeled += 1,
                        ConceptState::PartlyLabeled => partly += 1,
                        ConceptState::FullyLabeled => fully += 1,
                    }
                    Value::object([
                        ("id", Value::from(format!("c{}", id.index()))),
                        ("state", Value::from(state_name(state))),
                    ])
                })
                .collect();
            let progress = session.progress();
            Ok(Value::object([
                ("tenant", Value::from(key.tenant.as_str())),
                ("session", Value::from(key.session.as_str())),
                ("unlabeled", Value::from(unlabeled)),
                ("partly_labeled", Value::from(partly)),
                ("fully_labeled", Value::from(fully)),
                (
                    "classes_unlabeled",
                    Value::from((progress.classes - progress.labeled_classes) as u64),
                ),
                ("complete", Value::from(progress.is_complete())),
                ("concepts", Value::Array(states)),
            ]))
        })?;
        Ok(ApiResponse::json(200, &value))
    }

    fn focus(&self, key: &SessionKey, query: Option<&str>) -> ApiResult {
        let concept_text = query.and_then(|q| {
            q.split('&').find_map(|pair| {
                pair.split_once('=')
                    .filter(|(k, _)| *k == "concept")
                    .map(|(_, v)| v)
            })
        });
        let Some(concept_text) = concept_text else {
            return Err(ApiError::new(400, "focus needs a ?concept=cN query"));
        };
        let concept_value = Value::from(concept_text);
        let value = self.manager.with_session(key, |stored| {
            let session = stored.session();
            let concept = parse_concept(&concept_value, session.lattice().len())
                .map_err(|e| ManagerError::Store(StoreError::format(e.message)))?;
            // The §4 Focus command: re-cluster the concept's traces
            // under a fresh reference FA (the unordered template over
            // exactly those traces).
            let traces: Vec<Trace> = session
                .show_traces(concept, &TraceSelector::All)
                .into_iter()
                .cloned()
                .collect();
            let fa = templates::unordered_of_trace_events(&traces);
            let focus = session.focus(concept, fa);
            let sub = focus.session();
            Ok(Value::object([
                ("tenant", Value::from(key.tenant.as_str())),
                ("session", Value::from(key.session.as_str())),
                ("concept", Value::from(format!("c{}", concept.index()))),
                ("traces", Value::from(sub.traces().len() as u64)),
                ("classes", Value::from(sub.classes().len() as u64)),
                ("concepts", Value::from(sub.lattice().len() as u64)),
            ]))
        });
        match value {
            Ok(v) => Ok(ApiResponse::json(200, &v)),
            Err(ManagerError::Store(StoreError::Format(m))) => Err(ApiError::new(422, m)),
            Err(e) => Err(e.into()),
        }
    }

    fn digest(&self, key: &SessionKey) -> ApiResult {
        let value = self
            .manager
            .with_session(key, |stored| Ok(session_state_record(stored)))?;
        Ok(ApiResponse::json(200, &value))
    }

    /// The create response: the shape `GET lattice` summarises, minus
    /// the per-concept detail.
    fn summary(&self, key: &SessionKey) -> Result<Value, ApiError> {
        Ok(self.manager.with_session(key, |stored| {
            let session = stored.session();
            Ok(Value::object([
                ("tenant", Value::from(key.tenant.as_str())),
                ("session", Value::from(key.session.as_str())),
                ("traces", Value::from(session.traces().len() as u64)),
                ("classes", Value::from(session.classes().len() as u64)),
                ("concepts", Value::from(session.lattice().len() as u64)),
            ]))
        })?)
    }
}

impl ApiHandler for CableApi {
    fn handle(&self, request: &ApiRequest) -> ApiResponse {
        let _budget = Budget {
            deadline: self.request_deadline,
            ..Budget::default()
        }
        .install_local();
        // The panic boundary: a bug in one request answers 500 and the
        // worker keeps serving; a tripped request budget answers 503.
        let result = cable_guard::contain(|| self.route(request));
        match result {
            Ok(Ok(response)) => response,
            Ok(Err(e)) => match e.degraded {
                // The declared degraded answer: body says so, and
                // Retry-After tells clients the condition is retryable
                // (the chaos drill gates that every 5xx carries this).
                Some(cause) => ApiResponse::json(
                    e.status,
                    &Value::object([
                        ("error", Value::from(e.message.as_str())),
                        ("status", Value::from(u64::from(e.status))),
                        ("degraded", Value::from(true)),
                        ("cause", Value::from(cause)),
                    ]),
                )
                .with_retry_after(cable_obs::RETRY_AFTER_SECONDS),
                None => ApiResponse::error(e.status, &e.message),
            },
            Err(GuardError::BudgetExceeded { limit, site }) => {
                ApiResponse::error(503, &format!("request budget exceeded at {site}: {limit}"))
            }
            Err(GuardError::Cancelled) => ApiResponse::error(503, "request cancelled"),
            Err(GuardError::TaskPanic { message }) => {
                ApiResponse::error(500, &format!("internal error: {message}"))
            }
        }
    }
}

fn parse_body(body: &str) -> Result<Value, ApiError> {
    if body.trim().is_empty() {
        return Err(ApiError::new(400, "request body must be a JSON object"));
    }
    cable_obs::recorder::begin("parse.body");
    let value = Value::parse(body.trim());
    cable_obs::recorder::end("parse.body");
    let value = value.map_err(|e| ApiError::new(400, format!("malformed JSON body: {e}")))?;
    if !matches!(value, Value::Object(_)) {
        return Err(ApiError::new(400, "request body must be a JSON object"));
    }
    Ok(value)
}

fn require_str<'a>(body: &'a Value, field: &str) -> Result<&'a str, ApiError> {
    body.get(field)
        .and_then(Value::as_str)
        .ok_or_else(|| ApiError::new(400, format!("body needs a string {field:?} field")))
}

/// Parses `"cN"` or a bare integer into a concept id, bounds-checked
/// against the lattice.
fn parse_concept(value: &Value, concepts: usize) -> Result<ConceptId, ApiError> {
    let index = match value {
        Value::String(s) => s
            .strip_prefix('c')
            .unwrap_or(s)
            .parse::<u32>()
            .map_err(|_| ApiError::new(422, format!("concept {s:?} is not \"cN\" or N")))?,
        v => v
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| ApiError::new(422, "concept must be \"cN\" or a non-negative N"))?,
    };
    if (index as usize) >= concepts {
        return Err(ApiError::new(
            422,
            format!("concept c{index} is out of range (lattice has {concepts} concepts)"),
        ));
    }
    Ok(ConceptId(index))
}

fn state_name(state: ConceptState) -> &'static str {
    match state {
        ConceptState::Unlabeled => "unlabeled",
        ConceptState::PartlyLabeled => "partly_labeled",
        ConceptState::FullyLabeled => "fully_labeled",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn api(tag: &str, max_open: usize) -> (CableApi, std::path::PathBuf) {
        let root = std::env::temp_dir().join(format!(
            "cable-core-api-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let manager = Arc::new(SessionManager::new(&root, max_open));
        (CableApi::new(manager, None), root)
    }

    fn post(api: &CableApi, route: &str, body: &str) -> ApiResponse {
        api.handle(&ApiRequest {
            method: "POST".into(),
            route: route.into(),
            query: None,
            body: body.into(),
        })
    }

    fn get(api: &CableApi, route: &str, query: Option<&str>) -> ApiResponse {
        api.handle(&ApiRequest {
            method: "GET".into(),
            route: route.into(),
            query: query.map(str::to_owned),
            body: String::new(),
        })
    }

    fn body_json(response: &ApiResponse) -> Value {
        Value::parse(response.body.trim()).expect("response body is JSON")
    }

    #[test]
    fn full_lifecycle_open_ingest_label_query() {
        let (api, root) = api("lifecycle", 4);

        let created = post(
            &api,
            "/api/sessions",
            r#"{"tenant": "t1", "session": "s1", "traces": "fopen(X) fclose(X)\nfopen(Y)"}"#,
        );
        assert_eq!(created.status, 201, "{}", created.body);
        let summary = body_json(&created);
        assert_eq!(summary.get("traces").and_then(Value::as_u64), Some(2));

        let ingested = post(
            &api,
            "/api/sessions/s1/ingest",
            r#"{"tenant": "t1", "traces": "fopen(Z) fclose(Z)"}"#,
        );
        assert_eq!(ingested.status, 200, "{}", ingested.body);
        let report = body_json(&ingested);
        assert_eq!(report.get("ingested").and_then(Value::as_u64), Some(1));

        let lattice = get(&api, "/api/sessions/s1/lattice", Some("tenant=t1"));
        assert_eq!(lattice.status, 200, "{}", lattice.body);
        let lattice = body_json(&lattice);
        let top = lattice.get("top").and_then(Value::as_str).unwrap();
        assert!(lattice
            .get("concepts")
            .and_then(Value::as_array)
            .is_some_and(|c| !c.is_empty()));

        let labeled = post(
            &api,
            "/api/sessions/s1/label",
            &format!(
                r#"{{"tenant": "t1", "concept": "{top}", "selector": "unlabeled", "label": "good"}}"#
            ),
        );
        assert_eq!(labeled.status, 200, "{}", labeled.body);
        let labeled = body_json(&labeled);
        assert_eq!(labeled.get("complete"), Some(&Value::Bool(true)));

        let concepts = get(&api, "/api/sessions/s1/concepts", Some("tenant=t1"));
        assert_eq!(concepts.status, 200);
        let concepts = body_json(&concepts);
        assert_eq!(concepts.get("unlabeled").and_then(Value::as_u64), Some(0));

        let focus = get(
            &api,
            "/api/sessions/s1/focus",
            Some(&format!("tenant=t1&concept={top}")),
        );
        assert_eq!(focus.status, 200, "{}", focus.body);

        let digest = get(&api, "/api/sessions/s1/digest", Some("tenant=t1"));
        assert_eq!(digest.status, 200);
        let digest = body_json(&digest);
        assert_eq!(
            digest.get("record").and_then(Value::as_str),
            Some("session_state")
        );
        assert!(digest
            .get("corpus_digest")
            .and_then(Value::as_str)
            .is_some());

        let listing = get(&api, "/api/sessions", None);
        assert_eq!(listing.status, 200);
        let listing = body_json(&listing);
        assert_eq!(listing.get("open_count").and_then(Value::as_u64), Some(1));

        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn client_errors_get_4xx_not_5xx() {
        let (api, root) = api("errors", 4);

        // Malformed JSON → 400.
        let r = post(&api, "/api/sessions", "{not json");
        assert_eq!(r.status, 400, "{}", r.body);
        assert!(body_json(&r).get("error").is_some());
        // Non-object JSON → 400.
        assert_eq!(post(&api, "/api/sessions", "[1,2]").status, 400);
        // Empty body → 400.
        assert_eq!(post(&api, "/api/sessions", "").status, 400);
        // Missing fields → 400.
        assert_eq!(
            post(&api, "/api/sessions", r#"{"session": "x"}"#).status,
            400
        );
        // Bad names → 400.
        let r = post(
            &api,
            "/api/sessions",
            r#"{"tenant": "../evil", "session": "s", "traces": "fopen(X)"}"#,
        );
        assert_eq!(r.status, 400, "{}", r.body);
        // Unknown session → 404.
        assert_eq!(
            post(
                &api,
                "/api/sessions/ghost/ingest",
                r#"{"traces": "fopen(X)"}"#
            )
            .status,
            404
        );
        // Unknown route → 404.
        assert_eq!(get(&api, "/api/frobnicate", None).status, 404);
        // Unparsable trace text → 422.
        let r = post(
            &api,
            "/api/sessions",
            r#"{"session": "s", "traces": "this is ( not a trace"}"#,
        );
        assert_eq!(r.status, 422, "{}", r.body);

        // A good create, then conflict and concept-range errors.
        let r = post(
            &api,
            "/api/sessions",
            r#"{"session": "s", "traces": "fopen(X) fclose(X)"}"#,
        );
        assert_eq!(r.status, 201, "{}", r.body);
        let r = post(
            &api,
            "/api/sessions",
            r#"{"session": "s", "traces": "fopen(X)"}"#,
        );
        assert_eq!(r.status, 409, "{}", r.body);
        let r = post(
            &api,
            "/api/sessions/s/label",
            r#"{"concept": "c999", "label": "good"}"#,
        );
        assert_eq!(r.status, 422, "{}", r.body);
        let r = post(
            &api,
            "/api/sessions/s/label",
            r#"{"concept": "c0", "selector": "sometimes", "label": "good"}"#,
        );
        assert_eq!(r.status, 422, "{}", r.body);
        let r = get(&api, "/api/sessions/s/focus", None);
        assert_eq!(r.status, 400, "{}", r.body);

        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn tenants_are_isolated_by_directory() {
        let (api, root) = api("isolation", 4);
        let r = post(
            &api,
            "/api/sessions",
            r#"{"tenant": "alice", "session": "s", "traces": "fopen(X) fclose(X)"}"#,
        );
        assert_eq!(r.status, 201);
        // The same session name under another tenant is a different
        // (absent) store.
        let r = get(&api, "/api/sessions/s/digest", Some("tenant=bob"));
        assert_eq!(r.status, 404, "{}", r.body);
        // And creating it works, giving bob his own store directory.
        let r = post(
            &api,
            "/api/sessions",
            r#"{"tenant": "bob", "session": "s", "traces": "fopen(Y)"}"#,
        );
        assert_eq!(r.status, 201);
        assert!(root.join("alice").join("s").is_dir());
        assert!(root.join("bob").join("s").is_dir());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn request_deadline_answers_503_not_a_hang() {
        let (api, root) = {
            let root = std::env::temp_dir().join(format!(
                "cable-core-api-deadline-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&root);
            let manager = Arc::new(SessionManager::new(&root, 4));
            (CableApi::new(manager, Some(Duration::from_millis(0))), root)
        };
        std::thread::sleep(Duration::from_millis(2));
        let r = post(&api, "/api/sessions/s1/ingest", r#"{"traces": "fopen(X)"}"#);
        // The zero deadline trips at the first checkpoint: 503 (or 404
        // if the lookup wins the race to fail first — either way, not a
        // hang and not a 200).
        assert!(
            r.status == 503 || r.status == 404,
            "expected 503/404, got {}: {}",
            r.status,
            r.body
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
