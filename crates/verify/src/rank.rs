//! Ranking violation reports.
//!
//! §6 discusses Xgcc-style tools that *rank* bug reports "so that the
//! user sees likely bugs before likely false positives" and argues that
//! "ranking and clustering are complementary: ranking tells the user
//! what reports to inspect first, while clustering helps the user avoid
//! inspecting redundant reports". This module implements the classic
//! z-ranking heuristic so the reproduction can demonstrate that
//! complementarity:
//!
//! a violation is likely a *real bug* when the rule it violates usually
//! holds — i.e. when scenarios seeded by the same operation mostly
//! conform to the specification. Violations of a rule that "fails"
//! constantly (e.g. every `popen` scenario rejected by the buggy
//! Figure 1 spec) are likely *specification* errors, not program
//! errors.

use crate::report::ViolationReport;
use cable_trace::{Trace, TraceId};
use cable_util::Symbol;
use std::collections::BTreeMap;

/// Per-operation conformance statistics collected during checking:
/// how many scenarios whose first event has this operation were accepted
/// vs rejected by the specification.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Scenarios accepted by the specification.
    pub passed: usize,
    /// Scenarios rejected (reported as violations).
    pub failed: usize,
}

impl OpStats {
    /// The conformance rate `passed / (passed + failed)`; 0 when the
    /// operation was never checked.
    pub fn pass_rate(&self) -> f64 {
        let total = self.passed + self.failed;
        if total == 0 {
            0.0
        } else {
            self.passed as f64 / total as f64
        }
    }
}

/// A class of identical violation traces with its rank score.
#[derive(Debug, Clone)]
pub struct RankedClass {
    /// Representative violation trace id (into the report's trace set).
    pub representative: TraceId,
    /// How many identical violations the class holds.
    pub count: usize,
    /// The z-ranking score: the conformance rate of the class's leading
    /// operation. High score ⇒ the rule usually holds ⇒ the violation is
    /// likely a real bug.
    pub score: f64,
}

/// A ranked view of a [`ViolationReport`].
#[derive(Debug, Clone)]
pub struct RankedReport {
    classes: Vec<RankedClass>,
}

impl RankedReport {
    /// Ranks the violation classes of a report: highest score first
    /// (ties: larger classes first, then representative order — stable).
    ///
    /// `op_stats` maps each leading operation to its conformance
    /// statistics; [`crate::Checker::check_with_stats`] produces it.
    pub fn new(report: &ViolationReport, op_stats: &BTreeMap<Symbol, OpStats>) -> Self {
        let mut classes: Vec<RankedClass> = report
            .violations
            .identical_classes()
            .iter()
            .map(|class| {
                let trace = report.violations.trace(class.representative);
                let score = leading_op(trace)
                    .and_then(|op| op_stats.get(&op))
                    .map(OpStats::pass_rate)
                    .unwrap_or(0.0);
                RankedClass {
                    representative: class.representative,
                    count: class.count(),
                    score,
                }
            })
            .collect();
        classes.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are not NaN")
                .then_with(|| b.count.cmp(&a.count))
                .then_with(|| a.representative.cmp(&b.representative))
        });
        RankedReport { classes }
    }

    /// The ranked classes, most-likely-real-bug first.
    pub fn classes(&self) -> &[RankedClass] {
        &self.classes
    }

    /// Number of ranked classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Tests whether there are no violations at all.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Precision at `k`: the fraction of the first `k` classes that
    /// `is_real_bug` confirms. Useful for evaluating the heuristic
    /// against an oracle.
    pub fn precision_at<F>(&self, k: usize, mut is_real_bug: F) -> f64
    where
        F: FnMut(TraceId) -> bool,
    {
        let k = k.min(self.classes.len());
        if k == 0 {
            return 0.0;
        }
        let hits = self.classes[..k]
            .iter()
            .filter(|c| is_real_bug(c.representative))
            .count();
        hits as f64 / k as f64
    }
}

/// The operation of a trace's first event.
pub fn leading_op(trace: &Trace) -> Option<Symbol> {
    trace.events().first().map(|e| e.op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cable_trace::{TraceSet, Vocab};

    fn report_with(
        texts: &[&str],
        vocab: &mut Vocab,
    ) -> (ViolationReport, BTreeMap<Symbol, OpStats>) {
        let mut violations = TraceSet::new();
        for t in texts {
            violations.push(Trace::parse(t, vocab).unwrap());
        }
        let report = ViolationReport {
            violations,
            scenarios_checked: texts.len() + 10,
        };
        (report, BTreeMap::new())
    }

    #[test]
    fn ranks_by_pass_rate_of_leading_op() {
        let mut v = Vocab::new();
        let (report, mut stats) = report_with(&["fopen(X)", "popen(X) pclose(X)"], &mut v);
        // fopen usually conforms (19/20); popen never does (0/5).
        stats.insert(
            v.op("fopen"),
            OpStats {
                passed: 19,
                failed: 1,
            },
        );
        stats.insert(
            v.op("popen"),
            OpStats {
                passed: 0,
                failed: 5,
            },
        );
        let ranked = RankedReport::new(&report, &stats);
        assert_eq!(ranked.len(), 2);
        let first = report.violations.trace(ranked.classes()[0].representative);
        assert_eq!(v.op_name(first.events()[0].op), "fopen");
        assert!(ranked.classes()[0].score > ranked.classes()[1].score);
    }

    #[test]
    fn duplicate_violations_form_one_class() {
        let mut v = Vocab::new();
        let (report, stats) = report_with(&["f(X)", "f(X)", "g(X)"], &mut v);
        let ranked = RankedReport::new(&report, &stats);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked.classes().iter().map(|c| c.count).sum::<usize>(), 3);
    }

    #[test]
    fn precision_at_k() {
        let mut v = Vocab::new();
        let (report, mut stats) = report_with(&["real(X)", "fp(X)"], &mut v);
        stats.insert(
            v.op("real"),
            OpStats {
                passed: 9,
                failed: 1,
            },
        );
        stats.insert(
            v.op("fp"),
            OpStats {
                passed: 0,
                failed: 9,
            },
        );
        let ranked = RankedReport::new(&report, &stats);
        let real = v.op("real");
        let is_real = |id: TraceId| report.violations.trace(id).events()[0].op == real;
        assert_eq!(ranked.precision_at(1, is_real), 1.0);
        assert_eq!(ranked.precision_at(2, is_real), 0.5);
        assert_eq!(ranked.precision_at(0, is_real), 0.0);
        // k beyond the class count clamps.
        assert_eq!(ranked.precision_at(99, is_real), 0.5);
    }

    #[test]
    fn pass_rate_edge_cases() {
        assert_eq!(OpStats::default().pass_rate(), 0.0);
        assert_eq!(
            OpStats {
                passed: 3,
                failed: 1
            }
            .pass_rate(),
            0.75
        );
    }

    #[test]
    fn empty_report_is_empty() {
        let mut v = Vocab::new();
        let (report, stats) = report_with(&[], &mut v);
        let ranked = RankedReport::new(&report, &stats);
        assert!(ranked.is_empty());
    }
}
