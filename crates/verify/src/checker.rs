//! The checker: producing violation traces from program traces.

use crate::rank::OpStats;
use crate::report::ViolationReport;
use cable_fa::Fa;
use cable_obs::{CounterHandle, HistogramHandle, Span};
use cable_trace::{canonicalize, ObjId, Trace, TraceSet, Vocab};
use cable_util::Symbol;
use std::collections::{BTreeMap, HashSet};

/// Program traces fed through the checker.
static TRACES_CHECKED: CounterHandle = CounterHandle::new("verify.checker.traces");
/// Per-object scenarios sliced out of program traces.
static SCENARIOS_EXTRACTED: CounterHandle = CounterHandle::new("verify.checker.scenarios");
/// Scenarios the specification rejected.
static VIOLATIONS_FOUND: CounterHandle = CounterHandle::new("verify.checker.violations");
/// Wall-clock cost of whole checking runs.
static CHECK_NS: HistogramHandle = HistogramHandle::new("verify.checker.check_ns");

/// Checks program traces against a specification FA, reporting the
/// per-object scenarios the specification rejects.
///
/// # Examples
///
/// ```
/// use cable_verify::Checker;
/// use cable_fa::Fa;
/// use cable_trace::{Trace, Vocab};
///
/// let mut v = Vocab::new();
/// let spec = Fa::parse(
///     "start s0\naccept s2\ns0 -> s1 : open(X)\ns1 -> s2 : close(X)\n",
///     &mut v,
/// ).unwrap();
/// let program = Trace::parse("open(#1) open(#2) close(#1)", &mut v).unwrap();
/// let report = Checker::new(spec).check(&[program], &v);
/// assert_eq!(report.violations.len(), 1); // #2 leaked
/// ```
#[derive(Debug, Clone)]
pub struct Checker {
    spec: Fa,
}

impl Checker {
    /// Creates a checker for a specification.
    pub fn new(spec: Fa) -> Self {
        Checker { spec }
    }

    /// The specification being checked.
    pub fn spec(&self) -> &Fa {
        &self.spec
    }

    /// The operations mentioned by the specification's transition labels.
    fn alphabet_ops(&self) -> HashSet<Symbol> {
        self.spec
            .transitions()
            .iter()
            .filter_map(|t| t.label.as_pat())
            .map(|p| p.op)
            .collect()
    }

    /// Slices the per-object scenarios of one program trace that are
    /// *relevant* to the specification: objects touched by at least one
    /// operation in the specification's alphabet. Each scenario keeps
    /// every event mentioning its object (including irrelevant calls, as
    /// the paper notes real tools do) and is canonicalised.
    pub fn scenarios(&self, trace: &Trace, _vocab: &Vocab) -> Vec<Trace> {
        let ops = self.alphabet_ops();
        let mut seen: HashSet<ObjId> = HashSet::new();
        let mut roots: Vec<ObjId> = Vec::new();
        for e in trace.iter() {
            if ops.contains(&e.op) {
                for obj in e.objects() {
                    if seen.insert(obj) {
                        roots.push(obj);
                    }
                }
            }
        }
        roots
            .into_iter()
            .map(|obj| {
                let mut s = Trace::new(
                    trace
                        .iter()
                        .filter(|e| e.mentions_obj(obj))
                        .cloned()
                        .collect(),
                );
                if let Some(p) = trace.provenance() {
                    s.set_provenance(p);
                }
                canonicalize(&s)
            })
            .collect()
    }

    /// Checks a set of program traces, reporting every rejected scenario
    /// as a violation trace.
    pub fn check(&self, program_traces: &[Trace], vocab: &Vocab) -> ViolationReport {
        self.check_with_stats(program_traces, vocab).0
    }

    /// Like [`Checker::check`], but also returns per-leading-operation
    /// conformance statistics, the input to z-ranking
    /// ([`crate::RankedReport`]).
    pub fn check_with_stats(
        &self,
        program_traces: &[Trace],
        vocab: &Vocab,
    ) -> (ViolationReport, BTreeMap<Symbol, OpStats>) {
        let _span = Span::enter("verify.checker.check", &CHECK_NS);
        TRACES_CHECKED.get().add(program_traces.len() as u64);
        let mut violations = TraceSet::new();
        let mut checked = 0usize;
        let mut stats: BTreeMap<Symbol, OpStats> = BTreeMap::new();
        for t in program_traces {
            for scenario in self.scenarios(t, vocab) {
                checked += 1;
                let accepted = self.spec.accepts(&scenario);
                if let Some(op) = crate::rank::leading_op(&scenario) {
                    let entry = stats.entry(op).or_default();
                    if accepted {
                        entry.passed += 1;
                    } else {
                        entry.failed += 1;
                    }
                }
                if !accepted {
                    VIOLATIONS_FOUND.get().incr();
                    violations.push(scenario);
                }
            }
        }
        SCENARIOS_EXTRACTED.get().add(checked as u64);
        (
            ViolationReport {
                violations,
                scenarios_checked: checked,
            },
            stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(v: &mut Vocab) -> Fa {
        Fa::parse(
            "start s0\naccept s2\ns0 -> s1 : open(X)\ns1 -> s1 : read(X)\ns1 -> s2 : close(X)\n",
            v,
        )
        .unwrap()
    }

    #[test]
    fn accepting_programs_produce_no_violations() {
        let mut v = Vocab::new();
        let s = spec(&mut v);
        let program = Trace::parse("open(#1) read(#1) close(#1)", &mut v).unwrap();
        let report = Checker::new(s).check(&[program], &v);
        assert!(report.violations.is_empty());
        assert_eq!(report.scenarios_checked, 1);
    }

    #[test]
    fn leaks_and_wrong_order_are_reported() {
        let mut v = Vocab::new();
        let s = spec(&mut v);
        let programs = vec![
            Trace::parse("open(#1)", &mut v).unwrap(),           // leak
            Trace::parse("close(#2) open(#2)", &mut v).unwrap(), // wrong order
        ];
        let report = Checker::new(s).check(&programs, &v);
        assert_eq!(report.violations.len(), 2);
        assert_eq!(report.scenarios_checked, 2);
    }

    #[test]
    fn irrelevant_objects_are_not_checked() {
        let mut v = Vocab::new();
        let s = spec(&mut v);
        let program = Trace::parse("log(#9) open(#1) close(#1)", &mut v).unwrap();
        let report = Checker::new(s).check(&[program], &v);
        assert_eq!(report.scenarios_checked, 1);
        assert!(report.violations.is_empty());
    }

    #[test]
    fn violations_keep_provenance() {
        let mut v = Vocab::new();
        let s = spec(&mut v);
        let mut program = Trace::parse("open(#1)", &mut v).unwrap();
        program.set_provenance(42);
        let report = Checker::new(s).check(&[program], &v);
        let (_, t) = report.violations.iter().next().unwrap();
        assert_eq!(t.provenance(), Some(42));
    }

    #[test]
    fn scenarios_include_irrelevant_calls_on_the_object() {
        let mut v = Vocab::new();
        let s = spec(&mut v);
        // `flush` is not in the spec alphabet but touches #1.
        let program = Trace::parse("open(#1) flush(#1) close(#1)", &mut v).unwrap();
        let checker = Checker::new(s);
        let scenarios = checker.scenarios(&program, &v);
        assert_eq!(scenarios[0].len(), 3, "irrelevant call kept");
        // And therefore it is a violation (the spec has no flush edge).
        let report = checker.check(&[program], &v);
        assert_eq!(report.violations.len(), 1);
    }
}
