//! A trace-level specification checker.
//!
//! §2.1 debugs a specification *by testing*: a verification tool checks
//! the specification against programs and reports **violation traces** —
//! "program execution traces that appear to occur in the program but are
//! not accepted by the FA". The paper's verifier is a static tool; this
//! crate substitutes a dynamic, trace-level checker that produces the
//! same artifact from the workload simulator's program traces:
//!
//! 1. for every object mentioned by an operation in the specification's
//!    alphabet, slice out its per-object event sequence,
//! 2. canonicalise it,
//! 3. report it as a violation if the specification FA rejects it.
//!
//! The [`ViolationReport`] also aggregates per-program bug counts — the
//! analog of the paper's "199 bugs in widely distributed X11 programs".

pub mod checker;
pub mod rank;
pub mod report;

pub use checker::Checker;
pub use rank::{OpStats, RankedClass, RankedReport};
pub use report::{BugSummary, ViolationReport};
