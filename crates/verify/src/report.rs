//! Violation reports and bug summaries.

use cable_trace::TraceSet;
use std::collections::BTreeMap;

/// The result of checking a workload against a specification.
#[derive(Debug, Clone)]
pub struct ViolationReport {
    /// The violation traces (canonical per-object scenarios rejected by
    /// the specification), with program provenance.
    pub violations: TraceSet,
    /// How many scenarios were checked in total.
    pub scenarios_checked: usize,
}

impl ViolationReport {
    /// The violation rate over all checked scenarios.
    pub fn violation_rate(&self) -> f64 {
        if self.scenarios_checked == 0 {
            0.0
        } else {
            self.violations.len() as f64 / self.scenarios_checked as f64
        }
    }

    /// Aggregates violations per program — the shape of the paper's "199
    /// bugs in widely distributed X11 programs" claim.
    pub fn bug_summary(&self) -> BugSummary {
        let mut per_program: BTreeMap<u32, usize> = BTreeMap::new();
        for (_, t) in self.violations.iter() {
            if let Some(p) = t.provenance() {
                *per_program.entry(p).or_insert(0) += 1;
            }
        }
        BugSummary {
            total: self.violations.len(),
            per_program,
        }
    }
}

/// Bug counts aggregated per program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BugSummary {
    /// Total number of violating scenarios.
    pub total: usize,
    /// Violations per program index.
    pub per_program: BTreeMap<u32, usize>,
}

impl BugSummary {
    /// Number of distinct buggy programs.
    pub fn buggy_programs(&self) -> usize {
        self.per_program.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cable_trace::{Trace, Vocab};

    #[test]
    fn summary_groups_by_program() {
        let mut v = Vocab::new();
        let mut violations = TraceSet::new();
        violations.push(Trace::with_provenance(
            Trace::parse("open(X)", &mut v).unwrap().events().to_vec(),
            0,
        ));
        violations.push(Trace::with_provenance(
            Trace::parse("open(X)", &mut v).unwrap().events().to_vec(),
            0,
        ));
        violations.push(Trace::with_provenance(
            Trace::parse("close(X)", &mut v).unwrap().events().to_vec(),
            3,
        ));
        let report = ViolationReport {
            violations,
            scenarios_checked: 10,
        };
        let summary = report.bug_summary();
        assert_eq!(summary.total, 3);
        assert_eq!(summary.buggy_programs(), 2);
        assert_eq!(summary.per_program[&0], 2);
        assert!((report.violation_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_report() {
        let report = ViolationReport {
            violations: TraceSet::new(),
            scenarios_checked: 0,
        };
        assert_eq!(report.violation_rate(), 0.0);
        assert_eq!(report.bug_summary().total, 0);
    }
}
