//! The program-trace generator.

use crate::model::ProtocolModel;
use cable_obs::{CounterHandle, HistogramHandle, Span};
use cable_trace::{Arg, Event, ObjId, Trace, Vocab};
use cable_util::rng::Rng;
use cable_util::rng::{shuffle, stream};

/// Program traces generated.
static TRACES_GENERATED: CounterHandle = CounterHandle::new("workload.generate.traces");
/// Events emitted across all generated traces (protocol + noise).
static EVENTS_GENERATED: CounterHandle = CounterHandle::new("workload.generate.events");
/// Protocol objects whose usage was drawn from the erroneous shapes.
static ERRONEOUS_OBJECTS: CounterHandle = CounterHandle::new("workload.generate.erroneous_objects");
/// Wall-clock cost of workload generation runs.
static GENERATE_NS: HistogramHandle = HistogramHandle::new("workload.generate.run_ns");

/// Parameters of a generated workload.
///
/// Defaults approximate the paper's corpus scale: 72 programs, a handful
/// of protocol objects per program, a ~15% erroneous-object rate (the
/// training runs "often" contain errors), and light unrelated noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadParams {
    /// Number of program traces to generate.
    pub programs: usize,
    /// Inclusive range of protocol objects per program.
    pub objects_per_program: (usize, usize),
    /// Probability that an object's usage is drawn from the erroneous
    /// shapes.
    pub error_rate: f64,
    /// Expected number of noise events per protocol object.
    pub noise_per_object: f64,
    /// RNG seed; the same seed reproduces the same workload exactly.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            programs: 72,
            objects_per_program: (1, 6),
            error_rate: 0.15,
            noise_per_object: 1.0,
            seed: 0x5EED,
        }
    }
}

/// Generates a workload of program traces from a protocol model.
///
/// Each program trace is the random interleaving (preserving per-object
/// order) of the event sequences of its objects, with noise events on
/// fresh unrelated objects mixed in. Object identities are unique across
/// the whole workload (each program draws from its own id band).
///
/// Programs are generated in parallel on the [`cable_par`] pool: the
/// model's vocabulary is interned up front so the fan-out reads it
/// immutably, and each program consumes its own
/// [`stream`] of `params.seed` — so the workload
/// is a function of the seed alone, identical for every worker count.
///
/// # Panics
///
/// Panics if the model's correct shape mixture is empty, or the erroneous
/// mixture is empty while `error_rate > 0`.
///
/// # Examples
///
/// ```
/// use cable_workload::{generate, WorkloadParams, ProtocolModel, ScenarioShape};
/// use cable_workload::shape::ShapeMix;
/// use cable_trace::Vocab;
///
/// let model = ProtocolModel {
///     name: "Toy".into(),
///     description: "open/close".into(),
///     ground_truth_text: "start s0\naccept s2\ns0 -> s1 : open(X)\ns1 -> s2 : close(X)\n".into(),
///     seed_ops: vec!["open".into()],
///     correct: ShapeMix::new(vec![(1.0, ScenarioShape::fixed(&["open", "close"]))]),
///     erroneous: ShapeMix::new(vec![(1.0, ScenarioShape::fixed(&["open"]))]),
///     noise_ops: vec!["log".into()],
/// };
/// let mut v = Vocab::new();
/// let traces = generate(&model, &WorkloadParams { programs: 10, ..Default::default() }, &mut v);
/// assert_eq!(traces.len(), 10);
/// ```
pub fn generate(model: &ProtocolModel, params: &WorkloadParams, vocab: &mut Vocab) -> Vec<Trace> {
    assert!(!model.correct.is_empty(), "model has no correct shapes");
    assert!(
        params.error_rate == 0.0 || !model.erroneous.is_empty(),
        "positive error rate requires erroneous shapes"
    );
    let _span = Span::enter("workload.generate", &GENERATE_NS);
    // Intern every op the model can emit up front, so the parallel
    // fan-out below realises events through the read-only vocabulary.
    model.correct.intern(vocab);
    model.erroneous.intern(vocab);
    for op in &model.noise_ops {
        vocab.op(op);
    }
    let programs: Vec<u64> = (0..params.programs as u64).collect();
    let traces = cable_par::par_map("workload.generate", &programs, |&program| {
        generate_program(model, params, vocab, program)
    });
    TRACES_GENERATED.get().add(traces.len() as u64);
    traces
}

/// Generates one program trace from its own RNG stream and object-id
/// band.
fn generate_program(
    model: &ProtocolModel,
    params: &WorkloadParams,
    vocab: &Vocab,
    program: u64,
) -> Trace {
    let mut rng = stream(params.seed, program);
    // Object ids are banded per program: ids stay globally unique without
    // any cross-program coordination.
    let band = (program + 1) << 32;
    let mut next_obj: u64 = 0;
    let (lo, hi) = params.objects_per_program;
    let n_objects = rng.gen_range(lo..=hi.max(lo));
    // Per-object event sequences.
    let mut streams: Vec<Vec<Event>> = Vec::new();
    for _ in 0..n_objects {
        let obj = ObjId(band | next_obj);
        next_obj += 1;
        let erroneous = rng.gen_range(0.0..1.0) < params.error_rate;
        if erroneous {
            ERRONEOUS_OBJECTS.get().incr();
        }
        let ops = if erroneous {
            model.erroneous.sample(&mut rng)
        } else {
            model.correct.sample(&mut rng)
        };
        streams.push(
            ops.iter()
                .map(|op| op.event_interned(Arg::Obj(obj), vocab))
                .collect(),
        );
        // Noise events, each on its own fresh object.
        if !model.noise_ops.is_empty() && params.noise_per_object > 0.0 {
            let p = params.noise_per_object / (params.noise_per_object + 1.0);
            let mut noise = Vec::new();
            while rng.gen_range(0.0..1.0) < p {
                let op = &model.noise_ops[rng.gen_range(0..model.noise_ops.len())];
                let sym = vocab.find_op(op).expect("noise op interned above");
                noise.push(Event::on_obj(sym, ObjId(band | next_obj)));
                next_obj += 1;
            }
            if !noise.is_empty() {
                streams.push(noise);
            }
        }
    }
    let trace = Trace::with_provenance(interleave(streams, &mut rng), program as u32);
    EVENTS_GENERATED.get().add(trace.len() as u64);
    trace
}

/// Randomly interleaves event streams, preserving the order within each
/// stream (a uniformly random linear extension by repeated weighted
/// draws).
fn interleave<R: Rng>(mut streams: Vec<Vec<Event>>, rng: &mut R) -> Vec<Event> {
    // Reverse each stream so we can pop from the back.
    for s in &mut streams {
        s.reverse();
    }
    shuffle(&mut streams, rng);
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        // Draw a stream weighted by remaining length (uniform over
        // remaining events).
        let remaining: usize = streams.iter().map(Vec::len).sum();
        let mut pick = rng.gen_range(0..remaining);
        for s in &mut streams {
            if pick < s.len() {
                out.push(s.pop().expect("nonempty stream"));
                break;
            }
            pick -= s.len();
        }
        streams.retain(|s| !s.is_empty());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::{ScenarioShape, ShapeMix};

    fn toy_model() -> ProtocolModel {
        ProtocolModel {
            name: "Toy".into(),
            description: "open/close".into(),
            ground_truth_text: "start s0\naccept s2\ns0 -> s1 : open(X)\ns1 -> s2 : close(X)\n"
                .into(),
            seed_ops: vec!["open".into()],
            correct: ShapeMix::new(vec![(1.0, ScenarioShape::fixed(&["open", "close"]))]),
            erroneous: ShapeMix::new(vec![(1.0, ScenarioShape::fixed(&["open"]))]),
            noise_ops: vec!["log".into()],
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let model = toy_model();
        let params = WorkloadParams {
            programs: 5,
            ..Default::default()
        };
        let mut v1 = Vocab::new();
        let mut v2 = Vocab::new();
        let a = generate(&model, &params, &mut v1);
        let b = generate(&model, &params, &mut v2);
        assert_eq!(a, b);
    }

    #[test]
    fn workload_prefix_is_stable_under_program_count() {
        // Each program has its own RNG stream and object-id band, so
        // growing the workload never disturbs the programs already in it.
        let model = toy_model();
        let mut v1 = Vocab::new();
        let mut v2 = Vocab::new();
        let small = generate(
            &model,
            &WorkloadParams {
                programs: 5,
                ..Default::default()
            },
            &mut v1,
        );
        let large = generate(
            &model,
            &WorkloadParams {
                programs: 12,
                ..Default::default()
            },
            &mut v2,
        );
        assert_eq!(small[..], large[..5]);
    }

    #[test]
    fn per_object_order_is_preserved() {
        let model = toy_model();
        let params = WorkloadParams {
            programs: 30,
            error_rate: 0.0,
            ..Default::default()
        };
        let mut v = Vocab::new();
        let open = v.op("open");
        let close = v.op("close");
        for trace in generate(&model, &params, &mut v) {
            use std::collections::HashMap;
            let mut state: HashMap<ObjId, u8> = HashMap::new();
            for e in trace.iter() {
                let obj = match e.objects().next() {
                    Some(o) => o,
                    None => continue,
                };
                if e.op == open {
                    assert_eq!(state.insert(obj, 1), None, "open twice");
                } else if e.op == close {
                    assert_eq!(state.insert(obj, 2), Some(1), "close before open");
                }
            }
            for (_, s) in state {
                if s == 1 {
                    panic!("correct object left open");
                }
            }
        }
    }

    #[test]
    fn error_rate_zero_means_all_good() {
        let model = toy_model();
        let params = WorkloadParams {
            programs: 20,
            error_rate: 0.0,
            noise_per_object: 0.0,
            ..Default::default()
        };
        let mut v = Vocab::new();
        let traces = generate(&model, &params, &mut v);
        let open = v.find_op("open").unwrap();
        let close = v.find_op("close").unwrap();
        for t in &traces {
            let opens = t.iter().filter(|e| e.op == open).count();
            let closes = t.iter().filter(|e| e.op == close).count();
            assert_eq!(opens, closes);
        }
    }

    #[test]
    fn error_rate_one_means_all_bad() {
        let model = toy_model();
        let params = WorkloadParams {
            programs: 20,
            error_rate: 1.0,
            noise_per_object: 0.0,
            ..Default::default()
        };
        let mut v = Vocab::new();
        let traces = generate(&model, &params, &mut v);
        let close = v.op("close");
        for t in &traces {
            assert!(t.iter().all(|e| e.op != close));
        }
    }

    #[test]
    fn provenance_is_recorded() {
        let model = toy_model();
        let params = WorkloadParams {
            programs: 3,
            ..Default::default()
        };
        let mut v = Vocab::new();
        let traces = generate(&model, &params, &mut v);
        for (i, t) in traces.iter().enumerate() {
            assert_eq!(t.provenance(), Some(i as u32));
        }
    }

    #[test]
    fn object_ids_are_globally_unique_per_shape_instance() {
        let model = toy_model();
        let params = WorkloadParams {
            programs: 10,
            error_rate: 0.0,
            noise_per_object: 0.0,
            ..Default::default()
        };
        let mut v = Vocab::new();
        let open = v.op("open");
        let mut seen = std::collections::HashSet::new();
        for t in generate(&model, &params, &mut v) {
            for e in t.iter() {
                if e.op == open {
                    assert!(seen.insert(e.objects().next().unwrap()), "object id reused");
                }
            }
        }
    }
}
