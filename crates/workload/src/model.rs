//! Protocol models: the per-specification description of correct and
//! erroneous API usage.

use crate::shape::ShapeMix;
use cable_fa::Fa;
use cable_trace::Vocab;

/// Everything the workload generator and the oracle need to know about
/// one API protocol:
///
/// * `ground_truth` — the *correct* specification FA (over `X = Var(0)`),
///   in the [`cable_fa::text`] format. The oracle labels scenarios by
///   acceptance;
/// * `correct` / `erroneous` — shape mixtures for correct and buggy
///   per-object usage;
/// * `seed_ops` — the operations Strauss's front end uses as scenario
///   seeds (typically the resource-creating calls);
/// * `noise_ops` — unrelated operations sprinkled through program traces
///   on their own objects.
#[derive(Debug, Clone)]
pub struct ProtocolModel {
    /// Short name, e.g. `"FilePair"` or `"XtFree"`.
    pub name: String,
    /// The English reading (the paper's Table 1 column).
    pub description: String,
    /// The correct specification in FA text format.
    pub ground_truth_text: String,
    /// Operations that seed scenario extraction.
    pub seed_ops: Vec<String>,
    /// Correct usage shapes.
    pub correct: ShapeMix,
    /// Erroneous usage shapes (the injected bugs).
    pub erroneous: ShapeMix,
    /// Unrelated operations for noise.
    pub noise_ops: Vec<String>,
}

impl ProtocolModel {
    /// Realises the ground-truth FA against a vocabulary.
    ///
    /// # Panics
    ///
    /// Panics if the embedded FA text is malformed (a programming error in
    /// the model definition).
    pub fn ground_truth(&self, vocab: &mut Vocab) -> Fa {
        Fa::parse(&self.ground_truth_text, vocab).expect("ground-truth FA text is well-formed")
    }

    /// All operations the model can emit in scenarios (correct and
    /// erroneous shapes), deduplicated, in first-appearance order.
    pub fn scenario_ops(&self) -> Vec<&str> {
        let mut ops = Vec::new();
        for op in self.correct.ops().chain(self.erroneous.ops()) {
            if !ops.contains(&op) {
                ops.push(op);
            }
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::{ScenarioShape, ShapeMix};

    fn toy_model() -> ProtocolModel {
        ProtocolModel {
            name: "Toy".into(),
            description: "open then close".into(),
            ground_truth_text: "start s0\naccept s2\ns0 -> s1 : open(X)\ns1 -> s2 : close(X)\n"
                .into(),
            seed_ops: vec!["open".into()],
            correct: ShapeMix::new(vec![(1.0, ScenarioShape::fixed(&["open", "close"]))]),
            erroneous: ShapeMix::new(vec![(1.0, ScenarioShape::fixed(&["open"]))]),
            noise_ops: vec!["log".into()],
        }
    }

    #[test]
    fn ground_truth_parses() {
        let mut v = Vocab::new();
        let fa = toy_model().ground_truth(&mut v);
        assert_eq!(fa.state_count(), 3);
        let good = cable_trace::Trace::parse("open(X) close(X)", &mut v).unwrap();
        let bad = cable_trace::Trace::parse("open(X)", &mut v).unwrap();
        assert!(fa.accepts(&good));
        assert!(!fa.accepts(&bad));
    }

    #[test]
    fn scenario_ops_dedup() {
        assert_eq!(toy_model().scenario_ops(), vec!["open", "close"]);
    }
}
