//! Synthetic program-trace workloads.
//!
//! The paper evaluates on 90 execution traces of 72 real X11 programs.
//! That corpus is not available, so this crate *simulates* it: each
//! specification ships a [`ProtocolModel`] describing the correct
//! per-object API protocol (a ground-truth FA), a distribution of correct
//! usage *shapes*, a set of buggy shapes (the error modes real programs
//! exhibit: leaks, wrong-close, use-after-free, …), and unrelated noise
//! operations. The [`generate()`] function then produces full program
//! traces — interleaved per-object event streams over concrete object
//! identities with injected errors and noise — with the properties the
//! paper's pipeline depends on:
//!
//! * scenario extraction must recover per-object event sequences,
//! * a tunable fraction of scenarios is erroneous,
//! * many scenarios are *identical* after canonicalisation (the heavy
//!   duplication §5.1 reports).
//!
//! The [`Oracle`] labels a canonical scenario trace `good` or `bad` by
//! ground-truth acceptance; it is the reference labeling against which
//! the §4.2 strategies are costed.

pub mod families;
pub mod generate;
pub mod model;
pub mod oracle;
pub mod shape;

pub use families::FamilyParams;
pub use generate::{generate, WorkloadParams};
pub use model::ProtocolModel;
pub use oracle::Oracle;
pub use shape::{scenario_trace, OpSpec, ScenarioShape};
