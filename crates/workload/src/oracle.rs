//! The reference labeling oracle.
//!
//! §4.2's strategy costs are measured "given a reference labeling for the
//! traces". The oracle provides that labeling: a canonical scenario trace
//! is `good` iff the ground-truth specification accepts it. For
//! overgeneralisation experiments (§2.2) the oracle can also produce
//! *grouped* good labels (`good:<first-op>`), mimicking the expert who
//! assigns `good fopen` and `good popen` separately.

use cable_fa::Fa;
use cable_trace::{Trace, Vocab};

/// The conventional label for correct traces.
pub const GOOD: &str = "good";
/// The conventional label for erroneous traces.
pub const BAD: &str = "bad";

/// Labels scenario traces by ground-truth acceptance.
#[derive(Debug, Clone)]
pub struct Oracle {
    ground_truth: Fa,
}

impl Oracle {
    /// Creates an oracle from the ground-truth specification.
    pub fn new(ground_truth: Fa) -> Self {
        Oracle { ground_truth }
    }

    /// The ground-truth automaton.
    pub fn ground_truth(&self) -> &Fa {
        &self.ground_truth
    }

    /// Tests whether a canonical scenario trace is correct.
    pub fn is_good(&self, trace: &Trace) -> bool {
        self.ground_truth.accepts(trace)
    }

    /// The plain reference label: `"good"` or `"bad"`.
    pub fn label(&self, trace: &Trace) -> &'static str {
        if self.is_good(trace) {
            GOOD
        } else {
            BAD
        }
    }

    /// The grouped reference label: erroneous traces are `"bad"`, correct
    /// traces are `"good:<op>"` keyed by their first event's operation —
    /// the per-resource-kind labels of §2.2.
    pub fn grouped_label(&self, trace: &Trace, vocab: &Vocab) -> String {
        if !self.is_good(trace) {
            return BAD.to_owned();
        }
        match trace.events().first() {
            Some(e) => format!("{GOOD}:{}", vocab.op_name(e.op)),
            None => GOOD.to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(v: &mut Vocab) -> Oracle {
        let fa = Fa::parse(
            "start s0\naccept s2\ns0 -> s1 : open(X)\ns1 -> s2 : close(X)\n",
            v,
        )
        .unwrap();
        Oracle::new(fa)
    }

    #[test]
    fn labels_by_acceptance() {
        let mut v = Vocab::new();
        let o = oracle(&mut v);
        let good = Trace::parse("open(X) close(X)", &mut v).unwrap();
        let bad = Trace::parse("open(X)", &mut v).unwrap();
        assert_eq!(o.label(&good), GOOD);
        assert_eq!(o.label(&bad), BAD);
        assert!(o.is_good(&good));
        assert!(!o.is_good(&bad));
    }

    #[test]
    fn grouped_labels_key_on_first_op() {
        let mut v = Vocab::new();
        let o = oracle(&mut v);
        let good = Trace::parse("open(X) close(X)", &mut v).unwrap();
        assert_eq!(o.grouped_label(&good, &v), "good:open");
        let bad = Trace::parse("close(X)", &mut v).unwrap();
        assert_eq!(o.grouped_label(&bad, &v), "bad");
    }

    #[test]
    fn empty_trace_grouped_label() {
        let mut v = Vocab::new();
        let fa = Fa::parse("start s0\naccept s0\n", &mut v).unwrap();
        let o = Oracle::new(fa);
        assert_eq!(o.grouped_label(&Trace::empty(), &v), GOOD);
    }
}
