//! Parameterised protocol families: model templates with size and
//! fan-out knobs.
//!
//! The hand-written specs in `cable-specs` pin one protocol each; the
//! families here *generate* protocol models, so the mutation engine and
//! the Table-2 matrix can evaluate over a population of (spec, corpus)
//! pairs instead of a single point. Three families, drawn from the
//! related work's standard targets:
//!
//! * [`locking`] — a nestable locking discipline: `lock`/`unlock` must
//!   balance, nesting is bounded by `depth`, and `fanout` critical-
//!   section operations are legal only while the lock is held,
//! * [`fd_lifecycle`] — a file-descriptor lifecycle: `open`, then
//!   `fanout` kinds of use, then `close`; at most `depth` reopen cycles
//!   per descriptor,
//! * [`socket_lifecycle`] — a socket lifecycle with client and server
//!   paths: `connect` + `fanout` data operations, or
//!   `bind`/`listen`/up-to-`depth` `accept_conn` calls; either path ends
//!   in `close`.
//!
//! Each family reuses the X11-style generator's machinery unchanged: the
//! returned [`ProtocolModel`] plugs into [`crate::generate()`] and the
//! acceptance [`crate::Oracle`] exactly like the hand-written specs.

use crate::model::ProtocolModel;
use crate::shape::{ScenarioShape, ShapeMix};
use std::fmt::Write as _;

/// Size knobs for a protocol family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FamilyParams {
    /// Structural depth: lock-nesting bound, reopen cycles, or accept
    /// backlog, per family. Range `1..=8`.
    pub depth: usize,
    /// Fan-out: how many distinct "use" operations the protocol offers.
    /// Range `0..=6`.
    pub fanout: usize,
}

impl Default for FamilyParams {
    fn default() -> Self {
        FamilyParams {
            depth: 2,
            fanout: 2,
        }
    }
}

impl FamilyParams {
    fn validate(self) {
        assert!(
            (1..=8).contains(&self.depth),
            "family depth must be in 1..=8, got {}",
            self.depth
        );
        assert!(
            self.fanout <= 6,
            "family fanout must be in 0..=6, got {}",
            self.fanout
        );
    }
}

/// Builds a fixed shape from owned op names.
fn fixed(ops: &[String]) -> ScenarioShape {
    let refs: Vec<&str> = ops.iter().map(String::as_str).collect();
    ScenarioShape::fixed(&refs)
}

/// Builds a loop shape from owned op names.
fn looped(pre: &[String], body: &[String], mean: f64, post: &[String]) -> ScenarioShape {
    let pre: Vec<&str> = pre.iter().map(String::as_str).collect();
    let body: Vec<&str> = body.iter().map(String::as_str).collect();
    let post: Vec<&str> = post.iter().map(String::as_str).collect();
    ScenarioShape::with_loop(&pre, &body, mean, &post)
}

fn owned(ops: &[&str]) -> Vec<String> {
    ops.iter().map(|s| (*s).to_owned()).collect()
}

fn repeat(op: &str, n: usize) -> Vec<String> {
    vec![op.to_owned(); n]
}

/// A nestable locking discipline.
///
/// Ground truth: a chain `s0 … s_depth` where `lock` moves up, `unlock`
/// moves down, the critical-section operations self-loop on every held
/// level, and only the fully-released `s0` accepts. Error modes: lock
/// leaks, double unlock, nesting past `depth`, and critical-section
/// operations outside the lock.
pub fn locking(params: &FamilyParams) -> ProtocolModel {
    params.validate();
    let FamilyParams { depth, fanout } = *params;
    const WORK_POOL: [&str; 6] = [
        "read_shared",
        "write_shared",
        "update_stats",
        "flush_cache",
        "check_inv",
        "signal_cond",
    ];
    let works = owned(&WORK_POOL[..fanout]);
    let mut text = String::from("start s0\naccept s0\n");
    for k in 0..depth {
        writeln!(text, "s{k} -> s{} : lock(X)", k + 1).unwrap();
        writeln!(text, "s{} -> s{k} : unlock(X)", k + 1).unwrap();
    }
    for k in 1..=depth {
        for w in &works {
            writeln!(text, "s{k} -> s{k} : {w}(X)").unwrap();
        }
    }
    let mut correct = vec![
        (
            4.0,
            if works.is_empty() {
                fixed(&owned(&["lock", "unlock"]))
            } else {
                looped(&owned(&["lock"]), &works, 1.5, &owned(&["unlock"]))
            },
        ),
        (2.0, fixed(&owned(&["lock", "unlock"]))),
        (1.0, fixed(&owned(&["lock", "unlock", "lock", "unlock"]))),
    ];
    if depth >= 2 {
        // Fully nested acquisition to the legal bound.
        let mut ops = repeat("lock", depth);
        if let Some(w) = works.first() {
            ops.push(w.clone());
        }
        ops.extend(repeat("unlock", depth));
        correct.push((1.5, fixed(&ops)));
    }
    let mut over = repeat("lock", depth + 1);
    over.extend(repeat("unlock", depth + 1));
    let mut erroneous = vec![
        (2.0, fixed(&owned(&["lock"]))),
        (1.5, fixed(&owned(&["lock", "unlock", "unlock"]))),
        (1.0, fixed(&over)),
    ];
    if let Some(w) = works.first() {
        // Critical-section work after release.
        erroneous.push((
            1.0,
            fixed(&["lock".to_owned(), w.clone(), "unlock".to_owned(), w.clone()]),
        ));
    }
    ProtocolModel {
        name: "Locking".into(),
        description: format!(
            "lock/unlock balance with nesting bounded by {depth}; \
             {fanout} critical-section ops legal only while held"
        ),
        ground_truth_text: text,
        seed_ops: vec!["lock".into()],
        correct: ShapeMix::new(correct),
        erroneous: ShapeMix::new(erroneous),
        noise_ops: vec![
            "sched_yield".into(),
            "getpid".into(),
            "clock_gettime".into(),
        ],
    }
}

/// A file-descriptor lifecycle with bounded reopen.
///
/// Ground truth: up to `depth` open/use*/close cycles; every closed
/// state accepts. Error modes: descriptor leaks, double close,
/// use-after-close, and reopening past the cycle bound.
pub fn fd_lifecycle(params: &FamilyParams) -> ProtocolModel {
    params.validate();
    let FamilyParams { depth, fanout } = *params;
    const USE_POOL: [&str; 6] = ["read", "write", "seek", "fstat", "ioctl", "poll"];
    let uses = owned(&USE_POOL[..fanout]);
    let mut text = String::from("start c0\n");
    for k in 0..=depth {
        writeln!(text, "accept c{k}").unwrap();
    }
    for k in 1..=depth {
        writeln!(text, "c{} -> o{k} : open(X)", k - 1).unwrap();
        for u in &uses {
            writeln!(text, "o{k} -> o{k} : {u}(X)").unwrap();
        }
        writeln!(text, "o{k} -> c{k} : close(X)").unwrap();
    }
    let mut correct = vec![
        (
            4.0,
            if uses.is_empty() {
                fixed(&owned(&["open", "close"]))
            } else {
                looped(&owned(&["open"]), &uses, 2.0, &owned(&["close"]))
            },
        ),
        (2.0, fixed(&owned(&["open", "close"]))),
    ];
    if depth >= 2 {
        let mut ops = Vec::new();
        for _ in 0..depth {
            ops.push("open".to_owned());
            if let Some(u) = uses.first() {
                ops.push(u.clone());
            }
            ops.push("close".to_owned());
        }
        correct.push((1.0, fixed(&ops)));
    }
    let mut over = Vec::new();
    for _ in 0..=depth {
        over.push("open".to_owned());
        over.push("close".to_owned());
    }
    let mut erroneous = vec![
        (2.0, fixed(&owned(&["open"]))),
        (1.5, fixed(&owned(&["open", "close", "close"]))),
        (1.0, fixed(&over)),
    ];
    if let Some(u) = uses.first() {
        erroneous.push((
            1.5,
            fixed(&["open".to_owned(), "close".to_owned(), u.clone()]),
        ));
    }
    ProtocolModel {
        name: "FdLife".into(),
        description: format!(
            "open/use/close descriptor lifecycle; {fanout} use ops, \
             at most {depth} reopen cycles"
        ),
        ground_truth_text: text,
        seed_ops: vec!["open".into()],
        correct: ShapeMix::new(correct),
        erroneous: ShapeMix::new(erroneous),
        noise_ops: vec!["getpid".into(), "clock_gettime".into(), "sbrk".into()],
    }
}

/// A socket lifecycle with client and server paths.
///
/// Ground truth: `socket`, then either `connect` with data-op self-loops
/// (client) or `bind`/`listen` with at most `depth` `accept_conn` calls
/// (server); both paths — and a bare created socket — end with `close`.
/// Error modes: socket leaks, data before connect, double close, and
/// accepting past the backlog bound.
pub fn socket_lifecycle(params: &FamilyParams) -> ProtocolModel {
    params.validate();
    let FamilyParams { depth, fanout } = *params;
    const DATA_POOL: [&str; 6] = ["send", "recv", "sendto", "recvfrom", "peek", "send_file"];
    let datas = owned(&DATA_POOL[..fanout]);
    let mut text = String::from("start s0\naccept sE\n");
    text.push_str("s0 -> s1 : socket(X)\n");
    text.push_str("s1 -> s2 : connect(X)\n");
    for d in &datas {
        writeln!(text, "s2 -> s2 : {d}(X)").unwrap();
    }
    text.push_str("s2 -> sE : close(X)\n");
    text.push_str("s1 -> sE : close(X)\n");
    text.push_str("s1 -> b0 : bind(X)\n");
    text.push_str("b0 -> l0 : listen(X)\n");
    for k in 0..depth {
        writeln!(text, "l{k} -> l{} : accept_conn(X)", k + 1).unwrap();
    }
    for k in 0..=depth {
        writeln!(text, "l{k} -> sE : close(X)").unwrap();
    }
    let mut server = owned(&["socket", "bind", "listen"]);
    server.extend(repeat("accept_conn", depth));
    server.push("close".to_owned());
    let correct = vec![
        (
            4.0,
            if datas.is_empty() {
                fixed(&owned(&["socket", "connect", "close"]))
            } else {
                looped(
                    &owned(&["socket", "connect"]),
                    &datas,
                    2.0,
                    &owned(&["close"]),
                )
            },
        ),
        (2.0, fixed(&server)),
        (1.0, fixed(&owned(&["socket", "close"]))),
    ];
    let mut overflow = owned(&["socket", "bind", "listen"]);
    overflow.extend(repeat("accept_conn", depth + 1));
    overflow.push("close".to_owned());
    let mut erroneous = vec![
        (2.0, fixed(&owned(&["socket", "connect"]))),
        (1.5, fixed(&owned(&["socket", "connect", "close", "close"]))),
        (1.0, fixed(&overflow)),
    ];
    if let Some(d) = datas.first() {
        // Data before connect.
        erroneous.push((
            1.5,
            fixed(&["socket".to_owned(), d.clone(), "close".to_owned()]),
        ));
    }
    ProtocolModel {
        name: "SockLife".into(),
        description: format!(
            "socket lifecycle: connect + {fanout} data ops, or \
             bind/listen with backlog {depth}; both paths close"
        ),
        ground_truth_text: text,
        seed_ops: vec!["socket".into()],
        correct: ShapeMix::new(correct),
        erroneous: ShapeMix::new(erroneous),
        noise_ops: vec!["getpid".into(), "clock_gettime".into(), "sigaction".into()],
    }
}

/// All three families at the same knob settings.
pub fn all(params: &FamilyParams) -> Vec<ProtocolModel> {
    vec![
        locking(params),
        fd_lifecycle(params),
        socket_lifecycle(params),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;
    use crate::shape::scenario_trace;
    use cable_trace::Vocab;
    use cable_util::rng::seeded;

    /// Every sampled correct shape must be accepted by the family's own
    /// ground truth; every erroneous shape must be rejected. This is the
    /// invariant the acceptance oracle rests on.
    fn check_model(model: &ProtocolModel, cases: usize) {
        let mut vocab = Vocab::new();
        let fa = model.ground_truth(&mut vocab);
        let oracle = Oracle::new(fa);
        let mut rng = seeded(0xFA41);
        for i in 0..cases {
            let good = scenario_trace(&model.correct.sample(&mut rng), &mut vocab);
            assert!(
                oracle.is_good(&good),
                "{} case {i}: correct shape rejected: {}",
                model.name,
                good.display(&vocab)
            );
            let bad = scenario_trace(&model.erroneous.sample(&mut rng), &mut vocab);
            assert!(
                !oracle.is_good(&bad),
                "{} case {i}: erroneous shape accepted: {}",
                model.name,
                bad.display(&vocab)
            );
        }
    }

    #[test]
    fn oracle_invariant_at_default_knobs() {
        for model in all(&FamilyParams::default()) {
            check_model(&model, 60);
        }
    }

    #[test]
    fn oracle_invariant_across_knob_grid() {
        for depth in [1, 2, 4] {
            for fanout in [0, 1, 3, 6] {
                for model in all(&FamilyParams { depth, fanout }) {
                    check_model(&model, 25);
                }
            }
        }
    }

    #[test]
    fn knobs_scale_the_ground_truth() {
        let mut v = Vocab::new();
        let small = locking(&FamilyParams {
            depth: 1,
            fanout: 0,
        })
        .ground_truth(&mut v);
        let big = locking(&FamilyParams {
            depth: 4,
            fanout: 3,
        })
        .ground_truth(&mut v);
        assert!(big.state_count() > small.state_count());
        assert!(big.transition_count() > small.transition_count());
        let thin = fd_lifecycle(&FamilyParams {
            depth: 1,
            fanout: 0,
        })
        .ground_truth(&mut v);
        let wide = fd_lifecycle(&FamilyParams {
            depth: 1,
            fanout: 6,
        })
        .ground_truth(&mut v);
        assert!(wide.transition_count() > thin.transition_count());
    }

    #[test]
    #[should_panic(expected = "family depth")]
    fn zero_depth_is_rejected() {
        locking(&FamilyParams {
            depth: 0,
            fanout: 1,
        });
    }

    #[test]
    fn families_have_distinct_names_and_seeds() {
        let models = all(&FamilyParams::default());
        let names: std::collections::HashSet<&str> =
            models.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names.len(), 3);
        for m in &models {
            assert!(!m.seed_ops.is_empty());
            assert!(!m.scenario_ops().is_empty());
        }
    }
}
