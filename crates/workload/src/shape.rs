//! Scenario shapes: distributions over per-object operation sequences.

use cable_trace::{Arg, Event, Trace, Var, Vocab};
use cable_util::rng::weighted_index;
use cable_util::rng::Rng;

/// One operation of a scenario shape: an operation name with an optional
/// atom argument (e.g. the selection name in `XtOwnSelection:'PRIMARY`).
///
/// The textual form accepted by the shape constructors is
/// `name` or `name:'ATOM`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSpec {
    /// The operation name.
    pub name: String,
    /// An atom constant attached to the event, if any.
    pub atom: Option<String>,
}

impl OpSpec {
    /// Parses `name` or `name:'ATOM`.
    ///
    /// # Panics
    ///
    /// Panics when the atom part is present but does not start with `'`
    /// (a typo in a spec definition).
    pub fn parse(spec: &str) -> OpSpec {
        match spec.split_once(':') {
            None => OpSpec {
                name: spec.to_owned(),
                atom: None,
            },
            Some((name, atom)) => {
                let atom = atom
                    .strip_prefix('\'')
                    .unwrap_or_else(|| panic!("atom in {spec:?} must start with '"));
                OpSpec {
                    name: name.to_owned(),
                    atom: Some(atom.to_owned()),
                }
            }
        }
    }

    /// Realises the op as an event on the given object argument.
    pub fn event(&self, object: Arg, vocab: &mut Vocab) -> Event {
        let mut args = vec![object];
        if let Some(atom) = &self.atom {
            args.push(Arg::Atom(vocab.atom(atom)));
        }
        Event::new(vocab.op(&self.name), args)
    }

    /// Pre-registers the op name (and atom, if any) in the vocabulary,
    /// so the op can later be realised through the read-only
    /// [`event_interned`](OpSpec::event_interned) — the contract parallel
    /// workload generation relies on.
    pub fn intern(&self, vocab: &mut Vocab) {
        vocab.op(&self.name);
        if let Some(atom) = &self.atom {
            vocab.atom(atom);
        }
    }

    /// Realises the op as an event without touching the vocabulary.
    ///
    /// # Panics
    ///
    /// Panics if the op was not [`intern`](OpSpec::intern)ed first.
    pub fn event_interned(&self, object: Arg, vocab: &Vocab) -> Event {
        let op = vocab
            .find_op(&self.name)
            .expect("op realised before interning");
        let mut args = vec![object];
        if let Some(atom) = &self.atom {
            args.push(Arg::Atom(
                vocab
                    .find_atom(atom)
                    .expect("atom realised before interning"),
            ));
        }
        Event::new(op, args)
    }
}

/// Realises an operation sequence as a canonical scenario trace over
/// `X` — the form the oracle and tests consume.
pub fn scenario_trace(ops: &[OpSpec], vocab: &mut Vocab) -> Trace {
    Trace::new(
        ops.iter()
            .map(|op| op.event(Arg::Var(Var(0)), vocab))
            .collect(),
    )
}

/// A parametric shape of per-object API usage, sampled into a concrete
/// operation sequence: `pre` operations, then a geometrically-distributed
/// number of iterations each drawing one operation from `body`, then
/// `post` operations.
///
/// A fixed sequence is a shape with an empty `body`.
///
/// # Examples
///
/// ```
/// use cable_workload::ScenarioShape;
///
/// // fopen (fread|fwrite)* fclose
/// let shape = ScenarioShape::with_loop(&["fopen"], &["fread", "fwrite"], 2.0, &["fclose"]);
/// let mut rng = cable_util::rng::seeded(1);
/// let ops = shape.sample(&mut rng);
/// assert_eq!(ops.first().map(|o| o.name.as_str()), Some("fopen"));
/// assert_eq!(ops.last().map(|o| o.name.as_str()), Some("fclose"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioShape {
    pre: Vec<OpSpec>,
    body: Vec<OpSpec>,
    mean_iterations: f64,
    post: Vec<OpSpec>,
}

fn parse_all(ops: &[&str]) -> Vec<OpSpec> {
    ops.iter().map(|s| OpSpec::parse(s)).collect()
}

impl ScenarioShape {
    /// A fixed operation sequence.
    pub fn fixed(ops: &[&str]) -> Self {
        ScenarioShape {
            pre: parse_all(ops),
            body: Vec::new(),
            mean_iterations: 0.0,
            post: Vec::new(),
        }
    }

    /// A sequence with a loop: `pre (body-choice)^N post` with
    /// `N ~ Geometric`, `E[N] = mean_iterations`.
    pub fn with_loop(pre: &[&str], body: &[&str], mean_iterations: f64, post: &[&str]) -> Self {
        assert!(mean_iterations >= 0.0, "mean must be non-negative");
        ScenarioShape {
            pre: parse_all(pre),
            body: parse_all(body),
            mean_iterations,
            post: parse_all(post),
        }
    }

    /// Samples a concrete operation sequence.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Vec<OpSpec> {
        let mut ops = self.pre.clone();
        if !self.body.is_empty() && self.mean_iterations > 0.0 {
            // Geometric with mean m: continue with probability m/(m+1).
            let p_continue = self.mean_iterations / (self.mean_iterations + 1.0);
            while rng.gen_range(0.0..1.0) < p_continue {
                let i = rng.gen_range(0..self.body.len());
                ops.push(self.body[i].clone());
            }
        }
        ops.extend(self.post.iter().cloned());
        ops
    }

    /// Every operation name the shape can emit.
    pub fn ops(&self) -> impl Iterator<Item = &str> {
        self.pre
            .iter()
            .chain(&self.body)
            .chain(&self.post)
            .map(|o| o.name.as_str())
    }

    /// Pre-registers every op the shape can emit; see [`OpSpec::intern`].
    pub fn intern(&self, vocab: &mut Vocab) {
        for op in self.pre.iter().chain(&self.body).chain(&self.post) {
            op.intern(vocab);
        }
    }
}

/// A weighted mixture of shapes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShapeMix {
    shapes: Vec<(f64, ScenarioShape)>,
}

impl ShapeMix {
    /// Creates a mixture from weighted shapes.
    pub fn new(shapes: Vec<(f64, ScenarioShape)>) -> Self {
        ShapeMix { shapes }
    }

    /// Tests whether the mixture has no shapes.
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// Samples an operation sequence from the mixture.
    ///
    /// # Panics
    ///
    /// Panics if the mixture is empty or all weights are zero.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Vec<OpSpec> {
        let weights: Vec<f64> = self.shapes.iter().map(|(w, _)| *w).collect();
        let i = weighted_index(&weights, rng).expect("non-empty shape mixture");
        self.shapes[i].1.sample(rng)
    }

    /// Every operation name the mixture can emit.
    pub fn ops(&self) -> impl Iterator<Item = &str> {
        self.shapes.iter().flat_map(|(_, s)| s.ops())
    }

    /// Pre-registers every op the mixture can emit; see [`OpSpec::intern`].
    pub fn intern(&self, vocab: &mut Vocab) {
        for (_, shape) in &self.shapes {
            shape.intern(vocab);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cable_util::rng::seeded;

    fn names(ops: &[OpSpec]) -> Vec<&str> {
        ops.iter().map(|o| o.name.as_str()).collect()
    }

    #[test]
    fn fixed_shape_is_constant() {
        let shape = ScenarioShape::fixed(&["a", "b"]);
        let mut rng = seeded(1);
        for _ in 0..5 {
            assert_eq!(names(&shape.sample(&mut rng)), vec!["a", "b"]);
        }
    }

    #[test]
    fn loop_mean_is_roughly_right() {
        let shape = ScenarioShape::with_loop(&["open"], &["read"], 3.0, &["close"]);
        let mut rng = seeded(2);
        let total: usize = (0..2000).map(|_| shape.sample(&mut rng).len() - 2).sum();
        let mean = total as f64 / 2000.0;
        assert!((2.5..3.5).contains(&mean), "mean {mean}");
    }

    #[test]
    fn loop_body_choices_vary() {
        let shape = ScenarioShape::with_loop(&[], &["r", "w"], 5.0, &[]);
        let mut rng = seeded(3);
        let mut saw_r = false;
        let mut saw_w = false;
        for _ in 0..50 {
            for op in shape.sample(&mut rng) {
                if op.name == "r" {
                    saw_r = true;
                }
                if op.name == "w" {
                    saw_w = true;
                }
            }
        }
        assert!(saw_r && saw_w);
    }

    #[test]
    fn mix_respects_weights() {
        let mix = ShapeMix::new(vec![
            (0.0, ScenarioShape::fixed(&["never"])),
            (1.0, ScenarioShape::fixed(&["always"])),
        ]);
        let mut rng = seeded(4);
        for _ in 0..20 {
            assert_eq!(names(&mix.sample(&mut rng)), vec!["always"]);
        }
    }

    #[test]
    fn ops_enumerates_everything() {
        let shape = ScenarioShape::with_loop(&["a"], &["b", "c"], 1.0, &["d"]);
        let ops: Vec<&str> = shape.ops().collect();
        assert_eq!(ops, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn op_spec_parses_atoms() {
        assert_eq!(
            OpSpec::parse("XtOwnSelection:'PRIMARY"),
            OpSpec {
                name: "XtOwnSelection".into(),
                atom: Some("PRIMARY".into()),
            }
        );
        assert_eq!(
            OpSpec::parse("plain"),
            OpSpec {
                name: "plain".into(),
                atom: None,
            }
        );
    }

    #[test]
    #[should_panic(expected = "must start with '")]
    fn op_spec_rejects_bad_atom() {
        let _ = OpSpec::parse("op:PRIMARY");
    }

    #[test]
    fn interned_realisation_matches_mutable_realisation() {
        let specs = vec![OpSpec::parse("own:'PRIMARY"), OpSpec::parse("read")];
        let mut v1 = Vocab::new();
        let events_mut: Vec<_> = specs
            .iter()
            .map(|s| s.event(Arg::Var(Var(0)), &mut v1))
            .collect();
        let mut v2 = Vocab::new();
        for s in &specs {
            s.intern(&mut v2);
        }
        let events_ro: Vec<_> = specs
            .iter()
            .map(|s| s.event_interned(Arg::Var(Var(0)), &v2))
            .collect();
        assert_eq!(events_mut, events_ro);
    }

    #[test]
    #[should_panic(expected = "before interning")]
    fn interned_realisation_requires_interning() {
        let v = Vocab::new();
        let _ = OpSpec::parse("nope").event_interned(Arg::Var(Var(0)), &v);
    }

    #[test]
    fn scenario_trace_carries_atoms() {
        let mut vocab = Vocab::new();
        let ops = vec![
            OpSpec::parse("own:'PRIMARY"),
            OpSpec::parse("disown:'PRIMARY"),
        ];
        let t = scenario_trace(&ops, &mut vocab);
        assert_eq!(
            t.display(&vocab).to_string(),
            "own(X,'PRIMARY) disown(X,'PRIMARY)"
        );
    }
}
