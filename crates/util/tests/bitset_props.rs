//! Property-based tests for `BitSet` against `BTreeSet` as a model.

use cable_util::BitSet;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn model_pair() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (
        prop::collection::vec(0usize..300, 0..60),
        prop::collection::vec(0usize..300, 0..60),
    )
}

fn to_sets(v: &[usize]) -> (BitSet, BTreeSet<usize>) {
    (v.iter().copied().collect(), v.iter().copied().collect())
}

proptest! {
    #[test]
    fn len_matches_model(v in prop::collection::vec(0usize..500, 0..100)) {
        let (b, m) = to_sets(&v);
        prop_assert_eq!(b.len(), m.len());
        prop_assert_eq!(b.is_empty(), m.is_empty());
    }

    #[test]
    fn iter_matches_model(v in prop::collection::vec(0usize..500, 0..100)) {
        let (b, m) = to_sets(&v);
        prop_assert_eq!(b.to_vec(), m.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn algebra_matches_model((x, y) in model_pair()) {
        let (bx, mx) = to_sets(&x);
        let (by, my) = to_sets(&y);
        let inter: Vec<usize> = mx.intersection(&my).copied().collect();
        let union: Vec<usize> = mx.union(&my).copied().collect();
        let diff: Vec<usize> = mx.difference(&my).copied().collect();
        let sym: Vec<usize> = mx.symmetric_difference(&my).copied().collect();
        prop_assert_eq!(bx.intersection(&by).to_vec(), inter);
        prop_assert_eq!(bx.union(&by).to_vec(), union);
        prop_assert_eq!(bx.difference(&by).to_vec(), diff);
        prop_assert_eq!(bx.symmetric_difference(&by).to_vec(), sym);
        prop_assert_eq!(bx.intersection_len(&by), bx.intersection(&by).len());
        prop_assert_eq!(bx.is_subset(&by), mx.is_subset(&my));
        prop_assert_eq!(bx.is_disjoint(&by), mx.is_disjoint(&my));
    }

    #[test]
    fn insert_remove_round_trip(v in prop::collection::vec(0usize..500, 0..100), x in 0usize..500) {
        let (mut b, mut m) = to_sets(&v);
        prop_assert_eq!(b.insert(x), m.insert(x));
        prop_assert_eq!(b.to_vec(), m.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(b.remove(x), m.remove(&x));
        prop_assert_eq!(b.to_vec(), m.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn first_last_match_model(v in prop::collection::vec(0usize..500, 0..100)) {
        let (b, m) = to_sets(&v);
        prop_assert_eq!(b.first(), m.iter().next().copied());
        prop_assert_eq!(b.last(), m.iter().next_back().copied());
    }

    #[test]
    fn union_is_lub((x, y) in model_pair()) {
        let (bx, _) = to_sets(&x);
        let (by, _) = to_sets(&y);
        let u = bx.union(&by);
        prop_assert!(bx.is_subset(&u));
        prop_assert!(by.is_subset(&u));
        let i = bx.intersection(&by);
        prop_assert!(i.is_subset(&bx));
        prop_assert!(i.is_subset(&by));
    }
}
