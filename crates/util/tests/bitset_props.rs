//! Randomized tests for `BitSet` against `BTreeSet` as a model.
//!
//! Each test runs a fixed number of seeded cases, so failures reproduce
//! exactly (`seeded(case)` pins the generator).

use cable_util::rng::{seeded, Rng, SmallRng};
use cable_util::BitSet;
use std::collections::BTreeSet;

fn gen_vec(rng: &mut SmallRng, universe: usize, max_len: usize) -> Vec<usize> {
    let n = rng.gen_range(0..max_len);
    (0..n).map(|_| rng.gen_range(0..universe)).collect()
}

fn to_sets(v: &[usize]) -> (BitSet, BTreeSet<usize>) {
    (v.iter().copied().collect(), v.iter().copied().collect())
}

#[test]
fn len_matches_model() {
    for case in 0..256u64 {
        let mut rng = seeded(case);
        let v = gen_vec(&mut rng, 500, 100);
        let (b, m) = to_sets(&v);
        assert_eq!(b.len(), m.len(), "case {case}");
        assert_eq!(b.is_empty(), m.is_empty(), "case {case}");
    }
}

#[test]
fn iter_matches_model() {
    for case in 0..256u64 {
        let mut rng = seeded(case);
        let v = gen_vec(&mut rng, 500, 100);
        let (b, m) = to_sets(&v);
        assert_eq!(b.to_vec(), m.into_iter().collect::<Vec<_>>(), "case {case}");
    }
}

#[test]
fn algebra_matches_model() {
    for case in 0..256u64 {
        let mut rng = seeded(case);
        let x = gen_vec(&mut rng, 300, 60);
        let y = gen_vec(&mut rng, 300, 60);
        let (bx, mx) = to_sets(&x);
        let (by, my) = to_sets(&y);
        let inter: Vec<usize> = mx.intersection(&my).copied().collect();
        let union: Vec<usize> = mx.union(&my).copied().collect();
        let diff: Vec<usize> = mx.difference(&my).copied().collect();
        let sym: Vec<usize> = mx.symmetric_difference(&my).copied().collect();
        assert_eq!(bx.intersection(&by).to_vec(), inter, "case {case}");
        assert_eq!(bx.union(&by).to_vec(), union, "case {case}");
        assert_eq!(bx.difference(&by).to_vec(), diff, "case {case}");
        assert_eq!(bx.symmetric_difference(&by).to_vec(), sym, "case {case}");
        assert_eq!(
            bx.intersection_len(&by),
            bx.intersection(&by).len(),
            "case {case}"
        );
        assert_eq!(bx.is_subset(&by), mx.is_subset(&my), "case {case}");
        assert_eq!(bx.is_disjoint(&by), mx.is_disjoint(&my), "case {case}");
    }
}

#[test]
fn insert_remove_round_trip() {
    for case in 0..256u64 {
        let mut rng = seeded(case);
        let v = gen_vec(&mut rng, 500, 100);
        let x = rng.gen_range(0usize..500);
        let (mut b, mut m) = to_sets(&v);
        assert_eq!(b.insert(x), m.insert(x), "case {case}");
        assert_eq!(
            b.to_vec(),
            m.iter().copied().collect::<Vec<_>>(),
            "case {case}"
        );
        assert_eq!(b.remove(x), m.remove(&x), "case {case}");
        assert_eq!(b.to_vec(), m.into_iter().collect::<Vec<_>>(), "case {case}");
    }
}

#[test]
fn first_last_match_model() {
    for case in 0..256u64 {
        let mut rng = seeded(case);
        let v = gen_vec(&mut rng, 500, 100);
        let (b, m) = to_sets(&v);
        assert_eq!(b.first(), m.iter().next().copied(), "case {case}");
        assert_eq!(b.last(), m.iter().next_back().copied(), "case {case}");
    }
}

#[test]
fn union_is_lub() {
    for case in 0..256u64 {
        let mut rng = seeded(case);
        let x = gen_vec(&mut rng, 300, 60);
        let y = gen_vec(&mut rng, 300, 60);
        let (bx, _) = to_sets(&x);
        let (by, _) = to_sets(&y);
        let u = bx.union(&by);
        assert!(bx.is_subset(&u), "case {case}");
        assert!(by.is_subset(&u), "case {case}");
        let i = bx.intersection(&by);
        assert!(i.is_subset(&bx), "case {case}");
        assert!(i.is_subset(&by), "case {case}");
    }
}
