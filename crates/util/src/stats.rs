//! Tiny summary statistics for the benchmark tables.

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Sample median (average of middle pair for even lengths); `None` for an
/// empty slice.
pub fn median(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let n = v.len();
    Some(if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    })
}

/// Minimum of a non-empty slice.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::min)
}

/// Maximum of a non-empty slice.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::max)
}

/// Population standard deviation; `None` for an empty slice.
pub fn stddev(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    Some(var.sqrt())
}

/// Ordinary least-squares fit `y = a + b·x`, returning `(a, b)`.
///
/// Used to check the paper's claim that lattice size grows roughly
/// linearly with the number of FA transitions. Returns `None` when fewer
/// than two points or zero variance in `x`.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    Some((a, b))
}

/// Coefficient of determination R² for a linear fit.
pub fn r_squared(points: &[(f64, f64)], a: f64, b: f64) -> f64 {
    let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
    let m = mean(&ys).unwrap_or(0.0);
    let ss_tot: f64 = ys.iter().map(|y| (y - m) * (y - m)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|&(x, y)| {
            let e = y - (a + b * x);
            e * e
        })
        .sum();
    if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(mean(&[]), None);
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn min_max_stddev() {
        assert_eq!(min(&[2.0, -1.0, 5.0]), Some(-1.0));
        assert_eq!(max(&[2.0, -1.0, 5.0]), Some(5.0));
        assert!(stddev(&[2.0, 2.0, 2.0]).unwrap().abs() < 1e-12);
        assert_eq!(stddev(&[]), None);
    }

    #[test]
    fn exact_linear_fit() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let (a, b) = linear_fit(&pts).unwrap();
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
        assert!((r_squared(&pts, a, b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_fit() {
        assert_eq!(linear_fit(&[(1.0, 2.0)]), None);
        assert_eq!(linear_fit(&[(1.0, 2.0), (1.0, 3.0)]), None);
    }
}
