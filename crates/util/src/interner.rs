//! String interning.
//!
//! Event names (`fopen`, `XtFree`, …) appear in every trace event and every
//! automaton transition, so they are interned once per [`Interner`] and
//! passed around as copyable [`Symbol`]s. Each subsystem owns its interner;
//! there is no global state.

use std::collections::HashMap;
use std::fmt;

/// An interned string. Only meaningful relative to the [`Interner`] that
/// produced it.
///
/// # Examples
///
/// ```
/// use cable_util::Interner;
///
/// let mut i = Interner::new();
/// let a = i.intern("fopen");
/// let b = i.intern("fopen");
/// assert_eq!(a, b);
/// assert_eq!(i.resolve(a), "fopen");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw index of this symbol in its interner.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a symbol from a raw index.
    ///
    /// Useful when symbols are used as dense table keys; resolving a symbol
    /// fabricated for an unrelated interner will panic or return an
    /// arbitrary string.
    pub fn from_index(index: usize) -> Self {
        Symbol(u32::try_from(index).expect("symbol index overflow"))
    }
}

/// An append-only string interner.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<String, Symbol>,
    strings: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning the existing symbol if seen before.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.strings.len()).expect("too many symbols"));
        self.strings.push(s.to_owned());
        self.map.insert(s.to_owned(), sym);
        sym
    }

    /// Looks up a symbol without interning.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Tests whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(symbol, string)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_str()))
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("y");
        let a2 = i.intern("x");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(a), "x");
        assert_eq!(i.resolve(b), "y");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("z"), None);
        let z = i.intern("z");
        assert_eq!(i.get("z"), Some(z));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_in_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let all: Vec<&str> = i.iter().map(|(_, s)| s).collect();
        assert_eq!(all, vec!["a", "b"]);
    }

    #[test]
    fn symbol_index_round_trip() {
        let mut i = Interner::new();
        let s = i.intern("roundtrip");
        assert_eq!(Symbol::from_index(s.index()), s);
    }
}
