//! Shared utilities for the Cable workspace.
//!
//! This crate provides the small, dependency-light building blocks that the
//! rest of the reproduction is built on:
//!
//! * [`BitSet`] — a dense, growable bit set used for FCA extents/intents and
//!   automaton state sets,
//! * [`Interner`] and [`Symbol`] — cheap interned strings for event names,
//! * [`rng`] — seeded deterministic random number helpers so that every
//!   experiment in the reproduction is replayable,
//! * [`stats`] — tiny summary-statistics helpers used by the benchmark
//!   tables.
//!
//! # Examples
//!
//! ```
//! use cable_util::BitSet;
//!
//! let mut a = BitSet::new();
//! a.insert(3);
//! a.insert(70);
//! let b: cable_util::BitSet = [3usize, 70, 71].into_iter().collect();
//! assert!(a.is_subset(&b));
//! assert_eq!(a.intersection(&b).len(), 2);
//! ```

pub mod bitset;
pub mod interner;
pub mod rng;
pub mod stats;

pub use bitset::BitSet;
pub use interner::{Interner, Symbol};
