//! A dense, growable bit set.
//!
//! [`BitSet`] stores a set of small `usize` values in packed 64-bit blocks.
//! It is the workhorse of the FCA implementation (concept extents and
//! intents) and of the automaton reachability analyses, so the subset and
//! intersection operations are the hot paths and operate block-wise.
//!
//! The representation invariant is that trailing all-zero blocks may exist
//! (capacity is allowed to exceed the largest element) but all operations
//! behave as if the set were infinite and zero-padded; equality and hashing
//! are normalised so that capacity differences are unobservable.

use std::fmt;
use std::hash::{Hash, Hasher};

const BITS: usize = 64;

/// A dense set of `usize` values backed by `u64` blocks.
///
/// # Examples
///
/// ```
/// use cable_util::BitSet;
///
/// let mut s = BitSet::new();
/// s.insert(2);
/// s.insert(900);
/// assert!(s.contains(2));
/// assert!(!s.contains(3));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 900]);
/// ```
#[derive(Clone, Default)]
pub struct BitSet {
    blocks: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        BitSet { blocks: Vec::new() }
    }

    /// Creates an empty set with capacity for values `< n` without
    /// reallocation.
    pub fn with_capacity(n: usize) -> Self {
        BitSet {
            blocks: vec![0; n.div_ceil(BITS)],
        }
    }

    /// Creates a set containing every value in `0..n`.
    ///
    /// # Examples
    ///
    /// ```
    /// let s = cable_util::BitSet::full(70);
    /// assert_eq!(s.len(), 70);
    /// assert!(s.contains(69));
    /// assert!(!s.contains(70));
    /// ```
    pub fn full(n: usize) -> Self {
        let mut s = BitSet::with_capacity(n);
        for blk in 0..n / BITS {
            s.blocks[blk] = !0;
        }
        let rem = n % BITS;
        if rem > 0 {
            s.blocks[n / BITS] = (1u64 << rem) - 1;
        }
        s
    }

    /// Creates a set containing a single value.
    pub fn singleton(v: usize) -> Self {
        let mut s = BitSet::new();
        s.insert(v);
        s
    }

    fn grow_for(&mut self, value: usize) {
        let need = value / BITS + 1;
        if self.blocks.len() < need {
            self.blocks.resize(need, 0);
        }
    }

    /// Inserts `value`, returning `true` if it was not already present.
    pub fn insert(&mut self, value: usize) -> bool {
        self.grow_for(value);
        let (blk, bit) = (value / BITS, value % BITS);
        let had = self.blocks[blk] & (1 << bit) != 0;
        self.blocks[blk] |= 1 << bit;
        !had
    }

    /// Removes `value`, returning `true` if it was present.
    pub fn remove(&mut self, value: usize) -> bool {
        let (blk, bit) = (value / BITS, value % BITS);
        if blk >= self.blocks.len() {
            return false;
        }
        let had = self.blocks[blk] & (1 << bit) != 0;
        self.blocks[blk] &= !(1 << bit);
        had
    }

    /// Tests whether `value` is in the set.
    pub fn contains(&self, value: usize) -> bool {
        let (blk, bit) = (value / BITS, value % BITS);
        blk < self.blocks.len() && self.blocks[blk] & (1 << bit) != 0
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Tests whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Removes all elements, keeping the allocation.
    pub fn clear(&mut self) {
        for b in &mut self.blocks {
            *b = 0;
        }
    }

    /// The smallest element, if any.
    pub fn first(&self) -> Option<usize> {
        for (i, &b) in self.blocks.iter().enumerate() {
            if b != 0 {
                return Some(i * BITS + b.trailing_zeros() as usize);
            }
        }
        None
    }

    /// The largest element, if any.
    pub fn last(&self) -> Option<usize> {
        for (i, &b) in self.blocks.iter().enumerate().rev() {
            if b != 0 {
                return Some(i * BITS + (BITS - 1 - b.leading_zeros() as usize));
            }
        }
        None
    }

    /// Tests whether `self ⊆ other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        for (i, &b) in self.blocks.iter().enumerate() {
            let o = other.blocks.get(i).copied().unwrap_or(0);
            if b & !o != 0 {
                return false;
            }
        }
        true
    }

    /// Tests whether `self ⊇ other`.
    pub fn is_superset(&self, other: &BitSet) -> bool {
        other.is_subset(self)
    }

    /// Tests whether the sets share no element.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .all(|(&a, &b)| a & b == 0)
    }

    /// Tests whether `self ⊂ other` (proper subset).
    pub fn is_proper_subset(&self, other: &BitSet) -> bool {
        self.is_subset(other) && !other.is_subset(self)
    }

    /// `self ∩ other` as a new set.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        let n = self.blocks.len().min(other.blocks.len());
        let blocks = (0..n).map(|i| self.blocks[i] & other.blocks[i]).collect();
        BitSet { blocks }
    }

    /// `self ∪ other` as a new set.
    pub fn union(&self, other: &BitSet) -> BitSet {
        let n = self.blocks.len().max(other.blocks.len());
        let blocks = (0..n)
            .map(|i| {
                self.blocks.get(i).copied().unwrap_or(0) | other.blocks.get(i).copied().unwrap_or(0)
            })
            .collect();
        BitSet { blocks }
    }

    /// `self \ other` as a new set.
    pub fn difference(&self, other: &BitSet) -> BitSet {
        let blocks = self
            .blocks
            .iter()
            .enumerate()
            .map(|(i, &b)| b & !other.blocks.get(i).copied().unwrap_or(0))
            .collect();
        BitSet { blocks }
    }

    /// Symmetric difference `self Δ other` as a new set.
    pub fn symmetric_difference(&self, other: &BitSet) -> BitSet {
        let n = self.blocks.len().max(other.blocks.len());
        let blocks = (0..n)
            .map(|i| {
                self.blocks.get(i).copied().unwrap_or(0) ^ other.blocks.get(i).copied().unwrap_or(0)
            })
            .collect();
        BitSet { blocks }
    }

    /// In-place `self ∩= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (i, b) in self.blocks.iter_mut().enumerate() {
            *b &= other.blocks.get(i).copied().unwrap_or(0);
        }
    }

    /// In-place `self ∪= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        if other.blocks.len() > self.blocks.len() {
            self.blocks.resize(other.blocks.len(), 0);
        }
        for (i, &b) in other.blocks.iter().enumerate() {
            self.blocks[i] |= b;
        }
    }

    /// In-place `self \= other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        for (i, b) in self.blocks.iter_mut().enumerate() {
            *b &= !other.blocks.get(i).copied().unwrap_or(0);
        }
    }

    /// Size of the intersection, without allocating.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .map(|(&a, &b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            block: 0,
            bits: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// Collects the elements into a `Vec` in increasing order.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// A canonical key usable for hashing/interning: the blocks with
    /// trailing zero blocks stripped.
    pub fn canonical_blocks(&self) -> &[u64] {
        let mut n = self.blocks.len();
        while n > 0 && self.blocks[n - 1] == 0 {
            n -= 1;
        }
        &self.blocks[..n]
    }
}

impl PartialEq for BitSet {
    fn eq(&self, other: &Self) -> bool {
        self.canonical_blocks() == other.canonical_blocks()
    }
}

impl Eq for BitSet {}

impl Hash for BitSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.canonical_blocks().hash(state);
    }
}

impl PartialOrd for BitSet {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BitSet {
    /// Lexicographic order on the canonical block representation. This is
    /// an arbitrary but total order used for deterministic sorting; it is
    /// *not* the subset order.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.canonical_blocks().cmp(other.canonical_blocks())
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut s = BitSet::new();
        for v in iter {
            s.insert(v);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<T: IntoIterator<Item = usize>>(&mut self, iter: T) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Iterator over the elements of a [`BitSet`] in increasing order.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a BitSet,
    block: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let bit = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.block * BITS + bit);
            }
            self.block += 1;
            if self.block >= self.set.blocks.len() {
                return None;
            }
            self.bits = self.set.blocks[self.block];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(4));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn grows_across_blocks() {
        let mut s = BitSet::new();
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(500);
        assert_eq!(s.len(), 4);
        assert_eq!(s.to_vec(), vec![0, 63, 64, 500]);
    }

    #[test]
    fn full_and_bounds() {
        let s = BitSet::full(130);
        assert_eq!(s.len(), 130);
        assert!(s.contains(129));
        assert!(!s.contains(130));
        assert_eq!(s.first(), Some(0));
        assert_eq!(s.last(), Some(129));
        assert_eq!(BitSet::full(0).len(), 0);
        assert_eq!(BitSet::full(64).len(), 64);
    }

    #[test]
    fn empty_first_last() {
        let s = BitSet::new();
        assert_eq!(s.first(), None);
        assert_eq!(s.last(), None);
    }

    #[test]
    fn subset_superset() {
        let a: BitSet = [1usize, 2, 65].into_iter().collect();
        let b: BitSet = [1usize, 2, 65, 100].into_iter().collect();
        assert!(a.is_subset(&b));
        assert!(b.is_superset(&a));
        assert!(!b.is_subset(&a));
        assert!(a.is_proper_subset(&b));
        assert!(!a.is_proper_subset(&a));
        // Differently-sized internal representations still compare correctly.
        let mut c = BitSet::with_capacity(1000);
        c.insert(1);
        c.insert(2);
        c.insert(65);
        assert!(c.is_subset(&a));
        assert!(a.is_subset(&c));
        assert_eq!(a, c);
    }

    #[test]
    fn set_algebra() {
        let a: BitSet = [1usize, 2, 3, 64].into_iter().collect();
        let b: BitSet = [2usize, 3, 4, 128].into_iter().collect();
        assert_eq!(a.intersection(&b).to_vec(), vec![2, 3]);
        assert_eq!(a.union(&b).to_vec(), vec![1, 2, 3, 4, 64, 128]);
        assert_eq!(a.difference(&b).to_vec(), vec![1, 64]);
        assert_eq!(a.symmetric_difference(&b).to_vec(), vec![1, 4, 64, 128]);
        assert_eq!(a.intersection_len(&b), 2);
        assert!(!a.is_disjoint(&b));
        let c = BitSet::singleton(999);
        assert!(a.is_disjoint(&c));
    }

    #[test]
    fn in_place_ops_match_owned() {
        let a: BitSet = [1usize, 2, 3, 64].into_iter().collect();
        let b: BitSet = [2usize, 3, 4, 128].into_iter().collect();
        let mut x = a.clone();
        x.intersect_with(&b);
        assert_eq!(x, a.intersection(&b));
        let mut y = a.clone();
        y.union_with(&b);
        assert_eq!(y, a.union(&b));
        let mut z = a.clone();
        z.difference_with(&b);
        assert_eq!(z, a.difference(&b));
    }

    #[test]
    fn equality_ignores_capacity() {
        let mut a = BitSet::with_capacity(1024);
        let mut b = BitSet::new();
        a.insert(3);
        b.insert(3);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn display_formats() {
        let s: BitSet = [1usize, 5].into_iter().collect();
        assert_eq!(format!("{s}"), "{1, 5}");
        assert_eq!(format!("{s:?}"), "{1, 5}");
        assert_eq!(format!("{}", BitSet::new()), "{}");
    }

    #[test]
    fn clear_keeps_working() {
        let mut s: BitSet = [1usize, 100].into_iter().collect();
        s.clear();
        assert!(s.is_empty());
        s.insert(7);
        assert_eq!(s.to_vec(), vec![7]);
    }
}
