//! Deterministic randomness.
//!
//! Everything stochastic in the reproduction — workload generation, the
//! Random labeling strategy, tie-breaking in Top-down/Bottom-up traversals —
//! is driven by a seeded [`rand::rngs::SmallRng`] obtained through this
//! module, so the whole experiment suite is replayable bit-for-bit.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a 64-bit seed.
///
/// # Examples
///
/// ```
/// use rand::Rng;
/// let mut a = cable_util::rng::seeded(7);
/// let mut b = cable_util::rng::seeded(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream label, so parallel
/// experiment arms do not share streams.
///
/// Uses the SplitMix64 finaliser, which is a bijection with good avalanche
/// behaviour.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fisher–Yates shuffles a slice in place with the given RNG.
pub fn shuffle<T, R: Rng>(slice: &mut [T], rng: &mut R) {
    for i in (1..slice.len()).rev() {
        let j = rng.gen_range(0..=i);
        slice.swap(i, j);
    }
}

/// Samples an index according to non-negative weights.
///
/// Returns `None` if all weights are zero or the slice is empty.
pub fn weighted_index<R: Rng>(weights: &[f64], rng: &mut R) -> Option<usize> {
    let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
    if total <= 0.0 {
        return None;
    }
    let mut x = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            continue;
        }
        if x < w {
            return Some(i);
        }
        x -= w;
    }
    // Floating point slack: fall back to the last positive weight.
    weights.iter().rposition(|&w| w > 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        let xs: Vec<u32> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn derive_seed_separates_streams() {
        assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
        // Deterministic.
        assert_eq!(derive_seed(5, 9), derive_seed(5, 9));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = seeded(3);
        shuffle(&mut v, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn weighted_index_respects_zeros() {
        let mut rng = seeded(11);
        for _ in 0..100 {
            let i = weighted_index(&[0.0, 2.0, 0.0, 1.0], &mut rng).unwrap();
            assert!(i == 1 || i == 3);
        }
        assert_eq!(weighted_index(&[0.0, 0.0], &mut rng), None);
        assert_eq!(weighted_index::<rand::rngs::SmallRng>(&[], &mut rng), None);
    }

    #[test]
    fn weighted_index_is_roughly_proportional() {
        let mut rng = seeded(17);
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[weighted_index(&[1.0, 3.0], &mut rng).unwrap()] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((2.0..4.0).contains(&ratio), "ratio {ratio}");
    }
}
