//! Deterministic randomness.
//!
//! Everything stochastic in the reproduction — workload generation, the
//! Random labeling strategy, tie-breaking in Top-down/Bottom-up traversals —
//! is driven by a seeded [`SmallRng`] obtained through this module, so the
//! whole experiment suite is replayable bit-for-bit.
//!
//! The generator is a hand-rolled xoshiro256** seeded through SplitMix64
//! (the standard seeding recipe), so the workspace carries no external
//! randomness dependency: the container this reproduction builds in has no
//! crates.io access, and determinism across toolchains matters more than
//! raw throughput here.

use std::ops::{Range, RangeInclusive};

/// The workspace random number generator: xoshiro256** with SplitMix64
/// seeding. Deterministic across platforms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator whose entire stream is a function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the full state, per the
        // xoshiro authors' recommendation.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SmallRng { s }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The operations the reproduction draws on a generator. Mirrors the
/// subset of `rand::Rng` the codebase used before going std-only.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in the given range (`lo..hi`, `lo..=hi`, or a
    /// floating-point half-open range).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types with a canonical uniform distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `0..n` with Lemire's widening-multiply
/// reduction (no modulo bias to speak of at these range sizes).
fn bounded(bits: u64, n: u64) -> u64 {
    ((bits as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng.next_u64(), span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + bounded(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let x = self.start + f64::sample(rng) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

/// Creates a deterministic RNG from a 64-bit seed.
///
/// # Examples
///
/// ```
/// use cable_util::rng::Rng;
/// let mut a = cable_util::rng::seeded(7);
/// let mut b = cable_util::rng::seeded(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream label, so parallel
/// experiment arms do not share streams.
///
/// Uses the SplitMix64 finaliser, which is a bijection with good avalanche
/// behaviour.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A generator for the `index`-th parallel stream of a parent seed:
/// `seeded(derive_seed(parent, index))`. This is how fan-out stages give
/// each unit of work its own replayable stream — the streams depend only
/// on `(parent, index)`, never on which worker runs the unit or in what
/// order, so parallel generation is bit-identical to sequential.
pub fn stream(parent: u64, index: u64) -> SmallRng {
    seeded(derive_seed(parent, index))
}

/// Fisher–Yates shuffles a slice in place with the given RNG.
pub fn shuffle<T, R: Rng>(slice: &mut [T], rng: &mut R) {
    for i in (1..slice.len()).rev() {
        let j = rng.gen_range(0..=i);
        slice.swap(i, j);
    }
}

/// Samples an index according to non-negative weights.
///
/// Returns `None` if all weights are zero or the slice is empty.
pub fn weighted_index<R: Rng>(weights: &[f64], rng: &mut R) -> Option<usize> {
    let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
    if total <= 0.0 {
        return None;
    }
    let mut x = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            continue;
        }
        if x < w {
            return Some(i);
        }
        x -= w;
    }
    // Floating point slack: fall back to the last positive weight.
    weights.iter().rposition(|&w| w > 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        let xs: Vec<u32> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = seeded(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5usize..=5);
            assert_eq!(y, 5);
            let z = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = seeded(13);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = seeded(5);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn derive_seed_separates_streams() {
        assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
        // Deterministic.
        assert_eq!(derive_seed(5, 9), derive_seed(5, 9));
    }

    #[test]
    fn stream_is_seed_and_index_stable() {
        let mut a = stream(42, 3);
        let mut b = stream(42, 3);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        let mut c = stream(42, 4);
        assert_ne!(stream(42, 3).gen::<u64>(), c.gen::<u64>());
        assert_eq!(stream(9, 1), seeded(derive_seed(9, 1)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = seeded(3);
        shuffle(&mut v, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn weighted_index_respects_zeros() {
        let mut rng = seeded(11);
        for _ in 0..100 {
            let i = weighted_index(&[0.0, 2.0, 0.0, 1.0], &mut rng).unwrap();
            assert!(i == 1 || i == 3);
        }
        assert_eq!(weighted_index(&[0.0, 0.0], &mut rng), None);
        assert_eq!(weighted_index::<SmallRng>(&[], &mut rng), None);
    }

    #[test]
    fn weighted_index_is_roughly_proportional() {
        let mut rng = seeded(17);
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[weighted_index(&[1.0, 3.0], &mut rng).unwrap()] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((2.0..4.0).contains(&ratio), "ratio {ratio}");
    }
}
