//! Randomized tests for the trace model: the text format round-trips, and
//! canonicalisation behaves like an α-renaming.
//!
//! Each test runs a fixed number of seeded cases, so failures reproduce
//! exactly (`seeded(case)` pins the generator).

use cable_trace::{canonicalize, Arg, Event, ObjId, Trace, TraceSet, Var, Vocab};
use cable_util::rng::{seeded, Rng, SmallRng};

/// A random event over a small vocabulary: op index plus arguments drawn
/// from object ids, variables, and atoms.
fn gen_event(rng: &mut SmallRng) -> (usize, Vec<u8>) {
    // Argument codes: 0..=3 object ids, 4..=6 variables, 7..=8 atoms.
    let op = rng.gen_range(0usize..5);
    let n_args = rng.gen_range(0usize..3);
    let args = (0..n_args).map(|_| rng.gen_range(0u8..9)).collect();
    (op, args)
}

fn gen_events(rng: &mut SmallRng, max_len: usize) -> Vec<(usize, Vec<u8>)> {
    let n = rng.gen_range(0..max_len);
    (0..n).map(|_| gen_event(rng)).collect()
}

fn realize(events: &[(usize, Vec<u8>)], vocab: &mut Vocab) -> Trace {
    Trace::new(
        events
            .iter()
            .map(|(op, args)| {
                Event::new(
                    vocab.op(&format!("op{op}")),
                    args.iter()
                        .map(|&code| match code {
                            0..=3 => Arg::Obj(ObjId(code as u64 * 7 + 1)),
                            4..=6 => Arg::Var(Var(code - 4)),
                            _ => Arg::Atom(vocab.atom(&format!("A{code}"))),
                        })
                        .collect(),
                )
            })
            .collect(),
    )
}

#[test]
fn display_parse_round_trip() {
    for case in 0..256u64 {
        let mut rng = seeded(case);
        let raw = gen_events(&mut rng, 8);
        let mut vocab = Vocab::new();
        let trace = realize(&raw, &mut vocab);
        let shown = trace.display(&vocab).to_string();
        let reparsed = Trace::parse(&shown, &mut vocab).expect("own output parses");
        assert_eq!(
            trace.event_key(),
            reparsed.event_key(),
            "case {case}: {shown}"
        );
    }
}

#[test]
fn canonicalize_is_idempotent() {
    for case in 0..256u64 {
        let mut rng = seeded(case);
        let raw = gen_events(&mut rng, 8);
        let mut vocab = Vocab::new();
        let trace = realize(&raw, &mut vocab);
        let once = canonicalize(&trace);
        let twice = canonicalize(&once);
        assert_eq!(once, twice, "case {case}");
        // No object ids survive canonicalisation.
        assert!(once.iter().all(|e| e.objects().count() == 0), "case {case}");
    }
}

#[test]
fn canonicalize_is_invariant_under_object_renaming() {
    for case in 0..256u64 {
        let mut rng = seeded(case);
        let raw = gen_events(&mut rng, 8);
        let offset = rng.gen_range(1u64..1000);
        let mut vocab = Vocab::new();
        let trace = realize(&raw, &mut vocab);
        // Injectively rename every object id.
        let renamed = Trace::new(
            trace
                .iter()
                .map(|e| {
                    Event::new(
                        e.op,
                        e.args
                            .iter()
                            .map(|&a| match a {
                                Arg::Obj(ObjId(o)) => Arg::Obj(ObjId(o * 1009 + offset)),
                                other => other,
                            })
                            .collect(),
                    )
                })
                .collect(),
        );
        assert_eq!(canonicalize(&trace), canonicalize(&renamed), "case {case}");
    }
}

#[test]
fn identical_classes_partition() {
    for case in 0..256u64 {
        let mut rng = seeded(case);
        let n_traces = rng.gen_range(0usize..10);
        let raw: Vec<Vec<(usize, Vec<u8>)>> =
            (0..n_traces).map(|_| gen_events(&mut rng, 4)).collect();
        let mut vocab = Vocab::new();
        let set: TraceSet = raw.iter().map(|t| realize(t, &mut vocab)).collect();
        let classes = set.identical_classes();
        // Every trace in exactly one class.
        let mut seen = std::collections::HashSet::new();
        for class in &classes {
            for &m in &class.members {
                assert!(seen.insert(m), "case {case}: trace in two classes");
                assert_eq!(
                    set.trace(m).event_key(),
                    set.trace(class.representative).event_key(),
                    "case {case}"
                );
            }
        }
        assert_eq!(seen.len(), set.len(), "case {case}");
        // Distinct representatives have distinct keys.
        let keys: std::collections::HashSet<_> = classes
            .iter()
            .map(|c| set.trace(c.representative).event_key().to_vec())
            .collect();
        assert_eq!(keys.len(), classes.len(), "case {case}");
    }
}
