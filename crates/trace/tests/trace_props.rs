//! Property tests for the trace model: the text format round-trips, and
//! canonicalisation behaves like an α-renaming.

use cable_trace::{canonicalize, Arg, Event, ObjId, Trace, TraceSet, Var, Vocab};
use proptest::prelude::*;

/// A random event over a small vocabulary: op index plus arguments drawn
/// from object ids, variables, and atoms.
fn arb_event() -> impl Strategy<Value = (usize, Vec<u8>)> {
    // Argument codes: 0..=3 object ids, 4..=6 variables, 7..=8 atoms.
    (0usize..5, prop::collection::vec(0u8..9, 0..3))
}

fn realize(events: &[(usize, Vec<u8>)], vocab: &mut Vocab) -> Trace {
    Trace::new(
        events
            .iter()
            .map(|(op, args)| {
                Event::new(
                    vocab.op(&format!("op{op}")),
                    args.iter()
                        .map(|&code| match code {
                            0..=3 => Arg::Obj(ObjId(code as u64 * 7 + 1)),
                            4..=6 => Arg::Var(Var(code - 4)),
                            _ => Arg::Atom(vocab.atom(&format!("A{code}"))),
                        })
                        .collect(),
                )
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_parse_round_trip(raw in prop::collection::vec(arb_event(), 0..8)) {
        let mut vocab = Vocab::new();
        let trace = realize(&raw, &mut vocab);
        let shown = trace.display(&vocab).to_string();
        let reparsed = Trace::parse(&shown, &mut vocab).expect("own output parses");
        prop_assert_eq!(trace.event_key(), reparsed.event_key(), "{}", shown);
    }

    #[test]
    fn canonicalize_is_idempotent(raw in prop::collection::vec(arb_event(), 0..8)) {
        let mut vocab = Vocab::new();
        let trace = realize(&raw, &mut vocab);
        let once = canonicalize(&trace);
        let twice = canonicalize(&once);
        prop_assert_eq!(&once, &twice);
        // No object ids survive canonicalisation.
        prop_assert!(once.iter().all(|e| e.objects().count() == 0));
    }

    #[test]
    fn canonicalize_is_invariant_under_object_renaming(
        raw in prop::collection::vec(arb_event(), 0..8),
        offset in 1u64..1000,
    ) {
        let mut vocab = Vocab::new();
        let trace = realize(&raw, &mut vocab);
        // Injectively rename every object id.
        let renamed = Trace::new(
            trace
                .iter()
                .map(|e| {
                    Event::new(
                        e.op,
                        e.args
                            .iter()
                            .map(|&a| match a {
                                Arg::Obj(ObjId(o)) => Arg::Obj(ObjId(o * 1009 + offset)),
                                other => other,
                            })
                            .collect(),
                    )
                })
                .collect(),
        );
        prop_assert_eq!(canonicalize(&trace), canonicalize(&renamed));
    }

    #[test]
    fn identical_classes_partition(
        raw in prop::collection::vec(prop::collection::vec(arb_event(), 0..4), 0..10),
    ) {
        let mut vocab = Vocab::new();
        let set: TraceSet = raw.iter().map(|t| realize(t, &mut vocab)).collect();
        let classes = set.identical_classes();
        // Every trace in exactly one class.
        let mut seen = std::collections::HashSet::new();
        for class in &classes {
            for &m in &class.members {
                prop_assert!(seen.insert(m), "trace in two classes");
                prop_assert_eq!(
                    set.trace(m).event_key(),
                    set.trace(class.representative).event_key()
                );
            }
        }
        prop_assert_eq!(seen.len(), set.len());
        // Distinct representatives have distinct keys.
        let keys: std::collections::HashSet<_> = classes
            .iter()
            .map(|c| set.trace(c.representative).event_key().to_vec())
            .collect();
        prop_assert_eq!(keys.len(), classes.len());
    }
}
