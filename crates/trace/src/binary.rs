//! A compact binary encoding for vocabularies, traces, and trace sets.
//!
//! This is the payload format of the `cable-store` corpus frames: the
//! framing layer there supplies lengths and checksums, so the encodings
//! here are bare and positional. Integers are LEB128 varints (small ids
//! dominate), strings are length-prefixed UTF-8, and symbols are encoded
//! as their interner indices — a trace encoding is therefore only
//! meaningful next to the [`Vocab`] it was encoded against, and the
//! vocabulary must be decoded (or interned in the same order) first.
//!
//! Decoding is defensive rather than trusting: every read is
//! bounds-checked, symbol indices are validated against the vocabulary,
//! and malformed input yields a [`DecodeError`] instead of a panic. The
//! store's fault-injection tests feed corrupted bytes straight into
//! these decoders.
//!
//! # Examples
//!
//! ```
//! use cable_trace::{binary, Trace, TraceSet, Vocab};
//!
//! let mut v = Vocab::new();
//! let mut set = TraceSet::new();
//! set.push(Trace::parse("fopen(X) fread(X,'MODE) fclose(#7)", &mut v).unwrap());
//!
//! let vocab_bytes = binary::encode_vocab(&v);
//! let set_bytes = binary::encode_trace_set(&set);
//!
//! let v2 = binary::decode_vocab(&vocab_bytes).unwrap();
//! let set2 = binary::decode_trace_set(&set_bytes, &v2).unwrap();
//! assert_eq!(set2.trace(cable_trace::TraceId(0)).display(&v2).to_string(),
//!            "fopen(X) fread(X,'MODE) fclose(#7)");
//! ```

use crate::event::{Arg, Event, ObjId, Var};
use crate::set::TraceSet;
use crate::trace::Trace;
use crate::vocab::Vocab;
use cable_util::Symbol;
use std::error::Error;
use std::fmt;

/// Argument tag bytes of the encoding.
const TAG_OBJ: u8 = 0;
const TAG_VAR: u8 = 1;
const TAG_ATOM: u8 = 2;

/// Error decoding the binary trace format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset within the input buffer where decoding failed.
    pub offset: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "binary decode error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl Error for DecodeError {}

/// A positional reader over a byte buffer with bounds-checked reads.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// The current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Tests whether the whole buffer has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn err(&self, message: impl Into<String>) -> DecodeError {
        DecodeError {
            offset: self.pos,
            message: message.into(),
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 63 && b > 1 {
                return Err(self.err("varint overflows u64"));
            }
            value |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Reads a varint that must fit a `usize` and stay under `limit` —
    /// the guard that keeps a corrupted length from triggering a huge
    /// allocation.
    pub fn len(&mut self, limit: usize, what: &str) -> Result<usize, DecodeError> {
        let n = self.varint()?;
        let n = usize::try_from(n).map_err(|_| self.err(format!("{what} count overflows")))?;
        if n > limit {
            return Err(self.err(format!("{what} count {n} exceeds limit {limit}")));
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<&'a str, DecodeError> {
        let n = self.len(self.remaining(), "string byte")?;
        let bytes = &self.buf[self.pos..self.pos + n];
        let s = std::str::from_utf8(bytes).map_err(|_| self.err("string is not UTF-8"))?;
        self.pos += n;
        Ok(s)
    }
}

/// An append-only byte buffer with the writer half of the encoding.
#[derive(Debug, Clone, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Appends a LEB128 varint.
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(b);
                return;
            }
            self.buf.push(b | 0x80);
        }
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.varint(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Encodes a vocabulary: the operation strings, then the atom strings,
/// each in interning order so that decoding reproduces identical
/// [`Symbol`] indices.
pub fn encode_vocab(vocab: &Vocab) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.varint(vocab.op_count() as u64);
    for (_, name) in vocab.ops() {
        w.string(name);
    }
    w.varint(vocab.atom_count() as u64);
    for (_, name) in vocab.atoms() {
        w.string(name);
    }
    w.into_bytes()
}

/// Decodes a vocabulary encoded by [`encode_vocab`].
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated or malformed input.
pub fn decode_vocab(bytes: &[u8]) -> Result<Vocab, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let mut vocab = Vocab::new();
    let n_ops = r.len(r.remaining(), "operation")?;
    for _ in 0..n_ops {
        vocab.op(r.string()?);
    }
    let n_atoms = r.len(r.remaining(), "atom")?;
    for _ in 0..n_atoms {
        vocab.atom(r.string()?);
    }
    if !r.is_exhausted() {
        return Err(DecodeError {
            offset: r.position(),
            message: "trailing bytes after vocabulary".into(),
        });
    }
    Ok(vocab)
}

/// Encodes one trace into `w`: provenance, event count, then each event
/// as `op` symbol index, argument count, and tagged arguments.
pub fn encode_trace(w: &mut ByteWriter, trace: &Trace) {
    match trace.provenance() {
        None => w.u8(0),
        Some(p) => {
            w.u8(1);
            w.varint(u64::from(p));
        }
    }
    w.varint(trace.len() as u64);
    for event in trace.events() {
        w.varint(event.op.index() as u64);
        w.varint(event.args.len() as u64);
        for arg in &event.args {
            match arg {
                Arg::Obj(ObjId(o)) => {
                    w.u8(TAG_OBJ);
                    w.varint(*o);
                }
                Arg::Var(Var(v)) => {
                    w.u8(TAG_VAR);
                    w.u8(*v);
                }
                Arg::Atom(a) => {
                    w.u8(TAG_ATOM);
                    w.varint(a.index() as u64);
                }
            }
        }
    }
}

/// Decodes one trace from `r`, validating every symbol index against
/// `vocab`.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated input, bad tags, or symbol
/// indices outside the vocabulary.
pub fn decode_trace(r: &mut ByteReader<'_>, vocab: &Vocab) -> Result<Trace, DecodeError> {
    let provenance = match r.u8()? {
        0 => None,
        1 => Some(u32::try_from(r.varint()?).map_err(|_| DecodeError {
            offset: r.position(),
            message: "provenance overflows u32".into(),
        })?),
        other => {
            return Err(DecodeError {
                offset: r.position(),
                message: format!("bad provenance tag {other}"),
            })
        }
    };
    let n_events = r.len(r.remaining(), "event")?;
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let op = r.varint()? as usize;
        if op >= vocab.op_count() {
            return Err(DecodeError {
                offset: r.position(),
                message: format!("operation symbol {op} outside vocabulary"),
            });
        }
        let n_args = r.len(r.remaining(), "argument")?;
        let mut args = Vec::with_capacity(n_args);
        for _ in 0..n_args {
            let arg = match r.u8()? {
                TAG_OBJ => Arg::Obj(ObjId(r.varint()?)),
                TAG_VAR => Arg::Var(Var(r.u8()?)),
                TAG_ATOM => {
                    let a = r.varint()? as usize;
                    if a >= vocab.atom_count() {
                        return Err(DecodeError {
                            offset: r.position(),
                            message: format!("atom symbol {a} outside vocabulary"),
                        });
                    }
                    Arg::Atom(Symbol::from_index(a))
                }
                other => {
                    return Err(DecodeError {
                        offset: r.position(),
                        message: format!("bad argument tag {other}"),
                    })
                }
            };
            args.push(arg);
        }
        events.push(Event::new(Symbol::from_index(op), args));
    }
    Ok(match provenance {
        Some(p) => Trace::with_provenance(events, p),
        None => Trace::new(events),
    })
}

/// Encodes a whole trace set: a count, then each trace.
pub fn encode_trace_set(set: &TraceSet) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.varint(set.len() as u64);
    for (_, t) in set.iter() {
        encode_trace(&mut w, t);
    }
    w.into_bytes()
}

/// Decodes a trace set encoded by [`encode_trace_set`].
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated or malformed input, or trailing
/// bytes.
pub fn decode_trace_set(bytes: &[u8], vocab: &Vocab) -> Result<TraceSet, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let n = r.len(r.remaining(), "trace")?;
    let mut set = TraceSet::new();
    for _ in 0..n {
        set.push(decode_trace(&mut r, vocab)?);
    }
    if !r.is_exhausted() {
        return Err(DecodeError {
            offset: r.position(),
            message: "trailing bytes after trace set".into(),
        });
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::TraceId;

    fn sample(v: &mut Vocab) -> TraceSet {
        let mut set = TraceSet::new();
        for line in [
            "fopen(X) fread(X) fclose(X)",
            "f() g(X,Y) h(#3,'ATOM)",
            "lone",
            "deep(#18446744073709551615,'Z,V7)",
        ] {
            set.push(Trace::parse(line, v).unwrap());
        }
        let mut with_prov = Trace::parse("p(X)", v).unwrap();
        with_prov.set_provenance(42);
        set.push(with_prov);
        set
    }

    #[test]
    fn vocab_round_trip_preserves_symbols() {
        let mut v = Vocab::new();
        let _ = sample(&mut v);
        let decoded = decode_vocab(&encode_vocab(&v)).unwrap();
        assert_eq!(decoded.op_count(), v.op_count());
        assert_eq!(decoded.atom_count(), v.atom_count());
        for (sym, name) in v.ops() {
            assert_eq!(decoded.find_op(name), Some(sym));
        }
        for (sym, name) in v.atoms() {
            assert_eq!(decoded.find_atom(name), Some(sym));
        }
    }

    #[test]
    fn trace_set_round_trip_is_exact() {
        let mut v = Vocab::new();
        let set = sample(&mut v);
        let decoded = decode_trace_set(&encode_trace_set(&set), &v).unwrap();
        assert_eq!(decoded.len(), set.len());
        for (id, t) in set.iter() {
            assert_eq!(decoded.trace(id), t, "trace {id}");
        }
        assert_eq!(decoded.trace(TraceId(4)).provenance(), Some(42));
    }

    #[test]
    fn varints_round_trip_at_the_edges() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut w = ByteWriter::new();
            w.varint(v);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(r.varint().unwrap(), v);
            assert!(r.is_exhausted());
        }
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let mut v = Vocab::new();
        let set = sample(&mut v);
        let bytes = encode_trace_set(&set);
        for cut in 0..bytes.len() {
            assert!(
                decode_trace_set(&bytes[..cut], &v).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn corrupted_bytes_never_panic() {
        let mut v = Vocab::new();
        let set = sample(&mut v);
        let bytes = encode_trace_set(&set);
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xff] {
                let mut bad = bytes.clone();
                bad[i] ^= flip;
                // Either decodes to some set or errors; must not panic.
                let _ = decode_trace_set(&bad, &v);
            }
        }
    }

    #[test]
    fn symbol_indices_are_validated() {
        let mut v = Vocab::new();
        let t = Trace::parse("f(X)", &mut v).unwrap();
        let mut w = ByteWriter::new();
        encode_trace(&mut w, &t);
        let bytes = w.into_bytes();
        let empty = Vocab::new();
        let mut r = ByteReader::new(&bytes);
        let e = decode_trace(&mut r, &empty).unwrap_err();
        assert!(e.message.contains("outside vocabulary"), "{e}");
    }

    #[test]
    fn huge_lengths_are_rejected_without_allocation() {
        // A trace-set count of u64::MAX must not try to reserve memory.
        let mut w = ByteWriter::new();
        w.varint(u64::MAX);
        let e = decode_trace_set(&w.into_bytes(), &Vocab::new()).unwrap_err();
        assert!(e.message.contains("exceeds limit"), "{e}");
    }
}
