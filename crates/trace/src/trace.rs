//! Traces: finite sequences of events with provenance.

use crate::event::Event;
use crate::vocab::Vocab;
use std::fmt;

/// A finite sequence of [`Event`]s.
///
/// Traces serve three roles in the paper, all with the same representation:
/// raw *program execution traces* (over [`crate::ObjId`]s), *scenario
/// traces* extracted by the miner's front end, and *violation traces*
/// reported by a verifier (both over canonical [`crate::Var`]s).
///
/// # Examples
///
/// ```
/// use cable_trace::{Trace, Vocab};
///
/// let mut v = Vocab::new();
/// let t = Trace::parse("popen(X) fread(X) pclose(X)", &mut v).unwrap();
/// assert_eq!(t.len(), 3);
/// assert_eq!(t.events()[1].display(&v).to_string(), "fread(X)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Trace {
    events: Vec<Event>,
    /// Which program (by index in the workload) this trace came from, if
    /// known. Used for bug reporting.
    provenance: Option<u32>,
}

impl Trace {
    /// Creates a trace from events.
    pub fn new(events: Vec<Event>) -> Self {
        Trace {
            events,
            provenance: None,
        }
    }

    /// Creates an empty trace.
    pub fn empty() -> Self {
        Trace::new(Vec::new())
    }

    /// Creates a trace with provenance (program index).
    pub fn with_provenance(events: Vec<Event>, program: u32) -> Self {
        Trace {
            events,
            provenance: Some(program),
        }
    }

    /// The events, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Tests whether the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The originating program index, if known.
    pub fn provenance(&self) -> Option<u32> {
        self.provenance
    }

    /// Sets the originating program index.
    pub fn set_provenance(&mut self, program: u32) {
        self.provenance = Some(program);
    }

    /// Appends an event.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Iterates over the events.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// A key identifying the event sequence (ignoring provenance); two
    /// traces with equal keys are "identical traces" in the paper's sense.
    pub fn event_key(&self) -> &[Event] {
        &self.events
    }

    /// Renders the trace against a vocabulary, events separated by spaces.
    pub fn display<'a>(&'a self, vocab: &'a Vocab) -> DisplayTrace<'a> {
        DisplayTrace { trace: self, vocab }
    }
}

impl FromIterator<Event> for Trace {
    fn from_iter<T: IntoIterator<Item = Event>>(iter: T) -> Self {
        Trace::new(iter.into_iter().collect())
    }
}

impl Extend<Event> for Trace {
    fn extend<T: IntoIterator<Item = Event>>(&mut self, iter: T) {
        self.events.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Displays a [`Trace`] using a [`Vocab`]; created by [`Trace::display`].
#[derive(Debug, Clone, Copy)]
pub struct DisplayTrace<'a> {
    trace: &'a Trace,
    vocab: &'a Vocab,
}

impl fmt::Display for DisplayTrace<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.trace.events.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", e.display(self.vocab))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Arg, Event, Var};

    #[test]
    fn build_and_display() {
        let mut v = Vocab::new();
        let f = v.op("f");
        let g = v.op("g");
        let mut t = Trace::empty();
        assert!(t.is_empty());
        t.push(Event::on_var(f, Var(0)));
        t.extend([Event::new(g, vec![Arg::Var(Var(0)), Arg::Var(Var(1))])]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.display(&v).to_string(), "f(X) g(X,Y)");
    }

    #[test]
    fn provenance_is_ignored_by_event_key() {
        let mut v = Vocab::new();
        let f = v.op("f");
        let a = Trace::with_provenance(vec![Event::on_var(f, Var(0))], 3);
        let b = Trace::new(vec![Event::on_var(f, Var(0))]);
        assert_eq!(a.event_key(), b.event_key());
        assert_eq!(a.provenance(), Some(3));
        assert_eq!(b.provenance(), None);
    }

    #[test]
    fn from_iterator() {
        let mut v = Vocab::new();
        let f = v.op("f");
        let t: Trace = (0..3).map(|i| Event::on_var(f, Var(i))).collect();
        assert_eq!(t.len(), 3);
        assert_eq!(t.iter().count(), 3);
    }
}
