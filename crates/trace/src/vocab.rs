//! The shared vocabulary of operation and atom names.

use cable_util::{Interner, Symbol};

/// Interns the operation names (`fopen`, `XtFree`, …) and atom constants
/// appearing in events.
///
/// A [`Vocab`] is shared by the traces, the automata whose transition
/// labels mention the same operations, and the miner; everything that
/// prints events takes a `&Vocab`.
///
/// # Examples
///
/// ```
/// use cable_trace::Vocab;
///
/// let mut v = Vocab::new();
/// let fopen = v.op("fopen");
/// assert_eq!(v.op_name(fopen), "fopen");
/// assert_eq!(v.op("fopen"), fopen);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Vocab {
    ops: Interner,
    atoms: Interner,
}

impl Vocab {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an operation name.
    pub fn op(&mut self, name: &str) -> Symbol {
        self.ops.intern(name)
    }

    /// Looks up an operation name without interning.
    pub fn find_op(&self, name: &str) -> Option<Symbol> {
        self.ops.get(name)
    }

    /// Resolves an operation symbol.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this vocabulary.
    pub fn op_name(&self, sym: Symbol) -> &str {
        self.ops.resolve(sym)
    }

    /// Interns an atom constant.
    pub fn atom(&mut self, name: &str) -> Symbol {
        self.atoms.intern(name)
    }

    /// Looks up an atom without interning.
    pub fn find_atom(&self, name: &str) -> Option<Symbol> {
        self.atoms.get(name)
    }

    /// Resolves an atom symbol.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this vocabulary.
    pub fn atom_name(&self, sym: Symbol) -> &str {
        self.atoms.resolve(sym)
    }

    /// Number of distinct operations interned.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Iterates over all interned operations.
    pub fn ops(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.ops.iter()
    }

    /// Number of distinct atoms interned.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Iterates over all interned atoms.
    pub fn atoms(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.atoms.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_and_atoms_are_separate_namespaces() {
        let mut v = Vocab::new();
        let op = v.op("name");
        let atom = v.atom("name");
        // Same index in different interners is fine; resolution must go
        // through the right accessor.
        assert_eq!(v.op_name(op), "name");
        assert_eq!(v.atom_name(atom), "name");
        assert_eq!(v.op_count(), 1);
    }

    #[test]
    fn find_does_not_intern() {
        let mut v = Vocab::new();
        assert!(v.find_op("f").is_none());
        let f = v.op("f");
        assert_eq!(v.find_op("f"), Some(f));
    }
}
