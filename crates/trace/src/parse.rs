//! A line-oriented text format for traces.
//!
//! One trace per line; events separated by whitespace; each event is
//! `op(arg,arg,…)` or bare `op` (equivalent to `op()`). Arguments:
//!
//! * `X`, `Y`, `Z`, `V7` — canonical variables,
//! * `#42` — a runtime object identity,
//! * `'NAME` — an atom constant.
//!
//! Lines that are empty or start with `;` are skipped by the trace-set
//! parser.

use crate::event::{Arg, Event, ObjId, Var};
use crate::set::TraceSet;
use crate::trace::Trace;
use crate::vocab::Vocab;
use std::error::Error;
use std::fmt;

/// Error parsing the trace text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based input line of the error, when parsing multi-line text
    /// ([`TraceSet::parse`]); `0` when parsing a single line whose
    /// position in a larger input is unknown ([`Trace::parse`]).
    pub line: usize,
    /// Byte offset of the error within the input line.
    pub offset: usize,
    /// What was wrong.
    pub message: String,
}

impl ParseTraceError {
    /// Attaches the 1-based input line the error occurred on.
    pub fn with_line(mut self, line: usize) -> Self {
        self.line = line;
        self
    }
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "trace parse error on line {} at byte {}: {}",
                self.line, self.offset, self.message
            )
        } else {
            write!(
                f,
                "trace parse error at byte {}: {}",
                self.offset, self.message
            )
        }
    }
}

impl Error for ParseTraceError {}

fn err(offset: usize, message: impl Into<String>) -> ParseTraceError {
    ParseTraceError {
        line: 0,
        offset,
        message: message.into(),
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '='
}

/// Parses one event token such as `fopen(X)` or `pclose(#3)`.
fn parse_event(token: &str, offset: usize, vocab: &mut Vocab) -> Result<Event, ParseTraceError> {
    let (name, rest) = match token.find('(') {
        Some(i) => (&token[..i], Some(&token[i..])),
        None => (token, None),
    };
    if name.is_empty() || !name.chars().all(is_ident_char) {
        return Err(err(offset, format!("bad operation name in {token:?}")));
    }
    let op = vocab.op(name);
    let mut args = Vec::new();
    if let Some(rest) = rest {
        let inner = rest
            .strip_prefix('(')
            .and_then(|r| r.strip_suffix(')'))
            .ok_or_else(|| err(offset, format!("unbalanced parentheses in {token:?}")))?;
        if !inner.is_empty() {
            for part in inner.split(',') {
                let part = part.trim();
                if let Some(obj) = part.strip_prefix('#') {
                    let n: u64 = obj
                        .parse()
                        .map_err(|_| err(offset, format!("bad object id {part:?}")))?;
                    args.push(Arg::Obj(ObjId(n)));
                } else if let Some(atom) = part.strip_prefix('\'') {
                    args.push(Arg::Atom(vocab.atom(atom)));
                } else if let Some(v) = Var::from_name(part) {
                    args.push(Arg::Var(v));
                } else {
                    return Err(err(offset, format!("bad argument {part:?}")));
                }
            }
        }
    }
    Ok(Event::new(op, args))
}

impl Trace {
    /// Parses a single trace from a line of text.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] when a token is malformed.
    ///
    /// # Examples
    ///
    /// ```
    /// use cable_trace::{Trace, Vocab};
    ///
    /// let mut v = Vocab::new();
    /// let t = Trace::parse("fopen(X) fclose(X)", &mut v)?;
    /// assert_eq!(t.len(), 2);
    /// # Ok::<(), cable_trace::ParseTraceError>(())
    /// ```
    pub fn parse(line: &str, vocab: &mut Vocab) -> Result<Trace, ParseTraceError> {
        let mut events = Vec::new();
        let mut offset = 0;
        for token in line.split_whitespace() {
            // Track an approximate offset for error messages.
            offset = line[offset..]
                .find(token)
                .map(|i| i + offset)
                .unwrap_or(offset);
            events.push(parse_event(token, offset, vocab)?);
            offset += token.len();
        }
        Ok(Trace::new(events))
    }
}

impl TraceSet {
    /// Parses a whole trace set, one trace per line. Empty lines and lines
    /// starting with `;` are skipped.
    ///
    /// # Errors
    ///
    /// Returns the first [`ParseTraceError`] encountered, carrying the
    /// 1-based line number so corpus ingestion failures are actionable.
    pub fn parse(text: &str, vocab: &mut Vocab) -> Result<TraceSet, ParseTraceError> {
        let mut set = TraceSet::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with(';') {
                continue;
            }
            set.push(Trace::parse(line, vocab).map_err(|e| e.with_line(lineno + 1))?);
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_display() {
        let mut v = Vocab::new();
        for text in [
            "fopen(X) fread(X) fclose(X)",
            "f() g(X,Y) h(#3,'ATOM)",
            "lone",
        ] {
            let t = Trace::parse(text, &mut v).unwrap();
            let shown = t.display(&v).to_string();
            let t2 = Trace::parse(&shown, &mut v).unwrap();
            assert_eq!(t.event_key(), t2.event_key(), "round trip {text:?}");
        }
    }

    #[test]
    fn bare_op_means_nullary() {
        let mut v = Vocab::new();
        let t = Trace::parse("f f()", &mut v).unwrap();
        assert_eq!(t.events()[0], t.events()[1]);
    }

    #[test]
    fn rejects_malformed() {
        let mut v = Vocab::new();
        assert!(Trace::parse("f(", &mut v).is_err());
        assert!(Trace::parse("f(%)", &mut v).is_err());
        assert!(Trace::parse("f(#notanum)", &mut v).is_err());
        assert!(Trace::parse("(X)", &mut v).is_err());
    }

    #[test]
    fn set_parser_skips_comments() {
        let mut v = Vocab::new();
        let s = TraceSet::parse("; header\n\n a(X)\n b(X)\n", &mut v).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn error_is_displayable() {
        let mut v = Vocab::new();
        let e = Trace::parse("ok f(%)", &mut v).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("bad argument"), "{msg}");
        assert_eq!(e.line, 0, "single-line parse has no line context");
        assert!(!msg.contains("on line"), "{msg}");
    }

    #[test]
    fn set_parser_reports_the_failing_line() {
        let mut v = Vocab::new();
        // Comments and blank lines still count towards line numbers.
        let e = TraceSet::parse("; header\n a(X)\n\n b(X\n", &mut v).unwrap_err();
        assert_eq!(e.line, 4);
        let msg = e.to_string();
        assert!(msg.contains("on line 4"), "{msg}");
    }
}
