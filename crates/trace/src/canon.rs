//! Canonicalisation of object identities to variables.
//!
//! Strauss's front end renames the runtime object identities in an
//! extracted scenario to canonical variables in first-occurrence order, so
//! that two scenarios differing only in concrete pointers become identical
//! traces. This module implements that renaming.

use crate::event::{Arg, Event, ObjId, Var};
use crate::trace::Trace;
use std::collections::HashMap;

/// Renames every [`ObjId`] in the trace to a [`Var`] numbered by first
/// occurrence. Existing variables and atoms are left untouched; if the
/// trace already contains variables, fresh variables are numbered after
/// the highest existing one.
///
/// # Examples
///
/// ```
/// use cable_trace::{canonicalize, Trace, Vocab};
///
/// let mut v = Vocab::new();
/// let raw = Trace::parse("fopen(#77) fread(#77) fclose(#77)", &mut v).unwrap();
/// let canon = canonicalize(&raw);
/// assert_eq!(canon.display(&v).to_string(), "fopen(X) fread(X) fclose(X)");
/// ```
///
/// # Panics
///
/// Panics if more than 256 distinct objects appear (variables are `u8`).
pub fn canonicalize(trace: &Trace) -> Trace {
    let mut next = trace
        .iter()
        .flat_map(|e| e.vars())
        .map(|v| v.0 as u16 + 1)
        .max()
        .unwrap_or(0);
    let mut map: HashMap<ObjId, Var> = HashMap::new();
    let events = trace
        .iter()
        .map(|e| {
            let args = e
                .args
                .iter()
                .map(|&a| match a {
                    Arg::Obj(o) => Arg::Var(*map.entry(o).or_insert_with(|| {
                        let v = Var(u8::try_from(next).expect("too many objects to canonicalize"));
                        next += 1;
                        v
                    })),
                    other => other,
                })
                .collect();
            Event::new(e.op, args)
        })
        .collect();
    let mut out = Trace::new(events);
    if let Some(p) = trace.provenance() {
        out.set_provenance(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocab;

    #[test]
    fn first_occurrence_order() {
        let mut v = Vocab::new();
        let raw = Trace::parse("a(#9) b(#2) c(#9,#2)", &mut v).unwrap();
        let canon = canonicalize(&raw);
        assert_eq!(canon.display(&v).to_string(), "a(X) b(Y) c(X,Y)");
    }

    #[test]
    fn existing_vars_are_preserved() {
        let mut v = Vocab::new();
        let raw = Trace::parse("a(X) b(#5)", &mut v).unwrap();
        let canon = canonicalize(&raw);
        assert_eq!(canon.display(&v).to_string(), "a(X) b(Y)");
    }

    #[test]
    fn atoms_untouched_and_provenance_kept() {
        let mut v = Vocab::new();
        let mut raw = Trace::parse("a(#1,'P)", &mut v).unwrap();
        raw.set_provenance(4);
        let canon = canonicalize(&raw);
        assert_eq!(canon.display(&v).to_string(), "a(X,'P)");
        assert_eq!(canon.provenance(), Some(4));
    }

    #[test]
    fn canonical_traces_are_equal_across_ids() {
        let mut v = Vocab::new();
        let a = Trace::parse("f(#1) g(#1)", &mut v).unwrap();
        let b = Trace::parse("f(#999) g(#999)", &mut v).unwrap();
        assert_ne!(a, b);
        assert_eq!(canonicalize(&a), canonicalize(&b));
    }
}
