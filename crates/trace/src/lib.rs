//! Event and trace model.
//!
//! The paper's artifacts are *traces*: finite sequences of program events
//! such as `X = fopen()`, `fread(X)`, `fclose(X)`. This crate defines:
//!
//! * [`Event`] — an operation name plus arguments; an argument is either a
//!   runtime object identity ([`ObjId`], used in raw program traces emitted
//!   by the workload simulator), a canonical variable ([`Var`], used in
//!   scenario and violation traces where object identities have been
//!   renamed to `X`, `Y`, …), or an atom (an interned constant),
//! * [`Trace`] — a sequence of events with provenance,
//! * [`TraceSet`] — an indexed collection of traces with the
//!   identical-event-class bookkeeping that the paper's Baseline strategy
//!   depends on,
//! * [`Vocab`] — the interner for operation and atom names,
//! * a line-oriented text format ([`parse`]) used by examples, tests and
//!   the benchmark harness,
//! * a compact checksummed-payload binary format ([`binary`]) used by the
//!   `cable-store` corpus files.
//!
//! # Examples
//!
//! ```
//! use cable_trace::{Vocab, Trace, TraceSet};
//!
//! let mut vocab = Vocab::new();
//! let t = Trace::parse("fopen(X) fread(X) fclose(X)", &mut vocab).unwrap();
//! assert_eq!(t.len(), 3);
//! assert_eq!(t.display(&vocab).to_string(), "fopen(X) fread(X) fclose(X)");
//!
//! let mut set = TraceSet::new();
//! set.push(t.clone());
//! set.push(t);
//! assert_eq!(set.len(), 2);
//! assert_eq!(set.identical_classes().len(), 1);
//! ```

pub mod binary;
pub mod canon;
pub mod event;
pub mod parse;
pub mod set;
pub mod trace;
pub mod vocab;

pub use binary::DecodeError;
pub use canon::canonicalize;
pub use event::{Arg, Event, ObjId, Var};
pub use parse::ParseTraceError;
pub use set::{IdenticalClass, TraceId, TraceSet};
pub use trace::Trace;
pub use vocab::Vocab;
