//! Events and their arguments.

use crate::vocab::Vocab;
use cable_util::Symbol;
use std::fmt;

/// A runtime object identity appearing in a raw program trace — e.g. the
/// concrete `FILE*` returned by `fopen`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u64);

/// A canonical variable in a scenario or violation trace: `X` is `Var(0)`,
/// `Y` is `Var(1)`, and so on. The paper writes scenario traces over such
/// variables ("For all calls X = fopen() …").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u8);

impl Var {
    /// The display name: `X`, `Y`, `Z`, `V3`, `V4`, …
    pub fn name(self) -> String {
        match self.0 {
            0 => "X".to_owned(),
            1 => "Y".to_owned(),
            2 => "Z".to_owned(),
            n => format!("V{n}"),
        }
    }

    /// Parses a variable display name.
    pub fn from_name(s: &str) -> Option<Var> {
        match s {
            "X" => Some(Var(0)),
            "Y" => Some(Var(1)),
            "Z" => Some(Var(2)),
            _ => s
                .strip_prefix('V')
                .and_then(|n| n.parse::<u8>().ok())
                .map(Var),
        }
    }
}

/// An event argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Arg {
    /// A runtime object identity (raw program traces).
    Obj(ObjId),
    /// A canonical variable (scenario/violation traces).
    Var(Var),
    /// An interned constant, e.g. an X selection name.
    Atom(Symbol),
}

impl Arg {
    /// The object identity, if this argument is one.
    pub fn as_obj(self) -> Option<ObjId> {
        match self {
            Arg::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// The variable, if this argument is one.
    pub fn as_var(self) -> Option<Var> {
        match self {
            Arg::Var(v) => Some(v),
            _ => None,
        }
    }
}

/// A single program event: an operation applied to arguments.
///
/// The paper's notation `X = fopen()` is modelled as the operation `fopen`
/// with the bound result as its (first) argument: `fopen(X)`. What matters
/// to Cable is only which objects an event touches, not the
/// result/parameter distinction.
///
/// # Examples
///
/// ```
/// use cable_trace::{Event, Vocab, Var, Arg};
///
/// let mut v = Vocab::new();
/// let e = Event::new(v.op("fopen"), vec![Arg::Var(Var(0))]);
/// assert_eq!(e.display(&v).to_string(), "fopen(X)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Event {
    /// The operation name.
    pub op: Symbol,
    /// The arguments, in call order.
    pub args: Vec<Arg>,
}

impl Event {
    /// Creates an event.
    pub fn new(op: Symbol, args: Vec<Arg>) -> Self {
        Event { op, args }
    }

    /// Creates a zero-argument event.
    pub fn nullary(op: Symbol) -> Self {
        Event {
            op,
            args: Vec::new(),
        }
    }

    /// Creates an event over a single canonical variable — the common case
    /// for per-object scenarios.
    pub fn on_var(op: Symbol, var: Var) -> Self {
        Event {
            op,
            args: vec![Arg::Var(var)],
        }
    }

    /// Creates an event over a single runtime object.
    pub fn on_obj(op: Symbol, obj: ObjId) -> Self {
        Event {
            op,
            args: vec![Arg::Obj(obj)],
        }
    }

    /// Iterates over the object identities mentioned by this event.
    pub fn objects(&self) -> impl Iterator<Item = ObjId> + '_ {
        self.args.iter().filter_map(|a| a.as_obj())
    }

    /// Iterates over the canonical variables mentioned by this event.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.args.iter().filter_map(|a| a.as_var())
    }

    /// Tests whether the event mentions the given object.
    pub fn mentions_obj(&self, obj: ObjId) -> bool {
        self.objects().any(|o| o == obj)
    }

    /// Tests whether the event mentions the given variable.
    pub fn mentions_var(&self, var: Var) -> bool {
        self.vars().any(|v| v == var)
    }

    /// Renders the event against a vocabulary.
    pub fn display<'a>(&'a self, vocab: &'a Vocab) -> DisplayEvent<'a> {
        DisplayEvent { event: self, vocab }
    }
}

/// Displays an [`Event`] using a [`Vocab`]; created by [`Event::display`].
#[derive(Debug, Clone, Copy)]
pub struct DisplayEvent<'a> {
    event: &'a Event,
    vocab: &'a Vocab,
}

impl fmt::Display for DisplayEvent<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.vocab.op_name(self.event.op))?;
        for (i, arg) in self.event.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match arg {
                Arg::Obj(ObjId(o)) => write!(f, "#{o}")?,
                Arg::Var(v) => write!(f, "{}", v.name())?,
                Arg::Atom(a) => write!(f, "'{}", self.vocab.atom_name(*a))?,
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_names_round_trip() {
        for i in 0..10u8 {
            let v = Var(i);
            assert_eq!(Var::from_name(&v.name()), Some(v));
        }
        assert_eq!(Var::from_name("nope"), None);
        assert_eq!(Var::from_name("Vx"), None);
    }

    #[test]
    fn event_display_forms() {
        let mut vocab = Vocab::new();
        let op = vocab.op("f");
        let atom = vocab.atom("PRIMARY");
        let e = Event::new(
            op,
            vec![Arg::Var(Var(0)), Arg::Obj(ObjId(7)), Arg::Atom(atom)],
        );
        assert_eq!(e.display(&vocab).to_string(), "f(X,#7,'PRIMARY)");
        assert_eq!(Event::nullary(op).display(&vocab).to_string(), "f()");
    }

    #[test]
    fn object_and_var_queries() {
        let mut vocab = Vocab::new();
        let op = vocab.op("g");
        let e = Event::new(op, vec![Arg::Obj(ObjId(1)), Arg::Var(Var(2))]);
        assert!(e.mentions_obj(ObjId(1)));
        assert!(!e.mentions_obj(ObjId(2)));
        assert!(e.mentions_var(Var(2)));
        assert!(!e.mentions_var(Var(0)));
        assert_eq!(e.objects().count(), 1);
        assert_eq!(e.vars().count(), 1);
    }
}
