//! Indexed trace collections.

use crate::trace::Trace;
use crate::vocab::Vocab;
use std::collections::HashMap;
use std::fmt;

/// Index of a trace within a [`TraceSet`]. These are the *objects* of the
/// concept analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u32);

impl TraceId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A class of traces with identical event sequences.
///
/// §5.1 of the paper notes that Strauss extracts *many identical scenario
/// traces*; the Baseline debugging method inspects one representative per
/// class, and the lattice is built from representatives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdenticalClass {
    /// The first trace of the class, used as the representative.
    pub representative: TraceId,
    /// All members, in insertion order (includes the representative).
    pub members: Vec<TraceId>,
}

impl IdenticalClass {
    /// Number of traces in the class.
    pub fn count(&self) -> usize {
        self.members.len()
    }
}

/// An append-only, indexed collection of traces.
///
/// # Examples
///
/// ```
/// use cable_trace::{Trace, TraceSet, Vocab};
///
/// let mut v = Vocab::new();
/// let mut set = TraceSet::new();
/// set.push(Trace::parse("a(X) b(X)", &mut v).unwrap());
/// set.push(Trace::parse("a(X) b(X)", &mut v).unwrap());
/// set.push(Trace::parse("a(X)", &mut v).unwrap());
/// assert_eq!(set.len(), 3);
/// let classes = set.identical_classes();
/// assert_eq!(classes.len(), 2);
/// let reps = set.representatives();
/// assert_eq!(reps.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceSet {
    traces: Vec<Trace>,
}

impl TraceSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a trace, returning its id.
    pub fn push(&mut self, trace: Trace) -> TraceId {
        let id = TraceId(u32::try_from(self.traces.len()).expect("too many traces"));
        self.traces.push(trace);
        id
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Tests whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Looks up a trace.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn trace(&self, id: TraceId) -> &Trace {
        &self.traces[id.index()]
    }

    /// Looks up a trace, returning `None` when out of range.
    pub fn get(&self, id: TraceId) -> Option<&Trace> {
        self.traces.get(id.index())
    }

    /// Iterates over `(id, trace)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (TraceId, &Trace)> {
        self.traces
            .iter()
            .enumerate()
            .map(|(i, t)| (TraceId(i as u32), t))
    }

    /// All trace ids in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = TraceId> {
        (0..self.traces.len() as u32).map(TraceId)
    }

    /// Groups the traces into classes of identical event sequences, in
    /// order of first appearance.
    pub fn identical_classes(&self) -> Vec<IdenticalClass> {
        let mut index: HashMap<&[crate::Event], usize> = HashMap::new();
        let mut classes: Vec<IdenticalClass> = Vec::new();
        for (id, t) in self.iter() {
            match index.get(t.event_key()) {
                Some(&c) => classes[c].members.push(id),
                None => {
                    index.insert(t.event_key(), classes.len());
                    classes.push(IdenticalClass {
                        representative: id,
                        members: vec![id],
                    });
                }
            }
        }
        classes
    }

    /// One representative id per identical class, in order of first
    /// appearance.
    pub fn representatives(&self) -> Vec<TraceId> {
        self.identical_classes()
            .into_iter()
            .map(|c| c.representative)
            .collect()
    }

    /// Builds a new set containing one representative per identical class,
    /// returning it along with the mapping from old ids to new ids.
    pub fn deduplicated(&self) -> (TraceSet, Vec<TraceId>) {
        let classes = self.identical_classes();
        let mut out = TraceSet::new();
        let mut map = vec![TraceId(0); self.len()];
        for class in &classes {
            let new_id = out.push(self.trace(class.representative).clone());
            for &m in &class.members {
                map[m.index()] = new_id;
            }
        }
        (out, map)
    }

    /// Renders the whole set, one trace per line.
    pub fn display<'a>(&'a self, vocab: &'a Vocab) -> DisplayTraceSet<'a> {
        DisplayTraceSet { set: self, vocab }
    }
}

impl FromIterator<Trace> for TraceSet {
    fn from_iter<T: IntoIterator<Item = Trace>>(iter: T) -> Self {
        let mut s = TraceSet::new();
        for t in iter {
            s.push(t);
        }
        s
    }
}

impl Extend<Trace> for TraceSet {
    fn extend<T: IntoIterator<Item = Trace>>(&mut self, iter: T) {
        for t in iter {
            self.push(t);
        }
    }
}

/// Displays a [`TraceSet`]; created by [`TraceSet::display`].
#[derive(Debug, Clone, Copy)]
pub struct DisplayTraceSet<'a> {
    set: &'a TraceSet,
    vocab: &'a Vocab,
}

impl fmt::Display for DisplayTraceSet<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (_, t) in self.set.iter() {
            writeln!(f, "{}", t.display(self.vocab))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set3(v: &mut Vocab) -> TraceSet {
        let mut s = TraceSet::new();
        s.push(Trace::parse("a(X) b(X)", v).unwrap());
        s.push(Trace::parse("a(X)", v).unwrap());
        s.push(Trace::parse("a(X) b(X)", v).unwrap());
        s
    }

    #[test]
    fn identical_classes_group_correctly() {
        let mut v = Vocab::new();
        let s = set3(&mut v);
        let classes = s.identical_classes();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0].representative, TraceId(0));
        assert_eq!(classes[0].members, vec![TraceId(0), TraceId(2)]);
        assert_eq!(classes[0].count(), 2);
        assert_eq!(classes[1].members, vec![TraceId(1)]);
    }

    #[test]
    fn deduplicated_maps_members() {
        let mut v = Vocab::new();
        let s = set3(&mut v);
        let (dedup, map) = s.deduplicated();
        assert_eq!(dedup.len(), 2);
        assert_eq!(map[0], map[2]);
        assert_ne!(map[0], map[1]);
        assert_eq!(
            dedup.trace(map[0]).event_key(),
            s.trace(TraceId(0)).event_key()
        );
    }

    #[test]
    fn get_out_of_range() {
        let s = TraceSet::new();
        assert!(s.get(TraceId(0)).is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn display_one_per_line() {
        let mut v = Vocab::new();
        let s = set3(&mut v);
        let text = s.display(&v).to_string();
        assert_eq!(text.lines().count(), 3);
        assert!(text.starts_with("a(X) b(X)\n"));
    }
}
