//! Deterministic, seeded mutation of temporal specifications.
//!
//! The paper evaluates Cable on *buggy* specifications: Table 2 measures
//! how much labeling work concept analysis saves while debugging a spec
//! against a trace corpus. This crate turns one correct reference FA
//! into a population of genuine buggy variants:
//!
//! * five mutation operators — [drop-transition](MutationKind::DropTransition),
//!   [retarget-transition](MutationKind::RetargetTransition),
//!   [add-transition](MutationKind::AddTransition),
//!   [flip-accept](MutationKind::FlipAccept), and
//!   [weaken-guard](MutationKind::WeakenGuard) — applied at seeded-random
//!   sites,
//! * an **equivalence filter**: every candidate is checked against the
//!   parent with [`Fa::equivalent`]; language-preserving mutants (e.g. a
//!   duplicated transition, or flipping acceptance of a dead state) are
//!   discarded and counted under `mutate.mutants_filtered`, so *no no-op
//!   mutant survives*,
//! * a **witness tag**: each survivor carries the shortest letter string
//!   accepted by exactly one of parent and mutant
//!   ([`Fa::distinguishing_witness`]), realised as a replayable trace.
//!
//! Determinism: candidate `i` draws from `rng::stream(seed, i)`, so the
//! survivor list for `count = n` is a prefix of the list for any larger
//! count, and results are identical across worker counts and platforms.

use cable_fa::ops::WitnessLetter;
use cable_fa::{ArgPat, EventPat, Fa, FaBuilder, StateId, TransLabel, Transition};
use cable_obs::CounterHandle;
use cable_trace::{Trace, Vocab};
use cable_util::rng::{stream, Rng, SmallRng};

/// Mutation candidates generated (applicable or not).
static CANDIDATES: CounterHandle = CounterHandle::new("mutate.candidates");
/// Candidates discarded because they were language-equivalent to the parent.
static FILTERED: CounterHandle = CounterHandle::new("mutate.mutants_filtered");
/// Candidates that survived the equivalence filter.
static SURVIVORS: CounterHandle = CounterHandle::new("mutate.survivors");

/// The five mutation operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutationKind {
    /// Remove one transition.
    DropTransition,
    /// Redirect one transition to a different destination state.
    RetargetTransition,
    /// Add a transition between random states with an existing label.
    AddTransition,
    /// Toggle one state's acceptance.
    FlipAccept,
    /// Generalise one transition label: concretise an argument position
    /// to `_`, drop the argument list, or widen to the wildcard.
    WeakenGuard,
}

/// Every operator, in the order the engine samples them.
pub const KINDS: [MutationKind; 5] = [
    MutationKind::DropTransition,
    MutationKind::RetargetTransition,
    MutationKind::AddTransition,
    MutationKind::FlipAccept,
    MutationKind::WeakenGuard,
];

impl MutationKind {
    /// Stable kebab-case name (used in reports and JSONL records).
    pub fn name(self) -> &'static str {
        match self {
            MutationKind::DropTransition => "drop-transition",
            MutationKind::RetargetTransition => "retarget-transition",
            MutationKind::AddTransition => "add-transition",
            MutationKind::FlipAccept => "flip-accept",
            MutationKind::WeakenGuard => "weaken-guard",
        }
    }
}

/// A surviving mutant: a buggy variant of the parent spec, proven
/// non-equivalent, tagged with its distinguishing witness.
#[derive(Debug, Clone)]
pub struct Mutant {
    /// The mutated automaton.
    pub fa: Fa,
    /// Which operator produced it.
    pub kind: MutationKind,
    /// Human-readable description of the edit (rendered labels).
    pub description: String,
    /// The candidate index that produced it (`rng::stream(seed, candidate)`).
    pub candidate: u64,
    /// Shortest letter string accepted by exactly one of parent/mutant.
    pub witness: Vec<WitnessLetter>,
    /// The witness realised as a concrete, replayable trace.
    pub witness_trace: Trace,
    /// Whether the *parent* accepts the witness trace (the mutant then
    /// rejects it, and vice versa).
    pub parent_accepts_witness: bool,
}

/// Engine counters for one [`mutants_with_stats`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Candidates generated.
    pub candidates: u64,
    /// Candidates whose operator had no applicable site.
    pub inapplicable: u64,
    /// Candidates filtered as language-equivalent to the parent.
    pub filtered: u64,
}

/// Generates up to `count` surviving mutants of `parent`.
///
/// Stops early (returning fewer) only if the candidate budget —
/// `count * 64 + 256` candidates — runs out first, which happens only
/// for degenerate parents with almost no mutable structure.
pub fn mutants(parent: &Fa, vocab: &mut Vocab, seed: u64, count: usize) -> Vec<Mutant> {
    mutants_with_stats(parent, vocab, seed, count).0
}

/// [`mutants`], also returning the engine's filter statistics.
pub fn mutants_with_stats(
    parent: &Fa,
    vocab: &mut Vocab,
    seed: u64,
    count: usize,
) -> (Vec<Mutant>, EngineStats) {
    let limit = count as u64 * 64 + 256;
    let mut out = Vec::with_capacity(count);
    let mut stats = EngineStats::default();
    for candidate in 0..limit {
        if out.len() >= count {
            break;
        }
        let mut rng = stream(seed, candidate);
        stats.candidates += 1;
        CANDIDATES.get().incr();
        let kind = KINDS[rng.gen_range(0..KINDS.len())];
        let Some((fa, description)) = apply(kind, parent, &mut rng, vocab) else {
            stats.inapplicable += 1;
            continue;
        };
        if parent.equivalent(&fa) {
            stats.filtered += 1;
            FILTERED.get().incr();
            continue;
        }
        let witness = parent
            .distinguishing_witness(&fa)
            .expect("non-equivalent automata have a witness");
        let witness_trace = parent.realize_witness(&fa, &witness, vocab);
        let parent_accepts_witness = parent.accepts(&witness_trace);
        SURVIVORS.get().incr();
        out.push(Mutant {
            fa,
            kind,
            description,
            candidate,
            witness,
            witness_trace,
            parent_accepts_witness,
        });
    }
    (out, stats)
}

/// Rebuilds a parent-shaped automaton with the given transitions and
/// accept set (starts are copied from the parent, which never mutates).
fn rebuild(parent: &Fa, transitions: Vec<Transition>, accepts: Vec<usize>) -> Fa {
    let mut b = FaBuilder::new();
    let states = b.states(parent.state_count());
    for s in parent.start_states().iter() {
        b.start(states[s]);
    }
    for s in accepts {
        b.accept(states[s]);
    }
    for t in transitions {
        b.transition(t.src, t.label, t.dst);
    }
    b.build()
}

fn parent_accepts(parent: &Fa) -> Vec<usize> {
    parent.accept_states().iter().collect()
}

fn show(label: &TransLabel, vocab: &Vocab) -> String {
    format!("{}", label.display(vocab))
}

/// Applies one operator at a seeded-random site, or `None` when the
/// parent has no applicable site for it.
fn apply(
    kind: MutationKind,
    parent: &Fa,
    rng: &mut SmallRng,
    vocab: &Vocab,
) -> Option<(Fa, String)> {
    let n = parent.state_count();
    match kind {
        MutationKind::DropTransition => {
            let tc = parent.transition_count();
            if tc == 0 {
                return None;
            }
            let mut ts = parent.transitions().to_vec();
            let t = ts.remove(rng.gen_range(0..tc));
            let desc = format!(
                "drop s{} -{}-> s{}",
                t.src.0,
                show(&t.label, vocab),
                t.dst.0
            );
            Some((rebuild(parent, ts, parent_accepts(parent)), desc))
        }
        MutationKind::RetargetTransition => {
            let tc = parent.transition_count();
            if tc == 0 || n < 2 {
                return None;
            }
            let mut ts = parent.transitions().to_vec();
            let i = rng.gen_range(0..tc);
            let old = ts[i].dst;
            // Uniform over the other n-1 states.
            let mut new = rng.gen_range(0..n - 1) as u32;
            if new >= old.0 {
                new += 1;
            }
            ts[i].dst = StateId(new);
            let desc = format!(
                "retarget s{} -{}-> s{} to s{new}",
                ts[i].src.0,
                show(&ts[i].label, vocab),
                old.0
            );
            Some((rebuild(parent, ts, parent_accepts(parent)), desc))
        }
        MutationKind::AddTransition => {
            let labels: Vec<&TransLabel> = parent.concrete_labels();
            if labels.is_empty() || n == 0 {
                return None;
            }
            let label = labels[rng.gen_range(0..labels.len())].clone();
            let src = StateId(rng.gen_range(0..n) as u32);
            let dst = StateId(rng.gen_range(0..n) as u32);
            let mut ts = parent.transitions().to_vec();
            let desc = format!("add s{} -{}-> s{}", src.0, show(&label, vocab), dst.0);
            ts.push(Transition { src, dst, label });
            Some((rebuild(parent, ts, parent_accepts(parent)), desc))
        }
        MutationKind::FlipAccept => {
            if n == 0 {
                return None;
            }
            let s = rng.gen_range(0..n);
            let was = parent.accept_states().contains(s);
            let accepts = if was {
                parent_accepts(parent)
                    .into_iter()
                    .filter(|&a| a != s)
                    .collect()
            } else {
                let mut a = parent_accepts(parent);
                a.push(s);
                a
            };
            let desc = if was {
                format!("flip s{s} to non-accepting")
            } else {
                format!("flip s{s} to accepting")
            };
            Some((
                rebuild(parent, parent.transitions().to_vec(), accepts),
                desc,
            ))
        }
        MutationKind::WeakenGuard => {
            let sites: Vec<usize> = parent
                .transitions()
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.label.is_wildcard())
                .map(|(i, _)| i)
                .collect();
            if sites.is_empty() {
                return None;
            }
            let i = sites[rng.gen_range(0..sites.len())];
            let mut ts = parent.transitions().to_vec();
            let TransLabel::Pat(p) = ts[i].label.clone() else {
                unreachable!("wildcards were filtered out")
            };
            let new_label = match &p.args {
                Some(args) if args.iter().any(|a| !matches!(a, ArgPat::Any)) => {
                    // Generalise one concrete argument position to `_`.
                    let concrete: Vec<usize> = args
                        .iter()
                        .enumerate()
                        .filter(|(_, a)| !matches!(a, ArgPat::Any))
                        .map(|(j, _)| j)
                        .collect();
                    let j = concrete[rng.gen_range(0..concrete.len())];
                    let mut args = args.clone();
                    args[j] = ArgPat::Any;
                    TransLabel::Pat(EventPat {
                        op: p.op,
                        args: Some(args),
                    })
                }
                // All positions already `_`: drop the argument list (any arity).
                Some(_) => TransLabel::Pat(EventPat {
                    op: p.op,
                    args: None,
                }),
                // Already op-only: widen to the wildcard.
                None => TransLabel::Wildcard,
            };
            let desc = format!(
                "weaken s{} -{}-> s{} to {}",
                ts[i].src.0,
                show(&ts[i].label, vocab),
                ts[i].dst.0,
                show(&new_label, vocab)
            );
            ts[i].label = new_label;
            Some((rebuild(parent, ts, parent_accepts(parent)), desc))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The stdio FilePair-style parent used throughout: fopen, then
    /// reads/writes, then fclose.
    fn parent(vocab: &mut Vocab) -> Fa {
        Fa::parse(
            "start s0\n\
             accept s2\n\
             s0 -> s1 : fopen(X)\n\
             s1 -> s1 : fread(X)\n\
             s1 -> s1 : fwrite(X)\n\
             s1 -> s2 : fclose(X)\n",
            vocab,
        )
        .unwrap()
    }

    #[test]
    fn same_seed_same_mutants() {
        let mut v1 = Vocab::new();
        let p1 = parent(&mut v1);
        let a = mutants(&p1, &mut v1, 7, 12);
        let mut v2 = Vocab::new();
        let p2 = parent(&mut v2);
        let b = mutants(&p2, &mut v2, 7, 12);
        assert_eq!(a.len(), 12);
        let key = |ms: &[Mutant]| -> Vec<(String, String, u64, usize)> {
            ms.iter()
                .map(|m| {
                    (
                        m.kind.name().to_owned(),
                        m.description.clone(),
                        m.candidate,
                        m.witness.len(),
                    )
                })
                .collect()
        };
        assert_eq!(key(&a), key(&b));
    }

    #[test]
    fn survivors_are_a_prefix_across_counts() {
        let mut v = Vocab::new();
        let p = parent(&mut v);
        let small = mutants(&p, &mut v, 42, 4);
        let mut v2 = Vocab::new();
        let p2 = parent(&mut v2);
        let big = mutants(&p2, &mut v2, 42, 10);
        assert_eq!(small.len(), 4);
        assert_eq!(big.len(), 10);
        for (s, b) in small.iter().zip(&big) {
            assert_eq!(s.candidate, b.candidate);
            assert_eq!(s.description, b.description);
        }
    }

    #[test]
    fn no_equivalent_mutant_survives() {
        let mut v = Vocab::new();
        let p = parent(&mut v);
        for m in mutants(&p, &mut v, 0xC0FFEE, 25) {
            assert!(
                !p.equivalent(&m.fa),
                "no-op mutant survived: {}",
                m.description
            );
        }
    }

    #[test]
    fn witness_is_accepted_by_exactly_one() {
        let mut v = Vocab::new();
        let p = parent(&mut v);
        for m in mutants(&p, &mut v, 99, 25) {
            let by_parent = p.accepts(&m.witness_trace);
            let by_mutant = m.fa.accepts(&m.witness_trace);
            assert!(
                by_parent != by_mutant,
                "witness of {:?} does not distinguish: {}",
                m.kind,
                m.description
            );
            assert_eq!(by_parent, m.parent_accepts_witness);
            assert_eq!(m.witness.len(), m.witness_trace.len());
        }
    }

    #[test]
    fn every_operator_produces_survivors() {
        let mut v = Vocab::new();
        let p = parent(&mut v);
        let kinds: std::collections::HashSet<&str> = mutants(&p, &mut v, 5, 40)
            .iter()
            .map(|m| m.kind.name())
            .collect();
        for k in KINDS {
            assert!(kinds.contains(k.name()), "no survivor from {}", k.name());
        }
    }

    #[test]
    fn equivalence_filter_catches_duplicate_additions() {
        // A one-state self-loop: the only addable transition duplicates
        // the existing one, so every add-transition candidate must be
        // filtered as equivalent, never surviving.
        let mut v = Vocab::new();
        let p = Fa::parse("start s0\naccept s0\ns0 -> s0 : f(X)\n", &mut v).unwrap();
        let (ms, stats) = mutants_with_stats(&p, &mut v, 11, 30);
        assert!(stats.filtered > 0, "expected filtered candidates");
        assert!(stats.candidates >= ms.len() as u64 + stats.filtered);
        for m in &ms {
            assert_ne!(m.kind, MutationKind::AddTransition);
            assert!(!p.equivalent(&m.fa));
        }
    }
}
