//! The concurrent load run: N labeler threads, one tenant each.
//!
//! Every labeler opens its own session, then issues its seeded op mix
//! against the service, honouring `429 Too Many Requests` with capped
//! exponential backoff under seeded jitter and retrying — backpressure
//! is an expected, *successful* interaction with the service, counted
//! separately from errors. Per-request latencies are collected exactly
//! (for the reported p50/p95/p99) and recorded into the process
//! registry as `load.request_ns` (for `reproduce slo-check`).
//!
//! With [`LoadOptions::chaos`] set, a *declared* degraded `503` (body
//! says `"degraded": true` — the read-only store refusing a write, see
//! DESIGN.md §17) is treated the same way: retried under backoff and
//! counted as `degraded_503`, not as a server error. Undeclared 5xx
//! answers stay hard errors either way — the chaos drill's gate is
//! precisely "every 5xx under fault injection is a declared one".
//! A logical request that exhausts its retry budget is counted as
//! `gave_up`, separately from transport failures.

use crate::client::{request, Response};
use crate::plan::{Labeler, Op};
use cable_obs::json::Value;
use cable_util::rng::{self, Rng, SmallRng};
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// How many retryable answers (429, or declared 503 under `--chaos`)
/// one logical request absorbs before the driver counts it as
/// `gave_up`. With the backoff capped by the server's `Retry-After`
/// hint this bounds a logical request's patience to about a minute —
/// far beyond anything a healthy queue produces.
const MAX_RETRIES: usize = 60;

/// First backoff step. Doubles per retry up to the server's
/// `Retry-After` hint.
const BACKOFF_BASE_MS: u64 = 25;

/// A load run's shape.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// The server address (`host:port`).
    pub addr: String,
    /// How many concurrent labelers to simulate.
    pub labelers: usize,
    /// Ops per labeler after the opening create.
    pub requests: usize,
    /// The workload seed; labeler `i` uses stream `(seed, i)`.
    pub seed: u64,
    /// Tenant name prefix: labeler `i` is tenant `{prefix}{i:03}`.
    pub tenant_prefix: String,
    /// When set, write per-labeler op logs and final server digests
    /// here for sequential CLI replay.
    pub verify_dir: Option<PathBuf>,
    /// Chaos-drill assertion mode: declared degraded 503s are retried
    /// and counted (`degraded_503`) instead of failing the run;
    /// undeclared 5xx remain hard errors.
    pub chaos: bool,
}

impl LoadOptions {
    /// Defaults: 8 labelers, 32 ops each, seed 42, prefix `load`.
    pub fn new(addr: impl Into<String>) -> LoadOptions {
        LoadOptions {
            addr: addr.into(),
            labelers: 8,
            requests: 32,
            seed: 42,
            tenant_prefix: "load".into(),
            verify_dir: None,
            chaos: false,
        }
    }
}

/// What one run observed.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Labelers simulated.
    pub labelers: usize,
    /// Logical requests issued (retries of one request count once).
    pub requests: u64,
    /// Requests answered 2xx.
    pub ok: u64,
    /// Requests answered 4xx (client errors; zero in a healthy run).
    pub errors_4xx: u64,
    /// Requests answered 5xx (the drill's hard gate).
    pub errors_5xx: u64,
    /// 429 answers absorbed by retrying (not errors).
    pub retries_429: u64,
    /// Declared degraded 503 answers absorbed by retrying under
    /// `--chaos` (not errors).
    pub degraded_503: u64,
    /// Logical requests abandoned after exhausting the retry budget.
    pub gave_up: u64,
    /// Transport-level failures (connect/read/write/timeout).
    pub io_errors: u64,
    /// Wall-clock time for the whole run.
    pub wall: Duration,
    /// Total time labelers slept honouring `Retry-After` — backpressure
    /// wait, counted apart from service latency so the latency
    /// quantiles measure the server, not the client's politeness.
    pub retry_wait: Duration,
    /// Every attempt's latency in nanoseconds, sorted ascending.
    latencies: Vec<u64>,
}

impl LoadReport {
    /// The exact `q`-quantile attempt latency in milliseconds
    /// (nearest-rank), or 0 for an empty run.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        let rank = ((self.latencies.len() - 1) as f64 * q).round() as usize;
        self.latencies[rank.min(self.latencies.len() - 1)] as f64 / 1e6
    }

    /// Completed logical requests per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.requests as f64 / secs
    }

    /// The `load_summary` JSONL record.
    pub fn to_json(&self) -> Value {
        Value::object([
            ("record", Value::from("load_summary")),
            ("labelers", Value::from(self.labelers as u64)),
            ("requests", Value::from(self.requests)),
            ("ok", Value::from(self.ok)),
            ("errors_4xx", Value::from(self.errors_4xx)),
            ("errors_5xx", Value::from(self.errors_5xx)),
            ("retries_429", Value::from(self.retries_429)),
            ("degraded_503", Value::from(self.degraded_503)),
            ("gave_up", Value::from(self.gave_up)),
            ("io_errors", Value::from(self.io_errors)),
            ("wall_ms", Value::from(self.wall.as_millis() as u64)),
            (
                "retry_wait_ms",
                Value::from(self.retry_wait.as_millis() as u64),
            ),
            ("throughput_rps", Value::from(self.throughput_rps())),
            ("p50_ms", Value::from(self.quantile_ms(0.50))),
            ("p95_ms", Value::from(self.quantile_ms(0.95))),
            ("p99_ms", Value::from(self.quantile_ms(0.99))),
        ])
    }

    /// A one-screen human summary.
    pub fn render(&self) -> String {
        format!(
            "load: {} labelers, {} requests in {:.2}s ({:.1} req/s)\n\
             load: {} ok, {} 4xx, {} 5xx, {} io errors, {} gave up\n\
             load: {} retried 429s, {} degraded 503s ({:.2}s retry wait)\n\
             load: latency p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms\n",
            self.labelers,
            self.requests,
            self.wall.as_secs_f64(),
            self.throughput_rps(),
            self.ok,
            self.errors_4xx,
            self.errors_5xx,
            self.io_errors,
            self.gave_up,
            self.retries_429,
            self.degraded_503,
            self.retry_wait.as_secs_f64(),
            self.quantile_ms(0.50),
            self.quantile_ms(0.95),
            self.quantile_ms(0.99),
        )
    }
}

/// One labeler thread's tally, merged into the [`LoadReport`].
#[derive(Debug, Default)]
struct Tally {
    requests: u64,
    ok: u64,
    errors_4xx: u64,
    errors_5xx: u64,
    retries_429: u64,
    degraded_503: u64,
    gave_up: u64,
    io_errors: u64,
    retry_wait: Duration,
    latencies: Vec<u64>,
}

/// One labeler's request context: where to send, whether declared
/// degraded 503s are retryable, the backoff jitter stream, and the
/// running tally.
struct Cx<'a> {
    addr: &'a str,
    chaos: bool,
    rng: SmallRng,
    tally: Tally,
}

impl Cx<'_> {
    fn new(opts: &LoadOptions, index: usize) -> Cx<'_> {
        Cx {
            addr: &opts.addr,
            chaos: opts.chaos,
            // A stream disjoint from the labeler's op stream, so backoff
            // draws never perturb the op mix (same seed → same ops, with
            // or without retries).
            rng: rng::stream(opts.seed ^ 0x0062_6163_6b6f_6666, index as u64),
            tally: Tally::default(),
        }
    }
}

/// The retry sleep for attempt `attempt` (0-based): exponential from
/// [`BACKOFF_BASE_MS`], capped by the server's `Retry-After` hint, with
/// full jitter in `[cap/2, cap]` drawn from the labeler's seeded stream
/// so the fleet's retries decorrelate reproducibly.
fn backoff(rng: &mut SmallRng, attempt: usize, retry_after: Option<u64>) -> Duration {
    let cap_ms = retry_after.unwrap_or(1).clamp(1, 5) * 1000;
    let step_ms = BACKOFF_BASE_MS
        .saturating_mul(1 << attempt.min(16))
        .min(cap_ms);
    Duration::from_millis(step_ms / 2 + rng.gen_range(0..=step_ms.div_ceil(2)))
}

/// Whether a response is a *declared* degraded refusal: the read-only
/// store answering a write with `503` plus a body that admits
/// `"degraded": true` (see DESIGN.md §17).
fn declares_degraded(r: &Response) -> bool {
    r.status == 503
        && body_json(r)
            .and_then(|v| v.get("degraded").cloned())
            .is_some_and(|d| d == Value::Bool(true))
}

/// Issues one logical request, absorbing retryable answers (429, and
/// declared degraded 503s under `--chaos`) with capped exponential
/// backoff, and records every attempt's latency.
fn issue(cx: &mut Cx<'_>, method: &str, path: &str, body: Option<&str>) -> Option<Response> {
    let hist = cable_obs::registry().histogram("load.request_ns");
    cx.tally.requests += 1;
    cable_obs::registry().counter("load.requests").incr();
    for attempt in 0..=MAX_RETRIES {
        let start = Instant::now();
        let outcome = request(cx.addr, method, path, body);
        let ns = start.elapsed().as_nanos() as u64;
        cx.tally.latencies.push(ns);
        hist.record(ns);
        let retryable = match &outcome {
            Ok(r) if r.status == 429 => {
                cx.tally.retries_429 += 1;
                cable_obs::registry().counter("load.http_429").incr();
                true
            }
            Ok(r) if cx.chaos && declares_degraded(r) => {
                cx.tally.degraded_503 += 1;
                cable_obs::registry().counter("load.degraded_503").incr();
                true
            }
            _ => false,
        };
        if retryable {
            let wait = backoff(&mut cx.rng, attempt, outcome.as_ref().unwrap().retry_after);
            cx.tally.retry_wait += wait;
            cable_obs::registry()
                .histogram("load.retry_wait_ns")
                .record(wait.as_nanos() as u64);
            std::thread::sleep(wait);
            continue;
        }
        match outcome {
            Ok(r) => {
                match r.status {
                    200..=299 => cx.tally.ok += 1,
                    500..=599 => {
                        cx.tally.errors_5xx += 1;
                        cable_obs::registry().counter("load.http_5xx").incr();
                        if std::env::var_os("LOAD_DEBUG").is_some() {
                            eprintln!("load: {} {method} {path}: {}", r.status, r.body.trim());
                        }
                    }
                    _ => {
                        cx.tally.errors_4xx += 1;
                        cable_obs::registry().counter("load.http_4xx").incr();
                    }
                }
                return Some(r);
            }
            Err(_) => {
                cx.tally.io_errors += 1;
                cable_obs::registry().counter("load.io_errors").incr();
                return None;
            }
        }
    }
    // Out of patience: the queue (or the degraded store) never let us
    // through. Counted apart from transport errors so the drill can
    // gate on each.
    cx.tally.gave_up += 1;
    cable_obs::registry().counter("load.gave_up").incr();
    None
}

/// Parses a response body as JSON, tolerating non-JSON bodies.
fn body_json(r: &Response) -> Option<Value> {
    Value::parse(r.body.trim()).ok()
}

/// The per-labeler verify log: ordered step files a shell script can
/// replay through the CLI (`session open`, `session ingest`,
/// `label --store --script`), plus the server's final digest record.
struct VerifyLog {
    dir: Option<PathBuf>,
    step: usize,
}

impl VerifyLog {
    fn new(root: Option<&Path>, index: usize) -> io::Result<VerifyLog> {
        let dir = match root {
            Some(root) => {
                let dir = root.join(format!("labeler-{index:03}"));
                std::fs::create_dir_all(&dir)?;
                Some(dir)
            }
            None => None,
        };
        Ok(VerifyLog { dir, step: 0 })
    }

    fn write(&mut self, kind: &str, content: &str) -> io::Result<()> {
        if let Some(dir) = &self.dir {
            let path = dir.join(format!("step-{:04}-{kind}", self.step));
            std::fs::write(path, content)?;
        }
        self.step += 1;
        Ok(())
    }

    fn write_digest(&self, record: &Value) -> io::Result<()> {
        if let Some(dir) = &self.dir {
            std::fs::write(dir.join("digest.jsonl"), format!("{record}\n"))?;
        }
        Ok(())
    }
}

/// Runs one labeler's whole life: create, op mix, final digest.
fn run_labeler(opts: &LoadOptions, index: usize) -> io::Result<Tally> {
    let mut cx = Cx::new(opts, index);
    let mut log = VerifyLog::new(opts.verify_dir.as_deref(), index)?;
    let mut labeler = Labeler::new(opts.seed, index as u64);
    let tenant = format!("{}{index:03}", opts.tenant_prefix);
    let session = "s";
    let base = format!("/api/sessions/{session}");
    let query = format!("?tenant={tenant}");

    // Open the session.
    let seed_traces = labeler.seed_traces();
    let create = Value::object([
        ("tenant", Value::from(tenant.as_str())),
        ("session", Value::from(session)),
        ("traces", Value::from(seed_traces.as_str())),
    ]);
    let r = issue(&mut cx, "POST", "/api/sessions", Some(&create.to_string()));
    let mut concepts = match r.as_ref().filter(|r| r.status == 201).and_then(body_json) {
        Some(v) => {
            log.write("open.traces", &seed_traces)?;
            v.get("concepts").and_then(Value::as_u64).unwrap_or(1) as usize
        }
        // Without a session every follow-up would 404; report what we
        // saw and stop this labeler.
        None => return Ok(cx.tally),
    };

    // Learn the lattice top once — focus ops target it (its extent is
    // never empty).
    let mut top = "c0".to_string();
    if let Some(v) = issue(&mut cx, "GET", &format!("{base}/lattice{query}"), None)
        .as_ref()
        .and_then(body_json)
    {
        if let Some(t) = v.get("top").and_then(Value::as_str) {
            top = t.to_string();
        }
    }

    for _ in 0..opts.requests {
        let op = labeler.next_op(concepts);
        match &op {
            Op::Ingest { traces } => {
                let body = Value::object([
                    ("tenant", Value::from(tenant.as_str())),
                    ("traces", Value::from(traces.as_str())),
                ]);
                let r = issue(
                    &mut cx,
                    "POST",
                    &format!("{base}/ingest"),
                    Some(&body.to_string()),
                );
                if let Some(v) = r.as_ref().filter(|r| r.status == 200).and_then(body_json) {
                    log.write("ingest.traces", traces)?;
                    if let Some(n) = v.get("concepts").and_then(Value::as_u64) {
                        concepts = n as usize;
                    }
                }
            }
            Op::Label {
                concept,
                selector,
                label,
            } => {
                let body = Value::object([
                    ("tenant", Value::from(tenant.as_str())),
                    ("concept", Value::from(format!("c{concept}"))),
                    ("selector", Value::from(*selector)),
                    ("label", Value::from(*label)),
                ]);
                let r = issue(
                    &mut cx,
                    "POST",
                    &format!("{base}/label"),
                    Some(&body.to_string()),
                );
                if r.as_ref().is_some_and(|r| r.status == 200) {
                    log.write("label.script", &op.script_line().expect("label op"))?;
                }
            }
            Op::Lattice => {
                issue(&mut cx, "GET", &format!("{base}/lattice{query}"), None);
            }
            Op::Concepts => {
                issue(&mut cx, "GET", &format!("{base}/concepts{query}"), None);
            }
            Op::Focus => {
                issue(
                    &mut cx,
                    "GET",
                    &format!("{base}/focus{query}&concept={top}"),
                    None,
                );
            }
            Op::Digest => {
                issue(&mut cx, "GET", &format!("{base}/digest{query}"), None);
            }
        }
    }

    // The server's final word on this session, for the replay diff.
    if let Some(v) = issue(&mut cx, "GET", &format!("{base}/digest{query}"), None)
        .as_ref()
        .filter(|r| r.status == 200)
        .and_then(body_json)
    {
        log.write_digest(&v)?;
    }
    Ok(cx.tally)
}

/// Runs the whole fleet and merges the tallies.
///
/// # Errors
///
/// Fails only on verify-log I/O; HTTP-level failures are *counted*,
/// not raised, so a sick server still yields a report to gate on.
pub fn run(opts: &LoadOptions) -> io::Result<LoadReport> {
    if let Some(dir) = &opts.verify_dir {
        std::fs::create_dir_all(dir)?;
        let manifest = Value::object([
            ("labelers", Value::from(opts.labelers as u64)),
            ("requests", Value::from(opts.requests as u64)),
            ("seed", Value::from(opts.seed)),
            ("tenant_prefix", Value::from(opts.tenant_prefix.as_str())),
        ]);
        std::fs::write(dir.join("manifest.json"), format!("{manifest}\n"))?;
    }
    let start = Instant::now();
    let tallies: Vec<io::Result<Tally>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.labelers)
            .map(|i| scope.spawn(move || run_labeler(opts, i)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = start.elapsed();

    let mut report = LoadReport {
        labelers: opts.labelers,
        requests: 0,
        ok: 0,
        errors_4xx: 0,
        errors_5xx: 0,
        retries_429: 0,
        degraded_503: 0,
        gave_up: 0,
        io_errors: 0,
        wall,
        retry_wait: Duration::ZERO,
        latencies: Vec::new(),
    };
    for tally in tallies {
        let t = tally?;
        report.requests += t.requests;
        report.ok += t.ok;
        report.errors_4xx += t.errors_4xx;
        report.errors_5xx += t.errors_5xx;
        report.retries_429 += t.retries_429;
        report.degraded_503 += t.degraded_503;
        report.gave_up += t.gave_up;
        report.io_errors += t.io_errors;
        report.retry_wait += t.retry_wait;
        report.latencies.extend(t.latencies);
    }
    report.latencies.sort_unstable();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(latencies: Vec<u64>) -> LoadReport {
        LoadReport {
            labelers: 2,
            requests: latencies.len() as u64,
            ok: latencies.len() as u64,
            errors_4xx: 0,
            errors_5xx: 0,
            retries_429: 0,
            degraded_503: 0,
            gave_up: 0,
            io_errors: 0,
            wall: Duration::from_secs(2),
            retry_wait: Duration::ZERO,
            latencies,
        }
    }

    #[test]
    fn quantiles_are_exact_nearest_rank() {
        let r = report((1..=100).map(|i| i * 1_000_000).collect());
        assert!((r.quantile_ms(0.50) - 50.0).abs() < 1.5);
        assert!((r.quantile_ms(0.99) - 99.0).abs() < 1.5);
        assert_eq!(report(Vec::new()).quantile_ms(0.5), 0.0);
    }

    #[test]
    fn summary_record_carries_the_gate_fields() {
        let r = report(vec![2_000_000; 10]);
        let v = r.to_json();
        assert_eq!(
            v.get("record").and_then(Value::as_str),
            Some("load_summary")
        );
        assert_eq!(v.get("errors_5xx").and_then(Value::as_u64), Some(0));
        assert_eq!(v.get("gave_up").and_then(Value::as_u64), Some(0));
        assert_eq!(v.get("degraded_503").and_then(Value::as_u64), Some(0));
        assert_eq!(v.get("requests").and_then(Value::as_u64), Some(10));
        assert_eq!(v.get("retry_wait_ms").and_then(Value::as_u64), Some(0));
        assert!(v.get("p99_ms").and_then(Value::as_f64).unwrap() > 1.9);
        assert!((r.throughput_rps() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn backoff_grows_exponentially_to_the_hint_and_stays_jittered() {
        let mut rng = rng::stream(7, 0);
        for attempt in 0..24 {
            let cap = Duration::from_millis(2000);
            let step = Duration::from_millis((BACKOFF_BASE_MS << attempt.min(16)).min(2000));
            let d = backoff(&mut rng, attempt, Some(2));
            // Full jitter keeps every delay within [step/2, step] —
            // never zero, never past the server's hint.
            assert!(d >= step / 2, "attempt {attempt}: {d:?} < {:?}", step / 2);
            assert!(d <= step + Duration::from_millis(1), "attempt {attempt}");
            assert!(d <= cap + Duration::from_millis(1), "attempt {attempt}");
        }
        // Unhinted answers back off toward one second, the service's
        // standard Retry-After.
        assert!(backoff(&mut rng, 16, None) <= Duration::from_secs(1));
    }

    #[test]
    fn backoff_is_reproducible_per_stream() {
        let mut a = rng::stream(42, 3);
        let mut b = rng::stream(42, 3);
        let delays_a: Vec<_> = (0..8).map(|i| backoff(&mut a, i, Some(1))).collect();
        let delays_b: Vec<_> = (0..8).map(|i| backoff(&mut b, i, Some(1))).collect();
        assert_eq!(delays_a, delays_b);
        let mut c = rng::stream(42, 4);
        let delays_c: Vec<_> = (0..8).map(|i| backoff(&mut c, i, Some(1))).collect();
        assert_ne!(delays_a, delays_c, "streams decorrelate the fleet");
    }

    #[test]
    fn only_a_declared_degraded_503_counts_as_degraded() {
        let declared = Response {
            status: 503,
            retry_after: Some(1),
            body: r#"{"error": "read-only", "status": 503, "degraded": true, "cause": "fsync"}"#
                .into(),
        };
        assert!(declares_degraded(&declared));
        let naked = Response {
            status: 503,
            retry_after: None,
            body: "service exploded".into(),
        };
        assert!(!declares_degraded(&naked));
        let wrong_status = Response {
            status: 500,
            retry_after: None,
            body: r#"{"degraded": true}"#.into(),
        };
        assert!(!declares_degraded(&wrong_status));
    }
}
