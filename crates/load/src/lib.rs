//! Load driver for the cable labeling service.
//!
//! `cable-load` simulates N concurrent labelers hammering a `cable
//! serve --api` instance: each labeler owns one tenant, opens one
//! session, and then issues a seeded mix of ingest / label / lattice /
//! concepts / focus / digest requests over plain HTTP. The whole
//! workload is a pure function of `(seed, labeler index)` via
//! [`cable_util::rng::stream`], so a run is replayable bit-for-bit —
//! and, because every *mutating* op is also written to a per-labeler
//! op log (`--verify-dir`), a run can be replayed **sequentially
//! through the `cable` CLI** and the resulting store digests compared
//! against the server's. That equivalence (concurrent service run ≡
//! sequential CLI replay, per session) is the determinism gate the CI
//! service drill enforces.
//!
//! The driver reports throughput, error counts, and exact p50/p95/p99
//! request latencies, and writes a JSONL file whose final record is
//! the standard `pipeline_snapshot`, so `reproduce slo-check` can gate
//! the service's latency budget and `reproduce compare` can ingest the
//! file without special-casing it.

pub mod client;
pub mod driver;
pub mod plan;

pub use client::{request, Response};
pub use driver::{run, LoadOptions, LoadReport};
pub use plan::{Labeler, Op};
