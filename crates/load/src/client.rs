//! A minimal HTTP/1.1 client over `std::net::TcpStream`.
//!
//! The workspace is std-only, so the driver carries its own client:
//! one connection per request, `Connection: close`, read to EOF. That
//! is deliberately the simplest correct thing — the service's
//! worker-pool treats each connection as one request anyway, and a
//! load driver that reconnects per request exercises the accept-queue
//! backpressure path (429 + `Retry-After`) the way real clients would.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// How long a single request may take end to end before the driver
/// counts it as an I/O error. Generous: the point is to catch a hung
/// server, not a slow one (latency budgets are the SLO gate's job).
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// A parsed HTTP response: status code, the `Retry-After` header when
/// present, and the full body.
#[derive(Debug, Clone)]
pub struct Response {
    /// The HTTP status code.
    pub status: u16,
    /// Seconds from a `Retry-After` header, if the server sent one.
    pub retry_after: Option<u64>,
    /// The response body.
    pub body: String,
}

/// Issues one HTTP request and reads the full response.
///
/// `body` is sent with `Content-Type: application/json` when present.
///
/// # Errors
///
/// Fails on connect/read/write errors, timeouts, or a response that is
/// not parseable HTTP/1.x.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    let payload = body.unwrap_or("");
    if body.is_some() {
        head.push_str("Content-Type: application/json\r\n");
        head.push_str(&format!("Content-Length: {}\r\n", payload.len()));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

/// Parses a full `Connection: close` response buffer.
fn parse_response(raw: &[u8]) -> std::io::Result<Response> {
    let text = String::from_utf8_lossy(raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("response without header terminator"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("unparseable status line"))?;
    let mut retry_after = None;
    let mut content_length = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("retry-after") {
                retry_after = value.parse::<u64>().ok();
            } else if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse::<usize>().ok();
            }
        }
    }
    // With Connection: close the body is simply the rest of the
    // stream; Content-Length just lets us trim any trailing bytes.
    let body = match content_length {
        Some(n) if n <= body.len() => body[..n].to_string(),
        _ => body.to_string(),
    };
    Ok(Response {
        status,
        retry_after,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_headers_and_body() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nContent-Type: application/json\r\nRetry-After: 1\r\nContent-Length: 2\r\n\r\n{}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 429);
        assert_eq!(r.retry_after, Some(1));
        assert_eq!(r.body, "{}");
    }

    #[test]
    fn tolerates_missing_content_length() {
        let raw = b"HTTP/1.0 200 OK\r\n\r\nhello";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "hello");
        assert_eq!(r.retry_after, None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }
}
