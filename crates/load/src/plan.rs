//! Deterministic per-labeler workloads.
//!
//! Each labeler is a seeded stream ([`cable_util::rng::stream`]): the
//! traces it synthesises and the op mix it draws depend only on
//! `(seed, labeler index)` — never on timing, thread scheduling, or
//! what other labelers do. Trace text uses the grammar the parser
//! accepts (`fopen(#7)`-style events with `#N` object ids), with
//! object ids fresh per labeler so ingest batches never collide.
//!
//! Ops whose *payload* depends on server state (which concept to
//! label or focus on) resolve that choice at issue time from the
//! concept count the server reported — a pure function of the traces
//! ingested so far, hence still deterministic. The resolved op is what
//! lands in the verify log, so a CLI replay needs no re-resolution.

use cable_util::rng::{self, Rng, SmallRng};

/// One resolved request against a labeler's session, after the
/// mandatory opening `POST /api/sessions`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `POST …/ingest` with this trace text.
    Ingest {
        /// Trace text, one trace per line.
        traces: String,
    },
    /// `POST …/label` on concept `cN`.
    Label {
        /// The concept index (`cN`).
        concept: usize,
        /// `all` or `unlabeled` (the `with:` selector is exercised by
        /// the API tests; the driver sticks to replayable ones).
        selector: &'static str,
        /// The label name to apply.
        label: &'static str,
    },
    /// `GET …/lattice`.
    Lattice,
    /// `GET …/concepts`.
    Concepts,
    /// `GET …/focus?concept=cN` on the lattice top (always nonempty).
    Focus,
    /// `GET …/digest`.
    Digest,
}

/// The op-mix weights, in [`Op`] declaration order (ingest, label,
/// lattice, concepts, focus, digest). Mutations dominate — they are
/// the ops that exercise journaling, eviction, and the determinism
/// property — with enough reads mixed in to keep the cache honest.
const WEIGHTS: [f64; 6] = [40.0, 20.0, 15.0, 10.0, 10.0, 5.0];

/// The labels a labeler applies, drawn uniformly.
const LABELS: [&str; 3] = ["good", "bad", "leak"];

/// One simulated labeler's deterministic op stream.
#[derive(Debug, Clone)]
pub struct Labeler {
    rng: SmallRng,
    next_obj: u32,
}

impl Labeler {
    /// The labeler for stream `index` of `seed`.
    pub fn new(seed: u64, index: u64) -> Labeler {
        Labeler {
            rng: rng::stream(seed, index),
            next_obj: 1,
        }
    }

    /// One synthetic trace over a fresh object id: an open, a few
    /// reads or a write, and (usually) a close — the file-handle
    /// vocabulary of the paper's running example, with enough shape
    /// variety to keep the lattice non-trivial.
    fn trace(&mut self) -> String {
        let obj = self.next_obj;
        self.next_obj += 1;
        let mut text = format!("fopen(#{obj})");
        if self.rng.gen_bool(0.3) {
            text.push_str(&format!(" fwrite(#{obj})"));
        } else {
            for _ in 0..self.rng.gen_range(1usize..=3) {
                text.push_str(&format!(" fread(#{obj})"));
            }
        }
        // Every fifth trace or so leaks the handle.
        if !self.rng.gen_bool(0.2) {
            text.push_str(&format!(" fclose(#{obj})"));
        }
        text
    }

    fn traces(&mut self, n: usize) -> String {
        let mut out = String::new();
        for _ in 0..n {
            out.push_str(&self.trace());
            out.push('\n');
        }
        out
    }

    /// The trace corpus the labeler opens its session with.
    pub fn seed_traces(&mut self) -> String {
        let n = self.rng.gen_range(3usize..=5);
        self.traces(n)
    }

    /// The next op, resolved against the current concept count (as
    /// reported by the server on create/ingest).
    pub fn next_op(&mut self, concepts: usize) -> Op {
        match rng::weighted_index(&WEIGHTS, &mut self.rng).expect("static weights") {
            0 => {
                let n = self.rng.gen_range(1usize..=3);
                Op::Ingest {
                    traces: self.traces(n),
                }
            }
            1 => Op::Label {
                concept: self.rng.gen_range(0..concepts.max(1)),
                selector: if self.rng.gen_bool(0.75) {
                    "unlabeled"
                } else {
                    "all"
                },
                label: LABELS[self.rng.gen_range(0..LABELS.len())],
            },
            2 => Op::Lattice,
            3 => Op::Concepts,
            4 => Op::Focus,
            _ => Op::Digest,
        }
    }
}

impl Op {
    /// Whether the op mutates session state (and so must appear in the
    /// verify log for CLI replay).
    pub fn mutates(&self) -> bool {
        matches!(self, Op::Ingest { .. } | Op::Label { .. })
    }

    /// The `label` script line for a label op, in the exact syntax
    /// `cable label --store DIR --script FILE` parses.
    pub fn script_line(&self) -> Option<String> {
        match self {
            Op::Label {
                concept,
                selector,
                label,
            } => Some(format!("label c{concept} {selector} {label}\n")),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_replayable_and_distinct() {
        let mut a = Labeler::new(42, 3);
        let mut b = Labeler::new(42, 3);
        assert_eq!(a.seed_traces(), b.seed_traces());
        for _ in 0..50 {
            assert_eq!(a.next_op(7), b.next_op(7));
        }
        let mut c = Labeler::new(42, 4);
        assert_ne!(a.seed_traces(), c.seed_traces());
    }

    #[test]
    fn traces_use_the_parser_grammar() {
        let mut l = Labeler::new(7, 0);
        let text = l.seed_traces();
        for line in text.lines() {
            for event in line.split_whitespace() {
                let (op, rest) = event.split_once('(').unwrap();
                assert!(matches!(op, "fopen" | "fread" | "fwrite" | "fclose"));
                assert!(rest.starts_with('#') && rest.ends_with(')'));
            }
        }
    }

    #[test]
    fn label_ops_stay_in_bounds_and_render_scripts() {
        let mut l = Labeler::new(9, 1);
        let mut saw_label = false;
        for _ in 0..200 {
            let op = l.next_op(5);
            if let Op::Label { concept, .. } = op {
                assert!(concept < 5);
                saw_label = true;
                let line = op.script_line().unwrap();
                assert!(line.starts_with(&format!("label c{concept} ")));
                assert!(op.mutates());
            }
        }
        assert!(saw_label, "label ops should appear in 200 draws");
    }

    #[test]
    fn object_ids_never_repeat_within_a_labeler() {
        let mut l = Labeler::new(11, 2);
        let mut seen = std::collections::HashSet::new();
        let mut all = l.seed_traces();
        for _ in 0..20 {
            if let Op::Ingest { traces } = l.next_op(3) {
                all.push_str(&traces);
            }
        }
        for line in all.lines() {
            let obj = line
                .split_once("(#")
                .and_then(|(_, rest)| rest.split_once(')'))
                .unwrap()
                .0
                .to_string();
            assert!(seen.insert(obj), "object id reused across traces");
        }
    }
}
