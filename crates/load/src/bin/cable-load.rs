//! `cable-load` — the service load driver.
//!
//! ```text
//! cable-load --addr HOST:PORT [--labelers N] [--requests N] [--seed N]
//!            [--tenant-prefix NAME] [--verify-dir DIR]
//!            [--json-out PATH] [--max-5xx N] [--chaos]
//! ```
//!
//! Simulates `--labelers` concurrent labelers against a
//! `cable serve --api` instance, each issuing `--requests` seeded ops
//! after opening its own session (one tenant per labeler). Prints a
//! throughput/latency summary, and with `--json-out` writes a
//! `load_summary` record plus the final `pipeline_snapshot` —
//! the file `reproduce slo-check` gates latency budgets on.
//!
//! `--verify-dir DIR` writes each labeler's mutating ops as ordered
//! step files plus the server's final digest record, so
//! `scripts/service_drill.sh` can replay every session sequentially
//! through the CLI and diff digests.
//!
//! `--fetch PATH [--out FILE]` is a one-shot GET instead of a load run:
//! the response body goes to `FILE` (stdout without `--out`) and the
//! exit code reflects the HTTP status. The drill uses it to pull
//! `/tracez/export` off the server before shutdown — the workspace is
//! std-only, so there is no curl to lean on.
//!
//! `--chaos` is the chaos-drill assertion mode: *declared* degraded
//! 503s (body says `"degraded": true` — the read-only store refusing a
//! write under fault injection) are retried with capped exponential
//! backoff and counted as `degraded_503` rather than as server errors.
//! Undeclared 5xx answers stay hard errors, so the drill's gate is
//! exactly "every 5xx is a declared one".
//!
//! Exit codes: **0** clean, **2** usage, **3** when the run saw more
//! than `--max-5xx` server errors (default 0), any transport error, or
//! any request that gave up its retry budget — the CI drills' gate.
//! `--fetch` exits **1** on transport errors or a non-2xx status.

use cable_load::{run, LoadOptions};
use cable_obs::json::Value;
use cable_obs::JsonlSink;
use std::process::exit;

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: cable-load --addr HOST:PORT [--labelers N] [--requests N] [--seed N] \
         [--tenant-prefix NAME] [--verify-dir DIR] [--json-out PATH] [--max-5xx N] [--chaos]\n\
       \x20      cable-load --addr HOST:PORT --fetch PATH [--out FILE]"
    );
    exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    value
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a valid value")))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut addr = None;
    let mut json_out = None;
    let mut max_5xx: u64 = 0;
    let mut fetch = None;
    let mut fetch_out = None;
    let mut opts = LoadOptions::new("");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next(),
            "--fetch" => fetch = args.next(),
            "--out" => fetch_out = args.next(),
            "--labelers" => {
                opts.labelers = parse::<usize>("--labelers", args.next());
                if opts.labelers == 0 {
                    usage("--labelers must be positive");
                }
            }
            "--requests" => opts.requests = parse("--requests", args.next()),
            "--seed" => opts.seed = parse("--seed", args.next()),
            "--tenant-prefix" => {
                opts.tenant_prefix = args
                    .next()
                    .unwrap_or_else(|| usage("--tenant-prefix needs a value"));
            }
            "--verify-dir" => {
                opts.verify_dir = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--verify-dir needs a path"))
                        .into(),
                );
            }
            "--json-out" => json_out = args.next(),
            "--max-5xx" => max_5xx = parse("--max-5xx", args.next()),
            "--chaos" => opts.chaos = true,
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    let Some(addr) = addr else {
        usage("--addr is required");
    };
    opts.addr = addr;

    if let Some(path) = fetch {
        if !path.starts_with('/') {
            usage("--fetch needs an absolute path like /tracez/export");
        }
        let response = cable_load::request(&opts.addr, "GET", &path, None).unwrap_or_else(|e| {
            eprintln!("error: GET {path}: {e}");
            exit(1);
        });
        match fetch_out {
            Some(file) => std::fs::write(&file, &response.body).unwrap_or_else(|e| {
                eprintln!("error: cannot write {file}: {e}");
                exit(1);
            }),
            None => print!("{}", response.body),
        }
        if !(200..300).contains(&response.status) {
            eprintln!("error: GET {path} answered {}", response.status);
            exit(1);
        }
        return;
    }

    let report = run(&opts).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(1);
    });
    print!("{}", report.render());

    if let Some(path) = json_out {
        let sink = JsonlSink::create(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            exit(1);
        });
        let snapshot = Value::object([
            ("record", Value::from("pipeline_snapshot")),
            ("seed", Value::from(opts.seed)),
            ("snapshot", cable_obs::registry().snapshot().to_json()),
        ]);
        sink.write(&report.to_json()).expect("writing load summary");
        sink.write(&snapshot).expect("writing snapshot");
        sink.flush().expect("flushing load records");
    }

    if report.errors_5xx > max_5xx || report.io_errors > 0 || report.gave_up > 0 {
        eprintln!(
            "load: FAIL — {} server errors (allowed {}), {} transport errors, {} gave up",
            report.errors_5xx, max_5xx, report.io_errors, report.gave_up
        );
        exit(3);
    }
}
