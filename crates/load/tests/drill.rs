//! The in-process service drill: the load driver against a real
//! server + API handler, then a sequential replay of every labeler's
//! verify log, asserting the drill's two gates — zero server errors,
//! and bit-identical session digests between the concurrent run and
//! the sequential replay.
//!
//! This is the same property `scripts/service_drill.sh` checks through
//! the CLI in CI; here it runs in-process so `cargo test` covers it on
//! every change.

use cable_core::digest::session_state_record;
use cable_core::manager::{SessionKey, SessionManager};
use cable_core::session::{CableSession, TraceSelector};
use cable_core::CableApi;
use cable_fa::templates;
use cable_fca::ConceptId;
use cable_load::{run, LoadOptions};
use cable_obs::json::Value;
use cable_obs::{set_api_handler, ObsServer, ServerConfig};
use cable_trace::{Trace, TraceSet, Vocab};
use std::path::Path;
use std::sync::Arc;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cable-load-drill-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Replays one labeler's verify log sequentially into a fresh store
/// and returns the final digest record.
fn replay(steps_dir: &Path, store_root: &Path, tenant: &str) -> Value {
    let manager = SessionManager::new(store_root, 4);
    let key = SessionKey::new(tenant, "s").unwrap();
    let mut steps: Vec<_> = std::fs::read_dir(steps_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("step-"))
        })
        .collect();
    steps.sort();
    assert!(!steps.is_empty(), "no steps logged for {tenant}");
    for step in &steps {
        let name = step.file_name().unwrap().to_str().unwrap();
        let content = std::fs::read_to_string(step).unwrap();
        if name.ends_with("open.traces") {
            let mut vocab = Vocab::new();
            let traces = TraceSet::parse(&content, &mut vocab).unwrap();
            let list: Vec<Trace> = traces.iter().map(|(_, t)| t.clone()).collect();
            let fa = templates::unordered_of_trace_events(&list);
            manager
                .create(&key, CableSession::new(traces, fa), vocab)
                .unwrap();
        } else if name.ends_with("ingest.traces") {
            manager
                .with_session(&key, |stored| {
                    stored
                        .ingest_text(&content, false)
                        .map_err(cable_core::manager::ManagerError::Store)?;
                    Ok(())
                })
                .unwrap();
        } else if name.ends_with("label.script") {
            // `label cN <all|unlabeled> <name>` — the syntax
            // `cable label --script` parses.
            let parts: Vec<&str> = content.split_whitespace().collect();
            let [_, concept, selector, label] = parts.as_slice() else {
                panic!("bad script line {content:?}");
            };
            let id = ConceptId(concept.strip_prefix('c').unwrap().parse().unwrap());
            let selector = match *selector {
                "all" => TraceSelector::All,
                "unlabeled" => TraceSelector::Unlabeled,
                other => panic!("unexpected selector {other:?}"),
            };
            manager
                .with_session(&key, |stored| {
                    stored
                        .label_traces(id, &selector, label)
                        .map_err(cable_core::manager::ManagerError::Store)?;
                    Ok(())
                })
                .unwrap();
        } else {
            panic!("unexpected step file {name:?}");
        }
    }
    manager
        .with_session(&key, |stored| Ok(session_state_record(stored)))
        .unwrap()
}

#[test]
fn concurrent_run_replays_sequentially_to_identical_digests() {
    let root = tmp_dir("stores");
    let verify = tmp_dir("verify");

    // A deliberately tight manager (4 slots for 6 labelers) so the
    // drill exercises eviction under concurrency, and a small worker
    // pool + queue so at least some requests see real queueing.
    let manager = Arc::new(SessionManager::new(root.join("server"), 4));
    let api = CableApi::new(Arc::clone(&manager), None);
    set_api_handler(Some(Arc::new(api)));
    let server = ObsServer::bind_with(
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 4,
            queue_depth: 64,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr().to_string();
    let guard = server.spawn();

    let mut opts = LoadOptions::new(&addr);
    opts.labelers = 6;
    opts.requests = 12;
    opts.seed = 1234;
    opts.verify_dir = Some(verify.clone());
    let report = run(&opts).unwrap();

    // Gate 1: nothing 5xx'd, nothing broke at the transport level,
    // and the run actually did work.
    assert_eq!(report.errors_5xx, 0, "server errors:\n{}", report.render());
    assert_eq!(
        report.io_errors,
        0,
        "transport errors:\n{}",
        report.render()
    );
    assert_eq!(report.errors_4xx, 0, "client bugs:\n{}", report.render());
    assert_eq!(report.requests, 6 * (12 + 3) as u64, "{}", report.render());
    assert_eq!(report.ok, report.requests);

    // Gate 2: every labeler's server-side digest equals a sequential
    // replay of its logged ops into a fresh store.
    for i in 0..opts.labelers {
        let labeler_dir = verify.join(format!("labeler-{i:03}"));
        let digest_text = std::fs::read_to_string(labeler_dir.join("digest.jsonl")).unwrap();
        let server_digest = Value::parse(digest_text.trim()).unwrap();
        let tenant = format!("load{i:03}");
        let replayed = replay(&labeler_dir, &root.join(format!("replay-{i}")), &tenant);
        assert_eq!(
            server_digest, replayed,
            "labeler {i}: concurrent service run diverged from sequential replay"
        );
    }

    drop(guard);
    set_api_handler(None);
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&verify);
}
