//! CRC-32 (IEEE 802.3 polynomial), the frame checksum of the store files.
//!
//! Hand-rolled table-driven implementation — the workspace is std-only by
//! policy, and the store only needs corruption *detection* for its
//! valid-prefix recovery, not cryptographic integrity.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xedb8_8320;

/// The 256-entry lookup table, computed at compile time.
static TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Computes the CRC-32 of `bytes`.
///
/// # Examples
///
/// ```
/// // The catalogue check value for "123456789".
/// assert_eq!(cable_store::crc::crc32(b"123456789"), 0xcbf4_3926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_values() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"append-only corpus frame payload";
        let base = crc32(data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.to_vec();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip byte {i} bit {bit}");
            }
        }
    }
}
