//! Fault-injecting I/O shim.
//!
//! Every store read and write funnels through this module, which asks
//! the `cable-guard` fault plane whether a deterministic I/O error is
//! scheduled for the site (`CABLE_FAULTS=<seed>:io@<site>…`) before
//! touching the file system. With no plane installed the check is a
//! single relaxed atomic load, so the production path pays nothing.
//!
//! Sites: `store.snapshot.read`, `store.journal.read`,
//! `store.publish`, `store.journal.append`, `store.fsync`.

use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::Path;

/// Returns the injected error for `site`, if one is scheduled.
pub fn check(site: &str) -> io::Result<()> {
    match cable_guard::faults::io_error(site) {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// One faultable write: asks the plane, and on an `io:short` rule
/// commits a prefix of the buffer to the underlying writer before
/// surfacing the error — the torn record a real partial write leaves.
fn faulted_write<W: Write>(site: &str, inner: &mut W, buf: &[u8]) -> io::Result<usize> {
    match cable_guard::faults::io_fault(site) {
        None => inner.write(buf),
        Some(fault) => {
            if fault.is_short_write() && !buf.is_empty() {
                // Best-effort prefix commit: the injected error below is
                // surfaced either way, so an inner failure here changes
                // nothing for the caller.
                let _ = inner.write(&buf[..buf.len().div_ceil(2)]);
            }
            Err(fault.into_error())
        }
    }
}

/// [`std::fs::read`] behind the shim.
pub fn read(site: &str, path: &Path) -> io::Result<Vec<u8>> {
    check(site)?;
    fs::read(path)
}

/// A writer that consults the fault plane before every write and flush.
///
/// The underlying writer is untouched when a fault fires, so an injected
/// error leaves the file exactly as a real mid-write failure at the same
/// point would — which is what the recovery tests want to exercise.
#[derive(Debug)]
pub struct FaultWriter<W> {
    inner: W,
    site: &'static str,
}

impl<W: Write> FaultWriter<W> {
    /// Wraps `inner`, attributing faults to `site`.
    pub fn new(site: &'static str, inner: W) -> FaultWriter<W> {
        FaultWriter { inner, site }
    }

    /// Unwraps the shim, handing the inner writer back.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        faulted_write(self.site, &mut self.inner, buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        check(self.site)?;
        self.inner.flush()
    }
}

/// A [`File`] handle whose writes and fsyncs each consult the fault
/// plane under their own site — the journal handle wrapper, so every
/// append runs under `write_site` and every `sync_all` under
/// `sync_site` without per-call rewrapping.
#[derive(Debug)]
pub struct FaultFile {
    inner: File,
    write_site: &'static str,
    sync_site: &'static str,
}

impl FaultFile {
    /// Wraps `inner`, attributing writes to `write_site` and fsyncs to
    /// `sync_site`.
    pub fn new(write_site: &'static str, sync_site: &'static str, inner: File) -> FaultFile {
        FaultFile {
            inner,
            write_site,
            sync_site,
        }
    }

    /// `sync_all` behind the fault plane. Callers must treat a failure
    /// as fail-stop for this handle: the kernel may have dropped the
    /// dirty pages, so retrying the fsync can silently "succeed" over
    /// lost data. Reopen and recover instead.
    pub fn sync_all(&self) -> io::Result<()> {
        check(self.sync_site)?;
        self.inner.sync_all()
    }
}

impl Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        faulted_write(self.write_site, &mut self.inner, buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        check(self.write_site)?;
        self.inner.flush()
    }
}

/// A reader that consults the fault plane before every read.
#[derive(Debug)]
pub struct FaultReader<R> {
    inner: R,
    site: &'static str,
}

impl<R: Read> FaultReader<R> {
    /// Wraps `inner`, attributing faults to `site`.
    pub fn new(site: &'static str, inner: R) -> FaultReader<R> {
        FaultReader { inner, site }
    }
}

impl<R: Read> Read for FaultReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        check(self.site)?;
        self.inner.read(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    // The fault plane is process-global; serialise tests that arm it.
    fn lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn no_plane_is_transparent() {
        let _l = lock();
        let mut out = Vec::new();
        let mut w = FaultWriter::new("store.publish", &mut out);
        w.write_all(b"hello").unwrap();
        w.flush().unwrap();
        assert_eq!(out, b"hello");

        let mut buf = String::new();
        FaultReader::new("store.snapshot.read", &b"abc"[..])
            .read_to_string(&mut buf)
            .unwrap();
        assert_eq!(buf, "abc");
    }

    #[test]
    fn armed_plane_fires_on_the_exact_hit() {
        let _l = lock();
        cable_guard::faults::install("3:io@store.publish#2").unwrap();
        let mut out = Vec::new();
        let mut w = FaultWriter::new("store.publish", &mut out);
        w.write_all(b"first").unwrap();
        let err = w.write_all(b"second").expect_err("second hit fires");
        assert!(err.to_string().contains("io@store.publish"), "{err}");
        cable_guard::faults::uninstall();
        // The inner writer holds exactly the bytes written before the
        // fault, like a real mid-stream failure.
        assert_eq!(out, b"first");
    }

    #[test]
    fn short_write_fault_commits_a_torn_prefix() {
        let _l = lock();
        cable_guard::faults::install("3:io:short@store.journal.append").unwrap();
        let mut out = Vec::new();
        let mut w = FaultWriter::new("store.journal.append", &mut out);
        let err = w.write_all(b"abcdefgh").expect_err("first hit fires");
        assert!(err.to_string().contains("io:short@"), "{err}");
        cable_guard::faults::uninstall();
        // Half the buffer landed before the failure: a torn record.
        assert_eq!(out, b"abcd");
    }

    #[test]
    fn fault_file_separates_write_and_sync_sites() {
        let _l = lock();
        let path = std::env::temp_dir().join(format!(
            "cable-store-shim-faultfile-{}.bin",
            std::process::id()
        ));
        let file = File::create(&path).unwrap();
        let mut wrapped = FaultFile::new("store.journal.append", "store.fsync", file);

        cable_guard::faults::install("3:io@store.fsync").unwrap();
        wrapped.write_all(b"payload").unwrap();
        let err = wrapped.sync_all().expect_err("sync site fires");
        assert!(err.to_string().contains("io@store.fsync"), "{err}");

        cable_guard::faults::install("3:io@store.journal.append").unwrap();
        assert!(wrapped.write_all(b"more").is_err(), "write site fires");
        cable_guard::faults::uninstall();
        wrapped.sync_all().unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sites_are_independent() {
        let _l = lock();
        cable_guard::faults::install("3:io@store.journal.append").unwrap();
        assert!(check("store.publish").is_ok());
        assert!(check("store.journal.append").is_err());
        cable_guard::faults::uninstall();
    }
}
