//! Crash-safe persistence for Cable sessions.
//!
//! The paper's tool is interactive: a user labels concepts over many
//! sittings, and Godin's algorithm is chosen precisely because it is
//! *incremental*. This crate supplies the durable half of that story —
//! a store directory holding the session corpus, labels, and lattice,
//! that survives crashes and lets `cable-core` resume a session and
//! extend it without rebuilding from scratch.
//!
//! A store is a directory with two files:
//!
//! * **`snapshot.cable`** — the complete session state (vocabulary,
//!   automaton, traces, labels, context rows, lattice concepts) as
//!   length-prefixed, CRC-32-checksummed frames ([`corpus`]). Published
//!   atomically: temp file, fsync, rename, directory fsync.
//! * **`journal.cable`** — a write-ahead journal of appends since the
//!   snapshot (new traces, label decisions), one checksummed frame per
//!   record ([`journal`]). Appended in place; after a crash the valid
//!   record prefix is replayed and any torn or corrupt tail truncated.
//!
//! [`store::Store`] ties the two together with compaction (fold the
//! journal into a fresh snapshot) made crash-safe by generation
//! numbers. [`store::Store::compact`] and the module docs spell out the
//! protocol; the fault-injection tests in `tests/` verify the recovery
//! invariant byte by byte.
//!
//! The crate depends only on `cable-trace` (the binary trace codec),
//! `cable-util`, and `cable-obs` — the session semantics live in
//! `cable-core`, which converts [`corpus::SnapshotData`] to and from a
//! live session.
//!
//! Observability: `store.bytes_written`, `store.fsyncs`,
//! `store.journal.appends`, `store.journal.replayed`,
//! `store.journal.discarded_bytes`, `store.compactions`, and the
//! degraded-mode gauges `store.degraded.enter` / `store.degraded.exit`
//! / `store.degraded.refusals` (plus the `store_degraded{cause=…}`
//! scoped family and the `store_degraded` / `store_recovered` wide
//! events).

pub mod corpus;
pub mod crc;
pub mod frame;
pub mod journal;
pub mod shim;
pub mod store;

pub use corpus::SnapshotData;
pub use journal::{JournalRecord, TailState};
pub use store::{Durability, RecoveryReport, Store};

use std::error::Error;
use std::fmt;

/// Error reading or writing a store.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure.
    Io(std::io::Error),
    /// The bytes on disk do not form a valid store file.
    Format(String),
    /// A `cable-guard` budget or cancellation tripped mid-operation
    /// (ingest and replay checkpoint between records).
    Guard(cable_guard::GuardError),
    /// The store is read-only after a write-path failure (fail-stop
    /// durability, DESIGN.md §17): writes are refused until
    /// [`store::Store::recover`] republishes known-good state onto
    /// fresh handles. `cause` is the degradation reason
    /// (`"fsync"`, `"journal-append"`, `"publish"`, …).
    Degraded {
        /// Which write-path step failed first.
        cause: String,
    },
}

impl StoreError {
    /// Builds a format error.
    pub fn format(message: impl Into<String>) -> StoreError {
        StoreError::Format(message.into())
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Format(m) => write!(f, "store format error: {m}"),
            StoreError::Guard(e) => write!(f, "store operation stopped: {e}"),
            StoreError::Degraded { cause } => {
                write!(f, "store is read-only (degraded: {cause})")
            }
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Format(_) => None,
            StoreError::Guard(e) => Some(e),
            StoreError::Degraded { .. } => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<cable_guard::GuardError> for StoreError {
    fn from(e: cable_guard::GuardError) -> Self {
        StoreError::Guard(e)
    }
}

impl From<cable_trace::binary::DecodeError> for StoreError {
    fn from(e: cable_trace::binary::DecodeError) -> Self {
        StoreError::Format(e.to_string())
    }
}
