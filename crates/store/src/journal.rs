//! The write-ahead journal: appends since the last snapshot.
//!
//! The journal (`journal.cable`) records every mutation of an open
//! session — appended traces and label decisions — as checksummed
//! frames after a fixed header:
//!
//! ```text
//! "CABLEJN1"            8-byte magic
//! [generation: u64 LE]  the snapshot generation this journal extends
//! frame*                J_TRACE / J_LABEL records
//! ```
//!
//! Unlike the snapshot, the journal's tail is *expected* to be dirty
//! after a crash: the file is appended in place, so a power cut can
//! leave a torn final record or (on weaker storage) a corrupted one.
//! Recovery is therefore prefix-based: [`replay`] decodes records until
//! the first torn or corrupt frame and reports how many bytes of tail
//! it discarded. The recovery invariant — checked exhaustively by the
//! fault-injection tests — is that the replayed prefix is exactly the
//! records whose frames are fully on disk and checksum-valid, and that
//! no input, however damaged, makes replay panic.
//!
//! Trace records carry the trace as a *text* line rather than binary:
//! a journal append may introduce operations and atoms the snapshot's
//! vocabulary has never seen, and the text format is self-contained
//! where the binary one is vocabulary-relative.

use crate::frame::{read_frame, write_frame, FrameRead};
use crate::StoreError;
use cable_trace::binary::{ByteReader, ByteWriter};

/// The journal file magic.
pub const JOURNAL_MAGIC: &[u8; 8] = b"CABLEJN1";

/// Size of the journal header (magic + generation).
pub const HEADER_LEN: usize = 8 + 8;

/// Record kinds.
const J_TRACE: u8 = 1;
const J_LABEL: u8 = 2;

/// One replayable journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A trace appended to the corpus, in `cable-trace` text format.
    Trace(String),
    /// A label decision: name the identical class `class`.
    Label {
        /// Identical-class index the label applies to.
        class: u32,
        /// The label name.
        name: String,
    },
}

/// Builds the journal header for a snapshot generation.
pub fn header(generation: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN);
    out.extend_from_slice(JOURNAL_MAGIC);
    out.extend_from_slice(&generation.to_le_bytes());
    out
}

/// Encodes one record as a frame.
pub fn encode_record(record: &JournalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    match record {
        JournalRecord::Trace(line) => {
            write_frame(&mut out, J_TRACE, line.as_bytes());
        }
        JournalRecord::Label { class, name } => {
            let mut w = ByteWriter::new();
            w.varint(u64::from(*class));
            w.string(name);
            write_frame(&mut out, J_LABEL, &w.into_bytes());
        }
    }
    out
}

/// What the end of the journal looked like on recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailState {
    /// The file ended exactly on a record boundary.
    Clean,
    /// The file ended mid-record (the normal crash shape).
    Torn,
    /// A complete record failed its checksum or did not decode.
    Corrupt,
}

/// The outcome of replaying a journal image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replay {
    /// The snapshot generation this journal extends.
    pub generation: u64,
    /// The records of the valid prefix, in append order.
    pub records: Vec<JournalRecord>,
    /// Length in bytes of the valid prefix (header included); the file
    /// should be truncated here before further appends.
    pub valid_len: usize,
    /// How the tail ended.
    pub tail: TailState,
}

impl Replay {
    /// Bytes of damaged tail beyond the valid prefix, given the file size.
    pub fn discarded(&self, file_len: usize) -> usize {
        file_len.saturating_sub(self.valid_len)
    }
}

fn decode_record(kind: u8, payload: &[u8]) -> Option<JournalRecord> {
    match kind {
        J_TRACE => Some(JournalRecord::Trace(
            std::str::from_utf8(payload).ok()?.to_owned(),
        )),
        J_LABEL => {
            let mut r = ByteReader::new(payload);
            let class = u32::try_from(r.varint().ok()?).ok()?;
            let name = r.string().ok()?.to_owned();
            if !r.is_exhausted() {
                return None;
            }
            Some(JournalRecord::Label { class, name })
        }
        _ => None,
    }
}

/// Replays a journal file image, keeping exactly the valid prefix.
///
/// # Errors
///
/// Returns [`StoreError::Format`] only when the file is clearly not a
/// Cable journal at all (a full header is present with the wrong
/// magic) — that is a caller mistake, not crash damage, and recovery
/// must not quietly truncate a foreign file. A header cut short by a
/// crash during creation replays as an empty generation-0 journal.
pub fn replay(bytes: &[u8]) -> Result<Replay, StoreError> {
    if bytes.len() < HEADER_LEN {
        if !JOURNAL_MAGIC.starts_with(&bytes[..bytes.len().min(8)]) {
            return Err(StoreError::format("bad journal magic"));
        }
        return Ok(Replay {
            generation: 0,
            records: Vec::new(),
            valid_len: 0,
            tail: if bytes.is_empty() {
                TailState::Clean
            } else {
                TailState::Torn
            },
        });
    }
    if &bytes[..8] != JOURNAL_MAGIC {
        return Err(StoreError::format("bad journal magic"));
    }
    let generation = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let mut records = Vec::new();
    let mut pos = HEADER_LEN;
    let tail = loop {
        match read_frame(bytes, pos) {
            FrameRead::Frame {
                kind,
                payload,
                next,
            } => match decode_record(kind, payload) {
                Some(record) => {
                    records.push(record);
                    pos = next;
                }
                // A checksum-valid frame that does not decode as any
                // known record: treat like corruption, keep the prefix.
                None => break TailState::Corrupt,
            },
            FrameRead::End => break TailState::Clean,
            FrameRead::Torn => break TailState::Torn,
            FrameRead::Corrupt => break TailState::Corrupt,
        }
    };
    Ok(Replay {
        generation,
        records,
        valid_len: pos,
        tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Trace("fopen(X) fclose(X)".to_owned()),
            JournalRecord::Label {
                class: 3,
                name: "bug".to_owned(),
            },
            JournalRecord::Trace("g('NAME,#7)".to_owned()),
        ]
    }

    fn sample_image(generation: u64) -> Vec<u8> {
        let mut image = header(generation);
        for r in sample_records() {
            image.extend_from_slice(&encode_record(&r));
        }
        image
    }

    #[test]
    fn clean_journal_replays_fully() {
        let image = sample_image(5);
        let replay = replay(&image).unwrap();
        assert_eq!(replay.generation, 5);
        assert_eq!(replay.records, sample_records());
        assert_eq!(replay.valid_len, image.len());
        assert_eq!(replay.tail, TailState::Clean);
        assert_eq!(replay.discarded(image.len()), 0);
    }

    #[test]
    fn every_truncation_keeps_the_valid_record_prefix() {
        let image = sample_image(1);
        // Record boundaries: header, then cumulative record ends.
        let mut boundaries = vec![HEADER_LEN];
        for r in sample_records() {
            boundaries.push(boundaries.last().unwrap() + encode_record(&r).len());
        }
        for cut in HEADER_LEN..image.len() {
            let r = replay(&image[..cut]).unwrap();
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(r.records, sample_records()[..whole], "cut {cut}");
            assert_eq!(r.valid_len, boundaries[whole], "cut {cut}");
            if cut == boundaries[whole] {
                assert_eq!(r.tail, TailState::Clean);
            } else {
                assert_eq!(r.tail, TailState::Torn);
                assert_eq!(r.discarded(cut), cut - boundaries[whole]);
            }
        }
    }

    #[test]
    fn torn_header_is_an_empty_journal() {
        let image = sample_image(2);
        for cut in 0..HEADER_LEN {
            let r = replay(&image[..cut]).unwrap();
            assert!(r.records.is_empty(), "cut {cut}");
            assert_eq!(r.valid_len, 0);
        }
    }

    #[test]
    fn wrong_magic_is_a_hard_error_not_a_truncation() {
        assert!(replay(b"NOTCABLE00000000").is_err());
        assert!(replay(b"ZZ").is_err());
    }

    #[test]
    fn bit_flips_never_extend_the_prefix_and_never_panic() {
        let image = sample_image(9);
        let clean = replay(&image).unwrap();
        for i in HEADER_LEN..image.len() {
            for bit in 0..8 {
                let mut bad = image.clone();
                bad[i] ^= 1 << bit;
                let r = replay(&bad).unwrap();
                assert!(r.records.len() < clean.records.len(), "flip byte {i}");
                // The prefix it does keep is a true prefix of the clean
                // record sequence.
                assert_eq!(r.records[..], clean.records[..r.records.len()]);
            }
        }
    }

    #[test]
    fn garbage_tail_after_valid_records_is_discarded() {
        let mut image = sample_image(0);
        let valid = image.len();
        image.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0xff, 0xff, 0xff]);
        let r = replay(&image).unwrap();
        assert_eq!(r.records, sample_records());
        assert_eq!(r.valid_len, valid);
        assert_ne!(r.tail, TailState::Clean);
    }
}
