//! The on-disk store: a directory holding one snapshot and one journal.
//!
//! ```text
//! <dir>/snapshot.cable   full session state, published atomically
//! <dir>/journal.cable    appends since that snapshot
//! ```
//!
//! **Write protocol.** The snapshot is never modified in place: a new
//! image is written to `snapshot.cable.tmp`, fsynced, renamed over
//! `snapshot.cable`, and the directory fsynced — so a reader always
//! finds either the old or the new snapshot, whole. The journal *is*
//! appended in place (that is what makes appends cheap), and each
//! record frame carries its own checksum so a torn append damages only
//! the tail.
//!
//! **Generations.** Snapshot and journal each carry a generation
//! number. [`Store::compact`] first publishes a new snapshot at
//! generation `g+1`, then resets the journal to `g+1`. A crash between
//! the two steps leaves a generation-`g` journal beside the `g+1`
//! snapshot; [`Store::open`] detects the stale journal by the mismatch
//! and discards it instead of replaying its (already folded-in) records
//! twice.
//!
//! **Recovery.** Opening a store replays the journal's valid prefix
//! ([`crate::journal::replay`]) and truncates the file back to that
//! prefix before any further append, so damaged tail bytes are never
//! appended after.
//!
//! **Fail-stop durability (DESIGN.md §17).** Any write-path failure —
//! a journal append, a journal fsync, a snapshot or journal publish —
//! flips the store to [`Durability::ReadOnly`]: every later write is
//! refused with [`StoreError::Degraded`] until [`Store::recover`]
//! republishes known-good state. The fsync rule in particular is
//! absolute: after a failed `sync_all` the kernel may already have
//! dropped the dirty pages, so retrying the fsync on the same handle
//! can report success over lost data (the "fsyncgate" failure mode).
//! Recovery therefore never touches the poisoned handles — it publishes
//! the caller's in-memory state (which, by the journal-before-apply
//! discipline, holds exactly the acknowledged operations) as a fresh
//! generation through brand-new file handles, exactly like a
//! compaction. Reads never degrade the store.

use crate::corpus::{decode_snapshot, encode_snapshot, SnapshotData};
use crate::journal::{self, JournalRecord, TailState};
use crate::{shim, StoreError};
use cable_obs::{CounterHandle, HistogramHandle};
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Bytes written to store files (snapshot images, journal appends).
static BYTES_WRITTEN: CounterHandle = CounterHandle::new("store.bytes_written");
/// `fsync` calls issued (files and directories).
static FSYNCS: CounterHandle = CounterHandle::new("store.fsyncs");
/// Journal records replayed on open.
static JOURNAL_REPLAYED: CounterHandle = CounterHandle::new("store.journal.replayed");
/// Journal records appended.
static JOURNAL_APPENDS: CounterHandle = CounterHandle::new("store.journal.appends");
/// Damaged or stale journal bytes discarded on open.
static JOURNAL_DISCARDED_BYTES: CounterHandle = CounterHandle::new("store.journal.discarded_bytes");
/// Compactions performed.
static COMPACTIONS: CounterHandle = CounterHandle::new("store.compactions");
/// Transitions into the read-only degraded state (monotonic; a store is
/// degraded right now iff `enter - exit > 0`).
static DEGRADED_ENTER: CounterHandle = CounterHandle::new("store.degraded.enter");
/// Successful recoveries out of the degraded state (monotonic).
static DEGRADED_EXIT: CounterHandle = CounterHandle::new("store.degraded.exit");
/// Writes refused because the store was read-only.
static DEGRADED_REFUSALS: CounterHandle = CounterHandle::new("store.degraded.refusals");
/// Failed batches whose unacknowledged journal frames were truncated
/// away so they cannot replay on a later open.
static BATCH_ROLLBACKS: CounterHandle = CounterHandle::new("store.journal.rollbacks");
/// Time spent inside file `fsync` calls, µs — the durability cost of
/// the journal-before-apply discipline, surfaced as the `fsync` stage
/// in `reproduce trace-report`.
static WAIT_FSYNC: HistogramHandle = HistogramHandle::new("wait.fsync.us");

/// File name of the snapshot inside a store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.cable";
/// File name of the journal inside a store directory.
pub const JOURNAL_FILE: &str = "journal.cable";
const SNAPSHOT_TMP: &str = "snapshot.cable.tmp";
const JOURNAL_TMP: &str = "journal.cable.tmp";

/// What [`Store::open`] found and did, for observability and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Journal records replayed onto the snapshot state.
    pub replayed: usize,
    /// Damaged tail bytes truncated away from the journal.
    pub discarded_bytes: usize,
    /// How the journal tail ended.
    pub tail: TailState,
    /// The journal predated the snapshot (crash between the two
    /// compaction steps) and was discarded wholesale.
    pub stale_journal: bool,
}

/// Whether a store accepts writes — the fail-stop durability state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Durability {
    /// Healthy: appends, syncs, and compactions are accepted.
    Writable,
    /// A write-path failure poisoned the handles: every write is
    /// refused with [`StoreError::Degraded`] until [`Store::recover`]
    /// succeeds. Reads keep serving from memory throughout.
    ReadOnly {
        /// Which write-path step failed first (`"fsync"`,
        /// `"journal-append"`, `"publish"`, `"journal-reset"`, …).
        cause: String,
    },
}

/// An open store directory with its journal ready for appends.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    journal: shim::FaultFile,
    generation: u64,
    /// Records in the journal that are not yet folded into the
    /// snapshot: replayed records at open, plus appends since, reset by
    /// compaction. This is the record-grained journal lag `/healthz`
    /// reports.
    journal_records: u64,
    durability: Durability,
}

/// Instruments one fsync call (recorder span, wait histogram, counter)
/// without caring which handle issues it.
fn timed_sync(sync: impl FnOnce() -> std::io::Result<()>) -> Result<(), StoreError> {
    let wait_start = cable_obs::enabled().then(std::time::Instant::now);
    cable_obs::recorder::begin("wait.fsync");
    let result = sync();
    cable_obs::recorder::end("wait.fsync");
    if let Some(start) = wait_start {
        WAIT_FSYNC.get().record(start.elapsed().as_micros() as u64);
    }
    result?;
    FSYNCS.get().incr();
    Ok(())
}

fn fsync(file: &File) -> Result<(), StoreError> {
    shim::check("store.fsync")?;
    timed_sync(|| file.sync_all())
}

/// Fsyncs a directory so a rename inside it is durable. Directories
/// cannot be opened for syncing on some platforms (notably Windows), so
/// failure to *open* the handle is tolerated — but once open, a failed
/// `sync_all` is a real durability loss and propagates like any other
/// write-path error.
fn fsync_dir(dir: &Path) -> Result<(), StoreError> {
    if let Ok(handle) = File::open(dir) {
        handle.sync_all()?;
        FSYNCS.get().incr();
    }
    Ok(())
}

/// Writes `bytes` to `dir/name` via a temp file, fsync, atomic rename,
/// and directory fsync.
fn publish(dir: &Path, tmp_name: &str, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = dir.join(tmp_name);
    let mut file = shim::FaultWriter::new("store.publish", File::create(&tmp)?);
    file.write_all(bytes)?;
    BYTES_WRITTEN.get().add(bytes.len() as u64);
    let file = file.into_inner();
    fsync(&file)?;
    drop(file);
    fs::rename(&tmp, dir.join(name))?;
    fsync_dir(dir)?;
    Ok(())
}

fn open_journal_for_append(path: &Path, len: u64) -> Result<File, StoreError> {
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    file.set_len(len)?;
    file.seek(SeekFrom::End(0))?;
    Ok(file)
}

/// Opens a fresh journal append handle behind the fault shim (writes
/// run under `store.journal.append`, fsyncs under `store.fsync`).
fn journal_handle(path: &Path, len: u64) -> Result<shim::FaultFile, StoreError> {
    Ok(shim::FaultFile::new(
        "store.journal.append",
        "store.fsync",
        open_journal_for_append(path, len)?,
    ))
}

impl Store {
    /// Creates a store directory (which must not already hold one) and
    /// publishes `data` as its first snapshot, with an empty journal.
    ///
    /// # Errors
    ///
    /// Fails if a snapshot already exists at `dir`, or on I/O errors.
    pub fn create(dir: &Path, data: &SnapshotData) -> Result<Store, StoreError> {
        fs::create_dir_all(dir)?;
        if dir.join(SNAPSHOT_FILE).exists() {
            return Err(StoreError::format(format!(
                "{} already holds a store",
                dir.display()
            )));
        }
        publish(dir, SNAPSHOT_TMP, SNAPSHOT_FILE, &encode_snapshot(data))?;
        let header = journal::header(data.generation);
        publish(dir, JOURNAL_TMP, JOURNAL_FILE, &header)?;
        let journal = journal_handle(&dir.join(JOURNAL_FILE), header.len() as u64)?;
        cable_obs::recorder::instant("store.create");
        Ok(Store {
            dir: dir.to_owned(),
            journal,
            generation: data.generation,
            journal_records: 0,
            durability: Durability::Writable,
        })
    }

    /// Opens an existing store: reads the snapshot, replays the
    /// journal's valid prefix, and truncates any damaged or stale tail
    /// so subsequent appends extend valid state.
    ///
    /// Returns the snapshot, the journal records to apply on top of it,
    /// and a [`RecoveryReport`].
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, a damaged snapshot (snapshots are published
    /// atomically, so damage is not crash fallout), or a journal whose
    /// magic identifies it as some other kind of file.
    pub fn open(
        dir: &Path,
    ) -> Result<(Store, SnapshotData, Vec<JournalRecord>, RecoveryReport), StoreError> {
        let snapshot_bytes = shim::read("store.snapshot.read", &dir.join(SNAPSHOT_FILE))?;
        let data = decode_snapshot(&snapshot_bytes)?;

        let journal_path = dir.join(JOURNAL_FILE);
        let journal_bytes = match shim::read("store.journal.read", &journal_path) {
            Ok(bytes) => bytes,
            // A missing journal (crash before it was first published)
            // is an empty one.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let replay = journal::replay(&journal_bytes)?;
        let stale = replay.generation != data.generation;
        let (records, valid_len, tail) = if stale {
            (Vec::new(), 0, replay.tail)
        } else {
            (replay.records, replay.valid_len, replay.tail)
        };
        let discarded = journal_bytes.len().saturating_sub(valid_len);

        // Repair the file before appending: a stale or headerless
        // journal is reset whole; a dirty tail is truncated away.
        let header = journal::header(data.generation);
        let journal = if stale || valid_len < journal::HEADER_LEN {
            publish(dir, JOURNAL_TMP, JOURNAL_FILE, &header)?;
            journal_handle(&journal_path, header.len() as u64)?
        } else {
            let file = journal_handle(&journal_path, valid_len as u64)?;
            if discarded > 0 {
                timed_sync(|| file.sync_all())?;
            }
            file
        };

        JOURNAL_REPLAYED.get().add(records.len() as u64);
        JOURNAL_DISCARDED_BYTES.get().add(discarded as u64);
        let report = RecoveryReport {
            replayed: records.len(),
            discarded_bytes: discarded,
            tail,
            stale_journal: stale,
        };
        cable_obs::recorder::instant("store.open");
        if cable_obs::events::enabled() {
            // Recovery is the store's interesting unit of work: the wide
            // event says what a reopen found, not just that it happened.
            cable_obs::events::emit(
                cable_obs::WideEvent::new("store_open", "store")
                    .stage("store.open")
                    .outcome(if stale || discarded > 0 {
                        "recovered"
                    } else {
                        "ok"
                    })
                    .field("replayed", records.len() as u64)
                    .field("discarded_bytes", discarded as u64)
                    .field("stale_journal", stale)
                    .field("generation", data.generation),
            );
        }
        Ok((
            Store {
                dir: dir.to_owned(),
                journal,
                generation: data.generation,
                journal_records: records.len() as u64,
                durability: Durability::Writable,
            },
            data,
            records,
            report,
        ))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current snapshot generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The fail-stop durability state.
    pub fn durability(&self) -> &Durability {
        &self.durability
    }

    /// The degradation cause, if the store is read-only.
    pub fn degraded_cause(&self) -> Option<&str> {
        match &self.durability {
            Durability::Writable => None,
            Durability::ReadOnly { cause } => Some(cause),
        }
    }

    /// Whether the store is refusing writes.
    pub fn is_degraded(&self) -> bool {
        matches!(self.durability, Durability::ReadOnly { .. })
    }

    /// Refuses the write if the store is read-only.
    fn ensure_writable(&self) -> Result<(), StoreError> {
        match &self.durability {
            Durability::Writable => Ok(()),
            Durability::ReadOnly { cause } => {
                DEGRADED_REFUSALS.get().incr();
                Err(StoreError::Degraded {
                    cause: cause.clone(),
                })
            }
        }
    }

    /// Flips the store to read-only after a write-path failure. The
    /// transition is counted once (`store.degraded.enter`), surfaced as
    /// a `store_degraded{cause=…}` scoped metric, and announced with a
    /// `store_degraded` wide event; a failure while already degraded
    /// (e.g. inside a failed recovery) only updates the cause.
    fn degrade(&mut self, cause: &str, error: &StoreError) {
        if !self.is_degraded() {
            DEGRADED_ENTER.get().incr();
            cable_obs::scoped()
                .open(&[("cause", cause)])
                .incr("store_degraded");
        }
        if cable_obs::events::enabled() {
            cable_obs::events::emit(
                cable_obs::WideEvent::new("store_degraded", "store")
                    .stage("store.write")
                    .outcome("read_only")
                    .field("cause", cause.to_owned())
                    .field("error", error.to_string())
                    .field("generation", self.generation),
            );
        }
        cable_obs::recorder::instant("store.degraded");
        self.durability = Durability::ReadOnly {
            cause: cause.to_owned(),
        };
    }

    /// Runs one write-path step; any failure flips the store to
    /// read-only under `cause` before the error propagates.
    fn write_step<T>(
        &mut self,
        cause: &str,
        step: impl FnOnce(&mut Store) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        match step(self) {
            Ok(value) => Ok(value),
            Err(e) => {
                // Guard trips (budget, cancellation) stop the operation
                // but do not indict the disk; only real I/O failures
                // poison durability.
                if !matches!(e, StoreError::Guard(_)) {
                    self.degrade(cause, &e);
                }
                Err(e)
            }
        }
    }

    /// Appends one record to the journal without syncing; call
    /// [`Store::sync`] to make a batch durable, or use
    /// [`Store::append_all`].
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), StoreError> {
        self.ensure_writable()?;
        let bytes = journal::encode_record(record);
        self.write_step("journal-append", |store| {
            store.journal.write_all(&bytes).map_err(StoreError::from)
        })?;
        BYTES_WRITTEN.get().add(bytes.len() as u64);
        JOURNAL_APPENDS.get().incr();
        self.journal_records += 1;
        cable_obs::recorder::instant("store.journal.append");
        Ok(())
    }

    /// Fsyncs the journal. A failure is fail-stop: the handle is never
    /// fsync-retried (the kernel may have dropped the dirty pages and a
    /// retry can report success over lost data), the store goes
    /// read-only, and [`Store::recover`] must republish state onto
    /// fresh handles.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.ensure_writable()?;
        self.write_step("fsync", |store| timed_sync(|| store.journal.sync_all()))
    }

    /// Appends a batch of records. With `sync_each` every record is
    /// fsynced individually (durable the moment it returns, at one
    /// fsync per record — what the crash-recovery drill exercises);
    /// otherwise the batch is fsynced once at the end.
    ///
    /// The batch is all-or-nothing *in the journal file*: if any append
    /// or fsync fails partway, the frames this batch already wrote are
    /// truncated back off (see [`Store::rollback_batch`]) before the
    /// error propagates, so a later [`Store::open`] replays exactly the
    /// acknowledged prefix — a batch the caller was never acked cannot
    /// resurrect piecemeal.
    pub fn append_all<'a, I>(&mut self, records: I, sync_each: bool) -> Result<(), StoreError>
    where
        I: IntoIterator<Item = &'a JournalRecord>,
    {
        self.ensure_writable()?;
        let acked_len = self.journal_bytes()?;
        let acked_records = self.journal_records;
        let run = |store: &mut Store| -> Result<(), StoreError> {
            for record in records {
                store.append(record)?;
                if sync_each {
                    store.sync()?;
                }
            }
            if !sync_each {
                store.sync()?;
            }
            Ok(())
        };
        run(self).inspect_err(|_| self.rollback_batch(acked_len, acked_records))
    }

    /// Discards a failed batch's journaled-but-unacknowledged frames by
    /// truncating the journal back to the length the last acknowledged
    /// write left it at — on a *fresh* handle, never the possibly
    /// poisoned one. Without this, a batch that failed on its third
    /// record would leave two complete frames behind that a later open
    /// happily replays, resurrecting operations the client was told
    /// failed (and will therefore retry, duplicating them).
    ///
    /// Best-effort by design: if even the truncate fails the store is
    /// degraded (if it was not already), and [`Store::recover`] resets
    /// the journal wholesale anyway. Only a crash in the window between
    /// a failed rollback and recovery can still replay unacked frames —
    /// the standard write-ahead caveat documented on [`Store::recover`].
    fn rollback_batch(&mut self, acked_len: u64, acked_records: u64) {
        self.journal_records = acked_records;
        match journal_handle(&self.dir.join(JOURNAL_FILE), acked_len) {
            Ok(handle) => {
                self.journal = handle;
                BATCH_ROLLBACKS.get().incr();
                cable_obs::recorder::instant("store.journal.rollback");
            }
            Err(e) => {
                if !self.is_degraded() {
                    self.degrade("journal-rollback", &e);
                }
            }
        }
    }

    /// Publishes `data` (whose generation must be one past the store's)
    /// as a fresh snapshot and resets the journal — the shared body of
    /// [`Store::compact`] and [`Store::recover`]. Every file handle
    /// involved is newly opened, never a reused (possibly poisoned) one.
    fn republish(&mut self, data: &SnapshotData) -> Result<(), StoreError> {
        if data.generation != self.generation + 1 {
            return Err(StoreError::format(format!(
                "compaction generation {} does not follow {}",
                data.generation, self.generation
            )));
        }
        let snapshot = encode_snapshot(data);
        self.write_step("publish", |store| {
            publish(&store.dir, SNAPSHOT_TMP, SNAPSHOT_FILE, &snapshot)
        })?;
        let header = journal::header(data.generation);
        self.write_step("journal-reset", |store| {
            publish(&store.dir, JOURNAL_TMP, JOURNAL_FILE, &header)?;
            store.journal = journal_handle(&store.dir.join(JOURNAL_FILE), header.len() as u64)?;
            Ok(())
        })?;
        self.generation = data.generation;
        self.journal_records = 0;
        Ok(())
    }

    /// Folds the journal into a fresh snapshot: publishes `data` (whose
    /// generation must be one past the store's) atomically, then resets
    /// the journal. Crash-safe at every step — see the module docs.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a generation mismatch.
    pub fn compact(&mut self, data: &SnapshotData) -> Result<(), StoreError> {
        self.ensure_writable()?;
        self.republish(data)?;
        COMPACTIONS.get().incr();
        cable_obs::recorder::instant("store.compact");
        Ok(())
    }

    /// Restores write service after a degradation by publishing the
    /// caller's in-memory state (exactly the acknowledged operations —
    /// the journal-before-apply discipline guarantees nothing
    /// unacknowledged ever reaches memory) as generation
    /// `self.generation + 1` through fresh file handles, then marking
    /// the store writable again. A no-op on a writable store.
    ///
    /// The poisoned journal handle is never fsync-retried; the old
    /// journal file is reset wholesale, so an unacknowledged tail from
    /// the failed write cannot replay later. A crash between the
    /// degradation and a successful recover leaves the old journal in
    /// place, where the next [`Store::open`] replays its valid prefix —
    /// standard write-ahead semantics (see DESIGN.md §17).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors (the store then stays read-only, with the
    /// cause updated to the failing recovery step) or a generation
    /// mismatch.
    pub fn recover(&mut self, data: &SnapshotData) -> Result<(), StoreError> {
        let Durability::ReadOnly { cause } = &self.durability else {
            return Ok(());
        };
        let cause = cause.clone();
        self.republish(data)?;
        self.durability = Durability::Writable;
        DEGRADED_EXIT.get().incr();
        if cable_obs::events::enabled() {
            cable_obs::events::emit(
                cable_obs::WideEvent::new("store_recovered", "store")
                    .stage("store.recover")
                    .outcome("ok")
                    .field("cause", cause)
                    .field("generation", self.generation),
            );
        }
        cable_obs::recorder::instant("store.recover");
        Ok(())
    }

    /// Size in bytes of the current snapshot file.
    pub fn snapshot_bytes(&self) -> Result<u64, StoreError> {
        Ok(fs::metadata(self.dir.join(SNAPSHOT_FILE))?.len())
    }

    /// Size in bytes of the current journal file.
    pub fn journal_bytes(&self) -> Result<u64, StoreError> {
        Ok(fs::metadata(self.dir.join(JOURNAL_FILE))?.len())
    }

    /// Journal bytes past the header: the byte-grained lag between the
    /// published snapshot and the live state, i.e. what a crash now
    /// would have to replay on the next open.
    pub fn journal_lag_bytes(&self) -> Result<u64, StoreError> {
        Ok(self
            .journal_bytes()?
            .saturating_sub(journal::HEADER_LEN as u64))
    }

    /// Journal records not yet folded into the snapshot (replayed at
    /// open plus appended since; zero right after a compaction).
    pub fn journal_lag_records(&self) -> u64 {
        self.journal_records
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        // A handle discarded while still read-only (e.g. a degraded
        // session LRU-evicted before anyone called recover) exits its
        // degradation here: the next open replays the journal's valid
        // prefix onto fresh handles and is writable. Keeping the exit
        // counter in step makes `degraded.enter - degraded.exit` the
        // count of *live* degraded handles, which is what `/healthz`
        // reports as `degraded_now`.
        if self.is_degraded() {
            DEGRADED_EXIT.get().incr();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cable_trace::{Trace, TraceSet, Vocab};
    use cable_util::BitSet;

    fn sample_data(generation: u64) -> SnapshotData {
        let mut vocab = Vocab::new();
        let mut traces = TraceSet::new();
        traces.push(Trace::parse("a(X) b(X)", &mut vocab).unwrap());
        SnapshotData {
            generation,
            n_attributes: 2,
            vocab,
            fa_text: String::new(),
            traces,
            labels: Vec::new(),
            rows: vec![BitSet::singleton(0)],
            concepts: vec![
                (BitSet::singleton(0), BitSet::new()),
                (BitSet::new(), BitSet::full(2)),
            ],
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cable-store-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn create_append_reopen_replays() {
        let dir = tmp_dir("reopen");
        let mut store = Store::create(&dir, &sample_data(0)).unwrap();
        let records = vec![
            JournalRecord::Trace("c(Y)".to_owned()),
            JournalRecord::Label {
                class: 0,
                name: "fine".to_owned(),
            },
        ];
        store.append_all(&records, false).unwrap();
        drop(store);

        let (_store, data, replayed, report) = Store::open(&dir).unwrap();
        assert_eq!(data.generation, 0);
        assert_eq!(replayed, records);
        assert_eq!(report.replayed, 2);
        assert_eq!(report.discarded_bytes, 0);
        assert_eq!(report.tail, TailState::Clean);
        assert!(!report.stale_journal);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_once_and_for_all() {
        let dir = tmp_dir("torn");
        let mut store = Store::create(&dir, &sample_data(0)).unwrap();
        store
            .append_all([&JournalRecord::Trace("c(Y)".to_owned())], true)
            .unwrap();
        drop(store);

        // Tear the file mid-record.
        let path = dir.join(JOURNAL_FILE);
        let whole = fs::read(&path).unwrap();
        let torn_len = whole.len() + 3;
        let mut torn = whole.clone();
        torn.extend_from_slice(
            &journal::encode_record(&JournalRecord::Trace("d(Z)".to_owned()))[..3],
        );
        assert_eq!(torn.len(), torn_len);
        fs::write(&path, &torn).unwrap();

        let (mut store, _, replayed, report) = Store::open(&dir).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(report.tail, TailState::Torn);
        assert_eq!(report.discarded_bytes, 3);
        // The truncation is durable: appends extend the valid prefix.
        store
            .append_all([&JournalRecord::Trace("e(X)".to_owned())], false)
            .unwrap();
        drop(store);
        let (_, _, replayed, report) = Store::open(&dir).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(report.tail, TailState::Clean);
        assert_eq!(report.discarded_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_resets_the_journal_and_bumps_the_generation() {
        let dir = tmp_dir("compact");
        let mut store = Store::create(&dir, &sample_data(0)).unwrap();
        store
            .append_all([&JournalRecord::Trace("c(Y)".to_owned())], false)
            .unwrap();
        let journal_before = store.journal_bytes().unwrap();
        store.compact(&sample_data(1)).unwrap();
        assert!(store.journal_bytes().unwrap() < journal_before);
        assert_eq!(store.generation(), 1);
        drop(store);

        let (_, data, replayed, report) = Store::open(&dir).unwrap();
        assert_eq!(data.generation, 1);
        assert!(replayed.is_empty());
        assert!(!report.stale_journal);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_journal_after_interrupted_compaction_is_discarded() {
        let dir = tmp_dir("stale");
        let mut store = Store::create(&dir, &sample_data(0)).unwrap();
        store
            .append_all([&JournalRecord::Trace("c(Y)".to_owned())], false)
            .unwrap();
        drop(store);
        // Simulate a crash between the two compaction steps: new
        // snapshot published, journal still at the old generation.
        publish(
            &dir,
            SNAPSHOT_TMP,
            SNAPSHOT_FILE,
            &encode_snapshot(&sample_data(1)),
        )
        .unwrap();

        let (_, data, replayed, report) = Store::open(&dir).unwrap();
        assert_eq!(data.generation, 1);
        assert!(replayed.is_empty(), "stale records must not replay");
        assert!(report.stale_journal);
        assert!(report.discarded_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_to_clobber() {
        let dir = tmp_dir("clobber");
        let _ = Store::create(&dir, &sample_data(0)).unwrap();
        assert!(Store::create(&dir, &sample_data(0)).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_checks_the_generation() {
        let dir = tmp_dir("gen");
        let mut store = Store::create(&dir, &sample_data(0)).unwrap();
        assert!(store.compact(&sample_data(5)).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_lag_tracks_appends_replays_and_compaction() {
        let dir = tmp_dir("lag");
        let mut store = Store::create(&dir, &sample_data(0)).unwrap();
        assert_eq!(store.journal_lag_records(), 0);
        assert_eq!(store.journal_lag_bytes().unwrap(), 0);
        store
            .append_all([&JournalRecord::Trace("c(Y)".to_owned())], false)
            .unwrap();
        assert_eq!(store.journal_lag_records(), 1);
        assert!(store.journal_lag_bytes().unwrap() > 0);
        drop(store);

        // Reopening carries the replayed records as lag.
        let (mut store, _, _, _) = Store::open(&dir).unwrap();
        assert_eq!(store.journal_lag_records(), 1);

        store.compact(&sample_data(1)).unwrap();
        assert_eq!(store.journal_lag_records(), 0);
        assert_eq!(store.journal_lag_bytes().unwrap(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn counters_account_for_the_traffic() {
        let before = cable_obs::registry().snapshot();
        let dir = tmp_dir("counters");
        let mut store = Store::create(&dir, &sample_data(0)).unwrap();
        store
            .append_all([&JournalRecord::Trace("c(Y)".to_owned())], true)
            .unwrap();
        store.compact(&sample_data(1)).unwrap();
        drop(store);
        let _ = Store::open(&dir).unwrap();
        let delta = cable_obs::registry().snapshot().delta_since(&before);
        assert!(delta.counter("store.bytes_written").unwrap_or(0) > 0);
        assert!(delta.counter("store.fsyncs").unwrap_or(0) >= 3);
        assert!(delta.counter("store.journal.appends").unwrap_or(0) >= 1);
        // Counters are process-wide and other tests compact too: bound
        // from below.
        assert!(delta.counter("store.compactions").unwrap_or(0) >= 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
