//! The snapshot file: a complete session state as a frame sequence.
//!
//! A snapshot (`snapshot.cable`) is written whole and published
//! atomically (temp file + fsync + rename, see [`crate::store`]), so
//! unlike the journal it is parsed *strictly*: a fixed header, a fixed
//! order of frames, and a mandatory empty `END` footer frame. Anything
//! else — a torn tail, a checksum mismatch, a missing section — is a
//! format error, because a valid publication can never produce it.
//!
//! ```text
//! "CABLEST1"                           8-byte magic
//! META     generation, n_attributes
//! VOCAB    interned op + atom tables       (cable_trace::binary)
//! FA       the session automaton, text     (cable_fa::text)
//! TRACES   every corpus trace, binary      (cable_trace::binary)
//! LABELS   (class index, label name) pairs
//! ROWS     one attribute BitSet per identical class
//! CONCEPTS (extent, intent) BitSet pairs of the lattice
//! END      empty footer
//! ```
//!
//! The rows and concepts are persisted so that resume can rebuild the
//! session with `cable-fca`'s `Context::from_rows` and
//! `ConceptLattice::from_concepts` — no Godin pass over the corpus.

use crate::frame::{read_frame, write_frame, FrameRead};
use crate::StoreError;
use cable_trace::binary::{ByteReader, ByteWriter};
use cable_trace::{binary, TraceSet, Vocab};
use cable_util::BitSet;

/// The snapshot file magic.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"CABLEST1";

/// Frame kinds, in their mandatory file order.
const K_META: u8 = 1;
const K_VOCAB: u8 = 2;
const K_FA: u8 = 3;
const K_TRACES: u8 = 4;
const K_LABELS: u8 = 5;
const K_ROWS: u8 = 6;
const K_CONCEPTS: u8 = 7;
const K_END: u8 = 0xee;

/// Everything a snapshot holds: the full state of a persisted session.
///
/// This is a plain data bundle — `cable-core` converts it to and from a
/// live `CableSession`; the store crate itself never interprets it
/// beyond serialization.
#[derive(Debug, Clone)]
pub struct SnapshotData {
    /// Compaction generation; the journal with the same generation
    /// applies on top of this snapshot, older journals are stale.
    pub generation: u64,
    /// Attribute universe size of the context and lattice.
    pub n_attributes: usize,
    /// The interned vocabulary every other section is encoded against.
    pub vocab: Vocab,
    /// The session automaton in `cable-fa` text format.
    pub fa_text: String,
    /// Every trace of the corpus, including duplicates.
    pub traces: TraceSet,
    /// `(identical-class index, label name)` pairs, in class order.
    pub labels: Vec<(u32, String)>,
    /// One attribute row per identical class, in class order.
    pub rows: Vec<BitSet>,
    /// The `(extent, intent)` pairs of the concept lattice.
    pub concepts: Vec<(BitSet, BitSet)>,
}

fn write_bitset(w: &mut ByteWriter, set: &BitSet) {
    w.varint(set.len() as u64);
    let mut prev = 0u64;
    for v in set.iter() {
        let v = v as u64;
        // Elements iterate in increasing order: gap-encode after the
        // first so dense sets stay one byte per element.
        w.varint(v - prev);
        prev = v + 1;
    }
}

fn read_bitset(r: &mut ByteReader<'_>) -> Result<BitSet, StoreError> {
    let n = r.len(r.remaining(), "bitset element")?;
    let mut set = BitSet::new();
    let mut prev = 0u64;
    for _ in 0..n {
        let v = prev + r.varint()?;
        let idx = usize::try_from(v).map_err(|_| StoreError::format("bitset element overflows"))?;
        set.insert(idx);
        prev = v + 1;
    }
    Ok(set)
}

/// Encodes a complete snapshot, magic through `END` footer.
pub fn encode_snapshot(data: &SnapshotData) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(SNAPSHOT_MAGIC);

    let mut meta = ByteWriter::new();
    meta.varint(data.generation);
    meta.varint(data.n_attributes as u64);
    write_frame(&mut out, K_META, &meta.into_bytes());

    write_frame(&mut out, K_VOCAB, &binary::encode_vocab(&data.vocab));
    write_frame(&mut out, K_FA, data.fa_text.as_bytes());
    write_frame(&mut out, K_TRACES, &binary::encode_trace_set(&data.traces));

    let mut labels = ByteWriter::new();
    labels.varint(data.labels.len() as u64);
    for (class, name) in &data.labels {
        labels.varint(u64::from(*class));
        labels.string(name);
    }
    write_frame(&mut out, K_LABELS, &labels.into_bytes());

    let mut rows = ByteWriter::new();
    rows.varint(data.rows.len() as u64);
    for row in &data.rows {
        write_bitset(&mut rows, row);
    }
    write_frame(&mut out, K_ROWS, &rows.into_bytes());

    let mut concepts = ByteWriter::new();
    concepts.varint(data.concepts.len() as u64);
    for (extent, intent) in &data.concepts {
        write_bitset(&mut concepts, extent);
        write_bitset(&mut concepts, intent);
    }
    write_frame(&mut out, K_CONCEPTS, &concepts.into_bytes());

    write_frame(&mut out, K_END, &[]);
    out
}

/// Reads the next frame strictly, requiring `want` as its kind.
fn expect_frame<'a>(buf: &'a [u8], pos: &mut usize, want: u8) -> Result<&'a [u8], StoreError> {
    match read_frame(buf, *pos) {
        FrameRead::Frame {
            kind,
            payload,
            next,
        } if kind == want => {
            *pos = next;
            Ok(payload)
        }
        FrameRead::Frame { kind, .. } => Err(StoreError::format(format!(
            "snapshot frame kind {kind} where {want} expected"
        ))),
        FrameRead::End => Err(StoreError::format("snapshot ends early")),
        FrameRead::Torn => Err(StoreError::format("snapshot is torn")),
        FrameRead::Corrupt => Err(StoreError::format("snapshot frame fails its checksum")),
    }
}

/// Decodes a snapshot file image.
///
/// # Errors
///
/// Returns [`StoreError::Format`] on any deviation from the layout —
/// snapshots are published atomically, so a damaged one is not
/// recoverable state but a hard error.
pub fn decode_snapshot(bytes: &[u8]) -> Result<SnapshotData, StoreError> {
    if bytes.len() < SNAPSHOT_MAGIC.len() || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(StoreError::format("bad snapshot magic"));
    }
    let mut pos = SNAPSHOT_MAGIC.len();

    let meta = expect_frame(bytes, &mut pos, K_META)?;
    let mut r = ByteReader::new(meta);
    let generation = r.varint()?;
    let n_attributes = r.len(usize::MAX, "attribute")?;

    let vocab = binary::decode_vocab(expect_frame(bytes, &mut pos, K_VOCAB)?)?;

    let fa_text = std::str::from_utf8(expect_frame(bytes, &mut pos, K_FA)?)
        .map_err(|_| StoreError::format("snapshot FA text is not UTF-8"))?
        .to_owned();

    let traces = binary::decode_trace_set(expect_frame(bytes, &mut pos, K_TRACES)?, &vocab)?;

    let payload = expect_frame(bytes, &mut pos, K_LABELS)?;
    let mut r = ByteReader::new(payload);
    let n_labels = r.len(r.remaining(), "label")?;
    let mut labels = Vec::with_capacity(n_labels);
    for _ in 0..n_labels {
        let class = u32::try_from(r.varint()?)
            .map_err(|_| StoreError::format("label class overflows u32"))?;
        labels.push((class, r.string()?.to_owned()));
    }

    let payload = expect_frame(bytes, &mut pos, K_ROWS)?;
    let mut r = ByteReader::new(payload);
    let n_rows = r.len(r.remaining(), "row")?;
    let mut rows = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        rows.push(read_bitset(&mut r)?);
    }

    let payload = expect_frame(bytes, &mut pos, K_CONCEPTS)?;
    let mut r = ByteReader::new(payload);
    let n_concepts = r.len(r.remaining(), "concept")?;
    let mut concepts = Vec::with_capacity(n_concepts);
    for _ in 0..n_concepts {
        let extent = read_bitset(&mut r)?;
        let intent = read_bitset(&mut r)?;
        concepts.push((extent, intent));
    }

    let footer = expect_frame(bytes, &mut pos, K_END)?;
    if !footer.is_empty() {
        return Err(StoreError::format("snapshot END frame is not empty"));
    }
    if !matches!(read_frame(bytes, pos), FrameRead::End) {
        return Err(StoreError::format("trailing bytes after snapshot END"));
    }

    Ok(SnapshotData {
        generation,
        n_attributes,
        vocab,
        fa_text,
        traces,
        labels,
        rows,
        concepts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cable_trace::Trace;

    fn sample() -> SnapshotData {
        let mut vocab = Vocab::new();
        let mut traces = TraceSet::new();
        traces.push(Trace::parse("fopen(X) fread(X) fclose(X)", &mut vocab).unwrap());
        traces.push(Trace::parse("fopen(X) fclose(X)", &mut vocab).unwrap());
        traces.push(Trace::parse("g('LEFT,#9)", &mut vocab).unwrap());
        SnapshotData {
            generation: 3,
            n_attributes: 4,
            vocab,
            fa_text: "start s0\naccept s0\n".to_owned(),
            traces,
            labels: vec![(0, "bug".to_owned()), (2, "ok".to_owned())],
            rows: vec![
                [0usize, 2].into_iter().collect(),
                [1usize].into_iter().collect(),
                BitSet::new(),
            ],
            concepts: vec![
                ([0usize, 1, 2].into_iter().collect(), BitSet::new()),
                (BitSet::new(), BitSet::full(4)),
            ],
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let data = sample();
        let decoded = decode_snapshot(&encode_snapshot(&data)).unwrap();
        assert_eq!(decoded.generation, data.generation);
        assert_eq!(decoded.n_attributes, data.n_attributes);
        assert_eq!(decoded.fa_text, data.fa_text);
        assert_eq!(decoded.labels, data.labels);
        assert_eq!(decoded.rows, data.rows);
        assert_eq!(decoded.concepts, data.concepts);
        assert_eq!(decoded.traces.len(), data.traces.len());
        for (id, t) in data.traces.iter() {
            assert_eq!(decoded.traces.trace(id), t);
        }
        assert_eq!(decoded.vocab.op_count(), data.vocab.op_count());
        assert_eq!(decoded.vocab.atom_count(), data.vocab.atom_count());
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = encode_snapshot(&sample());
        for cut in 0..bytes.len() {
            assert!(decode_snapshot(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn every_bit_flip_is_rejected() {
        let bytes = encode_snapshot(&sample());
        for i in 0..bytes.len() {
            for bit in [0x01u8, 0x40] {
                let mut bad = bytes.clone();
                bad[i] ^= bit;
                // Magic check, per-frame CRC, and the strict layout
                // leave no byte a flip can silently land in.
                assert!(decode_snapshot(&bad).is_err(), "flip at byte {i}");
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_snapshot(&sample());
        bytes.push(0);
        assert!(decode_snapshot(&bytes).is_err());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_snapshot(&sample());
        bytes[0] ^= 0xff;
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(StoreError::Format(m)) if m.contains("magic")
        ));
    }
}
