//! Length-prefixed, CRC-checksummed frames — the unit of both store files.
//!
//! Layout of one frame on disk:
//!
//! ```text
//! [payload len: u32 LE] [kind: u8] [payload bytes] [crc32: u32 LE]
//! ```
//!
//! The checksum covers the kind byte and the payload, so neither a torn
//! tail, a bit flip, nor a frame whose kind byte was damaged can be
//! mistaken for valid data. Reading classifies the bytes at a position
//! as a whole frame, a clean end of input, a *torn* frame (ran out of
//! bytes mid-frame — the normal shape of a crash during an append), or a
//! *corrupt* frame (all bytes present but the checksum disagrees). The
//! journal recovery keeps exactly the prefix of whole frames and
//! discards the rest.

use crate::crc::crc32;

/// Upper bound on a single frame's payload. Anything larger is treated
/// as corruption: a garbage length prefix must not drive a huge read.
pub const MAX_PAYLOAD: usize = 1 << 30;

/// Bytes of framing overhead around a payload (length, kind, checksum).
pub const OVERHEAD: usize = 4 + 1 + 4;

/// Appends one frame to `out`, returning the encoded size.
pub fn write_frame(out: &mut Vec<u8>, kind: u8, payload: &[u8]) -> usize {
    assert!(payload.len() <= MAX_PAYLOAD, "frame payload too large");
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let body_start = out.len();
    out.push(kind);
    out.extend_from_slice(payload);
    let crc = crc32(&out[body_start..]);
    out.extend_from_slice(&crc.to_le_bytes());
    payload.len() + OVERHEAD
}

/// The classification of the bytes at one position of a store file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameRead<'a> {
    /// A whole, checksum-valid frame; `next` is the offset just past it.
    Frame {
        /// The frame kind byte.
        kind: u8,
        /// The frame payload.
        payload: &'a [u8],
        /// Offset of the next frame.
        next: usize,
    },
    /// The position is exactly the end of the input.
    End,
    /// The input ends mid-frame — a torn append.
    Torn,
    /// All bytes of the frame are present but the checksum (or the
    /// length prefix) is invalid.
    Corrupt,
}

/// Reads the frame starting at `pos`.
pub fn read_frame(buf: &[u8], pos: usize) -> FrameRead<'_> {
    let rest = &buf[pos.min(buf.len())..];
    if rest.is_empty() {
        return FrameRead::End;
    }
    if rest.len() < 4 {
        return FrameRead::Torn;
    }
    let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_PAYLOAD {
        return FrameRead::Corrupt;
    }
    let total = len + OVERHEAD;
    if rest.len() < total {
        return FrameRead::Torn;
    }
    let body = &rest[4..4 + 1 + len];
    let stored = u32::from_le_bytes(rest[total - 4..total].try_into().expect("4 bytes"));
    if crc32(body) != stored {
        return FrameRead::Corrupt;
    }
    FrameRead::Frame {
        kind: body[0],
        payload: &body[1..],
        next: pos + total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_two_frames() {
        let mut buf = Vec::new();
        let n1 = write_frame(&mut buf, 1, b"hello");
        let n2 = write_frame(&mut buf, 2, b"");
        assert_eq!(buf.len(), n1 + n2);
        let first = read_frame(&buf, 0);
        let FrameRead::Frame {
            kind,
            payload,
            next,
        } = first
        else {
            panic!("{first:?}");
        };
        assert_eq!((kind, payload), (1, b"hello".as_slice()));
        let second = read_frame(&buf, next);
        let FrameRead::Frame {
            kind,
            payload,
            next,
        } = second
        else {
            panic!("{second:?}");
        };
        assert_eq!((kind, payload), (2, b"".as_slice()));
        assert_eq!(read_frame(&buf, next), FrameRead::End);
    }

    #[test]
    fn every_truncation_is_torn_or_end() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, b"payload bytes");
        for cut in 0..buf.len() {
            let got = read_frame(&buf[..cut], 0);
            if cut == 0 {
                assert_eq!(got, FrameRead::End);
            } else {
                assert_eq!(got, FrameRead::Torn, "cut {cut}");
            }
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 3, b"checksummed");
        for i in 0..buf.len() {
            for bit in 0..8 {
                let mut bad = buf.clone();
                bad[i] ^= 1 << bit;
                match read_frame(&bad, 0) {
                    // A flip in the length prefix may also read as torn
                    // (length now larger than the buffer) — never as a
                    // valid frame.
                    FrameRead::Corrupt | FrameRead::Torn => {}
                    other => panic!("flip byte {i} bit {bit}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn garbage_length_is_corrupt_not_a_huge_read() {
        let mut buf = vec![0xffu8; 16];
        buf[3] = 0xff;
        assert_eq!(read_frame(&buf, 0), FrameRead::Corrupt);
    }
}
